//! Cross-backend parity, pipeline level (mirrors `streaming_parity.rs`):
//! for a fixed seed, [`Vita::run_streaming`] must leave identical counts
//! and bit-identical fix / proximity sets behind whether it ingests into
//! the single [`vita_storage::Repository`] or a
//! [`vita_storage::ShardedRepository`] — at ≥ 4 concurrent stage workers,
//! where the per-table lock of the single backend is actually contended.

use vita_core::prelude::*;

fn toolkit() -> Vita {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(2)));
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    let placed = vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    assert_eq!(placed, 10);
    vita
}

fn scenario(method: MethodConfig, backend: StorageBackend) -> ScenarioConfig {
    ScenarioConfig {
        mobility: MobilityConfig {
            object_count: 14,
            duration: Timestamp(60_000),
            lifespan: LifespanConfig {
                min: Timestamp(40_000),
                max: Timestamp(60_000),
            },
            seed: 0x5EED3,
            ..Default::default()
        },
        rssi: RssiConfig {
            duration: Timestamp(60_000),
            ..Default::default()
        },
        method,
        options: StreamOptions {
            workers: 4,
            backend,
            ..Default::default()
        },
    }
}

/// Run the streaming pipeline into the given backend and return the vita.
fn run(method: MethodConfig, backend: StorageBackend) -> (Vita, PipelineReport) {
    let mut vita = toolkit();
    let report = vita.run_streaming(&scenario(method, backend)).unwrap();
    (vita, report)
}

fn sorted_fixes(vita: &Vita) -> Vec<vita_positioning::Fix> {
    let mut fixes = vita.repository().fixes(RunScope::All);
    fixes.sort_by(|a, b| {
        (a.t, a.object).cmp(&(b.t, b.object)).then_with(|| {
            match (a.loc.as_point(), b.loc.as_point()) {
                (Some(p), Some(q)) => {
                    (p.x.to_bits(), p.y.to_bits()).cmp(&(q.x.to_bits(), q.y.to_bits()))
                }
                _ => std::cmp::Ordering::Equal,
            }
        })
    });
    fixes
}

#[test]
fn sharded_matches_single_for_trilateration() {
    let method = || MethodConfig::Trilateration {
        config: TrilaterationConfig::default(),
        conversion_model: PathLossModel::default(),
    };
    let (single, _) = run(method(), StorageBackend::Single);
    let (sharded, report) = run(method(), StorageBackend::Sharded { shards: 8 });

    assert_eq!(
        sharded.repository().counts(RunScope::All),
        single.repository().counts(RunScope::All)
    );
    let a = sorted_fixes(&single);
    assert!(!a.is_empty());
    assert_eq!(sorted_fixes(&sharded), a, "fix sets differ across backends");

    // The report's per-shard counts cover the whole run and match the
    // repository's own accounting.
    assert_eq!(report.shard_rows.len(), 8);
    let want = sharded.repository().counts(RunScope::All);
    let merged = report
        .shard_rows
        .iter()
        .fold(TableCounts::default(), |acc, c| acc + *c);
    assert_eq!(merged, want);
    // 14 objects over 8 shards: the hash must actually spread the load.
    assert!(report.shard_rows.iter().filter(|c| c.total() > 0).count() > 1);
}

#[test]
fn sharded_matches_single_for_proximity() {
    let method = || MethodConfig::Proximity(ProximityConfig::default());
    let (single, _) = run(method(), StorageBackend::Single);
    let (sharded, _) = run(method(), StorageBackend::Sharded { shards: 4 });

    assert_eq!(
        sharded.repository().counts(RunScope::All),
        single.repository().counts(RunScope::All)
    );
    let collect = |v: &Vita| {
        let mut r = v.repository().proximity(RunScope::All);
        r.sort_by_key(|r| (r.ts, r.object, r.device, r.te));
        r
    };
    let a = collect(&single);
    assert!(!a.is_empty());
    assert_eq!(
        collect(&sharded),
        a,
        "proximity sets differ across backends"
    );
}

#[test]
fn sharded_matches_single_for_probabilistic_fingerprinting() {
    let method = || MethodConfig::FingerprintingBayes {
        survey: SurveyConfig::default(),
        online: FingerprintConfig::default(),
        floor: FloorId(0),
    };
    let (single, _) = run(method(), StorageBackend::Single);
    let (sharded, _) = run(method(), StorageBackend::Sharded { shards: 4 });
    assert_eq!(
        sharded.repository().counts(RunScope::All),
        single.repository().counts(RunScope::All)
    );
    assert_eq!(sorted_fixes(&sharded), sorted_fixes(&single));
}

#[test]
fn switching_backends_repartitions_existing_rows() {
    let method = MethodConfig::Trilateration {
        config: TrilaterationConfig::default(),
        conversion_model: PathLossModel::default(),
    };
    let (mut vita, _) = run(method, StorageBackend::Single);
    let counts = vita.repository().counts(RunScope::All);
    let fixes = sorted_fixes(&vita);

    vita.migrate_backend(StorageBackend::Sharded { shards: 4 });
    assert_eq!(
        vita.repository().backend(),
        StorageBackend::Sharded { shards: 4 }
    );
    assert_eq!(vita.repository().counts(RunScope::All), counts);
    assert_eq!(sorted_fixes(&vita), fixes);

    // And back again.
    vita.migrate_backend(StorageBackend::Single);
    assert_eq!(vita.repository().counts(RunScope::All), counts);
    assert_eq!(sorted_fixes(&vita), fixes);
}
