//! End-to-end acceptance for the vita-lab runner over the checked-in
//! specs: the example matrix expands to ≥ 8 trials covering every
//! backend family, runs end to end emitting valid JSONL plus aggregate
//! tables, and a re-run with the same seed reproduces identical
//! bindings, row counts, and ordering byte for byte.

use vita_lab::{expand, parse_spec, run_spec, schema_signature, Json};

const EXAMPLE: &str = include_str!("../crates/lab/specs/example.lab");
const SMOKE: &str = include_str!("../crates/lab/specs/smoke.lab");

#[test]
fn example_spec_covers_all_backend_families() {
    let spec = parse_spec(EXAMPLE).expect("example.lab parses");
    let plan = expand(&spec);
    assert!(plan.len() >= 8, "example must expand to ≥ 8 trials");

    let backends: std::collections::BTreeSet<&str> = plan
        .iter()
        .map(|t| t.props.get("storage.backend").expect("backend bound"))
        .collect();
    assert!(backends.contains("single"), "{backends:?}");
    assert!(
        backends.iter().any(|b| b.starts_with("sharded")),
        "{backends:?}"
    );
    assert!(
        backends.iter().any(|b| b.starts_with("segmented")),
        "{backends:?}"
    );
    assert!(
        backends.iter().any(|b| b.starts_with("segmented-spill")),
        "{backends:?}"
    );
}

#[test]
fn example_spec_runs_and_reproduces() {
    let spec = parse_spec(EXAMPLE).expect("example.lab parses");
    let first = run_spec(&spec).expect("example.lab runs");
    assert_eq!(first.trials.len(), expand(&spec).len());

    // Every trial produced rows and its record round-trips through JSON
    // with a self-consistent shape per probe combination.
    for t in &first.trials {
        assert!(t.rows.total() > 0, "{} produced no rows", t.id);
        let parsed = Json::parse(&t.to_json(true)).expect("record is valid JSON");
        assert_eq!(parsed.get("id"), Some(&Json::Str(t.id.clone())));
        let _ = schema_signature(&parsed);
    }

    // Aggregates cover the spec's single axis with all four variants.
    let by_axis = first.by_axis();
    assert_eq!(by_axis.len(), 1);
    assert_eq!(by_axis[0].axis, "backend");
    assert_eq!(by_axis[0].variants.len(), 4);
    let md = first.analysis_markdown();
    assert!(md.contains("#### by backend"));
    assert_eq!(first.analysis_jsonl().lines().count(), 4);

    // Re-run: identical bindings, seeds, row counts, and ordering —
    // byte-identical in the deterministic JSONL form.
    let second = run_spec(&spec).expect("example.lab runs again");
    assert_eq!(first.trials_jsonl(false), second.trials_jsonl(false));
}

#[test]
fn smoke_spec_matches_its_shape_contract() {
    // CI's lab-smoke job runs this spec through the `lab` subcommand; the
    // shape the job validates must hold here too: 2 scenarios × 2 axes of
    // 2 variants × 2 repeats.
    let spec = parse_spec(SMOKE).expect("smoke.lab parses");
    assert_eq!(spec.scenarios.len(), 2);
    assert_eq!(spec.axes.len(), 2);
    assert!(spec.axes.iter().all(|a| a.variants.len() == 2));
    assert_eq!(spec.repeats, 2);
    assert_eq!(expand(&spec).len(), 16);
}
