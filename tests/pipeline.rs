//! Integration test F2: the full system architecture of paper Fig. 2,
//! exercised across crates — Interface (DBI Processor + Configuration
//! Loader) → Producer (three layers) → Storage.

use vita_core::prelude::*;
use vita_core::{load_method, load_mobility, load_rssi, Properties};

fn office_text(floors: usize) -> String {
    vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(floors)))
}

#[test]
fn all_controllers_cooperate_end_to_end() {
    // Interface: DBI Processor.
    let mut vita = Vita::from_dbi_text(&office_text(2), &BuildParams::default()).unwrap();
    let summary = vita.env().summary();
    assert_eq!(summary.floors, 2);
    assert!(summary.partitions > 20);
    assert_eq!(summary.stairs, 1);

    // Interface: Configuration Loader (properties text → typed configs).
    let props = Properties::parse(
        "\
objects.count = 15
objects.lifespan_min_s = 60
objects.lifespan_max_s = 60
trajectory.hz = 2
run.duration_s = 60
run.seed = 7
positioning.method = trilateration
positioning.hz = 1
",
    )
    .unwrap();
    let mobility = load_mobility(&props).unwrap();
    let rssi_cfg = load_rssi(&props).unwrap();
    let method = load_method(&props).unwrap();

    // Producer: Infrastructure Layer (devices).
    let placed = vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    assert_eq!(placed, 10);

    // Producer: Moving Object Layer.
    let stats = vita.generate_objects(&mobility).unwrap().stats;
    assert_eq!(stats.objects, 15);
    assert!(
        stats.samples >= 15 * 60 * 2,
        "2 Hz × 60 s × 15 objects lower bound"
    );

    // Producer: Positioning Layer.
    let rssi_len = vita.generate_rssi(&rssi_cfg).unwrap().len();
    assert!(rssi_len > 1000);
    let data = vita.run_positioning(&method).unwrap();
    assert!(!data.is_empty());

    // Storage: all four repositories consistent.
    let c = vita.repository().counts(RunScope::All);
    assert_eq!(c.trajectories, stats.samples);
    assert_eq!(c.rssi, rssi_len);
    assert_eq!(c.fixes, data.len());
    assert_eq!(c.proximity, 0);

    // Storage round-trip (export/import).
    let export = vita.repository().export();
    let restored = vita_storage::Repository::import(&export).unwrap();
    assert_eq!(
        restored.counts(RunScope::All),
        vita.repository().counts(RunScope::All)
    );
}

#[test]
fn pipeline_is_deterministic_across_runs() {
    let run = || {
        let mut vita = Vita::from_dbi_text(&office_text(1), &BuildParams::default()).unwrap();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let mobility = MobilityConfig {
            object_count: 10,
            duration: Timestamp(45_000),
            lifespan: LifespanConfig {
                min: Timestamp(45_000),
                max: Timestamp(45_000),
            },
            seed: 1234,
            ..Default::default()
        };
        vita.generate_objects(&mobility).unwrap();
        vita.generate_rssi(&RssiConfig {
            duration: Timestamp(45_000),
            ..Default::default()
        })
        .unwrap();
        let data = vita
            .run_positioning(&MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            })
            .unwrap();
        let fixes = match data {
            PositioningData::Deterministic(f) => f,
            _ => unreachable!(),
        };
        (vita.repository().counts(RunScope::All), fixes)
    };
    let (counts_a, fixes_a) = run();
    let (counts_b, fixes_b) = run();
    assert_eq!(counts_a, counts_b);
    assert_eq!(fixes_a.len(), fixes_b.len());
    for (a, b) in fixes_a.iter().zip(&fixes_b) {
        assert_eq!(a.object, b.object);
        assert_eq!(a.t, b.t);
        assert!(a
            .loc
            .as_point()
            .unwrap()
            .approx_eq(b.loc.as_point().unwrap()));
    }
}

#[test]
fn all_three_buildings_flow_through_the_pipeline() {
    let params = SynthParams::with_floors(2);
    for (name, model) in [
        ("office", vita_dbi::office(&params)),
        ("mall", vita_dbi::mall(&params)),
        ("clinic", vita_dbi::clinic(&params)),
    ] {
        let text = vita_dbi::write_step(&model);
        let mut vita = Vita::from_dbi_text(&text, &BuildParams::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            DeploymentModel::CheckPoint,
            8,
        );
        let mobility = MobilityConfig {
            object_count: 8,
            duration: Timestamp(30_000),
            lifespan: LifespanConfig {
                min: Timestamp(30_000),
                max: Timestamp(30_000),
            },
            seed: 5,
            ..Default::default()
        };
        vita.generate_objects(&mobility)
            .unwrap_or_else(|e| panic!("{name}: {e:?}"));
        vita.generate_rssi(&RssiConfig {
            duration: Timestamp(30_000),
            ..Default::default()
        })
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        let data = vita
            .run_positioning(&MethodConfig::Proximity(ProximityConfig::default()))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!data.is_empty(), "{name}: no proximity data");
    }
}

#[test]
fn renderers_cover_every_floor_of_every_building() {
    let params = SynthParams::with_floors(2);
    for model in [
        vita_dbi::office(&params),
        vita_dbi::mall(&params),
        vita_dbi::clinic(&params),
    ] {
        let text = vita_dbi::write_step(&model);
        let vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
        for fi in 0..vita.env().floors().len() {
            let floor = FloorId(fi as u32);
            let ascii = vita_core::ascii_floor(vita.env(), floor, 80, &Overlay::default());
            assert!(ascii.contains('#'));
            let svg = vita_core::svg_floor(vita.env(), floor, 8.0, &Overlay::default());
            assert!(svg.contains("<polygon"));
        }
    }
}

#[test]
fn environment_customization_affects_generation() {
    // Deploying a large obstacle across the corridor forces walls into the
    // RSSI path: measurements through it get weaker.
    let text = office_text(1);
    let build = BuildParams::default();

    let run_rssi = |with_obstacle: bool| -> f64 {
        let mut vita = Vita::from_dbi_text(&text, &build).unwrap();
        if with_obstacle {
            vita.env_mut().deploy_obstacle(
                FloorId(0),
                vita_geometry::Polygon::rect(18.0, 6.5, 22.0, 9.5),
                10.0,
            );
        }
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            8,
        );
        let mobility = MobilityConfig {
            object_count: 10,
            duration: Timestamp(30_000),
            lifespan: LifespanConfig {
                min: Timestamp(30_000),
                max: Timestamp(30_000),
            },
            seed: 9,
            ..Default::default()
        };
        vita.generate_objects(&mobility).unwrap();
        let rssi = vita
            .generate_rssi(&RssiConfig {
                duration: Timestamp(30_000),
                path_loss: PathLossModel {
                    fluctuation: NoiseModel::None,
                    ..Default::default()
                },
                ..Default::default()
            })
            .unwrap();
        rssi.all().iter().map(|m| m.rssi).sum::<f64>() / rssi.len() as f64
    };

    let clear = run_rssi(false);
    let blocked = run_rssi(true);
    assert!(
        blocked < clear,
        "obstacle should lower mean RSSI: clear {clear:.2}, blocked {blocked:.2}"
    );
}
