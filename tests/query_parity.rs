//! The serving contract: every [`QueryRequest`] answered by a
//! [`QueryService`] must be **bit-identical** to calling the underlying
//! [`AnyRepository`] query directly — on both backends, for any run scope
//! — and queries racing live ingestion must always see a prefix-consistent
//! snapshot (counts only ever grow, traces stay time-ordered, no torn
//! batches), never panic, and agree with the repository at quiescence.

use proptest::prelude::*;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vita_core::prelude::*;
use vita_geometry::{Aabb, Point};
use vita_mobility::TrajectorySample;
use vita_serve::{QueryRequest, QueryResponse, QueryService};
use vita_storage::{AnyRepository, ProductBatch, ProductSink};

const OBJECTS: u32 = 16;
const T_MAX: u64 = 20_000;

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (
        0u32..OBJECTS,
        0u32..2,
        -30.0f64..30.0,
        -30.0f64..30.0,
        0u64..T_MAX,
    )
        .prop_map(|(o, f, x, y, t)| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(f),
                Point::new(x, y),
                Timestamp(t),
            )
        })
}

/// 0 → `All`, n → `One(RunId(n - 1))` — covers present and absent runs.
fn scope_from(disc: u32) -> RunScope {
    if disc == 0 {
        RunScope::All
    } else {
        RunId(disc - 1).into()
    }
}

fn request_strategy() -> impl Strategy<Value = QueryRequest> {
    (
        0u32..6, // variant
        0u32..4, // scope discriminant
        (0u64..T_MAX, 0u64..T_MAX, 0u32..OBJECTS),
        (
            0u32..2,
            -30.0f64..30.0,
            -30.0f64..30.0,
            1.0f64..40.0,
            1usize..12,
        ),
    )
        .prop_map(|(variant, sd, (a, w, o), (f, x, y, width, k))| {
            let scope = scope_from(sd);
            match variant {
                0 => QueryRequest::Counts { scope },
                1 => QueryRequest::SnapshotAt {
                    scope,
                    at: Timestamp(a),
                },
                2 => QueryRequest::TimeWindow {
                    scope,
                    from: Timestamp(a),
                    to: Timestamp(a + w),
                },
                3 => QueryRequest::ObjectTrace {
                    scope,
                    object: ObjectId(o),
                },
                4 => QueryRequest::RangeQuery {
                    scope,
                    floor: FloorId(f),
                    bounds: Aabb::new(Point::new(x, y), Point::new(x + width, y + width)),
                },
                _ => QueryRequest::Knn {
                    scope,
                    floor: FloorId(f),
                    at: Point::new(x, y),
                    k,
                },
            }
        })
}

/// The ground truth for a request: the direct repository call.
fn direct(repo: &AnyRepository, req: &QueryRequest) -> QueryResponse {
    match *req {
        QueryRequest::Counts { scope } => QueryResponse::Counts(repo.counts(scope)),
        QueryRequest::SnapshotAt { scope, at } => {
            QueryResponse::Samples(repo.snapshot_at(scope, at))
        }
        QueryRequest::TimeWindow { scope, from, to } => {
            QueryResponse::Samples(repo.time_window(scope, from, to))
        }
        QueryRequest::ObjectTrace { scope, object } => {
            QueryResponse::Samples(repo.object_trace(scope, object))
        }
        QueryRequest::RangeQuery {
            scope,
            floor,
            ref bounds,
        } => QueryResponse::Samples(repo.range_query(scope, floor, bounds)),
        QueryRequest::Knn {
            scope,
            floor,
            at,
            k,
        } => QueryResponse::Neighbors(repo.knn(scope, floor, at, k)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Service answers == direct repository answers, on both backends,
    /// across all variants and scopes, over multi-run contents.
    #[test]
    fn service_matches_direct_repository_calls(
        rows in proptest::collection::vec((sample_strategy(), 0u32..3), 0..150),
        requests in proptest::collection::vec(request_strategy(), 1..24),
        shards in 1usize..5,
    ) {
        for backend in [
            StorageBackend::Single,
            StorageBackend::Sharded { shards },
            StorageBackend::segmented(),
        ] {
            let repo = Arc::new(AnyRepository::new(backend.clone()));
            for (s, run) in &rows {
                repo.accept_run(RunId(*run), ProductBatch::Trajectories(vec![*s]));
            }
            let service = QueryService::new(Arc::clone(&repo));
            for req in &requests {
                prop_assert_eq!(
                    service.execute(req),
                    direct(&repo, req),
                    "backend {:?}, request {:?}",
                    backend,
                    req
                );
            }
        }
    }
}

/// Build a toolkit ready for `run_many` against a serving workload.
fn toolkit(backend: StorageBackend) -> Vita {
    let dbi = vita_dbi::write_step(&vita_dbi::office(&vita_dbi::SynthParams::with_floors(1)));
    let mut vita = Vita::from_dbi_text(&dbi, &BuildParams::default())
        .unwrap()
        .with_backend(backend);
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        8,
    );
    vita
}

fn scenario(objects: usize, seed: u64, backend: StorageBackend) -> ScenarioConfig {
    ScenarioConfig {
        mobility: MobilityConfig {
            object_count: objects,
            duration: Timestamp(30_000),
            lifespan: LifespanConfig {
                min: Timestamp(30_000),
                max: Timestamp(30_000),
            },
            seed,
            ..Default::default()
        },
        rssi: RssiConfig {
            duration: Timestamp(30_000),
            ..Default::default()
        },
        method: MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        },
        // Same backend the toolkit was built with: `run_many` then keeps
        // the live repository, and `serve()` handles stay attached to it.
        options: StreamOptions::default().with_backend(backend),
    }
}

/// Queries racing `run_many` ingestion: never panic, counts per scope are
/// monotone non-decreasing (prefix consistency — a response reflects some
/// prefix of the accepted batches, never a torn one), object traces stay
/// time-ordered, and once ingestion finishes the service agrees with the
/// repository exactly.
fn queries_are_prefix_consistent_on(backend: StorageBackend) {
    let mut vita = toolkit(backend.clone());
    let service = vita.serve();
    let done = AtomicBool::new(false);
    let scopes = [
        RunScope::All,
        RunId(0).into(),
        RunId(1).into(),
        RunId(2).into(),
    ];

    std::thread::scope(|s| {
        for w in 0..3 {
            let service = service.clone();
            let done = &done;
            s.spawn(move || {
                let mut last = [TableCounts::default(); 4];
                while !done.load(Ordering::Relaxed) {
                    for (i, scope) in scopes.iter().enumerate() {
                        let QueryResponse::Counts(c) =
                            service.execute(&QueryRequest::Counts { scope: *scope })
                        else {
                            panic!("counts answers with counts");
                        };
                        // Ingestion only appends: any snapshot must cover
                        // at least everything the previous one covered.
                        assert!(
                            c.trajectories >= last[i].trajectories
                                && c.rssi >= last[i].rssi
                                && c.fixes >= last[i].fixes
                                && c.proximity >= last[i].proximity,
                            "worker {w}: counts went backwards under scope {scope:?}"
                        );
                        last[i] = c;

                        let QueryResponse::Samples(trace) =
                            service.execute(&QueryRequest::ObjectTrace {
                                scope: *scope,
                                object: ObjectId(w),
                            })
                        else {
                            panic!("trace answers with samples");
                        };
                        assert!(
                            trace.windows(2).all(|p| p[0].t <= p[1].t),
                            "worker {w}: trace out of order mid-ingest"
                        );

                        let _ = service.execute(&QueryRequest::SnapshotAt {
                            scope: *scope,
                            at: Timestamp(15_000),
                        });
                        let _ = service.execute(&QueryRequest::Knn {
                            scope: *scope,
                            floor: FloorId(0),
                            at: Point::new(10.0, 5.0),
                            k: 4,
                        });
                    }
                }
            });
        }

        let reports = vita
            .run_many(&[
                scenario(4, 11, backend.clone()),
                scenario(3, 22, backend.clone()),
                scenario(5, 33, backend),
            ])
            .unwrap();
        done.store(true, Ordering::Relaxed);
        assert_eq!(reports.len(), 3);
    });

    // Quiescent: the service and the repository agree exactly, run by run.
    let repo = vita.repository();
    for scope in scopes {
        let req = QueryRequest::Counts { scope };
        assert_eq!(
            service.execute(&req),
            QueryResponse::Counts(repo.counts(scope))
        );
    }
    let all = repo.counts(RunScope::All);
    let per_run: TableCounts = (0..3)
        .map(|r| repo.counts(RunId(r).into()))
        .fold(TableCounts::default(), |a, b| a + b);
    assert_eq!(all, per_run, "runs must partition the repository");
    assert!(all.trajectories > 0 && all.rssi > 0 && all.fixes > 0);
}

#[test]
fn queries_are_prefix_consistent_during_ingestion_single() {
    queries_are_prefix_consistent_on(StorageBackend::Single);
}

#[test]
fn queries_are_prefix_consistent_during_ingestion_sharded() {
    queries_are_prefix_consistent_on(StorageBackend::Sharded { shards: 4 });
}

#[test]
fn queries_are_prefix_consistent_during_ingestion_segmented() {
    queries_are_prefix_consistent_on(StorageBackend::segmented());
}
