//! Cross-crate parity: for a fixed seed, the streaming pipeline
//! ([`Vita::run_streaming`]) and the step-by-step path (steps 4–6) must
//! leave identical repository counts and identical fix sets behind.
//!
//! Workload per the PR-2 issue: synthetic office, 2 floors, Wi-Fi coverage
//! deployment.

use vita_core::prelude::*;

fn toolkit() -> Vita {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(2)));
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    let placed = vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    assert_eq!(placed, 10);
    vita
}

fn mobility() -> MobilityConfig {
    MobilityConfig {
        object_count: 14,
        duration: Timestamp(60_000),
        lifespan: LifespanConfig {
            min: Timestamp(40_000),
            max: Timestamp(60_000),
        },
        seed: 0x5EED2,
        ..Default::default()
    }
}

fn rssi() -> RssiConfig {
    RssiConfig {
        duration: Timestamp(60_000),
        ..Default::default()
    }
}

fn scenario(method: MethodConfig) -> ScenarioConfig {
    ScenarioConfig {
        mobility: mobility(),
        rssi: rssi(),
        method,
        options: StreamOptions::default(),
    }
}

/// Sorted copy of every fix in a repository (exact float comparison: both
/// paths must run bit-identical computations).
fn sorted_fixes(vita: &Vita) -> Vec<vita_positioning::Fix> {
    let mut fixes: Vec<vita_positioning::Fix> = vita.repository().fixes(RunScope::All);
    fixes.sort_by(|a, b| {
        (a.t, a.object).cmp(&(b.t, b.object)).then_with(|| {
            match (a.loc.as_point(), b.loc.as_point()) {
                (Some(p), Some(q)) => {
                    (p.x.to_bits(), p.y.to_bits()).cmp(&(q.x.to_bits(), q.y.to_bits()))
                }
                _ => std::cmp::Ordering::Equal,
            }
        })
    });
    fixes
}

#[test]
fn streaming_matches_step_path_counts_and_fixes() {
    let method = MethodConfig::Trilateration {
        config: TrilaterationConfig::default(),
        conversion_model: PathLossModel::default(),
    };

    // Step-by-step path.
    let mut step = toolkit();
    step.generate_objects(&mobility()).unwrap();
    step.generate_rssi(&rssi()).unwrap();
    let data = step.run_positioning(&method).unwrap();
    assert!(!data.is_empty());

    // Streaming path on an identically-built world.
    let mut streaming = toolkit();
    let report = streaming.run_streaming(&scenario(method)).unwrap();

    assert_eq!(
        streaming.repository().counts(RunScope::All),
        step.repository().counts(RunScope::All)
    );
    assert_eq!(
        report.stats.samples,
        step.generation().unwrap().stats.samples
    );
    assert_eq!(report.rssi_rows, step.rssi().unwrap().len());

    let step_fixes = sorted_fixes(&step);
    let stream_fixes = sorted_fixes(&streaming);
    assert!(!step_fixes.is_empty());
    assert_eq!(stream_fixes, step_fixes, "fix sets differ");
}

#[test]
fn streaming_matches_step_path_for_proximity() {
    let mut step = toolkit();
    step.generate_objects(&mobility()).unwrap();
    step.generate_rssi(&rssi()).unwrap();
    step.run_positioning(&MethodConfig::Proximity(ProximityConfig::default()))
        .unwrap();

    let mut streaming = toolkit();
    streaming
        .run_streaming(&scenario(MethodConfig::Proximity(
            ProximityConfig::default(),
        )))
        .unwrap();

    assert_eq!(
        streaming.repository().counts(RunScope::All),
        step.repository().counts(RunScope::All)
    );
    let collect = |v: &Vita| {
        let mut r: Vec<vita_positioning::ProximityRecord> = v.repository().proximity(RunScope::All);
        r.sort_by_key(|r| (r.ts, r.object, r.device, r.te));
        r
    };
    let a = collect(&step);
    assert!(!a.is_empty());
    assert_eq!(collect(&streaming), a, "proximity record sets differ");
}

#[test]
fn streaming_matches_step_path_for_probabilistic_fingerprinting() {
    let method = || MethodConfig::FingerprintingBayes {
        survey: SurveyConfig::default(),
        online: FingerprintConfig::default(),
        floor: FloorId(0),
    };
    let mut step = toolkit();
    step.generate_objects(&mobility()).unwrap();
    step.generate_rssi(&rssi()).unwrap();
    step.run_positioning(&method()).unwrap();

    let mut streaming = toolkit();
    streaming.run_streaming(&scenario(method())).unwrap();

    // MAP estimates land in the fix table on both paths.
    assert_eq!(
        streaming.repository().counts(RunScope::All),
        step.repository().counts(RunScope::All)
    );
    assert_eq!(sorted_fixes(&streaming), sorted_fixes(&step));
}
