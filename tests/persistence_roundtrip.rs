//! Run-aware persistence (the PR-5 acceptance test): a multi-run
//! repository — at least three runs, on both storage backends — must
//! survive `export` → `import` with bit-identical per-run row sets on
//! every run-scoped query path, including imports that land on the
//! *other* backend (the wire format is backend-agnostic). Same-shape
//! round trips are also canonical: re-exporting the import reproduces
//! the original buffers byte for byte.
//!
//! The pipeline-level half drives `Vita::run_many` → `save_to` →
//! `load_from` and checks the restored repository run by run.

use proptest::prelude::*;

use vita_core::prelude::*;
use vita_geometry::Point;
use vita_indoor::LocKind;
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{AnyRepository, ProductBatch, ProductSink};

const OBJECTS: u32 = 24;
const DEVICES: u32 = 5;
const T_MAX: u64 = 50_000;

fn loc_strategy() -> impl Strategy<Value = Loc> {
    (
        0u32..2,
        0u32..3,
        0u32..2,
        0u32..20,
        -50.0f64..50.0,
        -50.0f64..50.0,
    )
        .prop_map(|(b, f, kind, pid, x, y)| {
            if kind == 0 {
                Loc::point(BuildingId(b), FloorId(f), Point::new(x, y))
            } else {
                Loc::partition(BuildingId(b), FloorId(f), vita_indoor::PartitionId(pid))
            }
        })
}

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (0u32..OBJECTS, loc_strategy(), 0u64..T_MAX).prop_map(|(o, loc, t)| TrajectorySample {
        object: ObjectId(o),
        loc,
        t: Timestamp(t),
    })
}

fn rssi_strategy() -> impl Strategy<Value = RssiMeasurement> {
    (0u32..OBJECTS, 0u32..DEVICES, -110.0f64..-10.0, 0u64..T_MAX).prop_map(|(o, d, r, t)| {
        RssiMeasurement {
            object: ObjectId(o),
            device: DeviceId(d),
            rssi: r,
            t: Timestamp(t),
        }
    })
}

fn fix_strategy() -> impl Strategy<Value = Fix> {
    (0u32..OBJECTS, loc_strategy(), 0u64..T_MAX).prop_map(|(o, loc, t)| Fix {
        object: ObjectId(o),
        loc,
        t: Timestamp(t),
    })
}

fn prox_strategy() -> impl Strategy<Value = ProximityRecord> {
    (0u32..OBJECTS, 0u32..DEVICES, 0u64..T_MAX, 0u64..2_000).prop_map(|(o, d, ts, dur)| {
        ProximityRecord {
            object: ObjectId(o),
            device: DeviceId(d),
            ts: Timestamp(ts),
            te: Timestamp(ts + dur),
        }
    })
}

/// One run's worth of all four products.
#[derive(Debug, Clone)]
struct RunData {
    samples: Vec<TrajectorySample>,
    rssi: Vec<RssiMeasurement>,
    fixes: Vec<Fix>,
    prox: Vec<ProximityRecord>,
}

fn run_data_strategy() -> impl Strategy<Value = RunData> {
    (
        proptest::collection::vec(sample_strategy(), 1..60),
        proptest::collection::vec(rssi_strategy(), 0..60),
        proptest::collection::vec(fix_strategy(), 0..60),
        proptest::collection::vec(prox_strategy(), 0..60),
    )
        .prop_map(|(samples, rssi, fixes, prox)| RunData {
            samples,
            rssi,
            fixes,
            prox,
        })
}

fn ingest(repo: &dyn ProductSink, run: RunId, data: &RunData) {
    repo.accept_run(run, ProductBatch::Trajectories(data.samples.clone()));
    repo.accept_run(run, ProductBatch::Rssi(data.rssi.clone()));
    repo.accept_run(run, ProductBatch::Fixes(data.fixes.clone()));
    repo.accept_run(run, ProductBatch::Proximity(data.prox.clone()));
}

fn loc_key(loc: &Loc) -> (u32, u32, u8, u64, u64) {
    match loc.kind {
        LocKind::Point(p) => (loc.building.0, loc.floor.0, 0, p.x.to_bits(), p.y.to_bits()),
        LocKind::Partition(pid) => (loc.building.0, loc.floor.0, 1, u64::from(pid.0), 0),
    }
}

fn sample_key(s: &TrajectorySample) -> (u32, u64, (u32, u32, u8, u64, u64)) {
    (s.object.0, s.t.0, loc_key(&s.loc))
}

fn rssi_key(m: &RssiMeasurement) -> (u32, u32, u64, u64) {
    (m.object.0, m.device.0, m.t.0, m.rssi.to_bits())
}

fn fix_key(f: &Fix) -> (u32, u64, (u32, u32, u8, u64, u64)) {
    (f.object.0, f.t.0, loc_key(&f.loc))
}

fn prox_key(r: &ProximityRecord) -> (u32, u32, u64, u64) {
    (r.object.0, r.device.0, r.ts.0, r.te.0)
}

fn sorted_by<T, K: Ord>(mut rows: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
    rows.sort_by_key(key);
    rows
}

/// Every run-scoped row set of `got` equals `want`'s, for all four
/// tables (sorted on a full key — backends may order rows differently).
fn assert_runs_equal(got: &AnyRepository, want: &AnyRepository) {
    assert_eq!(got.run_ids(), want.run_ids());
    assert_eq!(got.counts(RunScope::All), want.counts(RunScope::All));
    for run in want.run_ids() {
        assert_eq!(got.counts(run.into()), want.counts(run.into()));
        assert_eq!(
            sorted_by(got.trajectories(run.into()), sample_key),
            sorted_by(want.trajectories(run.into()), sample_key)
        );
        assert_eq!(
            sorted_by(got.rssi(run.into()), rssi_key),
            sorted_by(want.rssi(run.into()), rssi_key)
        );
        assert_eq!(
            sorted_by(got.fixes(run.into()), fix_key),
            sorted_by(want.fixes(run.into()), fix_key)
        );
        assert_eq!(
            sorted_by(got.proximity(run.into()), prox_key),
            sorted_by(want.proximity(run.into()), prox_key)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ≥3-run repositories on both backends: export → import into *every*
    /// backend preserves per-run row sets on each run-scoped query path;
    /// same-shape round trips re-export to bit-identical buffers.
    #[test]
    fn multi_run_repository_round_trips(
        runs in proptest::collection::vec(run_data_strategy(), 3..5),
        gaps in proptest::collection::vec(0u32..4, 3..5),
        shards in 2usize..6,
    ) {
        let backends = [
            StorageBackend::Single,
            StorageBackend::Sharded { shards },
        ];
        // Non-contiguous, ascending run ids (run_many never guarantees
        // density once repositories merge over time).
        let mut next = 0u32;
        let run_ids: Vec<RunId> = runs
            .iter()
            .zip(gaps.iter().chain(std::iter::repeat(&0)))
            .map(|(_, &g)| {
                let id = next + g;
                next = id + 1;
                RunId(id)
            })
            .collect();

        for backend in &backends {
            let original = AnyRepository::new(backend.clone());
            for (id, data) in run_ids.iter().zip(&runs) {
                ingest(&original, *id, data);
            }
            prop_assert_eq!(original.run_ids().len(), runs.len());
            let export = original.export();

            // Import into every backend shape: run isolation must hold
            // regardless of where the rows land.
            for target in &backends {
                let imported = AnyRepository::import(&export, target.clone()).unwrap();
                assert_runs_equal(&imported, &original);

                // Same-shape round trips are canonical: the re-export is
                // bit-identical to the export it was built from.
                if target == backend {
                    let again = imported.export();
                    prop_assert_eq!(again.trajectories, export.trajectories.clone());
                    prop_assert_eq!(again.rssi, export.rssi.clone());
                    prop_assert_eq!(again.fixes, export.fixes.clone());
                    prop_assert_eq!(again.proximity, export.proximity.clone());
                }
            }
        }
    }

    /// Run-scoped *query paths* survive the round trip: a run-scoped time
    /// window and object trace on the imported repository answer exactly
    /// as on the original, on both backends.
    #[test]
    fn run_scoped_queries_survive_round_trip(
        runs in proptest::collection::vec(run_data_strategy(), 3..4),
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
        o in 0u32..OBJECTS,
        shards in 2usize..5,
    ) {
        let original = AnyRepository::new(StorageBackend::Single);
        for (i, data) in runs.iter().enumerate() {
            ingest(&original, RunId(i as u32), data);
        }
        let export = original.export();
        let single = AnyRepository::import(&export, StorageBackend::Single).unwrap();
        let sharded = AnyRepository::import(&export, StorageBackend::Sharded { shards }).unwrap();
        let (lo, hi) = (Timestamp(from), Timestamp(from.saturating_add(width)));

        for run in original.run_ids() {
            let orig = original.as_single().unwrap();
            let want: Vec<TrajectorySample> = orig
                .trajectories
                .read()
                .time_window(run.into(), lo, hi)
                .into_iter()
                .copied()
                .collect();
            let got_single: Vec<TrajectorySample> = single
                .as_single()
                .unwrap()
                .trajectories
                .read()
                .time_window(run.into(), lo, hi)
                .into_iter()
                .copied()
                .collect();
            prop_assert_eq!(&got_single, &want);
            prop_assert_eq!(
                sorted_by(
                    sharded.as_sharded().unwrap().trajectories_time_window(run.into(), lo, hi),
                    sample_key
                ),
                sorted_by(want, sample_key)
            );

            let want: Vec<TrajectorySample> = orig
                .trajectories
                .read()
                .object_trace(run.into(), ObjectId(o))
                .into_iter()
                .copied()
                .collect();
            let got_single: Vec<TrajectorySample> = single
                .as_single()
                .unwrap()
                .trajectories
                .read()
                .object_trace(run.into(), ObjectId(o))
                .into_iter()
                .copied()
                .collect();
            prop_assert_eq!(&got_single, &want);
            prop_assert_eq!(
                sharded.as_sharded().unwrap().object_trace(run.into(), ObjectId(o)),
                want
            );
        }
    }
}

/// Pipeline-level: three concurrent scenarios through `run_many`, saved
/// to disk and loaded back — per-run repository contents identical, on
/// the same backend and across a backend switch.
#[test]
fn run_many_save_load_round_trip() {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(2)));
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    let base = ScenarioConfig {
        mobility: MobilityConfig {
            object_count: 4,
            duration: Timestamp(30_000),
            lifespan: LifespanConfig {
                min: Timestamp(30_000),
                max: Timestamp(30_000),
            },
            seed: 9,
            ..Default::default()
        },
        rssi: RssiConfig {
            duration: Timestamp(30_000),
            ..Default::default()
        },
        method: MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        },
        options: StreamOptions::default(),
    };
    let mut second = base.clone();
    second.mobility.object_count = 3;
    let mut third = base.clone();
    third.mobility.seed = 1234;
    let reports = vita.run_many(&[base, second, third]).unwrap();
    assert_eq!(reports.len(), 3);
    assert!(vita.repository().run_ids().len() >= 3);

    let dir = std::env::temp_dir().join(format!("vita_persistence_rt_{}", std::process::id()));
    vita.save_to(&dir).unwrap();

    // Same backend.
    let mut same = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    same.load_from(&dir).unwrap();
    assert_runs_equal(same.repository(), vita.repository());

    // Across a backend switch: load lands on the sharded backend with
    // run tags intact.
    let mut switched = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    switched.migrate_backend(StorageBackend::Sharded { shards: 4 });
    switched.load_from(&dir).unwrap();
    assert!(matches!(
        switched.repository().backend(),
        StorageBackend::Sharded { shards: 4 }
    ));
    assert_runs_equal(switched.repository(), vita.repository());

    std::fs::remove_dir_all(&dir).unwrap();
}
