//! Multi-scenario concurrency parity (the PR-4 acceptance test): four
//! scenarios scheduled concurrently through one `Vita` by
//! [`Vita::run_many`] must leave, **per run**, fix / proximity / RSSI /
//! trajectory row sets bit-identical to running each scenario alone with
//! [`Vita::run_streaming_as`] at the same run id — on both the Single and
//! the Sharded storage backend.
//!
//! This holds because every run's RNG streams are derived from
//! `(base seed, run id)` (`derive_run_seed`) and every product is derived
//! per trajectory chunk, so nothing depends on how the shared stage-worker
//! pool interleaves the runs.

use vita_core::prelude::*;

fn toolkit() -> Vita {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(2)));
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    let placed = vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    assert_eq!(placed, 10);
    vita
}

fn mobility(objects: usize, seed: u64) -> MobilityConfig {
    MobilityConfig {
        object_count: objects,
        duration: Timestamp(40_000),
        lifespan: LifespanConfig {
            min: Timestamp(30_000),
            max: Timestamp(40_000),
        },
        seed,
        ..Default::default()
    }
}

/// Four scenarios: same environment and devices, different seeds, object
/// counts and positioning methods (all three method families are legal on
/// Wi-Fi, paper §5) — filling both the fix and the proximity table.
fn scenarios(backend: StorageBackend) -> Vec<ScenarioConfig> {
    let options = StreamOptions {
        workers: 4,
        backend,
        ..Default::default()
    };
    let rssi = RssiConfig {
        duration: Timestamp(40_000),
        ..Default::default()
    };
    vec![
        ScenarioConfig {
            mobility: mobility(10, 0xA11CE),
            rssi,
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: options.clone(),
        },
        ScenarioConfig {
            mobility: mobility(7, 0xB0B),
            rssi,
            method: MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            options: options.clone(),
        },
        ScenarioConfig {
            mobility: mobility(8, 0xCAFE),
            rssi,
            method: MethodConfig::Proximity(ProximityConfig::default()),
            options: options.clone(),
        },
        ScenarioConfig {
            mobility: mobility(6, 0xD00D),
            rssi,
            method: MethodConfig::FingerprintingBayes {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
            options,
        },
    ]
}

fn sorted_fixes(mut fixes: Vec<vita_positioning::Fix>) -> Vec<vita_positioning::Fix> {
    fixes.sort_by(|a, b| {
        (a.t, a.object).cmp(&(b.t, b.object)).then_with(|| {
            match (a.loc.as_point(), b.loc.as_point()) {
                (Some(p), Some(q)) => {
                    (p.x.to_bits(), p.y.to_bits()).cmp(&(q.x.to_bits(), q.y.to_bits()))
                }
                _ => std::cmp::Ordering::Equal,
            }
        })
    });
    fixes
}

fn sorted_prox(
    mut rows: Vec<vita_positioning::ProximityRecord>,
) -> Vec<vita_positioning::ProximityRecord> {
    rows.sort_by_key(|r| (r.ts, r.object, r.device, r.te));
    rows
}

fn sorted_rssi(mut rows: Vec<vita_rssi::RssiMeasurement>) -> Vec<vita_rssi::RssiMeasurement> {
    rows.sort_by_key(|m| (m.t, m.object, m.device, m.rssi.to_bits()));
    rows
}

fn sorted_samples(
    mut rows: Vec<vita_mobility::TrajectorySample>,
) -> Vec<vita_mobility::TrajectorySample> {
    rows.sort_by_key(|s| {
        let p = s.point();
        (s.t, s.object, p.x.to_bits(), p.y.to_bits())
    });
    rows
}

fn concurrent_matches_sequential_on(backend: StorageBackend) {
    let scenarios = scenarios(backend);

    // Concurrent: all four runs through one toolkit / one repository.
    let mut concurrent = toolkit();
    let reports = concurrent.run_many(&scenarios).unwrap();
    assert_eq!(reports.len(), 4);
    let repo = concurrent.repository();
    assert_eq!(
        repo.run_ids(),
        (0..4).map(|i| RunId(i as u32)).collect::<Vec<_>>()
    );

    let mut total = TableCounts::default();
    for (i, scenario) in scenarios.iter().enumerate() {
        let run = RunId(i as u32);
        assert_eq!(reports[i].run, run);

        // Solo: a fresh, identically-built toolkit running only this
        // scenario under the same run id.
        let mut alone = toolkit();
        let solo_report = alone.run_streaming_as(run, scenario).unwrap();
        assert_eq!(solo_report.stats.samples, reports[i].stats.samples);
        assert_eq!(solo_report.rssi_rows, reports[i].rssi_rows);
        assert_eq!(solo_report.positioning_rows, reports[i].positioning_rows);

        // Row sets, bit-identical per product.
        assert_eq!(
            sorted_samples(repo.trajectories(run.into())),
            sorted_samples(alone.repository().trajectories(RunScope::All)),
            "run {i}: trajectory rows differ"
        );
        assert_eq!(
            sorted_rssi(repo.rssi(run.into())),
            sorted_rssi(alone.repository().rssi(RunScope::All)),
            "run {i}: rssi rows differ"
        );
        assert_eq!(
            sorted_fixes(repo.fixes(run.into())),
            sorted_fixes(alone.repository().fixes(RunScope::All)),
            "run {i}: fix rows differ"
        );
        assert_eq!(
            sorted_prox(repo.proximity(run.into())),
            sorted_prox(alone.repository().proximity(RunScope::All)),
            "run {i}: proximity rows differ"
        );

        total = total + repo.counts(run.into());
    }
    // Per-run counts partition the shared repository exactly.
    assert_eq!(repo.counts(RunScope::All), total);
    // Something non-trivial actually landed in both positioning tables.
    assert!(total.fixes > 0, "no fixes stored");
    assert!(total.proximity > 0, "no proximity records stored");
}

#[test]
fn run_many_matches_sequential_on_single_backend() {
    concurrent_matches_sequential_on(StorageBackend::Single);
}

#[test]
fn run_many_matches_sequential_on_sharded_backend() {
    concurrent_matches_sequential_on(StorageBackend::Sharded { shards: 4 });
}

#[test]
fn run_streaming_is_run_zero_of_run_many() {
    // One-scenario run_many and plain run_streaming are the same run
    // (RunId::DEFAULT) with the same derived seeds: bit-identical outputs.
    let scenario = scenarios(StorageBackend::Single).remove(0);
    let mut many = toolkit();
    many.run_many(std::slice::from_ref(&scenario)).unwrap();
    let mut solo = toolkit();
    solo.run_streaming(&scenario).unwrap();
    assert_eq!(
        sorted_fixes(many.repository().fixes(RunScope::All)),
        sorted_fixes(solo.repository().fixes(RunScope::All))
    );
    assert_eq!(
        many.repository().counts(RunScope::All),
        solo.repository().counts(RunScope::All)
    );
    assert_eq!(many.repository().run_ids(), vec![RunId::DEFAULT]);
}
