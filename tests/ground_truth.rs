//! Integration tests for the toolkit's second purpose (paper §1): the
//! preserved raw trajectory is a usable "ground truth" — fine-grained,
//! independent of the positioning sampling frequency, and suitable for
//! effectiveness evaluation of positioning methods.

use vita_core::prelude::*;
use vita_positioning::{evaluate_fixes, evaluate_proximity};

fn setup(floors: usize, seed: u64) -> Vita {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(floors)));
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        12,
    );
    let mobility = MobilityConfig {
        object_count: 12,
        duration: Timestamp(90_000),
        lifespan: LifespanConfig {
            min: Timestamp(90_000),
            max: Timestamp(90_000),
        },
        trajectory_hz: Hz(4.0), // fine ground truth
        seed,
        ..Default::default()
    };
    vita.generate_objects(&mobility).unwrap();
    vita.generate_rssi(&RssiConfig {
        duration: Timestamp(90_000),
        ..Default::default()
    })
    .unwrap();
    vita
}

#[test]
fn trajectory_and_positioning_frequencies_are_independent() {
    // Paper §2: "another sampling frequency can be specified in PMC ...
    // different from the one for generating the trajectory data."
    let mut vita = setup(1, 42);
    let truth_samples = vita.generation().unwrap().stats.samples;

    // Positioning at 0.25 Hz — much sparser than the 4 Hz ground truth.
    let method = MethodConfig::Trilateration {
        config: TrilaterationConfig {
            sampling_hz: Hz(0.25),
            ..Default::default()
        },
        conversion_model: PathLossModel::default(),
    };
    let fixes = match vita.run_positioning(&method).unwrap() {
        PositioningData::Deterministic(f) => f,
        _ => unreachable!(),
    };
    // 12 objects × ~22 positioning instants ≈ a few hundred fixes, far
    // fewer than the ground truth's 12 × 90 × 4 ≈ 4300 samples.
    assert!(
        fixes.len() < truth_samples / 4,
        "{} vs {}",
        fixes.len(),
        truth_samples
    );
    assert!(!fixes.is_empty());
    // Every fix instant still has interpolable ground truth around it.
    let truth = &vita.generation().unwrap().trajectories;
    let resolvable = fixes
        .iter()
        .filter(|f| {
            truth
                .get(f.object)
                .and_then(|tr| tr.position_at(f.t))
                .is_some()
        })
        .count();
    assert!(resolvable as f64 >= fixes.len() as f64 * 0.95);
}

#[test]
fn finer_ground_truth_reduces_interpolation_gap() {
    // The same world sampled at 0.2 Hz vs 4 Hz: the fine trajectory must
    // capture more of the walked path (piecewise-linear length closer to
    // the truth, never more than the engine's actual movement).
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    let lengths: Vec<f64> = [0.2, 4.0]
        .into_iter()
        .map(|hz| {
            let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
            let mobility = MobilityConfig {
                object_count: 10,
                duration: Timestamp(120_000),
                lifespan: LifespanConfig {
                    min: Timestamp(120_000),
                    max: Timestamp(120_000),
                },
                trajectory_hz: Hz(hz),
                pattern: MovingPattern {
                    behavior: Behavior::ContinuousWalk,
                    ..Default::default()
                },
                seed: 31,
                ..Default::default()
            };
            let res = vita.generate_objects(&mobility).unwrap();
            res.stats.total_walked_m
        })
        .collect();
    assert!(
        lengths[1] > lengths[0] * 1.05,
        "4 Hz ({:.0} m) should capture more path than 0.2 Hz ({:.0} m)",
        lengths[1],
        lengths[0]
    );
}

#[test]
fn proximity_error_bounded_by_detection_range() {
    let mut vita = setup(1, 77);
    let data = vita
        .run_positioning(&MethodConfig::Proximity(ProximityConfig::default()))
        .unwrap();
    let records = match data {
        PositioningData::Proximity(r) => r,
        _ => unreachable!(),
    };
    let truth = &vita.generation().unwrap().trajectories;
    let stats = evaluate_proximity(&records, vita.devices(), truth);
    let range = DeviceSpec::default_for(DeviceType::WiFi).detection_range;
    assert!(stats.count > 0);
    // The object was in range at detection times; at the record midpoint it
    // may have walked on a little, so allow modest slack beyond the range.
    assert!(
        stats.max <= range * 1.5,
        "proximity max error {} vs detection range {}",
        stats.max,
        range
    );
}

#[test]
fn less_noise_gives_better_trilateration() {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    let mean_error = |sigma: f64| -> f64 {
        let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).unwrap();
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            12,
        );
        let mobility = MobilityConfig {
            object_count: 12,
            duration: Timestamp(90_000),
            lifespan: LifespanConfig {
                min: Timestamp(90_000),
                max: Timestamp(90_000),
            },
            seed: 11,
            ..Default::default()
        };
        vita.generate_objects(&mobility).unwrap();
        let noise = if sigma == 0.0 {
            NoiseModel::None
        } else {
            NoiseModel::Gaussian { sigma }
        };
        vita.generate_rssi(&RssiConfig {
            duration: Timestamp(90_000),
            path_loss: PathLossModel {
                fluctuation: noise,
                // LOS-only world: isolate the fluctuation axis.
                wall_attenuation_dbm: 0.0,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap();
        let data = vita
            .run_positioning(&MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            })
            .unwrap();
        let fixes = match data {
            PositioningData::Deterministic(f) => f,
            _ => unreachable!(),
        };
        evaluate_fixes(&fixes, &vita.generation().unwrap().trajectories).mean
    };
    let clean = mean_error(0.0);
    let noisy = mean_error(6.0);
    assert!(
        clean < noisy,
        "noiseless error {clean:.2} should beat σ=6 error {noisy:.2}"
    );
    assert!(
        clean < 3.0,
        "noiseless LOS trilateration should be accurate, got {clean:.2} m"
    );
}

#[test]
fn ground_truth_positions_always_resolvable_during_lifespan() {
    let vita = setup(2, 5);
    let truth = &vita.generation().unwrap().trajectories;
    for (o, tr) in truth.iter() {
        let (t0, t1) = (tr.start_time().unwrap(), tr.end_time().unwrap());
        // Probe 20 instants across the lifespan.
        for k in 0..=20u64 {
            let t = Timestamp(t0.0 + (t1.0 - t0.0) * k / 20);
            let got = tr.position_at(t);
            assert!(got.is_some(), "object {o} unresolvable at {t}");
        }
        // And unresolvable outside it.
        assert!(tr.position_at(Timestamp(t1.0 + 10_000)).is_none());
    }
}
