//! Serving out of the segmented backend, end to end: `run_many` ingests
//! live while `serve()` readers race it, and the final repository must
//! agree with a sequential single-backend reference bit-for-bit (counts
//! per scope, sorted fix / trajectory / proximity sets). Sealing is then
//! forced and must be invisible to every served answer. Also covers
//! `migrate_backend` hopping through `Segmented` losslessly.

use std::sync::atomic::{AtomicBool, Ordering};

use vita_core::prelude::*;
use vita_geometry::Point;
use vita_serve::{QueryRequest, QueryResponse};

fn toolkit(backend: StorageBackend) -> Vita {
    let dbi = vita_dbi::write_step(&vita_dbi::office(&vita_dbi::SynthParams::with_floors(1)));
    let mut vita = Vita::from_dbi_text(&dbi, &BuildParams::default())
        .unwrap()
        .with_backend(backend);
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        8,
    );
    vita
}

fn scenario(objects: usize, seed: u64, backend: StorageBackend) -> ScenarioConfig {
    ScenarioConfig {
        mobility: MobilityConfig {
            object_count: objects,
            duration: Timestamp(30_000),
            lifespan: LifespanConfig {
                min: Timestamp(30_000),
                max: Timestamp(30_000),
            },
            seed,
            ..Default::default()
        },
        rssi: RssiConfig {
            duration: Timestamp(30_000),
            ..Default::default()
        },
        method: MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        },
        options: StreamOptions::default().with_backend(backend),
    }
}

fn run_all(backend: StorageBackend, race_readers: bool) -> Vita {
    let mut vita = toolkit(backend.clone());
    let service = vita.serve();
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        if race_readers {
            for w in 0..2 {
                let service = service.clone();
                let done = &done;
                s.spawn(move || {
                    let mut last = 0usize;
                    while !done.load(Ordering::Relaxed) {
                        let QueryResponse::Counts(c) = service.execute(&QueryRequest::Counts {
                            scope: RunScope::All,
                        }) else {
                            panic!("counts answers with counts");
                        };
                        assert!(c.trajectories >= last, "worker {w}: counts regressed");
                        last = c.trajectories;
                        let QueryResponse::Samples(trace) =
                            service.execute(&QueryRequest::ObjectTrace {
                                scope: RunScope::All,
                                object: ObjectId(w),
                            })
                        else {
                            panic!("trace answers with samples");
                        };
                        assert!(trace.windows(2).all(|p| p[0].t <= p[1].t));
                        let _ = service.execute(&QueryRequest::Knn {
                            scope: RunScope::All,
                            floor: FloorId(0),
                            at: Point::new(10.0, 5.0),
                            k: 4,
                        });
                    }
                });
            }
        }
        let reports = vita
            .run_many(&[
                scenario(4, 11, backend.clone()),
                scenario(3, 22, backend.clone()),
                scenario(5, 33, backend),
            ])
            .unwrap();
        done.store(true, Ordering::Relaxed);
        assert_eq!(reports.len(), 3);
    });
    vita
}

fn sorted_fixes(vita: &Vita, scope: RunScope) -> Vec<vita_positioning::Fix> {
    let mut fixes = vita.repository().fixes(scope);
    fixes.sort_by_key(|f| {
        (
            f.t,
            f.object,
            f.loc.as_point().map(|p| (p.x.to_bits(), p.y.to_bits())),
        )
    });
    fixes
}

fn sorted_samples(vita: &Vita, scope: RunScope) -> Vec<vita_mobility::TrajectorySample> {
    let mut rows = vita.repository().trajectories(scope);
    rows.sort_by_key(|s| {
        (
            s.t,
            s.object,
            s.loc.as_point().map(|p| (p.x.to_bits(), p.y.to_bits())),
        )
    });
    rows
}

#[test]
fn run_many_into_segmented_matches_single_reference() {
    let reference = run_all(StorageBackend::Single, false);
    let segmented = run_all(StorageBackend::segmented(), true);

    let scopes = [
        RunScope::All,
        RunId(0).into(),
        RunId(1).into(),
        RunId(2).into(),
    ];
    for scope in scopes {
        assert_eq!(
            segmented.repository().counts(scope),
            reference.repository().counts(scope),
            "counts differ under scope {scope:?}"
        );
        assert_eq!(
            sorted_fixes(&segmented, scope),
            sorted_fixes(&reference, scope),
            "fix sets differ under scope {scope:?}"
        );
        assert_eq!(
            sorted_samples(&segmented, scope),
            sorted_samples(&reference, scope),
            "trajectory sets differ under scope {scope:?}"
        );
    }
    assert!(segmented.repository().counts(RunScope::All).trajectories > 0);

    // Forcing a full seal+compaction round must be invisible to every
    // served answer.
    let service = segmented.serve();
    let requests = [
        QueryRequest::Counts {
            scope: RunScope::All,
        },
        QueryRequest::TimeWindow {
            scope: RunId(1).into(),
            from: Timestamp(5_000),
            to: Timestamp(25_000),
        },
        QueryRequest::SnapshotAt {
            scope: RunScope::All,
            at: Timestamp(15_000),
        },
        QueryRequest::ObjectTrace {
            scope: RunId(2).into(),
            object: ObjectId(1),
        },
    ];
    let before: Vec<QueryResponse> = requests.iter().map(|r| service.execute(r)).collect();
    let repo = segmented
        .repository()
        .as_segmented()
        .expect("segmented backend");
    repo.seal_now();
    repo.seal_now();
    assert_eq!(repo.stats().unsealed_segments, 0);
    let after: Vec<QueryResponse> = requests.iter().map(|r| service.execute(r)).collect();
    assert_eq!(before, after, "sealing changed a served answer");
}

#[test]
fn migrating_through_segmented_is_lossless() {
    let mut vita = run_all(StorageBackend::Single, false);
    let counts = vita.repository().counts(RunScope::All);
    let fixes = sorted_fixes(&vita, RunScope::All);

    vita.migrate_backend(StorageBackend::segmented());
    assert_eq!(vita.repository().backend(), StorageBackend::segmented());
    assert_eq!(vita.repository().counts(RunScope::All), counts);
    assert_eq!(sorted_fixes(&vita, RunScope::All), fixes);
    for r in 0..3 {
        assert!(vita.repository().counts(RunId(r).into()).total() > 0);
    }

    vita.migrate_backend(StorageBackend::Sharded { shards: 4 });
    assert_eq!(vita.repository().counts(RunScope::All), counts);
    assert_eq!(sorted_fixes(&vita, RunScope::All), fixes);
}
