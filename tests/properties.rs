//! Property-based tests over the toolkit's core invariants, spanning
//! crates. Uses proptest with deliberately modest case counts — each case
//! builds real geometry.

use proptest::prelude::*;

use vita_core::prelude::*;
use vita_geometry::{Point, Polygon};
use vita_indoor::{decompose, DecomposeParams, RoutePlanner};

fn office_env(floors: usize) -> vita_indoor::IndoorEnvironment {
    let model = vita_dbi::office(&SynthParams::with_floors(floors));
    vita_indoor::build_environment(&model, &BuildParams::default())
        .unwrap()
        .env
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Decomposition preserves area for arbitrary rectangles.
    #[test]
    fn decomposition_preserves_area(
        w in 2.0f64..60.0,
        h in 2.0f64..60.0,
        max_area in 20.0f64..200.0,
    ) {
        let poly = Polygon::rect(0.0, 0.0, w, h);
        let params = DecomposeParams { max_area, ..Default::default() };
        let d = decompose(&poly, &params);
        let total = d.total_area();
        prop_assert!((total - poly.area()).abs() < 1e-6 * poly.area().max(1.0));
        for cell in &d.cells {
            prop_assert!(cell.polygon.area() > 0.0);
        }
    }

    /// Uniform polygon sampling stays inside the polygon.
    #[test]
    fn polygon_sampling_contained(
        w in 1.0f64..40.0,
        h in 1.0f64..40.0,
        seed in 0u64..1000,
    ) {
        use rand::SeedableRng;
        let poly = Polygon::rect(1.0, 1.0, 1.0 + w, 1.0 + h);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let p = poly.sample_uniform(&mut rng);
            prop_assert!(poly.contains(p));
        }
    }

    /// Path-loss inversion round-trips for any positive distance and any
    /// reasonable exponent.
    #[test]
    fn path_loss_inverts(
        d in 0.2f64..80.0,
        n in 1.5f64..5.0,
        a in -70.0f64..-30.0,
    ) {
        let model = PathLossModel {
            exponent: n,
            wall_attenuation_dbm: 0.0,
            fluctuation: NoiseModel::None,
        };
        let rssi = model.mean_rssi(d, a, 0, 0.0);
        let back = model.invert(rssi, a);
        prop_assert!((back - d).abs() < 1e-6 * d.max(1.0), "d={d} back={back}");
    }

    /// Codec round-trips arbitrary trajectory rows.
    #[test]
    fn codec_round_trips(rows in proptest::collection::vec(
        (0u32..500, 0u32..4, -500.0f64..500.0, -500.0f64..500.0, 0u64..10_000_000),
        0..50,
    )) {
        let samples: Vec<vita_mobility::TrajectorySample> = rows
            .iter()
            .map(|(o, f, x, y, t)| vita_mobility::TrajectorySample::new(
                ObjectId(*o),
                BuildingId(0),
                FloorId(*f),
                Point::new(*x, *y),
                Timestamp(*t),
            ))
            .collect();
        let decoded = vita_storage::decode_trajectories(
            vita_storage::encode_trajectories(&samples),
        ).unwrap();
        prop_assert_eq!(decoded, samples);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Indoor routing between random indoor points always succeeds on a
    /// single-floor office (no directional doors), is at least Euclidean,
    /// and is symmetric.
    #[test]
    fn routing_invariants(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        let env = office_env(1);
        let planner = RoutePlanner::new(&env);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pick = |rng: &mut rand::rngs::StdRng| -> Point {
            let parts = env.partitions();
            let p = &parts[rng.gen_range(0..parts.len())];
            vita_geometry::PolygonSampler::new(&p.polygon).sample(rng)
        };
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        let f = FloorId(0);
        let dab = planner.distance((f, a), (f, b)).unwrap();
        let dba = planner.distance((f, b), (f, a)).unwrap();
        prop_assert!(dab >= a.dist(b) - 1e-9);
        prop_assert!((dab - dba).abs() < 1e-6);
    }

    /// Every trajectory sample of a generation run lies indoors, for
    /// arbitrary seeds.
    #[test]
    fn generated_samples_always_indoors(seed in 0u64..200) {
        let env = office_env(2);
        let cfg = MobilityConfig {
            object_count: 4,
            duration: Timestamp(20_000),
            lifespan: LifespanConfig { min: Timestamp(20_000), max: Timestamp(20_000) },
            seed,
            ..Default::default()
        };
        let res = vita_mobility::generate(&env, &cfg).unwrap();
        for (_, tr) in res.trajectories.iter() {
            for s in tr.samples() {
                prop_assert!(env.locate(s.floor(), s.point()).is_some());
            }
        }
    }

    /// Least-squares trilateration recovers any target inside a well-spread
    /// anchor ring given perfect ranges.
    #[test]
    fn trilateration_exact_with_perfect_ranges(
        x in 2.0f64..18.0,
        y in 2.0f64..13.0,
    ) {
        let target = Point::new(x, y);
        let anchors: Vec<(Point, f64)> = [
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(0.0, 15.0),
            Point::new(20.0, 15.0),
            Point::new(10.0, 7.5),
        ]
        .iter()
        .map(|&p| (p, p.dist(target)))
        .collect();
        let est = vita_positioning::least_squares_position(&anchors).unwrap();
        prop_assert!(est.dist(target) < 1e-6);
    }
}
