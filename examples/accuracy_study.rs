// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]
//! Method accuracy study (a preview of experiment E3): generate one shared
//! workload, run all four positioning pipelines over the same raw RSSI
//! data, and print the error statistics side by side.
//!
//! The expected shape (DESIGN.md §4): fingerprinting (which learned the
//! wall-attenuated signal landscape during its site survey) beats naive
//! trilateration in the wall-heavy office; proximity error is bounded by
//! device spacing.
//!
//! Run with: `cargo run --release --example accuracy_study`

use vita_core::prelude::*;
use vita_positioning::{evaluate_fixes, evaluate_prob_fixes, evaluate_proximity};

fn main() {
    let text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(1)));
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).expect("DBI");
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        14,
    );

    let mobility = MobilityConfig {
        object_count: 20,
        duration: Timestamp(180_000),
        lifespan: LifespanConfig {
            min: Timestamp(180_000),
            max: Timestamp(180_000),
        },
        trajectory_hz: Hz(2.0),
        seed: 99,
        ..Default::default()
    };
    vita.generate_objects(&mobility).expect("objects");
    vita.generate_rssi(&RssiConfig {
        duration: Timestamp(180_000),
        ..Default::default()
    })
    .expect("rssi");
    println!(
        "workload: {} objects, {} trajectory samples, {} RSSI measurements, 14 Wi-Fi APs\n",
        20,
        vita.generation().unwrap().stats.samples,
        vita.rssi().unwrap().len()
    );

    let methods: Vec<(&str, MethodConfig)> = vec![
        (
            "trilateration",
            MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
        ),
        (
            "fingerprint-knn",
            MethodConfig::FingerprintingKnn {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
        ),
        (
            "fingerprint-bayes",
            MethodConfig::FingerprintingBayes {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
        ),
        (
            "proximity",
            MethodConfig::Proximity(ProximityConfig::default()),
        ),
    ];

    println!(
        "{:<18} error statistics (vs preserved ground truth)",
        "method"
    );
    println!("{:-<18} {:-<60}", "", "");
    for (name, method) in methods {
        let data = vita.run_positioning(&method).expect(name);
        let truth = &vita.generation().unwrap().trajectories;
        let stats = match &data {
            PositioningData::Deterministic(f) => evaluate_fixes(f, truth),
            PositioningData::Probabilistic(p) => evaluate_prob_fixes(p, truth),
            PositioningData::Proximity(r) => evaluate_proximity(r, vita.devices(), truth),
        };
        println!("{name:<18} {stats}");
    }
}
