// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]
//! The six-step demonstration script of paper §5 (experiment D5), run over
//! all three building archetypes with the paper's device/method combos:
//!
//! * clinic  + **RFID + proximity**
//! * mall    + **Bluetooth + trilateration**
//! * office  + **Wi-Fi + fingerprinting** (both kNN and Naive Bayes)
//!
//! Each run follows the paper's common path: 1. import DBI → 2. view/modify
//! environment → 3. configure/generate devices → 4. configure/generate
//! moving objects → 5. configure/generate raw RSSI → 6. choose a positioning
//! method and generate positioning data. Configuration happens through
//! properties text, exactly like the paper's "generated properties file".
//!
//! Run with: `cargo run --example demo_script`

use vita_core::prelude::*;
use vita_core::{load_method, load_mobility, load_rssi, Properties};
use vita_positioning::{evaluate_fixes, evaluate_prob_fixes, evaluate_proximity};

struct Combo {
    building: &'static str,
    device: DeviceType,
    deployment: DeploymentModel,
    method_props: &'static str,
}

fn main() {
    let combos = [
        Combo {
            building: "clinic",
            device: DeviceType::Rfid,
            deployment: DeploymentModel::CheckPoint,
            method_props: "positioning.method = proximity\n",
        },
        Combo {
            building: "mall",
            device: DeviceType::Bluetooth,
            deployment: DeploymentModel::Coverage,
            method_props: "positioning.method = trilateration\npositioning.hz = 1\n",
        },
        Combo {
            building: "office",
            device: DeviceType::WiFi,
            deployment: DeploymentModel::Coverage,
            method_props:
                "positioning.method = fingerprint-knn\nfingerprint.k = 3\npositioning.hz = 1\n",
        },
        Combo {
            building: "office",
            device: DeviceType::WiFi,
            deployment: DeploymentModel::Coverage,
            method_props: "positioning.method = fingerprint-bayes\npositioning.hz = 1\n",
        },
    ];

    // Shared generation configuration, through the Configuration Loader.
    let shared_props = Properties::parse(
        "\
objects.count = 25
objects.lifespan_min_s = 90
objects.lifespan_max_s = 90
trajectory.hz = 2
run.duration_s = 90
run.seed = 1453
rssi.noise = gaussian
rssi.noise_sigma = 2.0
",
    )
    .expect("shared properties");

    for combo in &combos {
        println!("══════════════════════════════════════════════════════════");
        println!(
            "step 1 ▸ import DBI: {} | combo: {} + {}",
            combo.building,
            combo.device.name(),
            Properties::parse(combo.method_props)
                .unwrap()
                .str_or("positioning.method", "?")
        );
        let model = match combo.building {
            "clinic" => vita_dbi::clinic(&SynthParams::with_floors(2)),
            "mall" => vita_dbi::mall(&SynthParams::with_floors(2)),
            _ => vita_dbi::office(&SynthParams::with_floors(2)),
        };
        let text = vita_dbi::write_step(&model);
        let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).expect("DBI");

        println!("step 2 ▸ environment: {}", vita.env().summary());
        // Customize: drop an obstacle into the largest ground-floor room.
        vita.env_mut().deploy_obstacle(
            FloorId(0),
            vita_geometry::Polygon::rect(1.0, 1.0, 2.0, 2.0),
            6.0,
        );

        let n = vita.deploy_devices(
            DeviceSpec::default_for(combo.device),
            FloorId(0),
            combo.deployment,
            12,
        );
        println!(
            "step 3 ▸ devices: {n} × {} ({:?})",
            combo.device.name(),
            combo.deployment
        );

        let mobility = load_mobility(&shared_props).expect("mobility config");
        let gen = vita.generate_objects(&mobility).expect("generation");
        println!(
            "step 4 ▸ objects: {} objects, {} trajectory samples",
            gen.stats.objects, gen.stats.samples
        );

        let rssi_cfg = load_rssi(&shared_props).expect("rssi config");
        let rssi = vita.generate_rssi(&rssi_cfg).expect("rssi");
        println!("step 5 ▸ raw RSSI: {} measurements", rssi.len());

        let method =
            load_method(&Properties::parse(combo.method_props).unwrap()).expect("method config");
        let data = vita.run_positioning(&method).expect("positioning");
        println!(
            "step 6 ▸ positioning data: {} records ({})",
            data.len(),
            data.kind()
        );

        let truth = &vita.generation().unwrap().trajectories;
        match &data {
            PositioningData::Deterministic(fixes) => {
                println!("         accuracy: {}", evaluate_fixes(fixes, truth));
            }
            PositioningData::Probabilistic(pfs) => {
                println!("         accuracy: {}", evaluate_prob_fixes(pfs, truth));
            }
            PositioningData::Proximity(recs) => {
                println!(
                    "         accuracy: {}",
                    evaluate_proximity(recs, vita.devices(), truth)
                );
            }
        }
    }
    println!("══════════════════════════════════════════════════════════");
    println!("demo script complete: 4 combos × 6 steps");
}
