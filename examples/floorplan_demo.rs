// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]
//! Floor-plan demo (experiments F3 + F4): regenerates the content of paper
//! Fig. 3 — a two-floor real-world-style building where
//!
//! * the **ground floor** carries devices deployed with the **coverage**
//!   model (wall-adjacent, maximally spread), and
//! * the **first floor** carries devices deployed with the **check-point**
//!   model (at room entrances / hotspots),
//!
//! with moving objects initialized by the **crowd-outliers** distribution
//! (crowds as circles, outliers as squares in the SVG — Fig. 3(b)).
//!
//! ASCII renderings go to stdout; SVG files are written next to the target
//! directory. Pass `--mall` or `--clinic` to switch buildings, `--svg-only`
//! to skip the ASCII art.
//!
//! Run with: `cargo run --example floorplan_demo`

use rand::rngs::StdRng;
use rand::SeedableRng;

use vita_core::prelude::*;
use vita_core::{ascii_floor, svg_floor, Overlay};
use vita_mobility::initial_positions;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (name, model) = if args.iter().any(|a| a == "--mall") {
        ("mall", vita_dbi::mall(&SynthParams::with_floors(2)))
    } else if args.iter().any(|a| a == "--clinic") {
        ("clinic", vita_dbi::clinic(&SynthParams::with_floors(2)))
    } else {
        ("office", vita_dbi::office(&SynthParams::with_floors(2)))
    };
    let svg_only = args.iter().any(|a| a == "--svg-only");

    let text = vita_dbi::write_step(&model);
    let mut vita = Vita::from_dbi_text(&text, &BuildParams::default()).expect("DBI");
    println!(
        "building: {} — {}",
        vita.env().building_name,
        vita.env().summary()
    );

    // Ground floor: coverage model (Fig. 3(a)).
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    // First floor: check-point model (Fig. 3(b)).
    vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::Bluetooth),
        FloorId(1),
        DeploymentModel::CheckPoint,
        10,
    );

    // Crowd-outliers objects, as in Fig. 3(b).
    let mut rng = StdRng::seed_from_u64(1453);
    let placement = initial_positions(
        vita.env(),
        InitialDistribution::CrowdOutliers {
            crowds: 3,
            crowd_fraction: 0.8,
            crowd_radius: 4.0,
        },
        120,
        &mut rng,
    );

    let out_dir = std::path::Path::new("target/floorplans");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    for floor_ix in 0..vita.env().floors().len() {
        let floor = FloorId(floor_ix as u32);
        let overlay = Overlay {
            devices: vita.devices().on_floor(floor).map(|d| d.position).collect(),
            objects: placement
                .placements
                .iter()
                .filter(|p| p.floor == floor)
                .map(|p| (p.point, p.crowd))
                .collect(),
            trajectories: vec![],
        };
        let model_name = if floor_ix == 0 {
            "coverage"
        } else {
            "check-point"
        };
        if !svg_only {
            println!(
                "\n── floor {floor_ix} ({model_name} deployment) ─ devices:@ crowds:0-9 outliers:x\n"
            );
            print!("{}", ascii_floor(vita.env(), floor, 110, &overlay));
        }
        let svg = svg_floor(vita.env(), floor, 12.0, &overlay);
        let path = out_dir.join(format!("{name}_floor{floor_ix}.svg"));
        std::fs::write(&path, svg).expect("write svg");
        println!("wrote {}", path.display());
    }

    println!(
        "\ncrowd centers: {}",
        placement
            .crowd_centers
            .iter()
            .map(|(f, p)| format!("F{}:{}", f.0, p))
            .collect::<Vec<_>>()
            .join("  ")
    );
}
