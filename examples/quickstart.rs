// Examples narrate to stdout by design.
#![allow(clippy::print_stdout, clippy::print_stderr)]
//! Quickstart (experiment F1): one full pass through the three-layer
//! pipeline of paper Fig. 1, printing the five data products' counts.
//!
//! ```text
//! DBI file ─▶ Infrastructure Layer ─▶ environment + device data
//!                    │
//!                    ▼
//!           Moving Object Layer  ─▶ raw trajectory data
//!                    │
//!                    ▼
//!           Positioning Layer    ─▶ raw RSSI data ─▶ positioning data
//! ```
//!
//! Run with: `cargo run --example quickstart`

use vita_core::prelude::*;

fn main() {
    // ── Interface: DBI Processor ────────────────────────────────────────
    // A synthetic office building, written to real STEP text and parsed
    // back through the full DBI pipeline (parser → decoder → repair).
    let dbi_text = vita_dbi::write_step(&vita_dbi::office(&SynthParams::with_floors(2)));
    let mut vita =
        Vita::from_dbi_text(&dbi_text, &BuildParams::default()).expect("DBI processing failed");
    println!("── Infrastructure Layer ──────────────────────────────");
    println!("host environment : {}", vita.env().summary());
    for w in &vita.warnings {
        println!("  warning: {w}");
    }

    // ── Infrastructure Layer: positioning devices ───────────────────────
    let placed = vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    ) + vita.deploy_devices(
        DeviceSpec::default_for(DeviceType::WiFi),
        FloorId(1),
        DeploymentModel::CheckPoint,
        10,
    );
    println!("device data      : {placed} Wi-Fi devices (coverage on F0, check-point on F1)");

    // ── Moving Object Layer ─────────────────────────────────────────────
    let mobility = MobilityConfig {
        object_count: 40,
        duration: Timestamp(120_000), // 2 minutes
        lifespan: LifespanConfig {
            min: Timestamp(60_000),
            max: Timestamp(120_000),
        },
        trajectory_hz: Hz(2.0), // fine-grained ground truth
        seed: 2016,
        ..Default::default()
    };
    let gen = vita.generate_objects(&mobility).expect("generation failed");
    println!("── Moving Object Layer ───────────────────────────────");
    println!(
        "raw trajectories : {} objects, {} samples, {:.0} m walked",
        gen.stats.objects, gen.stats.samples, gen.stats.total_walked_m
    );

    // ── Positioning Layer: raw RSSI ─────────────────────────────────────
    let rssi_cfg = RssiConfig {
        duration: Timestamp(120_000),
        ..Default::default()
    };
    let rssi = vita
        .generate_rssi(&rssi_cfg)
        .expect("RSSI generation failed");
    println!("── Positioning Layer ─────────────────────────────────");
    println!("raw RSSI data    : {} measurements", rssi.len());

    // ── Positioning Layer: positioning data (trilateration) ─────────────
    let method = MethodConfig::Trilateration {
        config: TrilaterationConfig::default(),
        conversion_model: PathLossModel::default(),
    };
    let data = vita.run_positioning(&method).expect("positioning failed");
    println!("positioning data : {} fixes ({})", data.len(), data.kind());

    // ── Ground-truth evaluation (the toolkit's second purpose, §1) ───────
    if let PositioningData::Deterministic(fixes) = &data {
        let truth = &vita.generation().unwrap().trajectories;
        let stats = vita_positioning::evaluate_fixes(fixes, truth);
        println!("accuracy vs truth: {stats}");
    }

    // ── Storage ──────────────────────────────────────────────────────────
    let c = vita.repository().counts(RunScope::All);
    println!("── Storage ───────────────────────────────────────────");
    println!(
        "repositories     : trajectories={} rssi={} fixes={} proximity={}",
        c.trajectories, c.rssi, c.fixes, c.proximity
    );
}
