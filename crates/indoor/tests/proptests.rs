//! Property-based tests for environment construction and routing across
//! parameterized synthetic buildings.

use proptest::prelude::*;

use vita_dbi::{clinic, mall, office, SynthParams};
use vita_geometry::PolygonSampler;
use vita_indoor::{
    build_environment, BuildParams, DecomposeParams, IndoorGraph, RoutePlanner, RoutingSchema,
};

fn params_strategy() -> impl Strategy<Value = SynthParams> {
    (1usize..4, 0.8f64..1.6).prop_map(|(floors, scale)| SynthParams {
        floors,
        scale,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every archetype at every size builds without unrepaired warnings and
    /// with consistent structure.
    #[test]
    fn archetypes_build_consistently(
        p in params_strategy(),
        which in 0usize..3,
    ) {
        let model = match which {
            0 => office(&p),
            1 => mall(&p),
            _ => clinic(&p),
        };
        let built = build_environment(&model, &BuildParams::default()).unwrap();
        let env = &built.env;
        let s = env.summary();
        prop_assert_eq!(s.floors, p.floors);
        prop_assert_eq!(s.stairs, p.floors - 1);
        // Every partition belongs to the floor that lists it.
        for f in env.floors() {
            for &pid in &f.partitions {
                prop_assert_eq!(env.partition(pid).floor, f.id);
            }
        }
        // Every door's partitions are on the door's floor.
        for d in env.doors() {
            prop_assert_eq!(env.partition(d.partitions.0).floor, d.floor);
            if let Some(b) = d.partitions.1 {
                prop_assert_eq!(env.partition(b).floor, d.floor);
            }
        }
        // Point location: the centroid of every partition resolves to a
        // partition with overlapping geometry.
        for part in env.partitions() {
            let c = part.centroid();
            if part.polygon.contains(c) {
                let found = env.locate(part.floor, c);
                prop_assert!(found.is_some());
            }
        }
    }

    /// The accessibility graph is strongly connected from the entrance on
    /// buildings without directional doors (office has none).
    #[test]
    fn office_fully_reachable(p in params_strategy()) {
        let model = office(&p);
        let env = build_environment(&model, &BuildParams::default()).unwrap().env;
        let g = IndoorGraph::new(&env);
        let sp = g.dijkstra(&[(0, 0.0)], |e| e.dist);
        for part in env.partitions() {
            let ok = g.nodes_in(part.id).iter().any(|&n| sp.dist[n as usize].is_finite());
            prop_assert!(ok, "partition {} unreachable", part.name);
        }
    }

    /// Route length lower-bounds: at least Euclidean within a floor, at
    /// least the stair flight length across floors.
    #[test]
    fn route_lower_bounds(p in params_strategy(), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let model = office(&p);
        let env = build_environment(&model, &BuildParams::default()).unwrap().env;
        let planner = RoutePlanner::new(&env);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let parts = env.partitions();
        let a = &parts[rng.gen_range(0..parts.len())];
        let b = &parts[rng.gen_range(0..parts.len())];
        let pa = PolygonSampler::new(&a.polygon).sample(&mut rng);
        let pb = PolygonSampler::new(&b.polygon).sample(&mut rng);
        let route = planner
            .route((a.floor, pa), (b.floor, pb), RoutingSchema::MinDistance)
            .unwrap();
        if a.floor == b.floor {
            prop_assert!(route.total_distance >= pa.dist(pb) - 1e-9);
        } else {
            let floors_apart =
                (a.floor.0 as i64 - b.floor.0 as i64).unsigned_abs() as usize;
            let min_flight: f64 = env
                .stairs()
                .iter()
                .map(|s| s.length)
                .fold(f64::INFINITY, f64::min);
            prop_assert!(route.total_distance >= min_flight * floors_apart as f64 - 1e-9);
        }
        // Waypoints are monotone in cumulative distance and time.
        for w in route.waypoints.windows(2) {
            prop_assert!(w[1].cum_dist >= w[0].cum_dist - 1e-9);
            prop_assert!(w[1].cum_time >= w[0].cum_time - 1e-9);
        }
    }

    /// Decomposition limits are honored for every archetype partition.
    #[test]
    fn decomposition_limits_respected(p in params_strategy()) {
        let dp = DecomposeParams::default();
        let model = mall(&p);
        let env = build_environment(
            &model,
            &BuildParams { decompose: Some(dp), ..Default::default() },
        )
        .unwrap()
        .env;
        for part in env.partitions() {
            // A cell may exceed limits only if splitting it further would
            // violate min_area or the depth cap; sanity-bound it anyway.
            prop_assert!(part.area() <= dp.max_area * 2.0 + 1e-6,
                "cell {} area {}", part.name, part.area());
        }
    }
}
