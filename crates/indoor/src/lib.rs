#![forbid(unsafe_code)]
//! # vita-indoor
//!
//! The host indoor environment for the Vita toolkit: the output of the
//! Infrastructure Layer's Indoor Environment Controller (paper §2) and the
//! geometric/topological substrate that the Moving Object and Positioning
//! layers consume.
//!
//! * [`types`] — identifier newtypes, the paper's `loc` format ([`Loc`]),
//!   time and sampling-frequency types shared across all layers.
//! * [`model`] — floors, partitions, doors (with directionality), staircases,
//!   user-deployed obstacles, and the spatially indexed
//!   [`IndoorEnvironment`].
//! * [`build`] — construct the environment from a decoded DBI model,
//!   including door-connectivity and staircase resolution (paper §4.1).
//! * [`mod@decompose`] — balanced decomposition of irregular partitions.
//! * [`semantics`] — empirical-rule semantic extraction.
//! * [`graph`] / [`route`] — the accessibility graph and the two routing
//!   schemas (minimum walking distance, minimum walking time; paper §3.1).

pub mod build;
pub mod decompose;
pub mod graph;
pub mod model;
pub mod route;
pub mod semantics;
pub mod types;

pub use build::{build_environment, BuildError, BuildParams, BuildWarning, Built};
pub use decompose::{decompose, DecomposeParams, Decomposition};
pub use graph::{Anchor, Edge, IndoorGraph, Medium, ShortestPaths};
pub use model::{
    Door, DoorDirection, DoorKind, EnvSummary, Floor, IndoorEnvironment, Obstacle, Partition,
    Staircase,
};
pub use route::{Route, RouteError, RoutePlanner, RoutingSchema, SpeedProfile, Waypoint};
pub use semantics::{classify, default_rules, Semantic, SemanticRule};
pub use types::{
    BuildingId, DeviceId, DoorId, FloorId, Hz, Loc, LocKind, ObjectId, ObstacleId, PartitionId,
    RunId, StairId, Timestamp,
};
