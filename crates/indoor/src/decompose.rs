//! Balanced decomposition of irregular partitions (paper §4.1).
//!
//! "Rooms or hallways with irregular shapes are decomposed into balanced,
//! smaller partitions according to their sizes and shapes, and the resultant
//! partitions are indexed by a spatial index in order to support the indoor
//! distance computations."
//!
//! Strategy: recursively split any cell that is too large or too elongated,
//! cutting across the longer bounding-box axis at the area median, until all
//! cells satisfy the limits. Convexity is a side benefit for rectilinear
//! inputs: each straight cut can only reduce reflexivity, and Euclidean
//! distances inside small balanced cells approximate indoor walking
//! distances well — which is exactly why Vita decomposes.

use vita_geometry::{Point, Polygon, Segment};

/// Limits controlling when a partition is split.
#[derive(Debug, Clone, Copy)]
pub struct DecomposeParams {
    /// Cells larger than this (m²) are split.
    pub max_area: f64,
    /// Cells with bounding-box aspect ratio above this are split.
    pub max_aspect: f64,
    /// Hard floor on cell area; cells are never split below this.
    pub min_area: f64,
    /// Recursion depth cap (safety bound).
    pub max_depth: u32,
}

impl Default for DecomposeParams {
    fn default() -> Self {
        DecomposeParams {
            max_area: 150.0,
            max_aspect: 3.0,
            min_area: 4.0,
            max_depth: 8,
        }
    }
}

/// One decomposition cell with the shared edges that connect it to its
/// siblings (turned into `DoorKind::Opening` connections by the builder).
#[derive(Debug, Clone)]
pub struct Cell {
    pub polygon: Polygon,
}

/// An open boundary between two sibling cells: midpoint and length of the
/// shared cut.
#[derive(Debug, Clone)]
pub struct OpenBoundary {
    pub left: usize,
    pub right: usize,
    pub midpoint: Point,
    pub length: f64,
}

/// Result of decomposing one partition.
#[derive(Debug, Clone)]
pub struct Decomposition {
    pub cells: Vec<Cell>,
    pub boundaries: Vec<OpenBoundary>,
}

impl Decomposition {
    /// A decomposition that leaves the polygon whole.
    pub fn trivial(polygon: Polygon) -> Self {
        Decomposition {
            cells: vec![Cell { polygon }],
            boundaries: Vec::new(),
        }
    }

    pub fn is_trivial(&self) -> bool {
        self.cells.len() == 1
    }

    pub fn total_area(&self) -> f64 {
        self.cells.iter().map(|c| c.polygon.area()).sum()
    }
}

/// Does this polygon need splitting under `params`?
pub fn needs_split(poly: &Polygon, params: &DecomposeParams) -> bool {
    let area = poly.area();
    if area <= params.min_area * 2.0 {
        return false;
    }
    area > params.max_area || poly.bbox_aspect() > params.max_aspect || !poly.is_convex()
}

/// Decompose `poly` into balanced cells.
pub fn decompose(poly: &Polygon, params: &DecomposeParams) -> Decomposition {
    let mut cells: Vec<Polygon> = Vec::new();
    split_recursive(poly.clone(), params, 0, &mut cells);
    if cells.len() <= 1 {
        return Decomposition::trivial(poly.clone());
    }
    let boundaries = find_boundaries(&cells);
    Decomposition {
        cells: cells.into_iter().map(|polygon| Cell { polygon }).collect(),
        boundaries,
    }
}

fn split_recursive(poly: Polygon, params: &DecomposeParams, depth: u32, out: &mut Vec<Polygon>) {
    if depth >= params.max_depth || !needs_split(&poly, params) {
        out.push(poly);
        return;
    }
    let bb = poly.bbox();
    // Cut across the longer axis at the bbox middle. For rectilinear rooms
    // this halves area and reduces aspect each step, guaranteeing progress.
    let (a, b) = if bb.width() >= bb.height() {
        poly.split_vertical(bb.min.x + bb.width() / 2.0)
    } else {
        poly.split_horizontal(bb.min.y + bb.height() / 2.0)
    };
    match (a, b) {
        (Some(l), Some(r)) if l.area() > params.min_area && r.area() > params.min_area => {
            split_recursive(l, params, depth + 1, out);
            split_recursive(r, params, depth + 1, out);
        }
        // The cut failed to produce two viable pieces (degenerate sliver or
        // the line missed): keep the cell whole.
        _ => out.push(poly),
    }
}

/// Find shared-edge adjacencies between cells: for each pair, collect the
/// overlap of their boundary edges and expose its midpoint as an opening.
fn find_boundaries(cells: &[Polygon]) -> Vec<OpenBoundary> {
    let mut out = Vec::new();
    for i in 0..cells.len() {
        for j in i + 1..cells.len() {
            if let Some((mid, len)) = shared_edge(&cells[i], &cells[j]) {
                out.push(OpenBoundary {
                    left: i,
                    right: j,
                    midpoint: mid,
                    length: len,
                });
            }
        }
    }
    out
}

/// If two polygons share a boundary stretch of non-trivial length, return
/// its midpoint and length.
fn shared_edge(a: &Polygon, b: &Polygon) -> Option<(Point, f64)> {
    const MIN_SHARED: f64 = 0.3; // metres of shared edge to count as passable
    let mut best: Option<(Point, f64)> = None;
    for ea in a.edges() {
        for eb in b.edges() {
            if let Some((mid, len)) = collinear_overlap(&ea, &eb) {
                if len >= MIN_SHARED && best.is_none_or(|(_, bl)| len > bl) {
                    best = Some((mid, len));
                }
            }
        }
    }
    best
}

/// Overlap of two collinear segments, as (midpoint, length).
fn collinear_overlap(a: &Segment, b: &Segment) -> Option<(Point, f64)> {
    let da = a.direction();
    let db = b.direction();
    // Parallel?
    if da.cross(db).abs() > 1e-6 * da.norm() * db.norm() {
        return None;
    }
    // Collinear? b.a must lie on a's supporting line.
    if da.cross(a.a.to(b.a)).abs() > 1e-6 * da.norm().max(1.0) {
        return None;
    }
    // Project b's endpoints on a's parameterization.
    let l2 = da.norm2();
    if l2 <= 1e-12 {
        return None;
    }
    let t0 = a.a.to(b.a).dot(da) / l2;
    let t1 = a.a.to(b.b).dot(da) / l2;
    let (lo, hi) = (t0.min(t1).max(0.0), t0.max(t1).min(1.0));
    if hi <= lo {
        return None;
    }
    let p0 = a.at(lo);
    let p1 = a.at(hi);
    Some((p0.midpoint(p1), p0.dist(p1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_square_is_not_split() {
        let p = Polygon::rect(0.0, 0.0, 5.0, 5.0);
        let d = decompose(&p, &DecomposeParams::default());
        assert!(d.is_trivial());
        assert!((d.total_area() - 25.0).abs() < 1e-6);
    }

    #[test]
    fn long_corridor_is_split_into_balanced_cells() {
        // 40 m x 3 m corridor, aspect 13.3 — must be split.
        let p = Polygon::rect(0.0, 0.0, 40.0, 3.0);
        let params = DecomposeParams::default();
        let d = decompose(&p, &params);
        assert!(d.cells.len() >= 4, "got {} cells", d.cells.len());
        assert!((d.total_area() - 120.0).abs() < 1e-6);
        for c in &d.cells {
            assert!(
                c.polygon.bbox_aspect() <= params.max_aspect + 1e-6,
                "cell aspect {}",
                c.polygon.bbox_aspect()
            );
        }
    }

    #[test]
    fn huge_hall_is_split_by_area() {
        let p = Polygon::rect(0.0, 0.0, 30.0, 20.0); // 600 m²
        let params = DecomposeParams::default();
        let d = decompose(&p, &params);
        assert!(!d.is_trivial());
        for c in &d.cells {
            assert!(c.polygon.area() <= params.max_area + 1e-6);
        }
        assert!((d.total_area() - 600.0).abs() < 1e-6);
    }

    #[test]
    fn cells_are_connected_via_boundaries() {
        let p = Polygon::rect(0.0, 0.0, 40.0, 3.0);
        let d = decompose(&p, &DecomposeParams::default());
        // Union-find over open boundaries: every cell must be reachable.
        let n = d.cells.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        for b in &d.boundaries {
            let (ri, rj) = (find(&mut parent, b.left), find(&mut parent, b.right));
            parent[ri] = rj;
        }
        let root = find(&mut parent, 0);
        for i in 1..n {
            assert_eq!(find(&mut parent, i), root, "cell {i} disconnected");
        }
    }

    #[test]
    fn boundary_midpoints_lie_on_both_cells() {
        let p = Polygon::rect(0.0, 0.0, 30.0, 20.0);
        let d = decompose(&p, &DecomposeParams::default());
        assert!(!d.boundaries.is_empty());
        for b in &d.boundaries {
            let l = &d.cells[b.left].polygon;
            let r = &d.cells[b.right].polygon;
            assert!(l.boundary_dist(b.midpoint) < 1e-6);
            assert!(r.boundary_dist(b.midpoint) < 1e-6);
            assert!(b.length > 0.3);
        }
    }

    #[test]
    fn lshape_is_decomposed_to_convex_cells() {
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(20.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 16.0),
            Point::new(0.0, 16.0),
        ])
        .unwrap();
        let d = decompose(&l, &DecomposeParams::default());
        assert!(!d.is_trivial());
        assert!((d.total_area() - l.area()).abs() < 1e-6);
        // Every resulting cell should be convex (rectilinear input + straight
        // cuts) or at least near-balanced.
        for c in &d.cells {
            assert!(c.polygon.area() >= DecomposeParams::default().min_area * 0.9);
        }
    }

    #[test]
    fn min_area_respected() {
        let p = Polygon::rect(0.0, 0.0, 4.0, 2.0); // 8 m², tiny but aspect 2
        let params = DecomposeParams {
            min_area: 4.0,
            ..Default::default()
        };
        let d = decompose(&p, &params);
        assert!(d.is_trivial(), "tiny cell should not be split");
    }

    #[test]
    fn collinear_overlap_cases() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let b = Segment::new(Point::new(4.0, 0.0), Point::new(14.0, 0.0));
        let (mid, len) = collinear_overlap(&a, &b).unwrap();
        assert!((len - 6.0).abs() < 1e-9);
        assert!(mid.approx_eq(Point::new(7.0, 0.0)));
        // Parallel but offset: no overlap.
        let c = Segment::new(Point::new(0.0, 1.0), Point::new(10.0, 1.0));
        assert!(collinear_overlap(&a, &c).is_none());
        // Collinear but disjoint.
        let d = Segment::new(Point::new(11.0, 0.0), Point::new(12.0, 0.0));
        assert!(collinear_overlap(&a, &d).is_none());
        // Perpendicular.
        let e = Segment::new(Point::new(5.0, -1.0), Point::new(5.0, 1.0));
        assert!(collinear_overlap(&a, &e).is_none());
    }
}
