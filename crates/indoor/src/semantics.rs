//! Semantic extraction via empirical rules (paper §4.1).
//!
//! "Vita also supports semantic extraction by defining empirical rules. For
//! example, a canteen will be identified if its entity name contains the word
//! 'canteen' or 'dining room', a public area will be recognized in the terms
//! of its door connectivity and floorage."

/// Semantic class of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Semantic {
    /// Default: an ordinary room.
    #[default]
    Room,
    /// Corridor / hallway.
    Corridor,
    /// Canteen or dining room.
    Canteen,
    /// Large well-connected public area (atrium, lobby).
    PublicArea,
    /// Shop.
    Shop,
    /// Staircase core / escalator hall.
    Staircase,
    /// Medical ward or consultation room.
    MedicalRoom,
    /// Waiting area / reception.
    Waiting,
    /// Meeting room.
    Meeting,
    /// Office.
    Office,
}

impl Semantic {
    /// Single-character tag used by the ASCII renderer.
    pub fn tag(&self) -> char {
        match self {
            Semantic::Room => 'r',
            Semantic::Corridor => 'c',
            Semantic::Canteen => 'K',
            Semantic::PublicArea => 'P',
            Semantic::Shop => 'S',
            Semantic::Staircase => '#',
            Semantic::MedicalRoom => 'M',
            Semantic::Waiting => 'W',
            Semantic::Meeting => 'm',
            Semantic::Office => 'o',
        }
    }
}

/// One rule: keyword list → class. Rules are checked in order; first match
/// wins. Users can extend the default set ("defining empirical rules").
#[derive(Debug, Clone)]
pub struct SemanticRule {
    /// Lower-case keywords matched against name and usage.
    pub keywords: Vec<&'static str>,
    pub class: Semantic,
}

/// The default rule table.
pub fn default_rules() -> Vec<SemanticRule> {
    vec![
        SemanticRule {
            keywords: vec!["canteen", "dining room", "dining"],
            class: Semantic::Canteen,
        },
        SemanticRule {
            keywords: vec!["stair", "escalator", "elevator", "lift"],
            class: Semantic::Staircase,
        },
        SemanticRule {
            keywords: vec!["corridor", "hallway", "hall "],
            class: Semantic::Corridor,
        },
        SemanticRule {
            keywords: vec!["shop", "store", "boutique"],
            class: Semantic::Shop,
        },
        SemanticRule {
            keywords: vec!["ward", "consult", "clinic room", "treatment"],
            class: Semantic::MedicalRoom,
        },
        SemanticRule {
            keywords: vec!["waiting", "reception", "lobby"],
            class: Semantic::Waiting,
        },
        SemanticRule {
            keywords: vec!["meeting", "conference"],
            class: Semantic::Meeting,
        },
        SemanticRule {
            keywords: vec!["office"],
            class: Semantic::Office,
        },
        SemanticRule {
            keywords: vec!["atrium", "public", "plaza"],
            class: Semantic::PublicArea,
        },
    ]
}

/// Classify one partition by name/usage keywords.
pub fn classify(name: &str, usage: &str, rules: &[SemanticRule]) -> Semantic {
    let hay = format!("{} {}", name.to_lowercase(), usage.to_lowercase());
    for rule in rules {
        if rule.keywords.iter().any(|k| hay.contains(k)) {
            return rule.class;
        }
    }
    Semantic::Room
}

/// Structural promotion to [`Semantic::PublicArea`]: a partition with high
/// door connectivity and large floorage is a public area even if its name
/// says nothing (paper: "recognized in the terms of its door connectivity
/// and floorage").
pub fn is_public_by_structure(door_count: usize, area: f64) -> bool {
    door_count >= 4 && area >= 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_rules_match() {
        let rules = default_rules();
        assert_eq!(classify("Canteen 0", "dining", &rules), Semantic::Canteen);
        assert_eq!(classify("Staff Dining Room", "", &rules), Semantic::Canteen);
        assert_eq!(classify("Corridor 1", "", &rules), Semantic::Corridor);
        assert_eq!(classify("Shop N1.2", "shop", &rules), Semantic::Shop);
        assert_eq!(classify("Ward A0", "ward", &rules), Semantic::MedicalRoom);
        assert_eq!(classify("Reception 0", "", &rules), Semantic::Waiting);
        assert_eq!(classify("Office 1.2", "office", &rules), Semantic::Office);
        assert_eq!(
            classify("Escalator hall 1", "stair", &rules),
            Semantic::Staircase
        );
        assert_eq!(classify("Mystery", "", &rules), Semantic::Room);
    }

    #[test]
    fn usage_tag_alone_matches() {
        let rules = default_rules();
        assert_eq!(classify("Room 7", "corridor", &rules), Semantic::Corridor);
    }

    #[test]
    fn first_rule_wins() {
        // "Canteen corridor" hits the canteen rule first by table order.
        let rules = default_rules();
        assert_eq!(classify("Canteen corridor", "", &rules), Semantic::Canteen);
    }

    #[test]
    fn structural_public_area() {
        assert!(is_public_by_structure(4, 150.0));
        assert!(!is_public_by_structure(3, 150.0));
        assert!(!is_public_by_structure(6, 50.0));
    }

    #[test]
    fn tags_are_distinct() {
        let all = [
            Semantic::Room,
            Semantic::Corridor,
            Semantic::Canteen,
            Semantic::PublicArea,
            Semantic::Shop,
            Semantic::Staircase,
            Semantic::MedicalRoom,
            Semantic::Waiting,
            Semantic::Meeting,
            Semantic::Office,
        ];
        let mut tags: Vec<char> = all.iter().map(|s| s.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), all.len());
    }
}
