//! The indoor accessibility graph.
//!
//! Nodes are *(connection, side)* states: "standing at door `d` inside
//! partition `p`". This state form makes door directionality (paper §2)
//! exact: passing through a door is an explicit edge that exists only when
//! [`crate::Door::traversable_from`] allows it, while walking between two
//! doors of one partition is a Euclidean-cost edge *within* that partition
//! (the decomposition stage keeps partitions small and convex-ish precisely
//! so this is a good approximation of true indoor walking distance
//! \[10\]).
//!
//! Staircases contribute a node on each connected floor joined by a
//! flight-length edge, giving multi-floor routing for free.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use vita_geometry::Point;

use crate::model::IndoorEnvironment;
use crate::types::{DoorId, FloorId, PartitionId, StairId};

/// What an edge physically is; routing schemas weigh media differently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Medium {
    /// Walking inside this partition.
    Walk(PartitionId),
    /// Passing through a door/opening (zero length).
    DoorCrossing(DoorId),
    /// Climbing or descending a staircase.
    Stair(StairId),
}

/// A directed edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    pub to: u32,
    /// Length in metres.
    pub dist: f64,
    pub medium: Medium,
}

/// What a node anchors to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anchor {
    /// At door `door`, on the `side` partition.
    Door { door: DoorId, side: PartitionId },
    /// At the lower/upper access point of a staircase.
    StairEnd { stair: StairId, upper: bool },
}

/// A graph node with its geometry.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    pub anchor: Anchor,
    pub floor: FloorId,
    pub partition: PartitionId,
    pub position: Point,
}

/// The static indoor accessibility graph for one environment.
#[derive(Debug, Clone)]
pub struct IndoorGraph {
    nodes: Vec<Node>,
    adj: Vec<Vec<Edge>>,
    /// Nodes grouped by partition, for fast source/target attachment.
    by_partition: HashMap<PartitionId, Vec<u32>>,
}

impl IndoorGraph {
    /// Build the graph from an environment.
    pub fn new(env: &IndoorEnvironment) -> Self {
        let mut nodes: Vec<Node> = Vec::new();
        let mut index: HashMap<Anchor, u32> = HashMap::new();

        let push = |nodes: &mut Vec<Node>,
                    index: &mut HashMap<Anchor, u32>,
                    anchor: Anchor,
                    floor: FloorId,
                    partition: PartitionId,
                    position: Point| {
            let id = nodes.len() as u32;
            nodes.push(Node {
                anchor,
                floor,
                partition,
                position,
            });
            index.insert(anchor, id);
            id
        };

        // Door-side nodes.
        for d in env.doors() {
            push(
                &mut nodes,
                &mut index,
                Anchor::Door {
                    door: d.id,
                    side: d.partitions.0,
                },
                d.floor,
                d.partitions.0,
                d.position,
            );
            if let Some(b) = d.partitions.1 {
                push(
                    &mut nodes,
                    &mut index,
                    Anchor::Door {
                        door: d.id,
                        side: b,
                    },
                    d.floor,
                    b,
                    d.position,
                );
            }
        }
        // Staircase end nodes.
        for s in env.stairs() {
            push(
                &mut nodes,
                &mut index,
                Anchor::StairEnd {
                    stair: s.id,
                    upper: false,
                },
                s.lower_floor,
                s.lower_partition,
                s.lower_point,
            );
            push(
                &mut nodes,
                &mut index,
                Anchor::StairEnd {
                    stair: s.id,
                    upper: true,
                },
                s.upper_floor,
                s.upper_partition,
                s.upper_point,
            );
        }

        let mut by_partition: HashMap<PartitionId, Vec<u32>> = HashMap::new();
        for (i, n) in nodes.iter().enumerate() {
            by_partition.entry(n.partition).or_default().push(i as u32);
        }

        let mut adj: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];

        // Walk edges within each partition (complete digraph on its nodes),
        // except that leaving through a door requires traversability — which
        // is modelled on the crossing edge, not the walk edge.
        for ids in by_partition.values() {
            for &a in ids {
                for &b in ids {
                    if a == b {
                        continue;
                    }
                    let dist = nodes[a as usize].position.dist(nodes[b as usize].position);
                    adj[a as usize].push(Edge {
                        to: b,
                        dist,
                        medium: Medium::Walk(nodes[a as usize].partition),
                    });
                }
            }
        }

        // Door-crossing edges between the two sides of each door.
        for d in env.doors() {
            let Some(b) = d.partitions.1 else { continue };
            let na = index[&Anchor::Door {
                door: d.id,
                side: d.partitions.0,
            }];
            let nb = index[&Anchor::Door {
                door: d.id,
                side: b,
            }];
            if d.traversable_from(d.partitions.0) {
                adj[na as usize].push(Edge {
                    to: nb,
                    dist: 0.0,
                    medium: Medium::DoorCrossing(d.id),
                });
            }
            if d.traversable_from(b) {
                adj[nb as usize].push(Edge {
                    to: na,
                    dist: 0.0,
                    medium: Medium::DoorCrossing(d.id),
                });
            }
        }

        // Staircase edges (both directions).
        for s in env.stairs() {
            let lo = index[&Anchor::StairEnd {
                stair: s.id,
                upper: false,
            }];
            let hi = index[&Anchor::StairEnd {
                stair: s.id,
                upper: true,
            }];
            adj[lo as usize].push(Edge {
                to: hi,
                dist: s.length,
                medium: Medium::Stair(s.id),
            });
            adj[hi as usize].push(Edge {
                to: lo,
                dist: s.length,
                medium: Medium::Stair(s.id),
            });
        }

        IndoorGraph {
            nodes,
            adj,
            by_partition,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    pub fn node(&self, id: u32) -> &Node {
        &self.nodes[id as usize]
    }

    pub fn edges_from(&self, id: u32) -> &[Edge] {
        &self.adj[id as usize]
    }

    /// Nodes anchored in `partition`.
    pub fn nodes_in(&self, partition: PartitionId) -> &[u32] {
        self.by_partition
            .get(&partition)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Generic Dijkstra from a set of seeded (node, cost) pairs.
    ///
    /// `weight` maps an edge to its cost contribution (e.g. distance, or
    /// distance ÷ speed for minimum-time routing). Returns per-node best
    /// costs and predecessor links.
    pub fn dijkstra<F>(&self, seeds: &[(u32, f64)], weight: F) -> ShortestPaths
    where
        F: Fn(&Edge) -> f64,
    {
        let n = self.nodes.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<u32>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        for &(node, cost) in seeds {
            if cost < dist[node as usize] {
                dist[node as usize] = cost;
                heap.push(QueueItem { cost, node });
            }
        }
        while let Some(QueueItem { cost, node }) = heap.pop() {
            if cost > dist[node as usize] {
                continue;
            }
            for e in &self.adj[node as usize] {
                let w = weight(e);
                debug_assert!(w >= 0.0, "negative edge weight");
                let nd = cost + w;
                if nd < dist[e.to as usize] {
                    dist[e.to as usize] = nd;
                    prev[e.to as usize] = Some(node);
                    heap.push(QueueItem {
                        cost: nd,
                        node: e.to,
                    });
                }
            }
        }
        ShortestPaths { dist, prev }
    }
}

/// Dijkstra output: cost and predecessor per node.
pub struct ShortestPaths {
    pub dist: Vec<f64>,
    pub prev: Vec<Option<u32>>,
}

impl ShortestPaths {
    /// Reconstruct the node path ending at `target` (source-first order).
    pub fn path_to(&self, target: u32) -> Vec<u32> {
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.prev[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }
}

struct QueueItem {
    cost: f64,
    node: u32,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_environment, BuildParams};
    use vita_dbi::{office, SynthParams};

    fn graph_for(floors: usize) -> (IndoorEnvironment, IndoorGraph) {
        let model = office(&SynthParams::with_floors(floors));
        let env = build_environment(&model, &BuildParams::default())
            .unwrap()
            .env;
        let g = IndoorGraph::new(&env);
        (env, g)
    }

    #[test]
    fn graph_has_two_sides_per_interior_door() {
        let (env, g) = graph_for(1);
        let interior = env
            .doors()
            .iter()
            .filter(|d| d.partitions.1.is_some())
            .count();
        let entrances = env
            .doors()
            .iter()
            .filter(|d| d.partitions.1.is_none())
            .count();
        let stair_nodes = env.stairs().len() * 2;
        assert_eq!(g.node_count(), interior * 2 + entrances + stair_nodes);
    }

    #[test]
    fn all_partitions_reachable_from_entrance_single_floor() {
        let (env, g) = graph_for(1);
        let entrance = env.entrances().next().unwrap();
        let seed_anchor = Anchor::Door {
            door: entrance.id,
            side: entrance.partitions.0,
        };
        let seed = (0..g.node_count() as u32)
            .find(|&i| g.node(i).anchor == seed_anchor)
            .unwrap();
        let sp = g.dijkstra(&[(seed, 0.0)], |e| e.dist);
        // Every partition must contain at least one reached node.
        for p in env.partitions() {
            let reached = g
                .nodes_in(p.id)
                .iter()
                .any(|&n| sp.dist[n as usize].is_finite());
            assert!(reached, "partition {} unreachable", p.name);
        }
    }

    #[test]
    fn multi_floor_reachability_via_stairs() {
        let (env, g) = graph_for(3);
        let entrance = env.entrances().next().unwrap();
        let seed = (0..g.node_count() as u32)
            .find(|&i| matches!(g.node(i).anchor, Anchor::Door { door, .. } if door == entrance.id))
            .unwrap();
        let sp = g.dijkstra(&[(seed, 0.0)], |e| e.dist);
        for p in env.partitions() {
            let reached = g
                .nodes_in(p.id)
                .iter()
                .any(|&n| sp.dist[n as usize].is_finite());
            assert!(reached, "partition {} on {:?} unreachable", p.name, p.floor);
        }
    }

    #[test]
    fn directional_door_blocks_reverse_crossing() {
        use crate::model::DoorDirection;
        let (mut env, _) = graph_for(1);
        // Make the meeting-room door enter-only (Forward: .0 → .1).
        let door_id = env
            .doors()
            .iter()
            .find(|d| d.name.contains("door-meet"))
            .unwrap()
            .id;
        env.set_door_direction(door_id, DoorDirection::Forward);
        let g = IndoorGraph::new(&env);
        let d = env.door(door_id);
        let (a, b) = (d.partitions.0, d.partitions.1.unwrap());
        // Node on side a must have a crossing edge; node on side b must not.
        let node_a = (0..g.node_count() as u32)
            .find(|&i| {
                g.node(i).anchor
                    == Anchor::Door {
                        door: door_id,
                        side: a,
                    }
            })
            .unwrap();
        let node_b = (0..g.node_count() as u32)
            .find(|&i| {
                g.node(i).anchor
                    == Anchor::Door {
                        door: door_id,
                        side: b,
                    }
            })
            .unwrap();
        let has_crossing = |n: u32| {
            g.edges_from(n)
                .iter()
                .any(|e| matches!(e.medium, Medium::DoorCrossing(id) if id == door_id))
        };
        assert!(has_crossing(node_a));
        assert!(!has_crossing(node_b));
    }

    #[test]
    fn dijkstra_distances_are_monotone_along_path() {
        let (_, g) = graph_for(2);
        let sp = g.dijkstra(&[(0, 0.0)], |e| e.dist);
        let target = (0..g.node_count() as u32)
            .filter(|&i| sp.dist[i as usize].is_finite())
            .max_by(|&a, &b| {
                sp.dist[a as usize]
                    .partial_cmp(&sp.dist[b as usize])
                    .unwrap()
            })
            .unwrap();
        let path = sp.path_to(target);
        assert_eq!(path[0], 0);
        let mut last = -1.0;
        for &n in &path {
            assert!(sp.dist[n as usize] >= last);
            last = sp.dist[n as usize];
        }
    }

    #[test]
    fn stair_edges_have_flight_length() {
        let (env, g) = graph_for(2);
        let s = &env.stairs()[0];
        let mut found = false;
        for i in 0..g.node_count() as u32 {
            for e in g.edges_from(i) {
                if matches!(e.medium, Medium::Stair(id) if id == s.id) {
                    assert!((e.dist - s.length).abs() < 1e-9);
                    found = true;
                }
            }
        }
        assert!(found);
    }
}
