//! Construct the host [`IndoorEnvironment`] from a decoded DBI model.
//!
//! This implements the DBI processing of paper §4.1 on top of the typed
//! model from `vita-dbi`:
//!
//! 1. storeys → floors (ordered by elevation);
//! 2. spaces → partitions, with irregular/oversized footprints decomposed
//!    into balanced cells joined by open boundaries;
//! 3. door → partition connectivity resolved geometrically (a door touching
//!    exactly one partition boundary is a building entrance);
//! 4. staircase connectivity resolved from the stair's disjoint 3-D
//!    vertices, in the paper's two steps: first pick the lower/upper floor
//!    by maximum vertex–elevation agreement, then pick the partition on that
//!    floor containing the vertices;
//! 5. semantic classes assigned by keyword rules plus the structural
//!    public-area promotion (door connectivity × floorage).

use vita_dbi::{DbiModel, DoorDirectionality};
use vita_geometry::{Point, Segment};

use crate::decompose::{decompose, DecomposeParams};
use crate::model::{Door, DoorDirection, DoorKind, Floor, IndoorEnvironment, Partition, Staircase};
use crate::semantics::{classify, default_rules, is_public_by_structure, Semantic, SemanticRule};
use crate::types::{DoorId, FloorId, PartitionId, StairId};

/// Knobs for environment construction.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Decomposition limits; `None` disables decomposition entirely.
    pub decompose: Option<DecomposeParams>,
    /// Semantic keyword rules (default table when empty).
    pub rules: Vec<SemanticRule>,
    /// Max distance from a door position to a partition boundary for the
    /// door to be considered incident to that partition (metres).
    pub door_tolerance: f64,
}

impl Default for BuildParams {
    fn default() -> Self {
        BuildParams {
            decompose: Some(DecomposeParams::default()),
            rules: default_rules(),
            door_tolerance: 0.3,
        }
    }
}

/// Non-fatal problems discovered while building.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildWarning {
    /// A door position touched no partition boundary; the door was dropped.
    DoorUnresolved { name: String },
    /// A staircase's floors/partitions could not be resolved; dropped.
    StairUnresolved { name: String, reason: String },
    /// A space footprint failed polygon construction; skipped.
    BadFootprint { name: String },
}

impl std::fmt::Display for BuildWarning {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildWarning::DoorUnresolved { name } => write!(f, "door '{name}' unresolved"),
            BuildWarning::StairUnresolved { name, reason } => {
                write!(f, "stair '{name}' unresolved: {reason}")
            }
            BuildWarning::BadFootprint { name } => write!(f, "space '{name}' bad footprint"),
        }
    }
}

/// Fatal build error.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The model has no storeys (should have been caught at decode).
    NoFloors,
    /// No usable partitions anywhere.
    NoPartitions,
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::NoFloors => write!(f, "model has no storeys"),
            BuildError::NoPartitions => write!(f, "model has no usable spaces"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Result of building: environment plus warnings.
#[derive(Debug)]
pub struct Built {
    pub env: IndoorEnvironment,
    pub warnings: Vec<BuildWarning>,
}

/// Build the host indoor environment from a (repaired) DBI model.
pub fn build_environment(model: &DbiModel, params: &BuildParams) -> Result<Built, BuildError> {
    if model.storeys.is_empty() {
        return Err(BuildError::NoFloors);
    }
    let mut warnings = Vec::new();
    let rules = if params.rules.is_empty() {
        default_rules()
    } else {
        params.rules.clone()
    };

    // --- Floors (storeys arrive sorted by elevation from the decoder). ---
    let mut floors: Vec<Floor> = model
        .storeys
        .iter()
        .enumerate()
        .map(|(i, s)| Floor {
            id: FloorId(i as u32),
            name: s.name.clone(),
            elevation: s.elevation,
            partitions: Vec::new(),
            walls: Vec::new(),
        })
        .collect();
    let storey_to_floor = |storey: u64| -> Option<FloorId> {
        model
            .storeys
            .iter()
            .position(|s| s.id == storey)
            .map(|i| FloorId(i as u32))
    };

    // --- Partitions, with decomposition. ---
    let mut partitions: Vec<Partition> = Vec::new();
    let mut doors: Vec<Door> = Vec::new();
    for sp in &model.spaces {
        let Some(floor) = storey_to_floor(sp.storey) else {
            warnings.push(BuildWarning::BadFootprint {
                name: sp.name.clone(),
            });
            continue;
        };
        let Ok(poly) = vita_geometry::Polygon::new(sp.footprint.clone()) else {
            warnings.push(BuildWarning::BadFootprint {
                name: sp.name.clone(),
            });
            continue;
        };
        let semantic = classify(&sp.name, &sp.usage, &rules);

        let decomposition = match &params.decompose {
            Some(dp) => decompose(&poly, dp),
            None => crate::decompose::Decomposition::trivial(poly.clone()),
        };

        if decomposition.is_trivial() {
            let id = PartitionId(partitions.len() as u32);
            partitions.push(Partition {
                id,
                floor,
                name: sp.name.clone(),
                usage: sp.usage.clone(),
                polygon: poly,
                semantic,
                parent: None,
            });
            floors[floor.index()].partitions.push(id);
        } else {
            // The first cell id acts as the "parent" handle for siblings.
            let base = partitions.len() as u32;
            let parent_id = PartitionId(base);
            for (k, cell) in decomposition.cells.iter().enumerate() {
                let id = PartitionId(partitions.len() as u32);
                partitions.push(Partition {
                    id,
                    floor,
                    name: format!("{}/{}", sp.name, k),
                    usage: sp.usage.clone(),
                    polygon: cell.polygon.clone(),
                    semantic,
                    parent: if k == 0 { None } else { Some(parent_id) },
                });
                floors[floor.index()].partitions.push(id);
            }
            // Open boundaries between sibling cells.
            for ob in &decomposition.boundaries {
                let id = DoorId(doors.len() as u32);
                doors.push(Door {
                    id,
                    floor,
                    name: format!("{}~open", sp.name),
                    position: ob.midpoint,
                    width: ob.length,
                    kind: DoorKind::Opening,
                    direction: DoorDirection::Both,
                    partitions: (
                        PartitionId(base + ob.left as u32),
                        Some(PartitionId(base + ob.right as u32)),
                    ),
                });
            }
        }
    }
    if partitions.is_empty() {
        return Err(BuildError::NoPartitions);
    }

    // --- Walls. ---
    for w in &model.walls {
        if let Some(floor) = storey_to_floor(w.storey) {
            for pair in w.path.windows(2) {
                floors[floor.index()]
                    .walls
                    .push(Segment::new(pair[0], pair[1]));
            }
        }
    }

    // --- Door connectivity. ---
    for d in &model.doors {
        let Some(floor) = storey_to_floor(d.storey) else {
            warnings.push(BuildWarning::DoorUnresolved {
                name: d.name.clone(),
            });
            continue;
        };
        // Candidate partitions on this floor whose boundary is within
        // tolerance of the door position, ordered by id for determinism.
        let mut candidates: Vec<PartitionId> = floors[floor.index()]
            .partitions
            .iter()
            .copied()
            .filter(|pid| {
                partitions[pid.index()].polygon.boundary_dist(d.position) <= params.door_tolerance
            })
            .collect();
        candidates.sort_unstable();
        candidates.truncate(2);

        let resolved = match candidates.as_slice() {
            [] => {
                warnings.push(BuildWarning::DoorUnresolved {
                    name: d.name.clone(),
                });
                continue;
            }
            [a] => (*a, None),
            [a, b] => (*a, Some(*b)),
            _ => unreachable!(),
        };
        // Directionality orientation: Forward = partitions.0 → partitions.1
        // (for entrances, Forward = into the building).
        let direction = match d.directionality {
            DoorDirectionality::Both => DoorDirection::Both,
            DoorDirectionality::EnterOnly => DoorDirection::Forward,
            DoorDirectionality::ExitOnly => DoorDirection::Backward,
        };
        let id = DoorId(doors.len() as u32);
        doors.push(Door {
            id,
            floor,
            name: d.name.clone(),
            position: d.position,
            width: d.width,
            kind: DoorKind::Door,
            direction,
            partitions: resolved,
        });
    }

    // --- Structural public-area promotion. ---
    let mut door_counts = vec![0usize; partitions.len()];
    for d in &doors {
        door_counts[d.partitions.0.index()] += 1;
        if let Some(b) = d.partitions.1 {
            door_counts[b.index()] += 1;
        }
    }
    for p in &mut partitions {
        if p.semantic == Semantic::Room
            && is_public_by_structure(door_counts[p.id.index()], p.area())
        {
            p.semantic = Semantic::PublicArea;
        }
    }

    // --- Staircase resolution (paper §4.1, two steps). ---
    let mut stairs = Vec::new();
    for st in &model.stairs {
        match resolve_stair(st, &floors, &partitions) {
            Ok(mut s) => {
                s.id = StairId(stairs.len() as u32);
                stairs.push(s);
            }
            Err(reason) => {
                warnings.push(BuildWarning::StairUnresolved {
                    name: st.name.clone(),
                    reason,
                });
            }
        }
    }

    let env = IndoorEnvironment::assemble(
        model.building_name.clone(),
        floors,
        partitions,
        doors,
        stairs,
    );
    Ok(Built { env, warnings })
}

/// Resolve one staircase from its disjoint 3-D vertices.
fn resolve_stair(
    st: &vita_dbi::StairRec,
    floors: &[Floor],
    partitions: &[Partition],
) -> Result<Staircase, String> {
    if st.vertices.len() < 2 {
        return Err("fewer than 2 vertices".into());
    }
    let zs: Vec<f64> = st.vertices.iter().map(|v| v.z).collect();
    let z_lo = zs.iter().cloned().fold(f64::INFINITY, f64::min);
    let z_hi = zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if z_hi - z_lo < 0.5 {
        return Err(format!("vertical span {:.2} m too small", z_hi - z_lo));
    }
    // Split vertices into the lower and upper groups by proximity to the
    // extreme elevations.
    let mid = (z_lo + z_hi) / 2.0;
    let lower: Vec<Point> = st
        .vertices
        .iter()
        .filter(|v| v.z < mid)
        .map(|v| v.xy())
        .collect();
    let upper: Vec<Point> = st
        .vertices
        .iter()
        .filter(|v| v.z >= mid)
        .map(|v| v.xy())
        .collect();
    if lower.is_empty() || upper.is_empty() {
        return Err("vertices do not form two elevation groups".into());
    }

    // Step 1: the floor with maximum agreement between its elevation and the
    // group's z values ("the floor having the maximum intersection with the
    // upper (lower) vertices").
    let pick_floor = |target_z: f64| -> Result<FloorId, String> {
        floors
            .iter()
            .min_by(|a, b| {
                let da = (a.elevation - target_z).abs();
                let db = (b.elevation - target_z).abs();
                da.partial_cmp(&db).unwrap()
            })
            .map(|f| f.id)
            .ok_or_else(|| "no floors".to_string())
    };
    let lower_floor = pick_floor(z_lo)?;
    let upper_floor = pick_floor(z_hi)?;
    if lower_floor == upper_floor {
        return Err("both vertex groups resolve to one floor".into());
    }

    // Step 2: within the connected floor, the partition containing the
    // group's vertices.
    let pick_partition = |floor: FloorId, pts: &[Point]| -> Result<(PartitionId, Point), String> {
        let centroid = Point::new(
            pts.iter().map(|p| p.x).sum::<f64>() / pts.len() as f64,
            pts.iter().map(|p| p.y).sum::<f64>() / pts.len() as f64,
        );
        // Majority vote across vertices, then fall back to the centroid.
        let mut counts: Vec<(PartitionId, usize)> = Vec::new();
        for pt in pts {
            for p in partitions.iter().filter(|p| p.floor == floor) {
                if p.polygon.contains(*pt) {
                    match counts.iter_mut().find(|(id, _)| *id == p.id) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((p.id, 1)),
                    }
                }
            }
        }
        counts
            .into_iter()
            .max_by_key(|(_, c)| *c)
            .map(|(id, _)| (id, centroid))
            .ok_or_else(|| format!("no partition on {floor:?} contains the stair vertices"))
    };
    let (lower_partition, lower_point) = pick_partition(lower_floor, &lower)?;
    let (upper_partition, upper_point) = pick_partition(upper_floor, &upper)?;

    // Walking length of the flight: 3-D distance between group centroids.
    let dz = z_hi - z_lo;
    let dxy = lower_point.dist(upper_point);
    let length = (dz * dz + dxy * dxy).sqrt();

    Ok(Staircase {
        id: StairId(0), // assigned by caller
        name: st.name.clone(),
        lower_floor,
        lower_partition,
        lower_point,
        upper_floor,
        upper_partition,
        upper_point,
        length,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, SynthParams};

    fn office_env(floors: usize) -> Built {
        let model = office(&SynthParams::with_floors(floors));
        build_environment(&model, &BuildParams::default()).expect("build")
    }

    #[test]
    fn builds_office_without_warnings() {
        let built = office_env(2);
        assert!(built.warnings.is_empty(), "{:?}", built.warnings);
        let s = built.env.summary();
        assert_eq!(s.floors, 2);
        assert_eq!(s.stairs, 1);
        assert!(s.partitions > 20, "decomposition should add cells: {s}");
        assert!(s.openings > 0, "corridor should be decomposed: {s}");
        assert_eq!(s.entrances, 1);
    }

    #[test]
    fn doors_resolve_to_adjacent_partitions() {
        let built = office_env(1);
        let env = &built.env;
        for d in env.doors() {
            // Every door's position must lie on the boundary of each
            // resolved partition.
            let a = env.partition(d.partitions.0);
            assert!(
                a.polygon.boundary_dist(d.position) < 0.31,
                "door {} not on partition {} boundary",
                d.name,
                a.name
            );
            if let Some(b) = d.partitions.1 {
                let b = env.partition(b);
                assert!(b.polygon.boundary_dist(d.position) < 0.31);
            }
        }
    }

    #[test]
    fn entrance_is_the_west_corridor_door() {
        let built = office_env(1);
        let env = &built.env;
        let entrances: Vec<_> = env.entrances().collect();
        assert_eq!(entrances.len(), 1);
        assert_eq!(entrances[0].name, "entrance");
        // It connects to a corridor cell.
        let p = env.partition(entrances[0].partitions.0);
        assert_eq!(p.semantic, Semantic::Corridor);
    }

    #[test]
    fn stair_connects_consecutive_floors() {
        let built = office_env(3);
        let env = &built.env;
        assert_eq!(env.stairs().len(), 2);
        for (i, st) in env.stairs().iter().enumerate() {
            assert_eq!(st.lower_floor, FloorId(i as u32));
            assert_eq!(st.upper_floor, FloorId(i as u32 + 1));
            // Resolved partitions are the stair cores.
            assert_eq!(
                env.partition(st.lower_partition).semantic,
                Semantic::Staircase
            );
            assert_eq!(
                env.partition(st.upper_partition).semantic,
                Semantic::Staircase
            );
            assert!(st.length >= 3.2, "flight length {}", st.length);
        }
    }

    #[test]
    fn semantics_assigned() {
        let built = office_env(1);
        let env = &built.env;
        let classes: Vec<Semantic> = env.partitions().iter().map(|p| p.semantic).collect();
        assert!(classes.contains(&Semantic::Canteen));
        assert!(classes.contains(&Semantic::Corridor));
        assert!(classes.contains(&Semantic::Office));
        assert!(classes.contains(&Semantic::Staircase));
    }

    #[test]
    fn mall_atrium_promoted_to_public_area() {
        let model = vita_dbi::mall(&SynthParams::with_floors(1));
        let built = build_environment(&model, &BuildParams::default()).unwrap();
        // Atrium cells carry the "public" usage keyword — but even without
        // it, the structural rule would fire. Verify the semantic landed.
        assert!(built
            .env
            .partitions()
            .iter()
            .any(|p| p.semantic == Semantic::PublicArea));
    }

    #[test]
    fn decomposition_can_be_disabled() {
        let model = office(&SynthParams::with_floors(1));
        let params = BuildParams {
            decompose: None,
            ..Default::default()
        };
        let built = build_environment(&model, &params).unwrap();
        assert_eq!(built.env.summary().openings, 0);
        assert_eq!(built.env.summary().partitions, model.spaces.len());
    }

    #[test]
    fn empty_model_is_error() {
        let model = DbiModel::default();
        assert_eq!(
            build_environment(&model, &BuildParams::default()).unwrap_err(),
            BuildError::NoFloors
        );
    }

    #[test]
    fn unresolvable_door_becomes_warning() {
        let mut model = office(&SynthParams::with_floors(1));
        // Move a door into the void.
        model.doors[0].position = Point::new(-50.0, -50.0);
        let built = build_environment(&model, &BuildParams::default()).unwrap();
        assert!(built
            .warnings
            .iter()
            .any(|w| matches!(w, BuildWarning::DoorUnresolved { .. })));
    }

    #[test]
    fn flat_stair_becomes_warning() {
        let mut model = office(&SynthParams::with_floors(2));
        for v in &mut model.stairs[0].vertices {
            v.z = 0.0;
        }
        let built = build_environment(&model, &BuildParams::default()).unwrap();
        assert!(built
            .warnings
            .iter()
            .any(|w| matches!(w, BuildWarning::StairUnresolved { .. })));
        assert!(built.env.stairs().is_empty());
    }

    #[test]
    fn directional_door_mapped() {
        let model = vita_dbi::clinic(&SynthParams::with_floors(1));
        let built = build_environment(&model, &BuildParams::default()).unwrap();
        assert!(built
            .env
            .doors()
            .iter()
            .any(|d| d.direction != DoorDirection::Both));
    }

    #[test]
    fn decomposed_cells_cover_original_area() {
        let model = office(&SynthParams::with_floors(1));
        let built = build_environment(&model, &BuildParams::default()).unwrap();
        let total: f64 = built.env.partitions().iter().map(|p| p.area()).sum();
        let original: f64 = model
            .spaces
            .iter()
            .filter_map(|s| vita_geometry::Polygon::new(s.footprint.clone()).ok())
            .map(|p| p.area())
            .sum();
        assert!((total - original).abs() < 1e-6 * original.max(1.0));
    }
}
