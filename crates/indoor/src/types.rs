//! Core domain types shared by every Vita layer: identifiers, locations and
//! time.
//!
//! Identifier newtypes follow the paper's data formats (§4.2): a location
//! `loc` "consists of two parts, the former refers to a buildingID + a
//! floorID, the latter can be either a partitionID or a coordinate point."

use std::fmt;

use vita_geometry::Point;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// A building in the host environment.
    BuildingId
);
id_newtype!(
    /// A floor (storey) within a building; ordered by elevation.
    FloorId
);
id_newtype!(
    /// A partition: a room, hallway cell, or decomposed sub-cell.
    PartitionId
);
id_newtype!(
    /// A door or open boundary between partitions.
    DoorId
);
id_newtype!(
    /// A staircase connecting partitions on two floors.
    StairId
);
id_newtype!(
    /// A user-deployed obstacle.
    ObstacleId
);
id_newtype!(
    /// A positioning device (Wi-Fi AP, BLE beacon, RFID reader).
    DeviceId
);
id_newtype!(
    /// A moving object.
    ObjectId
);
id_newtype!(
    /// One generation run (scenario execution) within a shared repository.
    ///
    /// The storage layer tags every ingested row with the run that produced
    /// it, so several scenarios can flow through one toolkit/repository
    /// concurrently and still be queried in isolation. Single-run ingestion
    /// uses [`RunId::DEFAULT`].
    RunId
);

impl RunId {
    /// The run every untagged ingestion path writes under (run 0). A
    /// repository that only ever saw single-run ingestion has exactly this
    /// run.
    pub const DEFAULT: RunId = RunId(0);
}

/// Within-floor location payload: symbolic partition or exact coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LocKind {
    /// Symbolic: somewhere in this partition.
    Partition(PartitionId),
    /// Exact coordinate point in the floor's local frame.
    Point(Point),
}

/// A full indoor location per the paper's record format (§4.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Loc {
    pub building: BuildingId,
    pub floor: FloorId,
    pub kind: LocKind,
}

impl Loc {
    /// Exact-point location.
    pub fn point(building: BuildingId, floor: FloorId, p: Point) -> Self {
        Loc {
            building,
            floor,
            kind: LocKind::Point(p),
        }
    }

    /// Symbolic partition location.
    pub fn partition(building: BuildingId, floor: FloorId, pid: PartitionId) -> Self {
        Loc {
            building,
            floor,
            kind: LocKind::Partition(pid),
        }
    }

    /// The coordinate point, when this location is exact.
    pub fn as_point(&self) -> Option<Point> {
        match self.kind {
            LocKind::Point(p) => Some(p),
            LocKind::Partition(_) => None,
        }
    }

    /// The partition id, when this location is symbolic.
    pub fn as_partition(&self) -> Option<PartitionId> {
        match self.kind {
            LocKind::Partition(pid) => Some(pid),
            LocKind::Point(_) => None,
        }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            LocKind::Partition(pid) => {
                write!(f, "B{}/F{}/{}", self.building.0, self.floor.0, pid)
            }
            LocKind::Point(p) => write!(f, "B{}/F{}/{}", self.building.0, self.floor.0, p),
        }
    }
}

/// Milliseconds since the start of the generation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);

    pub fn from_secs_f64(s: f64) -> Self {
        Timestamp((s.max(0.0) * 1000.0).round() as u64)
    }

    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    pub fn as_millis(&self) -> u64 {
        self.0
    }

    /// Saturating addition of a duration in milliseconds.
    pub fn advance(&self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(ms))
    }

    /// Elapsed milliseconds since `earlier` (0 when `earlier` is later).
    pub fn since(&self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A sampling frequency. Both the Moving Object Layer (trajectory sampling)
/// and the Positioning Layer (positioning sampling) are parameterized by one
/// of these, independently (paper §2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hz(pub f64);

impl Hz {
    /// Sampling period in milliseconds (clamped to at least 1 ms).
    pub fn period_ms(&self) -> u64 {
        if self.0 <= 0.0 {
            u64::MAX
        } else {
            ((1000.0 / self.0).round() as u64).max(1)
        }
    }

    pub fn is_valid(&self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl fmt::Display for Hz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Hz", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_newtypes_are_distinct_types_with_display() {
        let f = FloorId(2);
        let p = PartitionId(7);
        assert_eq!(f.to_string(), "FloorId2");
        assert_eq!(p.to_string(), "PartitionId7");
        assert_eq!(f.index(), 2);
        assert_eq!(PartitionId::from(9u32), PartitionId(9));
    }

    #[test]
    fn loc_accessors() {
        let l1 = Loc::point(BuildingId(0), FloorId(1), Point::new(2.0, 3.0));
        assert!(l1.as_point().is_some());
        assert!(l1.as_partition().is_none());
        let l2 = Loc::partition(BuildingId(0), FloorId(1), PartitionId(4));
        assert_eq!(l2.as_partition(), Some(PartitionId(4)));
        assert!(l2.as_point().is_none());
        assert!(l2.to_string().contains("PartitionId4"));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs_f64(1.5);
        assert_eq!(t.as_millis(), 1500);
        assert_eq!(t.advance(500).as_secs_f64(), 2.0);
        assert_eq!(t.advance(500).since(t), 500);
        assert_eq!(t.since(t.advance(500)), 0);
    }

    #[test]
    fn hz_period() {
        assert_eq!(Hz(1.0).period_ms(), 1000);
        assert_eq!(Hz(10.0).period_ms(), 100);
        assert_eq!(Hz(0.5).period_ms(), 2000);
        assert_eq!(Hz(0.0).period_ms(), u64::MAX);
        assert!(!Hz(0.0).is_valid());
        assert!(!Hz(f64::NAN).is_valid());
        assert!(Hz(2.0).is_valid());
        // Very high frequencies clamp to 1 ms.
        assert_eq!(Hz(5000.0).period_ms(), 1);
    }
}
