//! Route planning: minimum indoor walking distance and minimum walking time
//! (paper §3.1, "Routing": "a path determined by a particular routing
//! schema, e.g., minimum indoor walking distance \[10\], minimum walking
//! time \[9\]").
//!
//! The two schemas differ exactly where the paper's citations differ:
//! min-distance ignores how fast each medium is walked, min-time weights
//! edge lengths by per-medium speeds, so a longer corridor route can beat a
//! shorter stair-heavy one.

use vita_geometry::Point;

use crate::graph::{Anchor, Edge, IndoorGraph, Medium};
use crate::model::IndoorEnvironment;
use crate::semantics::Semantic;
use crate::types::{FloorId, PartitionId};

/// Walking speeds (m/s) by medium, used by minimum-time routing and by the
/// mobility layer when animating objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedProfile {
    pub corridor: f64,
    pub room: f64,
    pub public_area: f64,
    pub stairs: f64,
}

impl Default for SpeedProfile {
    fn default() -> Self {
        // Typical pedestrian speeds: brisk in corridors, slower among
        // furniture, slowest on stairs.
        SpeedProfile {
            corridor: 1.4,
            room: 0.9,
            public_area: 1.2,
            stairs: 0.55,
        }
    }
}

impl SpeedProfile {
    /// Speed when walking inside a partition of the given semantic class.
    pub fn for_semantic(&self, s: Semantic) -> f64 {
        match s {
            Semantic::Corridor => self.corridor,
            Semantic::PublicArea | Semantic::Shop | Semantic::Waiting => self.public_area,
            Semantic::Staircase => self.stairs,
            _ => self.room,
        }
    }
}

/// Routing objective.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RoutingSchema {
    /// Minimize walked metres.
    MinDistance,
    /// Minimize walking seconds under a speed profile.
    MinTime(SpeedProfile),
}

impl RoutingSchema {
    pub fn min_time_default() -> Self {
        RoutingSchema::MinTime(SpeedProfile::default())
    }
}

/// A point on a route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Waypoint {
    pub floor: FloorId,
    pub position: Point,
    /// Partition the object is in when *leaving* this waypoint.
    pub partition: PartitionId,
    /// Metres walked from the start to this waypoint.
    pub cum_dist: f64,
    /// Seconds walked from the start to this waypoint (under the planning
    /// speed profile; min-distance routes use the default profile).
    pub cum_time: f64,
}

/// A planned route.
#[derive(Debug, Clone)]
pub struct Route {
    pub waypoints: Vec<Waypoint>,
    pub total_distance: f64,
    pub total_time: f64,
}

impl Route {
    /// Interpolated position after walking `dist` metres (clamped).
    /// Returns the floor and point; positions inside a staircase leg
    /// interpolate in plan view between the two stair ends.
    pub fn position_at_distance(&self, dist: f64) -> (FloorId, Point) {
        let d = dist.clamp(0.0, self.total_distance);
        for pair in self.waypoints.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if d <= b.cum_dist {
                let span = b.cum_dist - a.cum_dist;
                let t = if span <= 1e-12 {
                    0.0
                } else {
                    (d - a.cum_dist) / span
                };
                // Floor switches at the end of a leg that changes floor.
                let floor = if t >= 1.0 { b.floor } else { a.floor };
                return (floor, a.position.lerp(b.position, t));
            }
        }
        let last = self.waypoints.last().expect("route has waypoints");
        (last.floor, last.position)
    }

    pub fn start(&self) -> &Waypoint {
        self.waypoints.first().expect("route has waypoints")
    }

    pub fn end(&self) -> &Waypoint {
        self.waypoints.last().expect("route has waypoints")
    }
}

/// Route planning errors.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// The source point is not inside any partition.
    SourceNotIndoor,
    /// The target point is not inside any partition.
    TargetNotIndoor,
    /// No path exists (disconnected, or blocked by door directionality).
    Unreachable,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::SourceNotIndoor => write!(f, "source point is not indoors"),
            RouteError::TargetNotIndoor => write!(f, "target point is not indoors"),
            RouteError::Unreachable => write!(f, "target unreachable from source"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A route planner bound to one environment. Builds the accessibility graph
/// once; each query runs one Dijkstra.
pub struct RoutePlanner<'e> {
    env: &'e IndoorEnvironment,
    graph: IndoorGraph,
}

impl<'e> RoutePlanner<'e> {
    pub fn new(env: &'e IndoorEnvironment) -> Self {
        RoutePlanner {
            env,
            graph: IndoorGraph::new(env),
        }
    }

    pub fn graph(&self) -> &IndoorGraph {
        &self.graph
    }

    /// Plan a route between two indoor points.
    pub fn route(
        &self,
        from: (FloorId, Point),
        to: (FloorId, Point),
        schema: RoutingSchema,
    ) -> Result<Route, RouteError> {
        let src_part = self
            .env
            .locate(from.0, from.1)
            .ok_or(RouteError::SourceNotIndoor)?;
        let dst_part = self
            .env
            .locate(to.0, to.1)
            .ok_or(RouteError::TargetNotIndoor)?;

        let profile = match schema {
            RoutingSchema::MinTime(p) => p,
            RoutingSchema::MinDistance => SpeedProfile::default(),
        };
        let speed_in = |pid: PartitionId| -> f64 {
            profile
                .for_semantic(self.env.partition(pid).semantic)
                .max(0.05)
        };
        let weight = |e: &Edge| -> f64 {
            match schema {
                RoutingSchema::MinDistance => e.dist,
                RoutingSchema::MinTime(p) => match e.medium {
                    Medium::Walk(pid) => {
                        e.dist / p.for_semantic(self.env.partition(pid).semantic).max(0.05)
                    }
                    Medium::DoorCrossing(_) => 0.0,
                    Medium::Stair(_) => e.dist / p.stairs.max(0.05),
                },
            }
        };

        // Same partition: walk straight (partitions are small/convex-ish by
        // decomposition, so the straight segment is valid).
        if src_part == dst_part {
            let dist = from.1.dist(to.1);
            let time = dist / speed_in(src_part);
            return Ok(Route {
                waypoints: vec![
                    Waypoint {
                        floor: from.0,
                        position: from.1,
                        partition: src_part,
                        cum_dist: 0.0,
                        cum_time: 0.0,
                    },
                    Waypoint {
                        floor: to.0,
                        position: to.1,
                        partition: dst_part,
                        cum_dist: dist,
                        cum_time: time,
                    },
                ],
                total_distance: dist,
                total_time: time,
            });
        }

        // Seed Dijkstra with every node in the source partition, costed by
        // the walk from `from` to that node.
        let seeds: Vec<(u32, f64)> = self
            .graph
            .nodes_in(src_part)
            .iter()
            .map(|&n| {
                let d = from.1.dist(self.graph.node(n).position);
                let cost = match schema {
                    RoutingSchema::MinDistance => d,
                    RoutingSchema::MinTime(_) => d / speed_in(src_part),
                };
                (n, cost)
            })
            .collect();
        if seeds.is_empty() {
            return Err(RouteError::Unreachable);
        }
        let sp = self.graph.dijkstra(&seeds, weight);

        // Best terminal node in the destination partition, adding the final
        // walk to `to`.
        let mut best: Option<(u32, f64)> = None;
        for &n in self.graph.nodes_in(dst_part) {
            let base = sp.dist[n as usize];
            if !base.is_finite() {
                continue;
            }
            let tail = self.graph.node(n).position.dist(to.1);
            let tail_cost = match schema {
                RoutingSchema::MinDistance => tail,
                RoutingSchema::MinTime(_) => tail / speed_in(dst_part),
            };
            let total = base + tail_cost;
            if best.is_none_or(|(_, b)| total < b) {
                best = Some((n, total));
            }
        }
        let (terminal, _) = best.ok_or(RouteError::Unreachable)?;

        // Reconstruct waypoints: from → node path → to.
        let node_path = sp.path_to(terminal);
        let mut waypoints = Vec::with_capacity(node_path.len() + 2);
        waypoints.push(Waypoint {
            floor: from.0,
            position: from.1,
            partition: src_part,
            cum_dist: 0.0,
            cum_time: 0.0,
        });
        let mut cum_dist = 0.0;
        let mut cum_time = 0.0;
        let mut prev_pos = from.1;
        let mut prev_partition = src_part;
        let mut prev_floor = from.0;
        for &n in &node_path {
            let node = self.graph.node(n);
            let d = prev_pos.dist(node.position);
            // A floor change happens on a stair leg; walking legs stay on
            // one floor. Speed: the partition we are leaving through.
            let is_stair_leg = node.floor != prev_floor;
            let leg_speed = if is_stair_leg {
                profile.stairs.max(0.05)
            } else {
                speed_in(prev_partition)
            };
            // Stair legs use the flight length, not plan distance.
            let leg_dist = if is_stair_leg {
                match node.anchor {
                    Anchor::StairEnd { stair, .. } => self.env.stairs()[stair.index()].length,
                    _ => d,
                }
            } else {
                d
            };
            cum_dist += leg_dist;
            cum_time += leg_dist / leg_speed;
            // Skip duplicate-position waypoints (the two sides of a door).
            if d > 1e-9 || is_stair_leg {
                waypoints.push(Waypoint {
                    floor: node.floor,
                    position: node.position,
                    partition: node.partition,
                    cum_dist,
                    cum_time,
                });
            } else if let Some(last) = waypoints.last_mut() {
                // Same position, other side of the door: update partition.
                last.partition = node.partition;
            }
            prev_pos = node.position;
            prev_partition = node.partition;
            prev_floor = node.floor;
        }
        let tail = prev_pos.dist(to.1);
        cum_dist += tail;
        cum_time += tail / speed_in(dst_part);
        waypoints.push(Waypoint {
            floor: to.0,
            position: to.1,
            partition: dst_part,
            cum_dist,
            cum_time,
        });

        Ok(Route {
            waypoints,
            total_distance: cum_dist,
            total_time: cum_time,
        })
    }

    /// Minimum indoor walking distance between two points, in metres.
    pub fn distance(
        &self,
        from: (FloorId, Point),
        to: (FloorId, Point),
    ) -> Result<f64, RouteError> {
        self.route(from, to, RoutingSchema::MinDistance)
            .map(|r| r.total_distance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_environment, BuildParams};
    use vita_dbi::{office, SynthParams};

    fn setup(floors: usize) -> IndoorEnvironment {
        let model = office(&SynthParams::with_floors(floors));
        build_environment(&model, &BuildParams::default())
            .unwrap()
            .env
    }

    #[test]
    fn same_partition_route_is_straight() {
        let env = setup(1);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        let r = planner
            .route(
                (f, Point::new(1.0, 1.0)),
                (f, Point::new(4.0, 4.0)),
                RoutingSchema::MinDistance,
            )
            .unwrap();
        assert_eq!(r.waypoints.len(), 2);
        assert!((r.total_distance - 18.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn cross_room_route_passes_through_doors() {
        let env = setup(1);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        // Office 0.1 (south-west room) to Office 0.10 area (north side).
        let from = Point::new(3.0, 3.0);
        let to = Point::new(27.0, 13.0);
        let r = planner
            .route((f, from), (f, to), RoutingSchema::MinDistance)
            .unwrap();
        assert!(r.waypoints.len() > 2, "must pass doors");
        // Distance is at least the Euclidean lower bound.
        assert!(r.total_distance >= from.dist(to) - 1e-9);
        // And not absurdly long.
        assert!(r.total_distance < 4.0 * from.dist(to));
    }

    #[test]
    fn multi_floor_route_uses_stairs() {
        let env = setup(2);
        let planner = RoutePlanner::new(&env);
        let from = (FloorId(0), Point::new(3.0, 3.0));
        let to = (FloorId(1), Point::new(3.0, 3.0));
        let r = planner.route(from, to, RoutingSchema::MinDistance).unwrap();
        let floors: Vec<FloorId> = r.waypoints.iter().map(|w| w.floor).collect();
        assert!(floors.contains(&FloorId(0)));
        assert!(floors.contains(&FloorId(1)));
        // Must include the stair flight length.
        let stair_len = env.stairs()[0].length;
        assert!(r.total_distance >= stair_len);
    }

    #[test]
    fn min_time_at_most_min_distance_time() {
        let env = setup(2);
        let planner = RoutePlanner::new(&env);
        let from = (FloorId(0), Point::new(2.0, 2.0));
        let to = (FloorId(1), Point::new(38.0, 14.0));
        let rd = planner.route(from, to, RoutingSchema::MinDistance).unwrap();
        let rt = planner
            .route(from, to, RoutingSchema::min_time_default())
            .unwrap();
        assert!(rt.total_time <= rd.total_time + 1e-6);
        assert!(rd.total_distance <= rt.total_distance + 1e-6);
    }

    #[test]
    fn route_positions_interpolate() {
        let env = setup(1);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        let r = planner
            .route(
                (f, Point::new(3.0, 3.0)),
                (f, Point::new(27.0, 13.0)),
                RoutingSchema::MinDistance,
            )
            .unwrap();
        let (_, start) = r.position_at_distance(0.0);
        assert!(start.approx_eq(Point::new(3.0, 3.0)));
        let (_, end) = r.position_at_distance(r.total_distance + 5.0);
        assert!(end.approx_eq(Point::new(27.0, 13.0)));
        // Midway point lies within the environment.
        let (fl, mid) = r.position_at_distance(r.total_distance / 2.0);
        assert!(env.locate(fl, mid).is_some());
    }

    #[test]
    fn outdoor_points_are_errors() {
        let env = setup(1);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        assert_eq!(
            planner
                .route(
                    (f, Point::new(-10.0, -10.0)),
                    (f, Point::new(1.0, 1.0)),
                    RoutingSchema::MinDistance
                )
                .unwrap_err(),
            RouteError::SourceNotIndoor
        );
        assert_eq!(
            planner
                .route(
                    (f, Point::new(1.0, 1.0)),
                    (f, Point::new(-10.0, -10.0)),
                    RoutingSchema::MinDistance
                )
                .unwrap_err(),
            RouteError::TargetNotIndoor
        );
    }

    #[test]
    fn directionality_can_make_target_unreachable() {
        use crate::model::DoorDirection;
        let mut env = setup(1);
        // Make the meeting room exit-only: you can never get in.
        let door_id = env
            .doors()
            .iter()
            .find(|d| d.name.contains("door-meet"))
            .unwrap()
            .id;
        let meeting_side = {
            let d = env.door(door_id);
            let a = env.partition(d.partitions.0);
            if a.name.contains("Meeting") {
                (d.partitions.0, true)
            } else {
                (d.partitions.1.unwrap(), false)
            }
        };
        // Orient so traversal is only *out of* the meeting room.
        let dir = if meeting_side.1 {
            DoorDirection::Forward
        } else {
            DoorDirection::Backward
        };
        env.set_door_direction(door_id, dir);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        let meeting_pt = env.partition(meeting_side.0).centroid();
        // Getting out still works.
        assert!(planner
            .route(
                (f, meeting_pt),
                (f, Point::new(3.0, 3.0)),
                RoutingSchema::MinDistance
            )
            .is_ok());
        // Getting in is impossible.
        assert_eq!(
            planner
                .route(
                    (f, Point::new(3.0, 3.0)),
                    (f, meeting_pt),
                    RoutingSchema::MinDistance
                )
                .unwrap_err(),
            RouteError::Unreachable
        );
    }

    #[test]
    fn distance_is_symmetric_without_directional_doors() {
        let env = setup(1);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        let a = (f, Point::new(3.0, 3.0));
        let b = (f, Point::new(27.0, 13.0));
        let d_ab = planner.distance(a, b).unwrap();
        let d_ba = planner.distance(b, a).unwrap();
        assert!((d_ab - d_ba).abs() < 1e-6, "{d_ab} vs {d_ba}");
    }

    #[test]
    fn triangle_inequality_holds_approximately() {
        let env = setup(1);
        let planner = RoutePlanner::new(&env);
        let f = FloorId(0);
        let a = (f, Point::new(3.0, 3.0));
        let b = (f, Point::new(20.0, 12.0));
        let c = (f, Point::new(37.0, 3.0));
        let ab = planner.distance(a, b).unwrap();
        let bc = planner.distance(b, c).unwrap();
        let ac = planner.distance(a, c).unwrap();
        assert!(ac <= ab + bc + 1e-6);
    }
}
