//! The host indoor environment: floors, partitions, doors, staircases and
//! obstacles, with spatial indexing for point location.
//!
//! This is the output of the Infrastructure Layer's Indoor Environment
//! Controller (paper §2): the geometrical/topological substrate every later
//! layer reads.

use vita_geometry::{Aabb, Point, Polygon, RTree, Segment};

use crate::semantics::Semantic;
use crate::types::{DoorId, FloorId, ObstacleId, PartitionId, StairId};

/// Traversal permission through a door, oriented with respect to the door's
/// resolved partition pair `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DoorDirection {
    /// a → b and b → a.
    #[default]
    Both,
    /// Only a → b.
    Forward,
    /// Only b → a.
    Backward,
}

/// How a connection between partitions arises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoorKind {
    /// A physical door from the DBI file.
    Door,
    /// An open boundary created by partition decomposition: sibling cells
    /// of one original room are freely passable along their shared edge.
    Opening,
}

/// A floor of the building.
#[derive(Debug, Clone)]
pub struct Floor {
    pub id: FloorId,
    pub name: String,
    /// Elevation of the slab above datum, metres.
    pub elevation: f64,
    /// Partitions on this floor (indices into the environment's partition
    /// table).
    pub partitions: Vec<PartitionId>,
    /// Wall segments on this floor (for line-of-sight / RSSI attenuation).
    pub walls: Vec<Segment>,
}

/// A partition: a room, a hallway, or a decomposed cell of one.
#[derive(Debug, Clone)]
pub struct Partition {
    pub id: PartitionId,
    pub floor: FloorId,
    pub name: String,
    /// Raw usage tag from the DBI file ("office", "corridor", ...).
    pub usage: String,
    pub polygon: Polygon,
    /// Semantic class from the extraction rules (paper §4.1).
    pub semantic: Semantic,
    /// When this partition is a decomposition cell, the original partition
    /// it was cut from.
    pub parent: Option<PartitionId>,
}

impl Partition {
    pub fn area(&self) -> f64 {
        self.polygon.area()
    }

    pub fn centroid(&self) -> Point {
        self.polygon.centroid()
    }
}

/// A door or opening connecting up to two partitions on one floor.
///
/// `partitions.1 == None` marks a building entrance/exit: the door leads
/// outdoors.
#[derive(Debug, Clone)]
pub struct Door {
    pub id: DoorId,
    pub floor: FloorId,
    pub name: String,
    pub position: Point,
    /// Clear width, metres (for openings: length of the shared edge).
    pub width: f64,
    pub kind: DoorKind,
    pub direction: DoorDirection,
    /// The partitions this door joins, resolved geometrically.
    pub partitions: (PartitionId, Option<PartitionId>),
}

impl Door {
    /// True if this door leads outdoors.
    pub fn is_entrance(&self) -> bool {
        self.partitions.1.is_none()
    }

    /// Can an object move from partition `from` through this door?
    pub fn traversable_from(&self, from: PartitionId) -> bool {
        let (a, b) = self.partitions;
        match self.direction {
            DoorDirection::Both => from == a || Some(from) == b,
            DoorDirection::Forward => from == a,
            DoorDirection::Backward => Some(from) == b,
        }
    }

    /// The partition on the other side of the door from `from`, if any.
    pub fn other_side(&self, from: PartitionId) -> Option<PartitionId> {
        let (a, b) = self.partitions;
        if from == a {
            b
        } else if Some(from) == b {
            Some(a)
        } else {
            None
        }
    }
}

/// A staircase connecting a partition on a lower floor to a partition on an
/// upper floor, resolved from its 3-D boundary vertices (paper §4.1).
#[derive(Debug, Clone)]
pub struct Staircase {
    pub id: StairId,
    pub name: String,
    pub lower_floor: FloorId,
    pub lower_partition: PartitionId,
    /// Representative access point on the lower floor.
    pub lower_point: Point,
    pub upper_floor: FloorId,
    pub upper_partition: PartitionId,
    pub upper_point: Point,
    /// Walking length of the flight (3-D distance along the stairs).
    pub length: f64,
}

/// A user-deployed obstacle (paper §2: "deploy obstacles to further
/// customize the host indoor environment"). Obstacles block movement and
/// attenuate signals.
#[derive(Debug, Clone)]
pub struct Obstacle {
    pub id: ObstacleId,
    pub floor: FloorId,
    pub polygon: Polygon,
    /// Extra attenuation in dBm applied per signal crossing (feeds `N_ob`).
    pub attenuation_dbm: f64,
}

/// The host indoor environment for one building.
#[derive(Debug, Clone)]
pub struct IndoorEnvironment {
    pub building_name: String,
    floors: Vec<Floor>,
    partitions: Vec<Partition>,
    doors: Vec<Door>,
    stairs: Vec<Staircase>,
    obstacles: Vec<Obstacle>,
    /// Per-floor spatial index over partition bounding boxes; entry ids are
    /// partition indices.
    indexes: Vec<RTree>,
}

impl IndoorEnvironment {
    /// Assemble an environment and build its spatial indexes.
    ///
    /// Intended for use by the builder in [`crate::build`]; test code may
    /// construct small environments directly.
    pub fn assemble(
        building_name: String,
        floors: Vec<Floor>,
        partitions: Vec<Partition>,
        doors: Vec<Door>,
        stairs: Vec<Staircase>,
    ) -> Self {
        let mut env = IndoorEnvironment {
            building_name,
            floors,
            partitions,
            doors,
            stairs,
            obstacles: Vec::new(),
            indexes: Vec::new(),
        };
        env.rebuild_indexes();
        env
    }

    pub(crate) fn rebuild_indexes(&mut self) {
        self.indexes = self
            .floors
            .iter()
            .map(|f| {
                let entries: Vec<(u32, Aabb)> = f
                    .partitions
                    .iter()
                    .map(|pid| (pid.0, self.partitions[pid.index()].polygon.bbox()))
                    .collect();
                RTree::bulk_load(entries)
            })
            .collect();
    }

    pub fn floors(&self) -> &[Floor] {
        &self.floors
    }

    pub fn floor(&self, id: FloorId) -> &Floor {
        &self.floors[id.index()]
    }

    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    pub fn partition(&self, id: PartitionId) -> &Partition {
        &self.partitions[id.index()]
    }

    pub fn doors(&self) -> &[Door] {
        &self.doors
    }

    pub fn door(&self, id: DoorId) -> &Door {
        &self.doors[id.index()]
    }

    pub fn stairs(&self) -> &[Staircase] {
        &self.stairs
    }

    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Doors on a floor.
    pub fn doors_on(&self, floor: FloorId) -> impl Iterator<Item = &Door> {
        self.doors.iter().filter(move |d| d.floor == floor)
    }

    /// Doors incident to a partition.
    pub fn doors_of(&self, pid: PartitionId) -> impl Iterator<Item = &Door> {
        self.doors
            .iter()
            .filter(move |d| d.partitions.0 == pid || d.partitions.1 == Some(pid))
    }

    /// Entrances (doors to the outdoors) on a floor.
    pub fn entrances(&self) -> impl Iterator<Item = &Door> {
        self.doors.iter().filter(|d| d.is_entrance())
    }

    /// Locate the partition containing point `p` on `floor`.
    ///
    /// Uses the per-floor R-tree, then exact polygon containment. Boundary
    /// points resolve to the first candidate in index order.
    pub fn locate(&self, floor: FloorId, p: Point) -> Option<PartitionId> {
        let idx = self.indexes.get(floor.index())?;
        idx.query_point(p)
            .into_iter()
            .map(PartitionId)
            .find(|pid| self.partitions[pid.index()].polygon.contains(p))
    }

    /// Partitions whose bounding boxes are within `radius` of `p` on `floor`.
    pub fn partitions_near(&self, floor: FloorId, p: Point, radius: f64) -> Vec<PartitionId> {
        let Some(idx) = self.indexes.get(floor.index()) else {
            return Vec::new();
        };
        idx.query_bbox(&Aabb::from_point(p).inflated(radius))
            .into_iter()
            .map(PartitionId)
            .filter(|pid| self.partitions[pid.index()].polygon.dist_to_point(p) <= radius)
            .collect()
    }

    /// Walls relevant to a signal path on `floor`: the floor's walls plus
    /// edges of any obstacles deployed there.
    pub fn walls_with_obstacles(&self, floor: FloorId) -> Vec<Segment> {
        let mut walls = self.floor(floor).walls.clone();
        for ob in self.obstacles.iter().filter(|o| o.floor == floor) {
            walls.extend(ob.polygon.edges());
        }
        walls
    }

    /// Deploy an obstacle; rebuilds nothing (obstacles are not partitions)
    /// but affects line-of-sight and movement validity checks.
    pub fn deploy_obstacle(
        &mut self,
        floor: FloorId,
        polygon: Polygon,
        attenuation_dbm: f64,
    ) -> ObstacleId {
        let id = ObstacleId(self.obstacles.len() as u32);
        self.obstacles.push(Obstacle {
            id,
            floor,
            polygon,
            attenuation_dbm,
        });
        id
    }

    /// Is `p` on `floor` inside some partition and outside every obstacle?
    pub fn is_walkable(&self, floor: FloorId, p: Point) -> bool {
        if self.locate(floor, p).is_none() {
            return false;
        }
        !self
            .obstacles
            .iter()
            .any(|o| o.floor == floor && o.polygon.contains(p))
    }

    /// Override a door's directionality (Indoor Environment Controller:
    /// "allows a user to configure door directionality", §2).
    pub fn set_door_direction(&mut self, id: DoorId, direction: DoorDirection) {
        self.doors[id.index()].direction = direction;
    }

    /// Total walkable area of a floor (sum of partition areas minus
    /// obstacles deployed there).
    pub fn walkable_area(&self, floor: FloorId) -> f64 {
        let parts: f64 = self
            .floor(floor)
            .partitions
            .iter()
            .map(|pid| self.partitions[pid.index()].area())
            .sum();
        let obs: f64 = self
            .obstacles
            .iter()
            .filter(|o| o.floor == floor)
            .map(|o| o.polygon.area())
            .sum();
        (parts - obs).max(0.0)
    }

    /// Summary counts, used in logs and the Fig. 1 data-flow example.
    pub fn summary(&self) -> EnvSummary {
        EnvSummary {
            floors: self.floors.len(),
            partitions: self.partitions.len(),
            doors: self
                .doors
                .iter()
                .filter(|d| d.kind == DoorKind::Door)
                .count(),
            openings: self
                .doors
                .iter()
                .filter(|d| d.kind == DoorKind::Opening)
                .count(),
            stairs: self.stairs.len(),
            entrances: self.entrances().count(),
            walls: self.floors.iter().map(|f| f.walls.len()).sum(),
        }
    }
}

/// Entity counts for one environment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvSummary {
    pub floors: usize,
    pub partitions: usize,
    pub doors: usize,
    pub openings: usize,
    pub stairs: usize,
    pub entrances: usize,
    pub walls: usize,
}

impl std::fmt::Display for EnvSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} floors, {} partitions, {} doors (+{} openings), {} stairs, {} entrances, {} walls",
            self.floors,
            self.partitions,
            self.doors,
            self.openings,
            self.stairs,
            self.entrances,
            self.walls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two rooms side by side joined by a door; door 1 is an entrance.
    pub(crate) fn tiny_env() -> IndoorEnvironment {
        let pa = Partition {
            id: PartitionId(0),
            floor: FloorId(0),
            name: "A".into(),
            usage: "office".into(),
            polygon: Polygon::rect(0.0, 0.0, 5.0, 4.0),
            semantic: Semantic::Room,
            parent: None,
        };
        let pb = Partition {
            id: PartitionId(1),
            floor: FloorId(0),
            name: "B".into(),
            usage: "office".into(),
            polygon: Polygon::rect(5.0, 0.0, 10.0, 4.0),
            semantic: Semantic::Room,
            parent: None,
        };
        let walls = vec![
            Segment::new(Point::new(5.0, 0.0), Point::new(5.0, 4.0)),
            Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0)),
        ];
        let floor = Floor {
            id: FloorId(0),
            name: "G".into(),
            elevation: 0.0,
            partitions: vec![PartitionId(0), PartitionId(1)],
            walls,
        };
        let doors = vec![
            Door {
                id: DoorId(0),
                floor: FloorId(0),
                name: "mid".into(),
                position: Point::new(5.0, 2.0),
                width: 0.9,
                kind: DoorKind::Door,
                direction: DoorDirection::Both,
                partitions: (PartitionId(0), Some(PartitionId(1))),
            },
            Door {
                id: DoorId(1),
                floor: FloorId(0),
                name: "entrance".into(),
                position: Point::new(0.0, 2.0),
                width: 1.8,
                kind: DoorKind::Door,
                direction: DoorDirection::Both,
                partitions: (PartitionId(0), None),
            },
        ];
        IndoorEnvironment::assemble("tiny".into(), vec![floor], vec![pa, pb], doors, vec![])
    }

    #[test]
    fn locate_points() {
        let env = tiny_env();
        assert_eq!(
            env.locate(FloorId(0), Point::new(1.0, 1.0)),
            Some(PartitionId(0))
        );
        assert_eq!(
            env.locate(FloorId(0), Point::new(7.0, 1.0)),
            Some(PartitionId(1))
        );
        assert_eq!(env.locate(FloorId(0), Point::new(20.0, 1.0)), None);
    }

    #[test]
    fn door_traversal_directionality() {
        let mut env = tiny_env();
        let d = DoorId(0);
        assert!(env.door(d).traversable_from(PartitionId(0)));
        assert!(env.door(d).traversable_from(PartitionId(1)));
        env.set_door_direction(d, DoorDirection::Forward);
        assert!(env.door(d).traversable_from(PartitionId(0)));
        assert!(!env.door(d).traversable_from(PartitionId(1)));
        env.set_door_direction(d, DoorDirection::Backward);
        assert!(!env.door(d).traversable_from(PartitionId(0)));
        assert!(env.door(d).traversable_from(PartitionId(1)));
    }

    #[test]
    fn other_side_and_entrance() {
        let env = tiny_env();
        let mid = env.door(DoorId(0));
        assert_eq!(mid.other_side(PartitionId(0)), Some(PartitionId(1)));
        assert_eq!(mid.other_side(PartitionId(1)), Some(PartitionId(0)));
        assert!(!mid.is_entrance());
        let ent = env.door(DoorId(1));
        assert!(ent.is_entrance());
        assert_eq!(ent.other_side(PartitionId(0)), None);
        assert_eq!(env.entrances().count(), 1);
    }

    #[test]
    fn doors_of_partition() {
        let env = tiny_env();
        assert_eq!(env.doors_of(PartitionId(0)).count(), 2);
        assert_eq!(env.doors_of(PartitionId(1)).count(), 1);
    }

    #[test]
    fn obstacles_block_walkability_and_add_walls() {
        let mut env = tiny_env();
        assert!(env.is_walkable(FloorId(0), Point::new(2.0, 2.0)));
        let walls_before = env.walls_with_obstacles(FloorId(0)).len();
        env.deploy_obstacle(FloorId(0), Polygon::rect(1.5, 1.5, 2.5, 2.5), 3.0);
        assert!(!env.is_walkable(FloorId(0), Point::new(2.0, 2.0)));
        assert!(env.is_walkable(FloorId(0), Point::new(4.0, 3.0)));
        assert_eq!(env.walls_with_obstacles(FloorId(0)).len(), walls_before + 4);
    }

    #[test]
    fn walkable_area_subtracts_obstacles() {
        let mut env = tiny_env();
        assert!((env.walkable_area(FloorId(0)) - 40.0).abs() < 1e-9);
        env.deploy_obstacle(FloorId(0), Polygon::rect(1.0, 1.0, 2.0, 2.0), 3.0);
        assert!((env.walkable_area(FloorId(0)) - 39.0).abs() < 1e-9);
    }

    #[test]
    fn partitions_near() {
        let env = tiny_env();
        let near = env.partitions_near(FloorId(0), Point::new(5.0, 2.0), 0.5);
        assert_eq!(near.len(), 2);
        let near = env.partitions_near(FloorId(0), Point::new(1.0, 1.0), 0.5);
        assert_eq!(near, vec![PartitionId(0)]);
    }

    #[test]
    fn summary_counts() {
        let env = tiny_env();
        let s = env.summary();
        assert_eq!(s.floors, 1);
        assert_eq!(s.partitions, 2);
        assert_eq!(s.doors, 2);
        assert_eq!(s.openings, 0);
        assert_eq!(s.entrances, 1);
        assert!(s.to_string().contains("2 partitions"));
    }
}
