//! Raw trajectory data: the ground-truth product of the Moving Object Layer.
//!
//! Record format per paper §4.2: "(o_id, loc, t), which denotes that an
//! object identified by o_id was at location loc at time t". Because the
//! generator preserves the underlying raw trajectory at fine granularity,
//! this data serves as the "ground truth" for evaluating positioning output.

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, Loc, ObjectId, Timestamp};

/// One raw trajectory sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySample {
    pub object: ObjectId,
    pub loc: Loc,
    pub t: Timestamp,
}

impl TrajectorySample {
    pub fn new(
        object: ObjectId,
        building: BuildingId,
        floor: FloorId,
        p: Point,
        t: Timestamp,
    ) -> Self {
        TrajectorySample {
            object,
            loc: Loc::point(building, floor, p),
            t,
        }
    }

    /// The sample's coordinate point (raw trajectories are always exact).
    pub fn point(&self) -> Point {
        self.loc
            .as_point()
            .expect("raw trajectory samples are point locations")
    }

    pub fn floor(&self) -> FloorId {
        self.loc.floor
    }
}

/// All samples of one object, ordered by time.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    samples: Vec<TrajectorySample>,
}

impl Trajectory {
    pub fn new(mut samples: Vec<TrajectorySample>) -> Self {
        samples.sort_by_key(|s| s.t);
        Trajectory { samples }
    }

    pub fn samples(&self) -> &[TrajectorySample] {
        &self.samples
    }

    /// Consume the trajectory, yielding its time-ordered samples. Used by
    /// the streaming pipeline to move a chunk's rows into storage without
    /// copying.
    pub fn into_samples(self) -> Vec<TrajectorySample> {
        self.samples
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn start_time(&self) -> Option<Timestamp> {
        self.samples.first().map(|s| s.t)
    }

    pub fn end_time(&self) -> Option<Timestamp> {
        self.samples.last().map(|s| s.t)
    }

    /// Total plan-view path length (metres), summing same-floor hops.
    pub fn length(&self) -> f64 {
        self.samples
            .windows(2)
            .filter(|w| w[0].floor() == w[1].floor())
            .map(|w| w[0].point().dist(w[1].point()))
            .sum()
    }

    /// Ground-truth position at time `t` by linear interpolation between the
    /// surrounding samples; `None` outside the trajectory's lifespan.
    /// Interpolation across a floor change snaps to the later sample's
    /// position (the object is in the stairwell; its plan-view position is
    /// ambiguous).
    pub fn position_at(&self, t: Timestamp) -> Option<(FloorId, Point)> {
        if self.samples.is_empty() {
            return None;
        }
        let first = self.samples.first().unwrap();
        let last = self.samples.last().unwrap();
        if t < first.t || t > last.t {
            return None;
        }
        // Binary search for the bracketing pair.
        let idx = self.samples.partition_point(|s| s.t <= t);
        if idx == 0 {
            return Some((first.floor(), first.point()));
        }
        let a = &self.samples[idx - 1];
        if idx >= self.samples.len() {
            return Some((a.floor(), a.point()));
        }
        let b = &self.samples[idx];
        if a.floor() != b.floor() {
            return Some((b.floor(), b.point()));
        }
        let span = b.t.since(a.t) as f64;
        let tt = if span <= 0.0 {
            0.0
        } else {
            t.since(a.t) as f64 / span
        };
        Some((a.floor(), a.point().lerp(b.point(), tt)))
    }
}

/// The trajectory store for a whole generation run: per-object trajectories
/// plus a flat time-ordered view.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryStore {
    per_object: Vec<(ObjectId, Trajectory)>,
}

impl TrajectoryStore {
    pub fn from_parts(parts: Vec<(ObjectId, Trajectory)>) -> Self {
        let mut parts = parts;
        parts.sort_by_key(|(o, _)| *o);
        TrajectoryStore { per_object: parts }
    }

    pub fn objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.per_object.iter().map(|(o, _)| *o)
    }

    pub fn object_count(&self) -> usize {
        self.per_object.len()
    }

    pub fn get(&self, o: ObjectId) -> Option<&Trajectory> {
        self.per_object
            .binary_search_by_key(&o, |(id, _)| *id)
            .ok()
            .map(|i| &self.per_object[i].1)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&ObjectId, &Trajectory)> {
        self.per_object.iter().map(|(o, t)| (o, t))
    }

    /// Total number of samples across all objects.
    pub fn sample_count(&self) -> usize {
        self.per_object.iter().map(|(_, t)| t.len()).sum()
    }

    /// All samples, time-ordered (the DBMS ingest order of §4.2).
    pub fn all_samples_time_ordered(&self) -> Vec<TrajectorySample> {
        let mut all: Vec<TrajectorySample> = self
            .per_object
            .iter()
            .flat_map(|(_, t)| t.samples().iter().copied())
            .collect();
        all.sort_by_key(|s| (s.t, s.object));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(o: u32, f: u32, x: f64, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(f),
            Point::new(x, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn trajectory_sorts_and_measures() {
        let tr = Trajectory::new(vec![
            sample(0, 0, 2.0, 2000),
            sample(0, 0, 0.0, 0),
            sample(0, 0, 1.0, 1000),
        ]);
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.start_time(), Some(Timestamp(0)));
        assert_eq!(tr.end_time(), Some(Timestamp(2000)));
        assert!((tr.length() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_between_samples() {
        let tr = Trajectory::new(vec![sample(0, 0, 0.0, 0), sample(0, 0, 10.0, 10_000)]);
        let (f, p) = tr.position_at(Timestamp(2_500)).unwrap();
        assert_eq!(f, FloorId(0));
        assert!((p.x - 2.5).abs() < 1e-9);
        assert!(tr.position_at(Timestamp(20_000)).is_none());
        // Exact endpoints.
        assert!((tr.position_at(Timestamp(0)).unwrap().1.x - 0.0).abs() < 1e-9);
        assert!((tr.position_at(Timestamp(10_000)).unwrap().1.x - 10.0).abs() < 1e-9);
    }

    #[test]
    fn interpolation_across_floor_change_snaps() {
        let tr = Trajectory::new(vec![sample(0, 0, 0.0, 0), sample(0, 1, 5.0, 1000)]);
        let (f, p) = tr.position_at(Timestamp(500)).unwrap();
        assert_eq!(f, FloorId(1));
        assert!((p.x - 5.0).abs() < 1e-9);
        // Floor-change hop does not contribute to plan length.
        assert_eq!(tr.length(), 0.0);
    }

    #[test]
    fn store_lookup_and_ordering() {
        let t0 = Trajectory::new(vec![sample(0, 0, 0.0, 500)]);
        let t2 = Trajectory::new(vec![sample(2, 0, 1.0, 100), sample(2, 0, 2.0, 300)]);
        let store = TrajectoryStore::from_parts(vec![(ObjectId(2), t2), (ObjectId(0), t0)]);
        assert_eq!(store.object_count(), 2);
        assert_eq!(store.sample_count(), 3);
        assert_eq!(store.get(ObjectId(0)).unwrap().len(), 1);
        assert!(store.get(ObjectId(1)).is_none());
        let flat = store.all_samples_time_ordered();
        assert_eq!(flat.len(), 3);
        assert!(flat.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn empty_trajectory_behaviour() {
        let tr = Trajectory::default();
        assert!(tr.is_empty());
        assert!(tr.position_at(Timestamp(0)).is_none());
        assert_eq!(tr.length(), 0.0);
        assert_eq!(tr.start_time(), None);
    }
}
