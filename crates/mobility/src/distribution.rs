//! Initial distribution models (paper §3.1.1).
//!
//! *Uniform*: objects appear evenly over the walkable area (area-weighted
//! across partitions and floors).
//!
//! *Crowd-outliers*: "a vast majority of objects are located around several
//! hot areas to form crowds while others are distributed randomly as
//! outliers. For example, customers in a mall often gather around the shops
//! that are currently on sale." Hot areas prefer semantically attractive
//! partitions (shops, canteens, public areas, waiting rooms).

use rand::seq::SliceRandom;
use rand::Rng;

use vita_geometry::{Point, PolygonSampler};
use vita_indoor::{FloorId, IndoorEnvironment, PartitionId, Semantic};

use crate::config::InitialDistribution;

/// A starting placement for one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    pub floor: FloorId,
    pub point: Point,
    /// Crowd index when the object belongs to a crowd (for rendering the
    /// circles/rectangles of paper Fig. 3(b)).
    pub crowd: Option<usize>,
}

/// The initial placement of all objects plus the chosen hot areas.
#[derive(Debug, Clone)]
pub struct InitialPlacement {
    pub placements: Vec<Placement>,
    /// Hot-area centers (crowd index order).
    pub crowd_centers: Vec<(FloorId, Point)>,
}

/// Draw initial positions for `count` objects.
pub fn initial_positions<R: Rng + ?Sized>(
    env: &IndoorEnvironment,
    dist: InitialDistribution,
    count: usize,
    rng: &mut R,
) -> InitialPlacement {
    match dist {
        InitialDistribution::Uniform => InitialPlacement {
            placements: (0..count)
                .map(|_| {
                    let (floor, point) = uniform_point(env, rng);
                    Placement {
                        floor,
                        point,
                        crowd: None,
                    }
                })
                .collect(),
            crowd_centers: Vec::new(),
        },
        InitialDistribution::CrowdOutliers {
            crowds,
            crowd_fraction,
            crowd_radius,
        } => {
            let centers = pick_hot_areas(env, crowds, rng);
            let mut placements = Vec::with_capacity(count);
            let crowd_count = ((count as f64) * crowd_fraction).round() as usize;
            for i in 0..count {
                if i < crowd_count && !centers.is_empty() {
                    let k = i % centers.len();
                    let (floor, center) = centers[k];
                    let point = crowd_point(env, floor, center, crowd_radius, rng);
                    placements.push(Placement {
                        floor,
                        point,
                        crowd: Some(k),
                    });
                } else {
                    let (floor, point) = uniform_point(env, rng);
                    placements.push(Placement {
                        floor,
                        point,
                        crowd: None,
                    });
                }
            }
            InitialPlacement {
                placements,
                crowd_centers: centers,
            }
        }
    }
}

/// Uniform area-weighted point over all partitions on all floors.
pub fn uniform_point<R: Rng + ?Sized>(env: &IndoorEnvironment, rng: &mut R) -> (FloorId, Point) {
    let parts = env.partitions();
    debug_assert!(!parts.is_empty());
    let total: f64 = parts.iter().map(|p| p.area()).sum();
    let mut pick = rng.gen::<f64>() * total;
    let mut chosen = &parts[0];
    for p in parts {
        if pick < p.area() {
            chosen = p;
            break;
        }
        pick -= p.area();
        chosen = p;
    }
    let point = PolygonSampler::new(&chosen.polygon).sample(rng);
    (chosen.floor, point)
}

/// Uniform point within a specific partition.
pub fn point_in_partition<R: Rng + ?Sized>(
    env: &IndoorEnvironment,
    pid: PartitionId,
    rng: &mut R,
) -> Point {
    PolygonSampler::new(&env.partition(pid).polygon).sample(rng)
}

/// Choose `n` hot areas, preferring attractive semantics, then large area.
fn pick_hot_areas<R: Rng + ?Sized>(
    env: &IndoorEnvironment,
    n: usize,
    rng: &mut R,
) -> Vec<(FloorId, Point)> {
    let attractive = |s: Semantic| {
        matches!(
            s,
            Semantic::Shop | Semantic::Canteen | Semantic::PublicArea | Semantic::Waiting
        )
    };
    let mut hot: Vec<&vita_indoor::Partition> = env
        .partitions()
        .iter()
        .filter(|p| attractive(p.semantic))
        .collect();
    if hot.len() < n {
        // Top up with the largest remaining partitions.
        let mut rest: Vec<&vita_indoor::Partition> = env
            .partitions()
            .iter()
            .filter(|p| !attractive(p.semantic))
            .collect();
        rest.sort_by(|a, b| b.area().partial_cmp(&a.area()).unwrap());
        hot.extend(rest.into_iter().take(n - hot.len()));
    }
    hot.shuffle(rng);
    hot.truncate(n);
    hot.iter()
        .map(|p| (p.floor, PolygonSampler::new(&p.polygon).sample(rng)))
        .collect()
}

/// Sample a walkable point near `center` within `radius` (rejection with
/// fallback to the center itself).
fn crowd_point<R: Rng + ?Sized>(
    env: &IndoorEnvironment,
    floor: FloorId,
    center: Point,
    radius: f64,
    rng: &mut R,
) -> Point {
    for _ in 0..32 {
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        // sqrt for uniform density over the disk.
        let r = radius * rng.gen::<f64>().sqrt();
        let p = Point::new(center.x + r * theta.cos(), center.y + r * theta.sin());
        if env.is_walkable(floor, p) {
            return p;
        }
    }
    center
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vita_dbi::{mall, SynthParams};
    use vita_indoor::{build_environment, BuildParams};

    fn mall_env() -> IndoorEnvironment {
        let model = mall(&SynthParams::with_floors(2));
        build_environment(&model, &BuildParams::default())
            .unwrap()
            .env
    }

    #[test]
    fn uniform_positions_are_indoor_and_spread_across_floors() {
        let env = mall_env();
        let mut rng = StdRng::seed_from_u64(11);
        let placed = initial_positions(&env, InitialDistribution::Uniform, 400, &mut rng);
        assert_eq!(placed.placements.len(), 400);
        let mut floor0 = 0;
        for p in &placed.placements {
            assert!(env.locate(p.floor, p.point).is_some(), "object outdoors");
            assert!(p.crowd.is_none());
            if p.floor == FloorId(0) {
                floor0 += 1;
            }
        }
        // Two identical floors: roughly half on each.
        let frac = floor0 as f64 / 400.0;
        assert!((0.35..=0.65).contains(&frac), "floor-0 fraction {frac}");
    }

    #[test]
    fn crowd_outliers_form_crowds() {
        let env = mall_env();
        let mut rng = StdRng::seed_from_u64(13);
        let dist = InitialDistribution::CrowdOutliers {
            crowds: 3,
            crowd_fraction: 0.8,
            crowd_radius: 4.0,
        };
        let placed = initial_positions(&env, dist, 200, &mut rng);
        assert_eq!(placed.crowd_centers.len(), 3);
        let crowd_members = placed
            .placements
            .iter()
            .filter(|p| p.crowd.is_some())
            .count();
        assert_eq!(crowd_members, 160);
        // Crowd members are within radius of their crowd center.
        for p in placed.placements.iter().filter(|p| p.crowd.is_some()) {
            let (cf, cc) = placed.crowd_centers[p.crowd.unwrap()];
            assert_eq!(p.floor, cf);
            assert!(
                p.point.dist(cc) <= 4.0 + 1e-9,
                "crowd member {} too far from center {}",
                p.point,
                cc
            );
        }
    }

    #[test]
    fn crowd_centers_prefer_attractive_partitions() {
        let env = mall_env();
        let mut rng = StdRng::seed_from_u64(17);
        let dist = InitialDistribution::CrowdOutliers {
            crowds: 4,
            crowd_fraction: 0.9,
            crowd_radius: 3.0,
        };
        let placed = initial_positions(&env, dist, 100, &mut rng);
        // In a mall every hot area should land in a shop/public partition.
        for (f, c) in &placed.crowd_centers {
            let pid = env.locate(*f, *c).expect("center indoors");
            let sem = env.partition(pid).semantic;
            assert!(
                matches!(
                    sem,
                    Semantic::Shop | Semantic::PublicArea | Semantic::Waiting
                ),
                "hot area in {sem:?}"
            );
        }
    }

    #[test]
    fn outliers_exist_when_fraction_below_one() {
        let env = mall_env();
        let mut rng = StdRng::seed_from_u64(19);
        let dist = InitialDistribution::CrowdOutliers {
            crowds: 2,
            crowd_fraction: 0.7,
            crowd_radius: 3.0,
        };
        let placed = initial_positions(&env, dist, 100, &mut rng);
        let outliers = placed
            .placements
            .iter()
            .filter(|p| p.crowd.is_none())
            .count();
        assert_eq!(outliers, 30);
    }

    #[test]
    fn deterministic_given_seed() {
        let env = mall_env();
        let dist = InitialDistribution::CrowdOutliers {
            crowds: 2,
            crowd_fraction: 0.5,
            crowd_radius: 5.0,
        };
        let a = initial_positions(&env, dist, 50, &mut StdRng::seed_from_u64(7));
        let b = initial_positions(&env, dist, 50, &mut StdRng::seed_from_u64(7));
        for (x, y) in a.placements.iter().zip(&b.placements) {
            assert!(x.point.approx_eq(y.point));
            assert_eq!(x.floor, y.floor);
            assert_eq!(x.crowd, y.crowd);
        }
    }

    #[test]
    fn point_in_partition_is_contained() {
        let env = mall_env();
        let mut rng = StdRng::seed_from_u64(23);
        for pid in env.floor(FloorId(0)).partitions.iter().take(5) {
            let p = point_in_partition(&env, *pid, &mut rng);
            assert!(env.partition(*pid).polygon.contains(p));
        }
    }
}
