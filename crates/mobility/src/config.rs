//! Configuration for the Moving Object Layer (paper §2, §3.1).
//!
//! "The Moving Object Controller allows a user to set object parameters
//! including number, maximum speed, moving pattern, and lifespan. In this
//! layer, users can also tune the sampling frequency in order to set the
//! temporal granularity for the raw trajectory data."

use vita_indoor::{Hz, RoutingSchema, Timestamp};

/// Initial distribution of objects over the building (paper §3.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum InitialDistribution {
    /// "objects appear evenly in the space initially".
    #[default]
    Uniform,
    /// "a vast majority of objects are located around several hot areas to
    /// form crowds while others are distributed randomly as outliers".
    CrowdOutliers {
        /// Number of hot areas.
        crowds: usize,
        /// Fraction of objects belonging to crowds (the rest are outliers).
        crowd_fraction: f64,
        /// Radius (metres) of each crowd around its hot point.
        crowd_radius: f64,
    },
}

/// Lifespan configuration (paper §3.1.2): each object's lifespan is drawn
/// uniformly between the two bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifespanConfig {
    pub min: Timestamp,
    pub max: Timestamp,
}

impl Default for LifespanConfig {
    fn default() -> Self {
        // 5–15 minutes.
        LifespanConfig {
            min: Timestamp(5 * 60 * 1000),
            max: Timestamp(15 * 60 * 1000),
        }
    }
}

/// Arrival of new objects during generation (paper §3.1.2: "We also support
/// adding new objects during the generation period ... users can choose a
/// Poisson distribution to set the starting times").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ArrivalProcess {
    /// No objects appear after the initial batch.
    #[default]
    None,
    /// Poisson arrivals at `rate_per_min` (emerging at building entrances).
    Poisson { rate_per_min: f64 },
}

/// Where newly arriving objects emerge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmergingLocation {
    /// At a building entrance (doors leading outdoors).
    #[default]
    Entrances,
    /// Uniformly anywhere in the building.
    Anywhere,
}

/// Intention of the moving pattern (paper §3.1.3): "destination model means
/// an object moves toward its destination, and random-way model means it
/// moves randomly".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Intention {
    #[default]
    Destination,
    RandomWay,
}

/// Behavior mechanism (paper §3.1.3): "in the walk-stay mechanism, an object
/// will switch between the states 'walking along the path to its
/// destination' and 'staying at the destination or a location on path' after
/// a random period of time."
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// Walk continuously, never pause.
    ContinuousWalk,
    /// Alternate walking and staying.
    WalkStay {
        /// Bounds on each stay duration.
        stay_min: Timestamp,
        stay_max: Timestamp,
        /// Probability of an en-route stop at each route waypoint (stops at
        /// the destination always happen).
        pause_on_path_prob: f64,
    },
}

impl Default for Behavior {
    fn default() -> Self {
        Behavior::WalkStay {
            stay_min: Timestamp(10_000),
            stay_max: Timestamp(60_000),
            pause_on_path_prob: 0.1,
        }
    }
}

/// The complete moving pattern: intention × routing × behavior (paper §3.1.3
/// "We considered three aspects in customizing object moving patterns,
/// namely intention, routing, and behavior").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MovingPattern {
    pub intention: Intention,
    pub routing: RoutingSchema,
    pub behavior: Behavior,
}

impl Default for MovingPattern {
    fn default() -> Self {
        MovingPattern {
            intention: Intention::Destination,
            routing: RoutingSchema::MinDistance,
            behavior: Behavior::default(),
        }
    }
}

/// Full Moving Object Layer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityConfig {
    /// Number of objects in the initial batch.
    pub object_count: usize,
    /// Speed of each object is drawn uniformly from this range (m/s);
    /// `max_speed` is the paper's configurable maximum speed.
    pub min_speed: f64,
    pub max_speed: f64,
    pub distribution: InitialDistribution,
    pub lifespan: LifespanConfig,
    pub arrivals: ArrivalProcess,
    pub emerging: EmergingLocation,
    pub pattern: MovingPattern,
    /// Trajectory ("ground truth") sampling frequency.
    pub trajectory_hz: Hz,
    /// Total generation period.
    pub duration: Timestamp,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig {
            object_count: 50,
            min_speed: 0.6,
            max_speed: 1.5,
            distribution: InitialDistribution::default(),
            lifespan: LifespanConfig::default(),
            arrivals: ArrivalProcess::None,
            emerging: EmergingLocation::Entrances,
            pattern: MovingPattern::default(),
            trajectory_hz: Hz(1.0),
            duration: Timestamp(10 * 60 * 1000),
            seed: 0xD1CE,
        }
    }
}

/// Validation errors for a mobility configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    NoObjects,
    BadSpeedRange,
    BadLifespan,
    BadSamplingFrequency,
    ZeroDuration,
    BadCrowdParams,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoObjects => write!(f, "object_count must be > 0"),
            ConfigError::BadSpeedRange => write!(f, "need 0 < min_speed <= max_speed"),
            ConfigError::BadLifespan => write!(f, "need 0 < lifespan.min <= lifespan.max"),
            ConfigError::BadSamplingFrequency => write!(f, "trajectory_hz must be positive"),
            ConfigError::ZeroDuration => write!(f, "duration must be > 0"),
            ConfigError::BadCrowdParams => {
                write!(f, "crowd_fraction must be in [0,1], crowds > 0, radius > 0")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl MobilityConfig {
    /// Validate parameter ranges.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.object_count == 0 && matches!(self.arrivals, ArrivalProcess::None) {
            return Err(ConfigError::NoObjects);
        }
        if !(self.min_speed > 0.0 && self.min_speed <= self.max_speed) {
            return Err(ConfigError::BadSpeedRange);
        }
        if self.lifespan.min.0 == 0 || self.lifespan.min > self.lifespan.max {
            return Err(ConfigError::BadLifespan);
        }
        if !self.trajectory_hz.is_valid() {
            return Err(ConfigError::BadSamplingFrequency);
        }
        if self.duration.0 == 0 {
            return Err(ConfigError::ZeroDuration);
        }
        if let InitialDistribution::CrowdOutliers {
            crowds,
            crowd_fraction,
            crowd_radius,
        } = self.distribution
        {
            if crowds == 0 || !(0.0..=1.0).contains(&crowd_fraction) || crowd_radius <= 0.0 {
                return Err(ConfigError::BadCrowdParams);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(MobilityConfig::default().validate(), Ok(()));
    }

    #[test]
    fn invalid_configs_rejected() {
        let base = MobilityConfig::default();

        let mut c = base.clone();
        c.object_count = 0;
        assert_eq!(c.validate(), Err(ConfigError::NoObjects));

        // Zero objects is fine when arrivals add them.
        c.arrivals = ArrivalProcess::Poisson { rate_per_min: 5.0 };
        assert_eq!(c.validate(), Ok(()));

        let mut c = base.clone();
        c.min_speed = 2.0;
        c.max_speed = 1.0;
        assert_eq!(c.validate(), Err(ConfigError::BadSpeedRange));

        let mut c = base.clone();
        c.min_speed = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::BadSpeedRange));

        let mut c = base.clone();
        c.lifespan = LifespanConfig {
            min: Timestamp(1000),
            max: Timestamp(500),
        };
        assert_eq!(c.validate(), Err(ConfigError::BadLifespan));

        let mut c = base.clone();
        c.trajectory_hz = Hz(0.0);
        assert_eq!(c.validate(), Err(ConfigError::BadSamplingFrequency));

        let mut c = base.clone();
        c.duration = Timestamp(0);
        assert_eq!(c.validate(), Err(ConfigError::ZeroDuration));

        let mut c = base;
        c.distribution = InitialDistribution::CrowdOutliers {
            crowds: 0,
            crowd_fraction: 0.8,
            crowd_radius: 3.0,
        };
        assert_eq!(c.validate(), Err(ConfigError::BadCrowdParams));
    }

    #[test]
    fn defaults_match_paper_semantics() {
        let p = MovingPattern::default();
        assert_eq!(p.intention, Intention::Destination);
        assert!(matches!(p.behavior, Behavior::WalkStay { .. }));
        assert_eq!(InitialDistribution::default(), InitialDistribution::Uniform);
        assert_eq!(EmergingLocation::default(), EmergingLocation::Entrances);
    }
}
