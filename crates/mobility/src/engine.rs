//! The moving-object simulation engine.
//!
//! Each object lives through an *itinerary* — an alternating sequence of
//! walk and stay segments driven by its moving pattern (intention × routing
//! × behavior, paper §3.1.3) — from its birth to its death. The engine then
//! samples every itinerary at the configured trajectory frequency, yielding
//! the raw ("ground truth") trajectory data.
//!
//! Objects are simulated independently (the paper's interference-aware crowd
//! model is explicitly future work, §4) which makes generation
//! embarrassingly parallel: objects are partitioned across threads with
//! per-object RNG streams, so results are bit-identical regardless of thread
//! count. [`generate_streaming`] exposes that parallelism as a producer of
//! time-ordered per-object [`TrajectoryChunk`]s over a bounded channel, and
//! [`generate`] is its materializing wrapper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, IndoorEnvironment, ObjectId, RoutePlanner, Timestamp};

use crate::config::{
    ArrivalProcess, Behavior, ConfigError, EmergingLocation, Intention, MobilityConfig,
};
use crate::distribution::{initial_positions, uniform_point};
use crate::trajectory::{Trajectory, TrajectorySample, TrajectoryStore};

/// Summary statistics of one generation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationStats {
    pub objects: usize,
    pub initial_objects: usize,
    pub arrived_objects: usize,
    pub samples: usize,
    /// Total metres walked across all objects (plan view).
    pub total_walked_m: f64,
    /// Mean lifespan in seconds.
    pub mean_lifespan_s: f64,
}

/// Output of the Moving Object Layer.
#[derive(Debug, Clone)]
pub struct GenerationResult {
    pub trajectories: TrajectoryStore,
    pub stats: GenerationStats,
    /// Birth time of each object.
    pub births: Vec<(ObjectId, Timestamp)>,
    /// Hot-area centers when the crowd-outliers distribution was used.
    pub crowd_centers: Vec<(FloorId, Point)>,
}

/// Plan for one object's life, fixed before simulation so objects can be
/// simulated in parallel deterministically.
#[derive(Debug, Clone, Copy)]
struct ObjectPlan {
    id: ObjectId,
    birth: Timestamp,
    death: Timestamp,
    start_floor: FloorId,
    start_point: Point,
    speed: f64,
    rng_seed: u64,
}

/// One streamed unit of the Moving Object Layer's output: the complete,
/// time-ordered trajectory of one object. Chunks flow through a bounded
/// channel from the simulation workers to the consumer, so downstream
/// stages (RSSI, positioning, storage) can run while generation is still
/// in progress.
#[derive(Debug, Clone)]
pub struct TrajectoryChunk {
    pub object: ObjectId,
    pub trajectory: Trajectory,
}

/// Run-level products of [`generate_streaming`]: everything
/// [`GenerationResult`] carries except the materialized trajectories.
#[derive(Debug, Clone)]
pub struct StreamedGeneration {
    pub stats: GenerationStats,
    /// Birth time of each object.
    pub births: Vec<(ObjectId, Timestamp)>,
    /// Hot-area centers when the crowd-outliers distribution was used.
    pub crowd_centers: Vec<(FloorId, Point)>,
}

/// Default bound on in-flight trajectory chunks between the simulation
/// workers and the consumer (backpressure: workers stall rather than
/// buffering a whole run).
pub const DEFAULT_CHUNK_CHANNEL_CAPACITY: usize = 8;

/// Tuning for the chunk producer side of [`generate_streaming`].
#[derive(Debug, Clone, Copy)]
pub struct ChunkStreaming {
    /// Bound on in-flight chunks between simulation workers and the
    /// consumer.
    pub channel_capacity: usize,
    /// Cap on simulation worker threads; `0` = one per available core.
    /// Pipelines running their own consumer pool set this to their share
    /// of the core budget so the two pools don't oversubscribe the
    /// machine.
    pub max_workers: usize,
}

impl Default for ChunkStreaming {
    fn default() -> Self {
        ChunkStreaming {
            channel_capacity: DEFAULT_CHUNK_CHANNEL_CAPACITY,
            max_workers: 0,
        }
    }
}

/// Generate raw trajectories for `cfg` inside `env`, materializing the
/// whole run. Thin wrapper over [`generate_streaming`] that collects every
/// chunk into a [`TrajectoryStore`].
pub fn generate(
    env: &IndoorEnvironment,
    cfg: &MobilityConfig,
) -> Result<GenerationResult, ConfigError> {
    let mut parts: Vec<(ObjectId, Trajectory)> = Vec::with_capacity(cfg.object_count);
    let streamed = generate_streaming(env, cfg, &ChunkStreaming::default(), |c| {
        parts.push((c.object, c.trajectory));
    })?;
    Ok(GenerationResult {
        trajectories: TrajectoryStore::from_parts(parts),
        stats: streamed.stats,
        births: streamed.births,
        crowd_centers: streamed.crowd_centers,
    })
}

/// Generate raw trajectories, handing each object's trajectory to
/// `on_chunk` as soon as its simulation completes instead of materializing
/// the run. Simulation workers (`std::thread::scope`) feed a bounded
/// channel of [`TrajectoryChunk`]s; `on_chunk` runs on the calling thread.
///
/// Chunk *contents* are deterministic and identical to [`generate`]'s
/// per-object trajectories (per-object RNG streams); chunk *arrival order*
/// across objects is scheduler-dependent.
pub fn generate_streaming(
    env: &IndoorEnvironment,
    cfg: &MobilityConfig,
    stream: &ChunkStreaming,
    mut on_chunk: impl FnMut(TrajectoryChunk),
) -> Result<StreamedGeneration, ConfigError> {
    cfg.validate()?;
    let (plans, initial_objects, crowd_centers) = build_plans(env, cfg);
    let arrived_objects = plans.len() - initial_objects;
    let planner = RoutePlanner::new(env);

    // Deterministic per-object accumulators (object ids are dense indexes),
    // so the f64 walked-distance total never depends on arrival order.
    let mut walked = vec![0.0f64; plans.len()];
    let mut samples_total = 0usize;
    let mut consume = |chunk: TrajectoryChunk, walked: &mut [f64], samples_total: &mut usize| {
        walked[chunk.object.0 as usize] = chunk.trajectory.length();
        *samples_total += chunk.trajectory.len();
        on_chunk(chunk);
    };

    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if stream.max_workers > 0 {
        threads = threads.min(stream.max_workers);
    }
    if plans.len() < 32 || threads < 2 {
        for p in &plans {
            let trajectory = Trajectory::new(simulate_object(env, &planner, cfg, p));
            consume(
                TrajectoryChunk {
                    object: p.id,
                    trajectory,
                },
                &mut walked,
                &mut samples_total,
            );
        }
    } else {
        let per_worker = plans.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::sync_channel(stream.channel_capacity.max(1));
            let planner = &planner;
            for worker_plans in plans.chunks(per_worker) {
                let tx = tx.clone();
                scope.spawn(move || {
                    for p in worker_plans {
                        let trajectory = Trajectory::new(simulate_object(env, planner, cfg, p));
                        let chunk = TrajectoryChunk {
                            object: p.id,
                            trajectory,
                        };
                        // A closed channel means the consumer is gone; stop
                        // simulating.
                        if tx.send(chunk).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            for chunk in rx {
                consume(chunk, &mut walked, &mut samples_total);
            }
        });
    }

    let births: Vec<(ObjectId, Timestamp)> = plans.iter().map(|p| (p.id, p.birth)).collect();
    let mean_lifespan_s = if plans.is_empty() {
        0.0
    } else {
        plans
            .iter()
            .map(|p| p.death.since(p.birth) as f64 / 1000.0)
            .sum::<f64>()
            / plans.len() as f64
    };
    let stats = GenerationStats {
        objects: plans.len(),
        initial_objects,
        arrived_objects,
        samples: samples_total,
        total_walked_m: walked.iter().sum(),
        mean_lifespan_s,
    };
    Ok(StreamedGeneration {
        stats,
        births,
        crowd_centers,
    })
}

/// Fix every object's life plan up front (deterministic, single-threaded)
/// so simulation can fan out across workers.
fn build_plans(
    env: &IndoorEnvironment,
    cfg: &MobilityConfig,
) -> (Vec<ObjectPlan>, usize, Vec<(FloorId, Point)>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // --- Initial batch. ---
    let placed = initial_positions(env, cfg.distribution, cfg.object_count, &mut rng);
    let mut plans: Vec<ObjectPlan> = Vec::with_capacity(cfg.object_count);
    for (i, p) in placed.placements.iter().enumerate() {
        let lifespan = sample_lifespan(cfg, &mut rng);
        plans.push(ObjectPlan {
            id: ObjectId(i as u32),
            birth: Timestamp::ZERO,
            death: Timestamp(lifespan.min(cfg.duration.0)),
            start_floor: p.floor,
            start_point: p.point,
            speed: rng.gen_range(cfg.min_speed..=cfg.max_speed),
            rng_seed: mix_seed(cfg.seed, i as u64),
        });
    }

    // --- Poisson arrivals (paper §3.1.2). ---
    let initial_objects = plans.len();
    if let ArrivalProcess::Poisson { rate_per_min } = cfg.arrivals {
        if rate_per_min > 0.0 {
            let rate_per_ms = rate_per_min / 60_000.0;
            let mut t = 0.0_f64;
            loop {
                // Exponential inter-arrival times.
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                t += -u.ln() / rate_per_ms;
                if t >= cfg.duration.0 as f64 {
                    break;
                }
                let birth = Timestamp(t as u64);
                let (floor, point) = emerging_point(env, cfg.emerging, &mut rng);
                let lifespan = sample_lifespan(cfg, &mut rng);
                let idx = plans.len();
                plans.push(ObjectPlan {
                    id: ObjectId(idx as u32),
                    birth,
                    death: Timestamp((birth.0 + lifespan).min(cfg.duration.0)),
                    start_floor: floor,
                    start_point: point,
                    speed: rng.gen_range(cfg.min_speed..=cfg.max_speed),
                    rng_seed: mix_seed(cfg.seed, idx as u64),
                });
            }
        }
    }
    (plans, initial_objects, placed.crowd_centers)
}

fn sample_lifespan(cfg: &MobilityConfig, rng: &mut StdRng) -> u64 {
    if cfg.lifespan.min == cfg.lifespan.max {
        cfg.lifespan.min.0
    } else {
        rng.gen_range(cfg.lifespan.min.0..=cfg.lifespan.max.0)
    }
}

fn emerging_point(
    env: &IndoorEnvironment,
    emerging: EmergingLocation,
    rng: &mut StdRng,
) -> (FloorId, Point) {
    match emerging {
        EmergingLocation::Anywhere => uniform_point(env, rng),
        EmergingLocation::Entrances => {
            let entrances: Vec<_> = env.entrances().collect();
            if entrances.is_empty() {
                return uniform_point(env, rng);
            }
            let d = entrances[rng.gen_range(0..entrances.len())];
            // Inset into the entrance partition so the point is indoors.
            let target = env.partition(d.partitions.0).polygon.centroid();
            let p = match d.position.to(target).normalized() {
                Some(u) => d.position + u * 0.5,
                None => d.position,
            };
            if env.locate(d.floor, p).is_some() {
                (d.floor, p)
            } else {
                (d.floor, target)
            }
        }
    }
}

fn mix_seed(seed: u64, idx: u64) -> u64 {
    // SplitMix64 step: decorrelates per-object streams.
    let mut z = seed ^ idx.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One itinerary segment: where the object is over a time interval.
enum Segment {
    Stay {
        floor: FloorId,
        pos: Point,
        to: Timestamp,
    },
    Walk {
        route: vita_indoor::Route,
        speed: f64,
        from: Timestamp,
        to: Timestamp,
    },
    /// Resumption of a walk after a mid-route pause: progress restarts from
    /// `split_dist` metres along the same route.
    WalkTail {
        route: vita_indoor::Route,
        speed: f64,
        split_dist: f64,
        from: Timestamp,
        to: Timestamp,
    },
}

impl Segment {
    fn end(&self) -> Timestamp {
        match self {
            Segment::Stay { to, .. } | Segment::Walk { to, .. } | Segment::WalkTail { to, .. } => {
                *to
            }
        }
    }

    fn position_at(&self, t: Timestamp) -> (FloorId, Point) {
        match self {
            Segment::Stay { floor, pos, .. } => (*floor, *pos),
            Segment::Walk {
                route, speed, from, ..
            } => {
                let dt = t.since(*from) as f64 / 1000.0;
                route.position_at_distance(speed * dt)
            }
            Segment::WalkTail {
                route,
                speed,
                split_dist,
                from,
                ..
            } => {
                let dt = t.since(*from) as f64 / 1000.0;
                route.position_at_distance(split_dist + speed * dt)
            }
        }
    }
}

/// Simulate one object's life and emit its trajectory samples.
fn simulate_object(
    env: &IndoorEnvironment,
    planner: &RoutePlanner<'_>,
    cfg: &MobilityConfig,
    plan: &ObjectPlan,
) -> Vec<TrajectorySample> {
    let mut rng = StdRng::seed_from_u64(plan.rng_seed);
    let period = cfg.trajectory_hz.period_ms();
    let building = BuildingId(0);

    let mut segments: Vec<Segment> = Vec::new();
    let mut t = plan.birth;
    let mut floor = plan.start_floor;
    let mut pos = plan.start_point;

    // Build the itinerary until the object dies.
    while t < plan.death {
        // Optional leading stay (walk-stay behavior starts "somewhere").
        let (stay_min, stay_max, pause_prob) = match cfg.pattern.behavior {
            Behavior::ContinuousWalk => (0u64, 0u64, 0.0),
            Behavior::WalkStay {
                stay_min,
                stay_max,
                pause_on_path_prob,
            } => (stay_min.0, stay_max.0, pause_on_path_prob),
        };

        // Choose the next destination per the intention model.
        let dest = choose_destination(env, cfg.pattern.intention, floor, pos, &mut rng);
        let route =
            match dest.and_then(|d| planner.route((floor, pos), d, cfg.pattern.routing).ok()) {
                Some(r) => r,
                None => {
                    // Nowhere to go (e.g. directionality trap): idle out the rest
                    // of the lifespan.
                    segments.push(Segment::Stay {
                        floor,
                        pos,
                        to: plan.death,
                    });
                    break;
                }
            };

        // Possibly pause part-way (behavior: "staying at the destination or
        // a location on path").
        let walk_secs = route.total_distance / plan.speed.max(0.05);
        let walk_ms = (walk_secs * 1000.0).ceil() as u64;
        let pause_here = pause_prob > 0.0 && rng.gen_bool(pause_prob.clamp(0.0, 1.0));
        if pause_here && route.total_distance > 2.0 {
            // Split the walk at a random fraction with a mid-route stay.
            let frac = rng.gen_range(0.2..0.8);
            let d_split = route.total_distance * frac;
            let t_split = t.advance((walk_ms as f64 * frac) as u64);
            let (mid_floor, mid_pos) = route.position_at_distance(d_split);
            segments.push(Segment::Walk {
                route: route.clone(),
                speed: plan.speed,
                from: t,
                to: t_split,
            });
            let pause_ms = if stay_max > stay_min {
                rng.gen_range(stay_min..=stay_max) / 2
            } else {
                stay_min / 2
            };
            let t_resume = t_split.advance(pause_ms);
            segments.push(Segment::Stay {
                floor: mid_floor,
                pos: mid_pos,
                to: t_resume,
            });
            // Resume: the remaining walk is re-timed from the split point.
            let remain_ms = walk_ms.saturating_sub((walk_ms as f64 * frac) as u64);
            let t_arrive = t_resume.advance(remain_ms);
            segments.push(Segment::WalkTail {
                route: route.clone(),
                speed: plan.speed,
                split_dist: d_split,
                from: t_resume,
                to: t_arrive,
            });
            t = t_arrive;
        } else {
            let t_arrive = t.advance(walk_ms);
            segments.push(Segment::Walk {
                route: route.clone(),
                speed: plan.speed,
                from: t,
                to: t_arrive,
            });
            t = t_arrive;
        }
        let endw = route.end();
        floor = endw.floor;
        pos = endw.position;

        // Stay at the destination.
        if stay_max > 0 {
            let stay_ms = if stay_max > stay_min {
                rng.gen_range(stay_min..=stay_max)
            } else {
                stay_min
            };
            let t_leave = t.advance(stay_ms);
            segments.push(Segment::Stay {
                floor,
                pos,
                to: t_leave,
            });
            t = t_leave;
        }
    }

    // Sample the itinerary at the trajectory frequency.
    let mut samples = Vec::new();
    let mut seg_iter = segments.iter();
    let mut cur = seg_iter.next();
    let mut ts = plan.birth;
    while ts <= plan.death {
        while let Some(seg) = cur {
            if ts <= seg.end() {
                break;
            }
            cur = seg_iter.next();
        }
        let (f, p) = match cur {
            Some(seg) => seg.position_at(ts),
            None => (floor, pos),
        };
        samples.push(TrajectorySample::new(plan.id, building, f, p, ts));
        if period == u64::MAX {
            break;
        }
        ts = ts.advance(period);
    }
    samples
}

/// Pick the next destination per the intention model.
fn choose_destination(
    env: &IndoorEnvironment,
    intention: Intention,
    floor: FloorId,
    pos: Point,
    rng: &mut StdRng,
) -> Option<(FloorId, Point)> {
    match intention {
        Intention::Destination => {
            // Any partition in the building, area-weighted.
            Some(uniform_point(env, rng))
        }
        Intention::RandomWay => {
            // Wander: a random point in the current partition or in a
            // partition one traversable door away.
            let current = env.locate(floor, pos)?;
            let mut options: Vec<vita_indoor::PartitionId> = vec![current];
            for d in env.doors_of(current) {
                if d.traversable_from(current) {
                    if let Some(next) = d.other_side(current) {
                        options.push(next);
                    }
                }
            }
            let pid = options[rng.gen_range(0..options.len())];
            let p = crate::distribution::point_in_partition(env, pid, rng);
            Some((env.partition(pid).floor, p))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{InitialDistribution, LifespanConfig, MovingPattern};
    use vita_dbi::{office, SynthParams};
    use vita_indoor::{build_environment, BuildParams, Hz, RoutingSchema};

    fn env(floors: usize) -> IndoorEnvironment {
        let model = office(&SynthParams::with_floors(floors));
        build_environment(&model, &BuildParams::default())
            .unwrap()
            .env
    }

    fn quick_cfg() -> MobilityConfig {
        MobilityConfig {
            object_count: 10,
            lifespan: LifespanConfig {
                min: Timestamp(30_000),
                max: Timestamp(60_000),
            },
            duration: Timestamp(60_000),
            trajectory_hz: Hz(1.0),
            seed: 99,
            ..Default::default()
        }
    }

    #[test]
    fn generates_one_trajectory_per_object() {
        let env = env(1);
        let res = generate(&env, &quick_cfg()).unwrap();
        assert_eq!(res.trajectories.object_count(), 10);
        assert_eq!(res.stats.objects, 10);
        assert_eq!(res.stats.initial_objects, 10);
        assert_eq!(res.stats.arrived_objects, 0);
        assert_eq!(res.stats.samples, res.trajectories.sample_count());
        assert!(res.stats.samples > 0);
    }

    #[test]
    fn samples_respect_frequency_and_lifespan() {
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.trajectory_hz = Hz(2.0); // 500 ms period
        let res = generate(&env, &cfg).unwrap();
        for (o, tr) in res.trajectories.iter() {
            assert!(!tr.is_empty(), "object {o} has no samples");
            // Samples are spaced exactly one period apart.
            for w in tr.samples().windows(2) {
                assert_eq!(w[1].t.since(w[0].t), 500, "irregular sampling");
            }
            // Lifespan within config bounds (clamped by duration).
            let life = tr.end_time().unwrap().since(tr.start_time().unwrap());
            assert!(life <= 60_000);
        }
    }

    #[test]
    fn all_samples_are_indoors() {
        let env = env(2);
        let mut cfg = quick_cfg();
        cfg.object_count = 20;
        let res = generate(&env, &cfg).unwrap();
        let mut checked = 0;
        for (_, tr) in res.trajectories.iter() {
            for s in tr.samples() {
                assert!(
                    env.locate(s.floor(), s.point()).is_some(),
                    "sample {} on {:?} is outdoors",
                    s.point(),
                    s.floor()
                );
                checked += 1;
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let env = env(1);
        let cfg = quick_cfg();
        let a = generate(&env, &cfg).unwrap();
        let b = generate(&env, &cfg).unwrap();
        assert_eq!(a.stats.samples, b.stats.samples);
        for ((oa, ta), (ob, tb)) in a.trajectories.iter().zip(b.trajectories.iter()) {
            assert_eq!(oa, ob);
            for (sa, sb) in ta.samples().iter().zip(tb.samples()) {
                assert_eq!(sa.t, sb.t);
                assert!(sa.point().approx_eq(sb.point()));
            }
        }
    }

    #[test]
    fn parallel_path_matches_sequential_path() {
        // 40 objects triggers the threaded path; same seed must give the
        // same trajectories as a 10-object run's shared prefix... instead,
        // verify determinism across repeated parallel runs and that object
        // streams are independent of count: object 0's trajectory with 40
        // objects equals object 0's with 40 objects re-run.
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.object_count = 40;
        let a = generate(&env, &cfg).unwrap();
        let b = generate(&env, &cfg).unwrap();
        let ta = a.trajectories.get(ObjectId(7)).unwrap();
        let tb = b.trajectories.get(ObjectId(7)).unwrap();
        assert_eq!(ta.len(), tb.len());
        for (sa, sb) in ta.samples().iter().zip(tb.samples()) {
            assert!(sa.point().approx_eq(sb.point()));
        }
    }

    #[test]
    fn objects_actually_move() {
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.pattern.behavior = Behavior::ContinuousWalk;
        let res = generate(&env, &cfg).unwrap();
        assert!(
            res.stats.total_walked_m > 50.0,
            "objects barely moved: {} m",
            res.stats.total_walked_m
        );
    }

    #[test]
    fn walk_stay_reduces_distance_vs_continuous() {
        let env = env(1);
        let mut walk = quick_cfg();
        walk.pattern.behavior = Behavior::ContinuousWalk;
        let mut stay = quick_cfg();
        stay.pattern.behavior = Behavior::WalkStay {
            stay_min: Timestamp(20_000),
            stay_max: Timestamp(40_000),
            pause_on_path_prob: 0.2,
        };
        let rw = generate(&env, &walk).unwrap();
        let rs = generate(&env, &stay).unwrap();
        assert!(
            rs.stats.total_walked_m < rw.stats.total_walked_m,
            "walk-stay {} m !< continuous {} m",
            rs.stats.total_walked_m,
            rw.stats.total_walked_m
        );
    }

    #[test]
    fn poisson_arrivals_add_objects() {
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.object_count = 5;
        cfg.arrivals = ArrivalProcess::Poisson { rate_per_min: 30.0 };
        cfg.duration = Timestamp(120_000); // 2 min → expect ~60 arrivals
        let res = generate(&env, &cfg).unwrap();
        assert!(
            res.stats.arrived_objects > 20,
            "only {} arrivals",
            res.stats.arrived_objects
        );
        assert!(res.stats.arrived_objects < 150);
        // Arrivals are born after t=0.
        let late_births = res.births.iter().filter(|(_, t)| t.0 > 0).count();
        assert_eq!(late_births, res.stats.arrived_objects);
        // Arrived objects' first samples sit near an entrance.
        let entrance_positions: Vec<Point> = env.entrances().map(|d| d.position).collect();
        for (o, birth) in res.births.iter().filter(|(_, t)| t.0 > 0).take(10) {
            let tr = res.trajectories.get(*o).unwrap();
            let first = tr.samples().first().unwrap();
            assert_eq!(first.t, *birth);
            let near = entrance_positions
                .iter()
                .any(|e| e.dist(first.point()) < 2.0);
            assert!(near, "arrival {o} did not emerge at an entrance");
        }
    }

    #[test]
    fn random_way_stays_local_per_hop() {
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.pattern = MovingPattern {
            intention: Intention::RandomWay,
            routing: RoutingSchema::MinDistance,
            behavior: Behavior::ContinuousWalk,
        };
        let res = generate(&env, &cfg).unwrap();
        // Wandering objects still produce valid, indoor samples.
        assert!(res.stats.samples > 0);
        for (_, tr) in res.trajectories.iter() {
            for s in tr.samples() {
                assert!(env.locate(s.floor(), s.point()).is_some());
            }
        }
    }

    #[test]
    fn multi_floor_generation_visits_both_floors() {
        let env = env(2);
        let mut cfg = quick_cfg();
        cfg.object_count = 30;
        cfg.duration = Timestamp(300_000);
        cfg.lifespan = LifespanConfig {
            min: Timestamp(300_000),
            max: Timestamp(300_000),
        };
        cfg.pattern.behavior = Behavior::ContinuousWalk;
        let res = generate(&env, &cfg).unwrap();
        let mut floors_seen = std::collections::HashSet::new();
        for (_, tr) in res.trajectories.iter() {
            for s in tr.samples() {
                floors_seen.insert(s.floor());
            }
        }
        assert!(floors_seen.len() == 2, "objects never changed floors");
    }

    #[test]
    fn streaming_chunks_match_materialized_generation() {
        // 40 objects exercises the threaded producer path; every chunk must
        // equal the corresponding trajectory of the batch path bit-for-bit.
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.object_count = 40;
        let batch = generate(&env, &cfg).unwrap();
        let mut chunks: Vec<TrajectoryChunk> = Vec::new();
        let stream = ChunkStreaming {
            channel_capacity: 4,
            max_workers: 0,
        };
        let streamed = generate_streaming(&env, &cfg, &stream, |c| chunks.push(c)).unwrap();

        assert_eq!(streamed.stats.objects, batch.stats.objects);
        assert_eq!(streamed.stats.samples, batch.stats.samples);
        assert_eq!(streamed.births, batch.births);
        assert!((streamed.stats.total_walked_m - batch.stats.total_walked_m).abs() < 1e-9);
        assert_eq!(chunks.len(), batch.trajectories.object_count());
        chunks.sort_by_key(|c| c.object);
        for c in &chunks {
            let tr = batch.trajectories.get(c.object).unwrap();
            assert_eq!(c.trajectory.len(), tr.len());
            for (a, b) in c.trajectory.samples().iter().zip(tr.samples()) {
                assert_eq!(a.t, b.t);
                assert_eq!(a.loc.floor, b.loc.floor);
                assert!(a.point().approx_eq(b.point()));
            }
        }
    }

    #[test]
    fn streaming_chunks_are_time_ordered_within_object() {
        let env = env(1);
        let cfg = quick_cfg();
        let stream = ChunkStreaming {
            channel_capacity: 2,
            max_workers: 1,
        };
        generate_streaming(&env, &cfg, &stream, |c| {
            assert!(c.trajectory.samples().windows(2).all(|w| w[0].t <= w[1].t));
            assert!(!c.trajectory.is_empty());
        })
        .unwrap();
    }

    #[test]
    fn invalid_config_rejected() {
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.max_speed = 0.0;
        assert!(generate(&env, &cfg).is_err());
    }

    #[test]
    fn crowd_distribution_centers_reported() {
        let env = env(1);
        let mut cfg = quick_cfg();
        cfg.distribution = InitialDistribution::CrowdOutliers {
            crowds: 2,
            crowd_fraction: 0.8,
            crowd_radius: 3.0,
        };
        let res = generate(&env, &cfg).unwrap();
        assert_eq!(res.crowd_centers.len(), 2);
    }
}
