#![forbid(unsafe_code)]
//! # vita-mobility
//!
//! The Moving Object Layer (paper §2, §3.1): generates indoor moving objects
//! and their raw ("ground truth") trajectory data.
//!
//! * [`config`] — every knob the paper names: object count, speed range,
//!   initial distribution (uniform / crowd-outliers), lifespans and Poisson
//!   arrivals, moving pattern (intention × routing × behavior), and the
//!   trajectory sampling frequency.
//! * [`distribution`] — initial placement models.
//! * [`engine`] — the deterministic, parallel simulation that turns a
//!   configuration into trajectories.
//! * [`trajectory`] — the `(o_id, loc, t)` record format (paper §4.2) with
//!   interpolation helpers used for ground-truth comparison.

pub mod config;
pub mod distribution;
pub mod engine;
pub mod trajectory;

pub use config::{
    ArrivalProcess, Behavior, ConfigError, EmergingLocation, InitialDistribution, Intention,
    LifespanConfig, MobilityConfig, MovingPattern,
};
pub use distribution::{
    initial_positions, point_in_partition, uniform_point, InitialPlacement, Placement,
};
pub use engine::{
    generate, generate_streaming, ChunkStreaming, GenerationResult, GenerationStats,
    StreamedGeneration, TrajectoryChunk, DEFAULT_CHUNK_CHANNEL_CAPACITY,
};
pub use trajectory::{Trajectory, TrajectorySample, TrajectoryStore};
