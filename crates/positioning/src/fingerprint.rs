//! Fingerprinting (paper §3.3.2).
//!
//! "Fingerprinting associates RSSI fingerprints to locations. ... In the
//! offline phase, a site-survey is required to collect the fingerprints for
//! a set of reference locations. The collected data is stored in radio map
//! as training data. When constructing a radio map, Vita first allows users
//! to select a set of reference locations on a given floor. After that, Vita
//! simulates some objects to collect the fingerprints at the selected
//! reference locations ... in the online phase, users can employ various
//! classification algorithms such as NaiveBayes or kNN to infer locations."

use rand::rngs::StdRng;
use rand::SeedableRng;

use vita_devices::DeviceRegistry;
use vita_geometry::{count_crossings, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, Hz, IndoorEnvironment, Loc, ObjectId, Timestamp};
use vita_rssi::{PathLossModel, RssiStore};

use crate::output::{Fix, ProbFix};

/// RSSI value standing in for "device not heard" in fingerprint vectors.
pub const NOT_HEARD_DBM: f64 = -100.0;

/// One reference location's entry in the radio map.
#[derive(Debug, Clone)]
pub struct RadioMapEntry {
    pub point: Point,
    pub floor: FloorId,
    /// Mean RSSI per device (aligned with [`RadioMap::devices`]);
    /// [`NOT_HEARD_DBM`] when the device was out of range in the survey.
    pub mean: Vec<f64>,
    /// Per-device sample variance from the survey (noise floor applied).
    pub var: Vec<f64>,
}

/// The radio map: the offline-phase product.
#[derive(Debug, Clone)]
pub struct RadioMap {
    pub devices: Vec<DeviceId>,
    pub entries: Vec<RadioMapEntry>,
}

impl RadioMap {
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Reference-location selection for the offline site survey.
#[derive(Debug, Clone)]
pub enum ReferenceSelection {
    /// A square grid with the given spacing (metres) clipped to partitions.
    Grid { spacing: f64 },
    /// Explicit user-chosen points.
    Points(Vec<(FloorId, Point)>),
}

/// Offline-phase configuration.
#[derive(Debug, Clone)]
pub struct SurveyConfig {
    pub selection: ReferenceSelection,
    /// Number of simulated measurements collected per (location, device).
    pub samples_per_location: usize,
    pub path_loss: PathLossModel,
    pub seed: u64,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            selection: ReferenceSelection::Grid { spacing: 3.0 },
            samples_per_location: 10,
            path_loss: PathLossModel::default(),
            seed: 0xF00D,
        }
    }
}

/// Build the radio map for `floor` by simulating the site survey.
pub fn build_radio_map(
    env: &IndoorEnvironment,
    devices: &DeviceRegistry,
    floor: FloorId,
    cfg: &SurveyConfig,
) -> RadioMap {
    let device_ids: Vec<DeviceId> = devices.on_floor(floor).map(|d| d.id).collect();
    let walls = env.walls_with_obstacles(floor);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let points: Vec<(FloorId, Point)> = match &cfg.selection {
        ReferenceSelection::Points(ps) => ps.iter().filter(|(f, _)| *f == floor).copied().collect(),
        ReferenceSelection::Grid { spacing } => {
            let mut ps = Vec::new();
            let spacing = spacing.max(0.5);
            for &pid in &env.floor(floor).partitions {
                let poly = &env.partition(pid).polygon;
                let bb = poly.bbox();
                let mut y = bb.min.y + spacing / 2.0;
                while y < bb.max.y {
                    let mut x = bb.min.x + spacing / 2.0;
                    while x < bb.max.x {
                        let p = Point::new(x, y);
                        if poly.contains(p) {
                            ps.push((floor, p));
                        }
                        x += spacing;
                    }
                    y += spacing;
                }
            }
            ps
        }
    };

    let mut entries = Vec::with_capacity(points.len());
    for (_, p) in points {
        let mut mean = Vec::with_capacity(device_ids.len());
        let mut var = Vec::with_capacity(device_ids.len());
        for did in &device_ids {
            let dev = devices.get(*did).expect("device exists");
            let dist = dev.position.dist(p);
            if dist > dev.spec.detection_range {
                mean.push(NOT_HEARD_DBM);
                var.push(4.0); // generic floor variance for unheard devices
                continue;
            }
            let crossings = count_crossings(dev.position, p, &walls);
            // Simulated survey: `samples_per_location` noisy readings.
            let n = cfg.samples_per_location.max(1);
            let samples: Vec<f64> = (0..n)
                .map(|_| {
                    cfg.path_loss
                        .measure(dist, dev.spec.rssi_at_1m, crossings, 0.0, &mut rng)
                })
                .collect();
            let m = samples.iter().sum::<f64>() / n as f64;
            let v = samples.iter().map(|s| (s - m) * (s - m)).sum::<f64>() / n as f64;
            mean.push(m);
            var.push(v.max(0.25)); // avoid zero variance in the Bayes term
        }
        entries.push(RadioMapEntry {
            point: p,
            floor,
            mean,
            var,
        });
    }

    RadioMap {
        devices: device_ids,
        entries,
    }
}

/// Online-phase configuration shared by both classifiers.
#[derive(Debug, Clone, Copy)]
pub struct FingerprintConfig {
    /// Positioning sampling frequency (independent of trajectory sampling).
    pub sampling_hz: Hz,
    /// Aggregation window per estimation instant.
    pub window_ms: u64,
    /// k for the kNN classifier.
    pub k: usize,
    /// Number of candidates reported per probabilistic fix.
    pub top_candidates: usize,
}

impl Default for FingerprintConfig {
    fn default() -> Self {
        FingerprintConfig {
            sampling_hz: Hz(0.5),
            window_ms: 3_000,
            k: 3,
            top_candidates: 5,
        }
    }
}

/// Assemble the observed fingerprint vector for one object in one window.
fn observed_vector(
    map: &RadioMap,
    window: &[vita_rssi::RssiMeasurement],
    object: ObjectId,
) -> (Vec<f64>, usize) {
    let mut sums = vec![0.0f64; map.devices.len()];
    let mut counts = vec![0usize; map.devices.len()];
    for m in window.iter().filter(|m| m.object == object) {
        if let Some(ix) = map.devices.iter().position(|d| *d == m.device) {
            sums[ix] += m.rssi;
            counts[ix] += 1;
        }
    }
    let mut heard = 0;
    let v: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(s, c)| {
            if *c > 0 {
                heard += 1;
                s / *c as f64
            } else {
                NOT_HEARD_DBM
            }
        })
        .collect();
    (v, heard)
}

/// Deterministic kNN fingerprinting: fixes are the centroid of the k nearest
/// radio-map entries in signal space.
pub fn knn_fingerprint(map: &RadioMap, rssi: &RssiStore, cfg: &FingerprintConfig) -> Vec<Fix> {
    run_windows(rssi, cfg, |object, window, t| {
        let (obs, heard) = observed_vector(map, window, object);
        if heard == 0 || map.is_empty() {
            return None;
        }
        let mut scored: Vec<(usize, f64)> = map
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (i, signal_distance(&obs, &e.mean)))
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let k = cfg.k.max(1).min(scored.len());
        let mut x = 0.0;
        let mut y = 0.0;
        for (i, _) in &scored[..k] {
            x += map.entries[*i].point.x;
            y += map.entries[*i].point.y;
        }
        let floor = map.entries[scored[0].0].floor;
        Some(Fix {
            object,
            loc: Loc::point(BuildingId(0), floor, Point::new(x / k as f64, y / k as f64)),
            t,
        })
    })
}

/// Probabilistic Naive-Bayes fingerprinting: per-device Gaussian likelihoods
/// over radio-map entries, normalized into `{(loc_i, prob_i)}`.
pub fn naive_bayes_fingerprint(
    map: &RadioMap,
    rssi: &RssiStore,
    cfg: &FingerprintConfig,
) -> Vec<ProbFix> {
    run_windows(rssi, cfg, |object, window, t| {
        let (obs, heard) = observed_vector(map, window, object);
        if heard == 0 || map.is_empty() {
            return None;
        }
        // Log-likelihood per entry.
        let mut lls: Vec<(usize, f64)> = map
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut ll = 0.0;
                for ((o, m), v) in obs.iter().zip(&e.mean).zip(&e.var) {
                    let var = v.max(0.25);
                    let d = o - m;
                    ll += -0.5 * (d * d / var + var.ln());
                }
                (i, ll)
            })
            .collect();
        lls.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        lls.truncate(cfg.top_candidates.max(1));
        // Softmax over the shortlist (log-sum-exp for stability).
        let max_ll = lls[0].1;
        let weights: Vec<f64> = lls.iter().map(|(_, ll)| (ll - max_ll).exp()).collect();
        let wsum: f64 = weights.iter().sum();
        let candidates: Vec<(Loc, f64)> = lls
            .iter()
            .zip(&weights)
            .map(|((i, _), w)| {
                let e = &map.entries[*i];
                (Loc::point(BuildingId(0), e.floor, e.point), w / wsum)
            })
            .collect();
        Some(ProbFix {
            object,
            candidates,
            t,
        })
    })
}

fn signal_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Drive per-object estimation over the positioning sampling grid.
///
/// Instants lie on the absolute grid (multiples of the period) and extend
/// through the last window that can contain a measurement, mirroring
/// [`crate::trilaterate`] — the property that makes the online phase
/// chunkable per object.
fn run_windows<T, F>(rssi: &RssiStore, cfg: &FingerprintConfig, mut f: F) -> Vec<T>
where
    F: FnMut(ObjectId, &[vita_rssi::RssiMeasurement], Timestamp) -> Option<T>,
{
    let mut out = Vec::new();
    let Some((t0, t1)) = rssi.time_range() else {
        return out;
    };
    let period = cfg.sampling_hz.period_ms();
    if period == u64::MAX {
        return out;
    }
    let horizon = Timestamp(t1.0 + cfg.window_ms);
    let mut t = Timestamp(t0.0.div_ceil(period) * period);
    while t <= horizon {
        let from = Timestamp(t.0.saturating_sub(cfg.window_ms));
        let window = rssi.window(from, t.advance(1));
        let mut objects: Vec<ObjectId> = window.iter().map(|m| m.object).collect();
        objects.sort_unstable();
        objects.dedup();
        for object in objects {
            if let Some(v) = f(object, window, t) {
                out.push(v);
            }
        }
        t = t.advance(period);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, SynthParams};
    use vita_devices::{deploy, DeploymentModel, DeviceSpec, DeviceType};
    use vita_indoor::{build_environment, BuildParams};
    use vita_rssi::{NoiseModel, RssiMeasurement};

    fn setup() -> (IndoorEnvironment, DeviceRegistry) {
        let model = office(&SynthParams::with_floors(1));
        let env = build_environment(&model, &BuildParams::default())
            .unwrap()
            .env;
        let mut reg = DeviceRegistry::new();
        deploy(
            &env,
            &mut reg,
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            10,
        );
        (env, reg)
    }

    fn survey(env: &IndoorEnvironment, reg: &DeviceRegistry) -> RadioMap {
        build_radio_map(
            env,
            reg,
            FloorId(0),
            &SurveyConfig {
                selection: ReferenceSelection::Grid { spacing: 3.0 },
                samples_per_location: 8,
                path_loss: PathLossModel {
                    fluctuation: NoiseModel::Gaussian { sigma: 1.0 },
                    ..Default::default()
                },
                seed: 1,
            },
        )
    }

    /// Synthesize window RSSI for a static object at `p`.
    fn rssi_at(
        env: &IndoorEnvironment,
        reg: &DeviceRegistry,
        p: Point,
        noise: NoiseModel,
        seed: u64,
    ) -> RssiStore {
        let model = PathLossModel {
            fluctuation: noise,
            ..Default::default()
        };
        let walls = env.walls_with_obstacles(FloorId(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ms = Vec::new();
        for t in (0..6000).step_by(1000) {
            for dev in reg.on_floor(FloorId(0)) {
                let d = dev.position.dist(p);
                if d > dev.spec.detection_range {
                    continue;
                }
                let crossings = count_crossings(dev.position, p, &walls);
                ms.push(RssiMeasurement {
                    object: ObjectId(0),
                    device: dev.id,
                    rssi: model.measure(d, dev.spec.rssi_at_1m, crossings, 0.0, &mut rng),
                    t: Timestamp(t),
                });
            }
        }
        RssiStore::new(ms)
    }

    #[test]
    fn radio_map_covers_all_partitions() {
        let (env, reg) = setup();
        let map = survey(&env, &reg);
        assert!(map.len() > 30, "radio map too sparse: {}", map.len());
        assert_eq!(map.devices.len(), 10);
        // Every entry is indoors and has aligned vectors.
        for e in &map.entries {
            assert!(env.locate(e.floor, e.point).is_some());
            assert_eq!(e.mean.len(), map.devices.len());
            assert_eq!(e.var.len(), map.devices.len());
        }
    }

    #[test]
    fn knn_localizes_static_object() {
        let (env, reg) = setup();
        let map = survey(&env, &reg);
        let target = Point::new(20.0, 12.0); // mid-corridor
        let store = rssi_at(&env, &reg, target, NoiseModel::Gaussian { sigma: 1.0 }, 7);
        let cfg = FingerprintConfig {
            sampling_hz: Hz(1.0),
            window_ms: 3000,
            k: 3,
            top_candidates: 5,
        };
        let fixes = knn_fingerprint(&map, &store, &cfg);
        assert!(!fixes.is_empty());
        for f in &fixes {
            let err = f.loc.as_point().unwrap().dist(target);
            assert!(err < 6.0, "kNN error {err} m");
        }
    }

    #[test]
    fn naive_bayes_probabilities_are_normalized_and_ranked() {
        let (env, reg) = setup();
        let map = survey(&env, &reg);
        let target = Point::new(8.0, 3.0); // inside an office
        let store = rssi_at(&env, &reg, target, NoiseModel::Gaussian { sigma: 1.0 }, 9);
        let cfg = FingerprintConfig::default();
        let fixes = naive_bayes_fingerprint(&map, &store, &cfg);
        assert!(!fixes.is_empty());
        for pf in &fixes {
            let sum: f64 = pf.candidates.iter().map(|(_, p)| p).sum();
            assert!((sum - 1.0).abs() < 1e-9, "probabilities sum to {sum}");
            // Sorted descending.
            for w in pf.candidates.windows(2) {
                assert!(w[0].1 >= w[1].1 - 1e-12);
            }
            // MAP candidate lands near the target.
            let map_pt = pf.map_estimate().unwrap().0.as_point().unwrap();
            assert!(
                map_pt.dist(target) < 7.0,
                "MAP error {}",
                map_pt.dist(target)
            );
        }
    }

    #[test]
    fn explicit_reference_points_are_respected() {
        let (env, reg) = setup();
        let pts = vec![
            (FloorId(0), Point::new(3.0, 3.0)),
            (FloorId(0), Point::new(21.0, 12.0)),
            (FloorId(0), Point::new(39.0, 3.0)),
        ];
        let map = build_radio_map(
            &env,
            &reg,
            FloorId(0),
            &SurveyConfig {
                selection: ReferenceSelection::Points(pts.clone()),
                ..Default::default()
            },
        );
        assert_eq!(map.len(), 3);
        for (e, (_, p)) in map.entries.iter().zip(&pts) {
            assert!(e.point.approx_eq(*p));
        }
    }

    #[test]
    fn no_measurements_no_fixes() {
        let (env, reg) = setup();
        let map = survey(&env, &reg);
        let empty = RssiStore::default();
        assert!(knn_fingerprint(&map, &empty, &FingerprintConfig::default()).is_empty());
        assert!(naive_bayes_fingerprint(&map, &empty, &FingerprintConfig::default()).is_empty());
    }

    #[test]
    fn unheard_devices_use_sentinel() {
        let (env, reg) = setup();
        let map = survey(&env, &reg);
        // Some entry must be out of range of at least one device.
        let any_unheard = map.entries.iter().any(|e| e.mean.contains(&NOT_HEARD_DBM));
        assert!(any_unheard, "expected some unheard device entries");
    }

    #[test]
    fn grid_spacing_controls_density() {
        let (env, reg) = setup();
        let coarse = build_radio_map(
            &env,
            &reg,
            FloorId(0),
            &SurveyConfig {
                selection: ReferenceSelection::Grid { spacing: 6.0 },
                ..Default::default()
            },
        );
        let fine = build_radio_map(
            &env,
            &reg,
            FloorId(0),
            &SurveyConfig {
                selection: ReferenceSelection::Grid { spacing: 2.0 },
                ..Default::default()
            },
        );
        assert!(fine.len() > 3 * coarse.len());
    }
}
