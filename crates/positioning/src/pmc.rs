//! The Positioning Method Controller (PMC, paper §2).
//!
//! "The Positioning Method Controller reads objects' raw RSSI data and
//! estimates the locations according to the chosen positioning method and
//! relevant configuration. Note that another sampling frequency can be
//! specified in PMC for generating the positioning data. This is different
//! from the one for generating the trajectory data."
//!
//! The controller also enforces the device/method compatibility matrix of
//! paper §5 ("all three methods can be applied to Wi-Fi devices, whereas
//! fingerprinting currently does not apply to RFID and Bluetooth devices").

use vita_devices::{DeviceRegistry, DeviceType};
use vita_indoor::{FloorId, IndoorEnvironment};
use vita_rssi::{PathLossModel, RssiStore};

use crate::fingerprint::{
    build_radio_map, knn_fingerprint, naive_bayes_fingerprint, FingerprintConfig, RadioMap,
    SurveyConfig,
};
use crate::output::PositioningData;
use crate::proximity::{proximity_records, ProximityConfig};
use crate::trilateration::{default_conversion, trilaterate, TrilaterationConfig};

/// Which positioning method the PMC runs, with its configuration.
#[derive(Debug, Clone)]
pub enum MethodConfig {
    Trilateration {
        config: TrilaterationConfig,
        /// Model whose inversion is the default RSSI→distance conversion.
        conversion_model: PathLossModel,
    },
    FingerprintingKnn {
        survey: SurveyConfig,
        online: FingerprintConfig,
        /// Floor the radio map is built for.
        floor: FloorId,
    },
    FingerprintingBayes {
        survey: SurveyConfig,
        online: FingerprintConfig,
        floor: FloorId,
    },
    Proximity(ProximityConfig),
}

impl MethodConfig {
    pub fn method_name(&self) -> &'static str {
        match self {
            MethodConfig::Trilateration { .. } => "trilateration",
            MethodConfig::FingerprintingKnn { .. } => "fingerprinting-knn",
            MethodConfig::FingerprintingBayes { .. } => "fingerprinting-bayes",
            MethodConfig::Proximity(_) => "proximity",
        }
    }

    /// Does this method apply to the given device technology (paper §5)?
    pub fn supports(&self, t: DeviceType) -> bool {
        match self {
            MethodConfig::Trilateration { .. } => t.supports_trilateration(),
            MethodConfig::FingerprintingKnn { .. } | MethodConfig::FingerprintingBayes { .. } => {
                t.supports_fingerprinting()
            }
            MethodConfig::Proximity(_) => t.supports_proximity(),
        }
    }
}

/// PMC errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PmcError {
    /// The configured method does not apply to a deployed device type.
    IncompatibleDevices {
        method: &'static str,
        device_type: &'static str,
    },
    /// No devices are deployed.
    NoDevices,
}

impl std::fmt::Display for PmcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PmcError::IncompatibleDevices {
                method,
                device_type,
            } => {
                write!(
                    f,
                    "method '{method}' does not apply to {device_type} devices"
                )
            }
            PmcError::NoDevices => write!(f, "no positioning devices deployed"),
        }
    }
}

impl std::error::Error for PmcError {}

/// Run the configured positioning method over raw RSSI data. One-shot
/// wrapper over [`ChunkPositioner`].
pub fn run_positioning(
    env: &IndoorEnvironment,
    devices: &DeviceRegistry,
    rssi: &RssiStore,
    method: &MethodConfig,
) -> Result<PositioningData, PmcError> {
    Ok(ChunkPositioner::new(env, devices, method)?.position(rssi))
}

/// A positioning runner prepared once per run: the device/method
/// compatibility matrix is checked and the offline fingerprint survey
/// (radio map) is built up front, leaving only the online phase per call.
///
/// Every method treats objects independently and every estimator samples
/// on the absolute PMC grid, so [`position`](ChunkPositioner::position) may
/// be called per RSSI chunk (the streaming pipeline feeds it one object's
/// store at a time): the union of per-chunk outputs equals one whole-store
/// run. The positioner is `Sync` — stage workers share one instance.
pub struct ChunkPositioner<'a> {
    devices: &'a DeviceRegistry,
    method: MethodConfig,
    /// Prebuilt offline radio map for the fingerprinting methods.
    radio_map: Option<RadioMap>,
}

impl<'a> ChunkPositioner<'a> {
    pub fn new(
        env: &IndoorEnvironment,
        devices: &'a DeviceRegistry,
        method: &MethodConfig,
    ) -> Result<Self, PmcError> {
        if devices.is_empty() {
            return Err(PmcError::NoDevices);
        }
        // Compatibility: every deployed device type must support the method.
        for t in DeviceType::ALL {
            if devices.of_type(t).next().is_some() && !method.supports(t) {
                return Err(PmcError::IncompatibleDevices {
                    method: method.method_name(),
                    device_type: t.name(),
                });
            }
        }
        let radio_map = match method {
            MethodConfig::FingerprintingKnn { survey, floor, .. }
            | MethodConfig::FingerprintingBayes { survey, floor, .. } => {
                Some(build_radio_map(env, devices, *floor, survey))
            }
            _ => None,
        };
        Ok(ChunkPositioner {
            devices,
            method: method.clone(),
            radio_map,
        })
    }

    /// Run the online phase over one RSSI store (a chunk or a whole run).
    pub fn position(&self, rssi: &RssiStore) -> PositioningData {
        match &self.method {
            MethodConfig::Trilateration {
                config,
                conversion_model,
            } => {
                let conv = default_conversion(*conversion_model);
                PositioningData::Deterministic(trilaterate(self.devices, rssi, config, &conv))
            }
            MethodConfig::FingerprintingKnn { online, .. } => {
                let map = self.radio_map.as_ref().expect("radio map built in new()");
                PositioningData::Deterministic(knn_fingerprint(map, rssi, online))
            }
            MethodConfig::FingerprintingBayes { online, .. } => {
                let map = self.radio_map.as_ref().expect("radio map built in new()");
                PositioningData::Probabilistic(naive_bayes_fingerprint(map, rssi, online))
            }
            MethodConfig::Proximity(cfg) => {
                PositioningData::Proximity(proximity_records(self.devices, rssi, cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_dbi::{office, SynthParams};
    use vita_devices::{deploy, DeploymentModel, DeviceSpec};
    use vita_indoor::{build_environment, BuildParams, Timestamp};
    use vita_mobility::{generate, LifespanConfig, MobilityConfig};
    use vita_rssi::{generate_rssi, RssiConfig};

    fn pipeline(device_type: DeviceType) -> (IndoorEnvironment, DeviceRegistry, RssiStore) {
        let model = office(&SynthParams::with_floors(1));
        let env = build_environment(&model, &BuildParams::default())
            .unwrap()
            .env;
        let mut reg = DeviceRegistry::new();
        deploy(
            &env,
            &mut reg,
            DeviceSpec::default_for(device_type),
            FloorId(0),
            DeploymentModel::Coverage,
            10,
        );
        let mob = MobilityConfig {
            object_count: 5,
            duration: Timestamp(60_000),
            lifespan: LifespanConfig {
                min: Timestamp(60_000),
                max: Timestamp(60_000),
            },
            seed: 3,
            ..Default::default()
        };
        let res = generate(&env, &mob).unwrap();
        let rssi = generate_rssi(
            &env,
            &reg,
            &res.trajectories,
            &RssiConfig {
                duration: Timestamp(60_000),
                ..Default::default()
            },
        );
        (env, reg, rssi)
    }

    #[test]
    fn wifi_supports_all_methods() {
        let (env, reg, rssi) = pipeline(DeviceType::WiFi);
        let methods: Vec<MethodConfig> = vec![
            MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            MethodConfig::FingerprintingKnn {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
            MethodConfig::FingerprintingBayes {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
            MethodConfig::Proximity(ProximityConfig::default()),
        ];
        for m in methods {
            let out = run_positioning(&env, &reg, &rssi, &m)
                .unwrap_or_else(|e| panic!("{}: {e}", m.method_name()));
            assert!(!out.is_empty(), "{} produced no data", m.method_name());
        }
    }

    #[test]
    fn fingerprinting_rejected_for_bluetooth_and_rfid() {
        for t in [DeviceType::Bluetooth, DeviceType::Rfid] {
            let (env, reg, rssi) = pipeline(t);
            let m = MethodConfig::FingerprintingKnn {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            };
            let err = run_positioning(&env, &reg, &rssi, &m).unwrap_err();
            assert!(matches!(err, PmcError::IncompatibleDevices { .. }), "{t:?}");
        }
    }

    #[test]
    fn trilateration_rejected_for_rfid() {
        let (env, reg, rssi) = pipeline(DeviceType::Rfid);
        let m = MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        };
        assert!(matches!(
            run_positioning(&env, &reg, &rssi, &m),
            Err(PmcError::IncompatibleDevices { .. })
        ));
    }

    #[test]
    fn demo_combos_from_paper_section5() {
        // "RFID + proximity, Bluetooth + trilateration, Wi-Fi + fingerprinting"
        let (env, reg, rssi) = pipeline(DeviceType::Rfid);
        assert!(run_positioning(
            &env,
            &reg,
            &rssi,
            &MethodConfig::Proximity(ProximityConfig::default())
        )
        .is_ok());

        let (env, reg, rssi) = pipeline(DeviceType::Bluetooth);
        assert!(run_positioning(
            &env,
            &reg,
            &rssi,
            &MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            }
        )
        .is_ok());

        let (env, reg, rssi) = pipeline(DeviceType::WiFi);
        assert!(run_positioning(
            &env,
            &reg,
            &rssi,
            &MethodConfig::FingerprintingBayes {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            }
        )
        .is_ok());
    }

    #[test]
    fn per_object_chunks_union_to_whole_store_run() {
        // The streaming pipeline positions one object's RSSI at a time;
        // for every method the union over objects must equal the
        // whole-store run exactly.
        let (env, reg, rssi) = pipeline(DeviceType::WiFi);
        let methods: Vec<MethodConfig> = vec![
            MethodConfig::Trilateration {
                config: TrilaterationConfig::default(),
                conversion_model: PathLossModel::default(),
            },
            MethodConfig::FingerprintingKnn {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
            MethodConfig::FingerprintingBayes {
                survey: SurveyConfig::default(),
                online: FingerprintConfig::default(),
                floor: FloorId(0),
            },
            MethodConfig::Proximity(ProximityConfig::default()),
        ];
        for m in methods {
            let positioner = ChunkPositioner::new(&env, &reg, &m).unwrap();
            let whole = positioner.position(&rssi);
            let mut objects = rssi.objects();
            objects.sort_unstable();
            let mut fixes = Vec::new();
            let mut probs = Vec::new();
            let mut prox = Vec::new();
            for o in objects {
                let sub = RssiStore::new(
                    rssi.all()
                        .iter()
                        .filter(|meas| meas.object == o)
                        .copied()
                        .collect(),
                );
                match positioner.position(&sub) {
                    PositioningData::Deterministic(f) => fixes.extend(f),
                    PositioningData::Probabilistic(p) => probs.extend(p),
                    PositioningData::Proximity(r) => prox.extend(r),
                }
            }
            match whole {
                PositioningData::Deterministic(mut w) => {
                    w.sort_by_key(|f| (f.t, f.object));
                    fixes.sort_by_key(|f| (f.t, f.object));
                    assert_eq!(fixes, w, "{} fix union differs", m.method_name());
                }
                PositioningData::Probabilistic(mut w) => {
                    w.sort_by_key(|f| (f.t, f.object));
                    probs.sort_by_key(|f| (f.t, f.object));
                    assert_eq!(probs, w, "{} prob-fix union differs", m.method_name());
                }
                PositioningData::Proximity(mut w) => {
                    w.sort_by_key(|r| (r.ts, r.object, r.device));
                    prox.sort_by_key(|r| (r.ts, r.object, r.device));
                    assert_eq!(prox, w, "{} proximity union differs", m.method_name());
                }
            }
        }
    }

    #[test]
    fn empty_registry_is_error() {
        let (env, _, rssi) = pipeline(DeviceType::WiFi);
        let empty = DeviceRegistry::new();
        assert_eq!(
            run_positioning(
                &env,
                &empty,
                &rssi,
                &MethodConfig::Proximity(ProximityConfig::default())
            )
            .unwrap_err(),
            PmcError::NoDevices
        );
    }
}
