//! Accuracy evaluation against ground truth.
//!
//! This is the second purpose of the toolkit (paper §1): "It can provide the
//! 'ground truth' for the mobility data generated ... to evaluate the
//! models/algorithms being studied." The raw trajectory is preserved at fine
//! granularity; this module compares positioning output against it.

use vita_devices::DeviceRegistry;
use vita_mobility::TrajectoryStore;

use crate::output::{Fix, ProbFix, ProximityRecord};

/// Summary statistics over positioning errors (metres).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    pub count: usize,
    pub mean: f64,
    pub median: f64,
    pub p90: f64,
    pub max: f64,
    /// Fixes whose estimated floor differed from the true floor; these are
    /// excluded from the metric distances above.
    pub wrong_floor: usize,
}

impl ErrorStats {
    pub fn from_errors(mut errors: Vec<f64>, wrong_floor: usize) -> Self {
        if errors.is_empty() {
            return ErrorStats {
                count: 0,
                mean: 0.0,
                median: 0.0,
                p90: 0.0,
                max: 0.0,
                wrong_floor,
            };
        }
        errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let count = errors.len();
        let mean = errors.iter().sum::<f64>() / count as f64;
        let pct = |q: f64| -> f64 {
            let ix = ((count as f64 - 1.0) * q).round() as usize;
            errors[ix]
        };
        ErrorStats {
            count,
            mean,
            median: pct(0.5),
            p90: pct(0.9),
            max: errors[count - 1],
            wrong_floor,
        }
    }
}

impl std::fmt::Display for ErrorStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2}m median={:.2}m p90={:.2}m max={:.2}m wrong-floor={}",
            self.count, self.mean, self.median, self.p90, self.max, self.wrong_floor
        )
    }
}

/// Evaluate deterministic fixes against the ground-truth trajectories.
pub fn evaluate_fixes(fixes: &[Fix], truth: &TrajectoryStore) -> ErrorStats {
    let mut errors = Vec::with_capacity(fixes.len());
    let mut wrong_floor = 0;
    for f in fixes {
        let Some(tr) = truth.get(f.object) else {
            continue;
        };
        let Some((true_floor, true_pos)) = tr.position_at(f.t) else {
            continue;
        };
        let Some(est) = f.loc.as_point() else {
            continue;
        };
        if f.loc.floor != true_floor {
            wrong_floor += 1;
            continue;
        }
        errors.push(est.dist(true_pos));
    }
    ErrorStats::from_errors(errors, wrong_floor)
}

/// Evaluate probabilistic fixes by their expected point (probability-weighted
/// mean over candidates).
pub fn evaluate_prob_fixes(fixes: &[ProbFix], truth: &TrajectoryStore) -> ErrorStats {
    let mut errors = Vec::with_capacity(fixes.len());
    let mut wrong_floor = 0;
    for f in fixes {
        let Some(tr) = truth.get(f.object) else {
            continue;
        };
        let Some((true_floor, true_pos)) = tr.position_at(f.t) else {
            continue;
        };
        let Some((est_floor, est)) = f.expected_point() else {
            continue;
        };
        if est_floor != true_floor {
            wrong_floor += 1;
            continue;
        }
        errors.push(est.dist(true_pos));
    }
    ErrorStats::from_errors(errors, wrong_floor)
}

/// Evaluate proximity records: the error of "object is collocated with
/// device" sampled at the record midpoint. Bounded by the detection range by
/// construction — the statistic of interest is how tight.
pub fn evaluate_proximity(
    records: &[ProximityRecord],
    devices: &DeviceRegistry,
    truth: &TrajectoryStore,
) -> ErrorStats {
    let mut errors = Vec::with_capacity(records.len());
    let mut wrong_floor = 0;
    for r in records {
        let Some(dev) = devices.get(r.device) else {
            continue;
        };
        let Some(tr) = truth.get(r.object) else {
            continue;
        };
        let mid = vita_indoor::Timestamp((r.ts.0 + r.te.0) / 2);
        let Some((true_floor, true_pos)) = tr.position_at(mid) else {
            continue;
        };
        if dev.floor != true_floor {
            wrong_floor += 1;
            continue;
        }
        errors.push(dev.position.dist(true_pos));
    }
    ErrorStats::from_errors(errors, wrong_floor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, FloorId, Loc, ObjectId, Timestamp};
    use vita_mobility::{Trajectory, TrajectorySample, TrajectoryStore};

    fn truth_line() -> TrajectoryStore {
        // Object 0 walks x = t/1000 m on floor 0.
        let samples: Vec<TrajectorySample> = (0..=10)
            .map(|i| {
                TrajectorySample::new(
                    ObjectId(0),
                    BuildingId(0),
                    FloorId(0),
                    Point::new(i as f64, 0.0),
                    Timestamp(i * 1000),
                )
            })
            .collect();
        TrajectoryStore::from_parts(vec![(ObjectId(0), Trajectory::new(samples))])
    }

    fn fix(x: f64, y: f64, t: u64) -> Fix {
        Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(x, y)),
            t: Timestamp(t),
        }
    }

    #[test]
    fn error_stats_percentiles() {
        let s = ErrorStats::from_errors(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0], 0);
        assert_eq!(s.count, 10);
        assert!((s.mean - 5.5).abs() < 1e-9);
        assert!((s.median - 5.0).abs() < 1.01);
        assert!((s.p90 - 9.0).abs() < 1.01);
        assert_eq!(s.max, 10.0);
        assert!(s.to_string().contains("n=10"));
    }

    #[test]
    fn empty_errors() {
        let s = ErrorStats::from_errors(vec![], 3);
        assert_eq!(s.count, 0);
        assert_eq!(s.wrong_floor, 3);
    }

    #[test]
    fn perfect_fixes_have_zero_error() {
        let truth = truth_line();
        let fixes: Vec<Fix> = (0..=10).map(|i| fix(i as f64, 0.0, i * 1000)).collect();
        let s = evaluate_fixes(&fixes, &truth);
        assert_eq!(s.count, 11);
        assert!(s.mean < 1e-9);
    }

    #[test]
    fn offset_fixes_measure_the_offset() {
        let truth = truth_line();
        let fixes: Vec<Fix> = (0..=10).map(|i| fix(i as f64, 3.0, i * 1000)).collect();
        let s = evaluate_fixes(&fixes, &truth);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!((s.max - 3.0).abs() < 1e-9);
    }

    #[test]
    fn interpolated_truth_between_samples() {
        let truth = truth_line();
        // Fix at t=1500 where the true position is x=1.5.
        let s = evaluate_fixes(&[fix(1.5, 0.0, 1500)], &truth);
        assert_eq!(s.count, 1);
        assert!(s.mean < 1e-9);
    }

    #[test]
    fn wrong_floor_counted_not_measured() {
        let truth = truth_line();
        let mut f = fix(0.0, 0.0, 0);
        f.loc.floor = FloorId(1);
        let s = evaluate_fixes(&[f], &truth);
        assert_eq!(s.count, 0);
        assert_eq!(s.wrong_floor, 1);
    }

    #[test]
    fn fixes_outside_lifespan_skipped() {
        let truth = truth_line();
        let s = evaluate_fixes(&[fix(5.0, 0.0, 50_000)], &truth);
        assert_eq!(s.count, 0);
        assert_eq!(s.wrong_floor, 0);
    }

    #[test]
    fn prob_fix_expected_point_evaluated() {
        let truth = truth_line();
        let pf = ProbFix {
            object: ObjectId(0),
            candidates: vec![
                (
                    Loc::point(BuildingId(0), FloorId(0), Point::new(4.0, 0.0)),
                    0.5,
                ),
                (
                    Loc::point(BuildingId(0), FloorId(0), Point::new(6.0, 0.0)),
                    0.5,
                ),
            ],
            t: Timestamp(5000), // true x = 5
        };
        let s = evaluate_prob_fixes(&[pf], &truth);
        assert_eq!(s.count, 1);
        assert!(s.mean < 1e-9, "expected point should be exactly (5,0)");
    }

    #[test]
    fn proximity_error_is_distance_to_device() {
        use vita_devices::{DeviceSpec, DeviceType};
        let truth = truth_line();
        let mut reg = DeviceRegistry::new();
        let did = reg.place(
            DeviceSpec::default_for(DeviceType::Rfid),
            FloorId(0),
            Point::new(5.0, 2.0),
        );
        let rec = ProximityRecord {
            object: ObjectId(0),
            device: did,
            ts: Timestamp(4000),
            te: Timestamp(6000), // midpoint t=5000, true pos (5,0)
        };
        let s = evaluate_proximity(&[rec], &reg, &truth);
        assert_eq!(s.count, 1);
        assert!((s.mean - 2.0).abs() < 1e-9);
    }
}
