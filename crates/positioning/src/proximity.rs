//! Proximity positioning (paper §3.3.3).
//!
//! "Proximity estimates symbolic relative locations for moving objects.
//! Specifically, if an object is detected by a positioning device, it is
//! considered to be collocated with that device for the detection period. We
//! use a thresholding method to determine the detection period for a given
//! pair of object and device. If the RSSI measurements for the object cannot
//! be found over the time of the device's one detection operation, we
//! consider it has left the device's detection range, and the detection
//! period is thus complete."

use std::collections::BTreeMap;

use vita_devices::DeviceRegistry;
use vita_indoor::{DeviceId, ObjectId, Timestamp};
use vita_rssi::RssiStore;

use crate::output::ProximityRecord;

/// Proximity configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityConfig {
    /// Optional RSSI threshold: measurements weaker than this are treated as
    /// non-detections (None accepts every in-range measurement). This is the
    /// "thresholding" knob.
    pub rssi_threshold_dbm: Option<f64>,
    /// Grace factor on the device detection period: a gap longer than
    /// `grace × period` closes the detection period. 1.0 is the paper's
    /// "one detection operation"; slightly above 1 tolerates jitter.
    pub gap_grace: f64,
}

impl Default for ProximityConfig {
    fn default() -> Self {
        ProximityConfig {
            rssi_threshold_dbm: None,
            gap_grace: 1.5,
        }
    }
}

/// Derive proximity detection periods from raw RSSI data.
///
/// Proximity "does not require any extra configurations since the
/// positioning device's detection range and frequency are already configured
/// in the infrastructure layer" (paper §2) — the device registry carries
/// both.
pub fn proximity_records(
    devices: &DeviceRegistry,
    rssi: &RssiStore,
    cfg: &ProximityConfig,
) -> Vec<ProximityRecord> {
    // Gather measurement times per (object, device) pair.
    let mut times: BTreeMap<(ObjectId, DeviceId), Vec<Timestamp>> = BTreeMap::new();
    for m in rssi.all() {
        if let Some(th) = cfg.rssi_threshold_dbm {
            if m.rssi < th {
                continue;
            }
        }
        times.entry((m.object, m.device)).or_default().push(m.t);
    }

    let mut records = Vec::new();
    for ((object, device), ts) in times {
        let Some(dev) = devices.get(device) else {
            continue;
        };
        let period = dev.spec.detection_hz.period_ms();
        if period == u64::MAX {
            continue;
        }
        let max_gap = ((period as f64) * cfg.gap_grace.max(1.0)).ceil() as u64;
        // ts is sorted (store order is by time).
        let mut start = ts[0];
        let mut last = ts[0];
        for &t in &ts[1..] {
            if t.since(last) > max_gap {
                records.push(ProximityRecord {
                    object,
                    device,
                    ts: start,
                    te: last,
                });
                start = t;
            }
            last = t;
        }
        records.push(ProximityRecord {
            object,
            device,
            ts: start,
            te: last,
        });
    }
    records.sort_by_key(|r| (r.ts, r.object, r.device));
    records
}

/// For symbolic analytics: the device each object is collocated with at a
/// time instant (the longest-running open record wins ties).
pub fn device_at(records: &[ProximityRecord], object: ObjectId, t: Timestamp) -> Option<DeviceId> {
    records
        .iter()
        .filter(|r| r.object == object && r.contains(t))
        .max_by_key(|r| r.duration_ms())
        .map(|r| r.device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_devices::{DeviceSpec, DeviceType};
    use vita_geometry::Point;
    use vita_indoor::{FloorId, Hz};
    use vita_rssi::RssiMeasurement;

    fn registry_with_one(hz: f64) -> (DeviceRegistry, DeviceId) {
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec {
            detection_hz: Hz(hz),
            ..DeviceSpec::default_for(DeviceType::Rfid)
        };
        let id = reg.place(spec, FloorId(0), Point::new(0.0, 0.0));
        (reg, id)
    }

    fn meas(o: u32, d: DeviceId, t: u64, rssi: f64) -> RssiMeasurement {
        RssiMeasurement {
            object: ObjectId(o),
            device: d,
            rssi,
            t: Timestamp(t),
        }
    }

    #[test]
    fn contiguous_measurements_form_one_period() {
        let (reg, d) = registry_with_one(1.0); // 1000 ms period
        let store = RssiStore::new(vec![
            meas(0, d, 0, -50.0),
            meas(0, d, 1000, -51.0),
            meas(0, d, 2000, -52.0),
        ]);
        let recs = proximity_records(&reg, &store, &ProximityConfig::default());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts, Timestamp(0));
        assert_eq!(recs[0].te, Timestamp(2000));
        assert_eq!(recs[0].duration_ms(), 2000);
    }

    #[test]
    fn gap_longer_than_detection_operation_splits_periods() {
        let (reg, d) = registry_with_one(1.0);
        let store = RssiStore::new(vec![
            meas(0, d, 0, -50.0),
            meas(0, d, 1000, -50.0),
            // 5 s gap >> 1.5 × 1000 ms → period closes.
            meas(0, d, 6000, -50.0),
            meas(0, d, 7000, -50.0),
        ]);
        let recs = proximity_records(&reg, &store, &ProximityConfig::default());
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].te, Timestamp(1000));
        assert_eq!(recs[1].ts, Timestamp(6000));
    }

    #[test]
    fn rssi_threshold_filters_weak_detections() {
        let (reg, d) = registry_with_one(1.0);
        let store = RssiStore::new(vec![
            meas(0, d, 0, -80.0),
            meas(0, d, 1000, -50.0),
            meas(0, d, 2000, -85.0),
        ]);
        let cfg = ProximityConfig {
            rssi_threshold_dbm: Some(-60.0),
            ..Default::default()
        };
        let recs = proximity_records(&reg, &store, &cfg);
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts, Timestamp(1000));
        assert_eq!(recs[0].te, Timestamp(1000));
    }

    #[test]
    fn separate_pairs_get_separate_records() {
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::Rfid);
        let d0 = reg.place(spec, FloorId(0), Point::new(0.0, 0.0));
        let d1 = reg.place(spec, FloorId(0), Point::new(10.0, 0.0));
        let store = RssiStore::new(vec![
            meas(0, d0, 0, -50.0),
            meas(1, d0, 0, -50.0),
            meas(0, d1, 0, -50.0),
        ]);
        let recs = proximity_records(&reg, &store, &ProximityConfig::default());
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn device_at_returns_collocation() {
        let (reg, d) = registry_with_one(1.0);
        let store = RssiStore::new(vec![meas(0, d, 0, -50.0), meas(0, d, 1000, -50.0)]);
        let recs = proximity_records(&reg, &store, &ProximityConfig::default());
        assert_eq!(device_at(&recs, ObjectId(0), Timestamp(500)), Some(d));
        assert_eq!(device_at(&recs, ObjectId(0), Timestamp(9000)), None);
        assert_eq!(device_at(&recs, ObjectId(5), Timestamp(500)), None);
    }

    #[test]
    fn single_measurement_is_a_point_period() {
        let (reg, d) = registry_with_one(2.0);
        let store = RssiStore::new(vec![meas(0, d, 42, -50.0)]);
        let recs = proximity_records(&reg, &store, &ProximityConfig::default());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].ts, recs[0].te);
        assert_eq!(recs[0].duration_ms(), 0);
    }

    #[test]
    fn faster_detection_frequency_closes_gaps_sooner() {
        // Same gap, two frequencies: 4 Hz (250 ms period) splits, 0.2 Hz
        // (5000 ms period) does not.
        let gap_measurements = |d: DeviceId| vec![meas(0, d, 0, -50.0), meas(0, d, 1000, -50.0)];
        let (reg_fast, df) = registry_with_one(4.0);
        let recs = proximity_records(
            &reg_fast,
            &RssiStore::new(gap_measurements(df)),
            &ProximityConfig::default(),
        );
        assert_eq!(recs.len(), 2, "fast reader should split on a 1 s gap");

        let (reg_slow, ds) = registry_with_one(0.2);
        let recs = proximity_records(
            &reg_slow,
            &RssiStore::new(gap_measurements(ds)),
            &ProximityConfig::default(),
        );
        assert_eq!(recs.len(), 1, "slow reader keeps the period open");
    }
}
