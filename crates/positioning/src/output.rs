//! Positioning data formats (paper §4.2).
//!
//! "Trilateration and deterministic fingerprinting directly produce output
//! as (o_id, loc, t) ... Probabilistic algorithms estimate one object's
//! location with a set of samples, each containing a location loc and a
//! probability prob. Thus, it is given as (o_id, {(loc_i, prob_i)}, t).
//! Data generated for proximity is very different ... A record
//! (o_id, d_id, ts, te) indicates that object o_id was detected by a
//! positioning device d_id from time ts to te."

use vita_indoor::{DeviceId, Loc, ObjectId, Timestamp};

/// A deterministic positioning fix: `(o_id, loc, t)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fix {
    pub object: ObjectId,
    pub loc: Loc,
    pub t: Timestamp,
}

/// A probabilistic fix: `(o_id, {(loc_i, prob_i)}, t)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbFix {
    pub object: ObjectId,
    /// Candidate locations with probabilities (sorted descending, sum ≈ 1).
    pub candidates: Vec<(Loc, f64)>,
    pub t: Timestamp,
}

impl ProbFix {
    /// Maximum-a-posteriori candidate.
    pub fn map_estimate(&self) -> Option<&(Loc, f64)> {
        self.candidates.first()
    }

    /// Probability-weighted mean point (when all candidates are points on
    /// one floor); falls back to the MAP estimate's point otherwise.
    pub fn expected_point(&self) -> Option<(vita_indoor::FloorId, vita_geometry::Point)> {
        let first = self.candidates.first()?;
        let floor = first.0.floor;
        if self
            .candidates
            .iter()
            .all(|(l, _)| l.floor == floor && l.as_point().is_some())
        {
            let wsum: f64 = self.candidates.iter().map(|(_, p)| *p).sum();
            if wsum > 0.0 {
                let mut x = 0.0;
                let mut y = 0.0;
                for (l, p) in &self.candidates {
                    let pt = l.as_point().unwrap();
                    x += pt.x * p;
                    y += pt.y * p;
                }
                return Some((floor, vita_geometry::Point::new(x / wsum, y / wsum)));
            }
        }
        first.0.as_point().map(|p| (floor, p))
    }
}

/// A proximity detection period: `(o_id, d_id, ts, te)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityRecord {
    pub object: ObjectId,
    pub device: DeviceId,
    pub ts: Timestamp,
    pub te: Timestamp,
}

impl ProximityRecord {
    pub fn duration_ms(&self) -> u64 {
        self.te.since(self.ts)
    }

    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.ts && t <= self.te
    }
}

/// The positioning data produced by one run of the Positioning Method
/// Controller — exactly one variant per configured method.
#[derive(Debug, Clone)]
pub enum PositioningData {
    /// Trilateration or deterministic fingerprinting.
    Deterministic(Vec<Fix>),
    /// Probabilistic fingerprinting.
    Probabilistic(Vec<ProbFix>),
    /// Proximity.
    Proximity(Vec<ProximityRecord>),
}

impl PositioningData {
    pub fn len(&self) -> usize {
        match self {
            PositioningData::Deterministic(v) => v.len(),
            PositioningData::Probabilistic(v) => v.len(),
            PositioningData::Proximity(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn kind(&self) -> &'static str {
        match self {
            PositioningData::Deterministic(_) => "deterministic",
            PositioningData::Probabilistic(_) => "probabilistic",
            PositioningData::Proximity(_) => "proximity",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, FloorId};

    fn loc(x: f64, y: f64) -> Loc {
        Loc::point(BuildingId(0), FloorId(0), Point::new(x, y))
    }

    #[test]
    fn probfix_map_and_expectation() {
        let pf = ProbFix {
            object: ObjectId(0),
            candidates: vec![(loc(0.0, 0.0), 0.75), (loc(4.0, 0.0), 0.25)],
            t: Timestamp(0),
        };
        assert_eq!(pf.map_estimate().unwrap().1, 0.75);
        let (_, p) = pf.expected_point().unwrap();
        assert!((p.x - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probfix_mixed_floor_falls_back_to_map() {
        let mut c2 = loc(4.0, 0.0);
        c2.floor = FloorId(1);
        let pf = ProbFix {
            object: ObjectId(0),
            candidates: vec![(loc(1.0, 1.0), 0.6), (c2, 0.4)],
            t: Timestamp(0),
        };
        let (f, p) = pf.expected_point().unwrap();
        assert_eq!(f, FloorId(0));
        assert!(p.approx_eq(Point::new(1.0, 1.0)));
    }

    #[test]
    fn proximity_record_duration_and_contains() {
        let r = ProximityRecord {
            object: ObjectId(1),
            device: DeviceId(2),
            ts: Timestamp(1000),
            te: Timestamp(4000),
        };
        assert_eq!(r.duration_ms(), 3000);
        assert!(r.contains(Timestamp(1000)));
        assert!(r.contains(Timestamp(2500)));
        assert!(!r.contains(Timestamp(4001)));
    }

    #[test]
    fn positioning_data_kinds() {
        assert_eq!(
            PositioningData::Deterministic(vec![]).kind(),
            "deterministic"
        );
        assert_eq!(
            PositioningData::Probabilistic(vec![]).kind(),
            "probabilistic"
        );
        assert_eq!(PositioningData::Proximity(vec![]).kind(), "proximity");
        assert!(PositioningData::Deterministic(vec![]).is_empty());
    }
}
