#![forbid(unsafe_code)]
//! # vita-positioning
//!
//! The second half of Vita's Positioning Layer (paper §2, §3.3): derive
//! indoor positioning data from raw RSSI measurements using the three
//! typical indoor positioning methods, and evaluate it against ground truth.
//!
//! * [`trilateration`] — RSSI→distance conversion (user-definable, default
//!   provided) + least-squares circle intersection.
//! * [`fingerprint`] — offline radio-map survey at reference locations;
//!   online deterministic kNN and probabilistic Naive Bayes classifiers.
//! * [`proximity`] — threshold-based detection periods `(o, d, ts, te)`.
//! * [`pmc`] — the Positioning Method Controller: method selection, its own
//!   sampling frequency, and the device/method compatibility matrix.
//! * [`output`] — the paper's §4.2 output record formats.
//! * [`eval`] — error statistics vs the preserved ground-truth trajectories.

pub mod eval;
pub mod fingerprint;
pub mod output;
pub mod pmc;
pub mod proximity;
pub mod trilateration;

pub use eval::{evaluate_fixes, evaluate_prob_fixes, evaluate_proximity, ErrorStats};
pub use fingerprint::{
    build_radio_map, knn_fingerprint, naive_bayes_fingerprint, FingerprintConfig, RadioMap,
    RadioMapEntry, ReferenceSelection, SurveyConfig, NOT_HEARD_DBM,
};
pub use output::{Fix, PositioningData, ProbFix, ProximityRecord};
pub use pmc::{run_positioning, ChunkPositioner, MethodConfig, PmcError};
pub use proximity::{device_at, proximity_records, ProximityConfig};
pub use trilateration::{
    default_conversion, least_squares_position, trilaterate, RssiToDistance, TrilaterationConfig,
};
