//! Trilateration (paper §3.3.1).
//!
//! "Trilateration infers deterministic locations from the intersection of at
//! least three circles. The key is to convert an RSSI measurement to the
//! distance between a positioning device and an object. To this end, we
//! allow users to define their own RSSI conversion functions that derive the
//! distances from the noisy RSSI measurements. A default function is also
//! provided."
//!
//! The circle intersection is solved in least squares: with devices
//! `(x_i, y_i)` and estimated ranges `r_i`, subtracting the last circle
//! equation from the others yields a linear system in `(x, y)` solved by
//! 2×2 normal equations.

use vita_devices::DeviceRegistry;
use vita_geometry::Point;
use vita_indoor::{BuildingId, DeviceId, FloorId, Hz, Loc, Timestamp};
use vita_rssi::{PathLossModel, RssiStore};

use crate::output::Fix;

/// An RSSI→distance conversion function. Users may supply any closure; the
/// default inverts the path-loss model's distance term (paper: "A default
/// function is also provided in case a user does not know how to configure
/// the details").
pub type RssiToDistance<'a> = dyn Fn(f64, &vita_devices::Device) -> f64 + Sync + 'a;

/// Default conversion derived from a path-loss model.
pub fn default_conversion(
    model: PathLossModel,
) -> impl Fn(f64, &vita_devices::Device) -> f64 + Sync {
    move |rssi, device| model.invert(rssi, device.spec.rssi_at_1m)
}

/// Trilateration configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrilaterationConfig {
    /// Positioning sampling frequency — independent from the trajectory
    /// frequency (paper §2: "another sampling frequency can be specified in
    /// PMC").
    pub sampling_hz: Hz,
    /// Measurements within this window before each estimation instant are
    /// aggregated per device.
    pub window_ms: u64,
    /// Minimum number of distinct devices required for a fix.
    pub min_devices: usize,
    /// Use only the `max_devices` strongest-RSSI anchors. With range
    /// clamping enabled, using *all* anchors averages NLOS bias out better
    /// than aggressive selection (see the A1 ablation), so the default is
    /// generous; tighten it for very dense deployments.
    pub max_devices: usize,
    /// Clamp each converted range to the device's detection range — the
    /// estimator knows a device cannot hear farther than that, so larger
    /// conversions are NLOS artifacts.
    pub clamp_to_detection_range: bool,
}

impl Default for TrilaterationConfig {
    fn default() -> Self {
        TrilaterationConfig {
            sampling_hz: Hz(0.5),
            window_ms: 3_000,
            min_devices: 3,
            max_devices: 64,
            clamp_to_detection_range: true,
        }
    }
}

/// Run trilateration over a raw RSSI store.
///
/// At each estimation instant, measurements in the window are grouped per
/// (object, device), RSSI values are averaged (dBm-domain averaging is the
/// usual engineering shortcut), converted to distances, and solved.
///
/// Estimation instants lie on the **absolute sampling grid** — multiples of
/// the PMC period, from the first grid point at or after the store's first
/// measurement through every window that can still contain one (last
/// measurement + window). Anchoring to the absolute clock rather than the
/// store's first timestamp makes the estimator chunkable: running it on a
/// sub-store holding one object's measurements yields exactly the fixes
/// the whole-store run produces for that object.
pub fn trilaterate(
    devices: &DeviceRegistry,
    rssi: &RssiStore,
    cfg: &TrilaterationConfig,
    convert: &RssiToDistance<'_>,
) -> Vec<Fix> {
    let mut fixes = Vec::new();
    let Some((t0, t1)) = rssi.time_range() else {
        return fixes;
    };
    let period = cfg.sampling_hz.period_ms();
    if period == u64::MAX {
        return fixes;
    }
    let horizon = Timestamp(t1.0 + cfg.window_ms);
    let mut t = Timestamp(t0.0.div_ceil(period) * period);
    while t <= horizon {
        let from = Timestamp(t.0.saturating_sub(cfg.window_ms));
        let window = rssi.window(from, t.advance(1));
        // Group by object, then device.
        let mut by_object: std::collections::BTreeMap<
            vita_indoor::ObjectId,
            std::collections::BTreeMap<DeviceId, (f64, usize)>,
        > = std::collections::BTreeMap::new();
        for m in window {
            let e = by_object
                .entry(m.object)
                .or_default()
                .entry(m.device)
                .or_insert((0.0, 0));
            e.0 += m.rssi;
            e.1 += 1;
        }
        for (object, per_device) in by_object {
            if per_device.len() < cfg.min_devices {
                continue;
            }
            // Build (position, range, rssi) anchors; use the floor most
            // devices agree on.
            let mut anchors: Vec<(Point, f64, FloorId, f64)> = Vec::with_capacity(per_device.len());
            for (did, (sum, n)) in &per_device {
                let Some(dev) = devices.get(*did) else {
                    continue;
                };
                let mean_rssi = sum / *n as f64;
                let mut dist = convert(mean_rssi, dev).max(0.05);
                if cfg.clamp_to_detection_range {
                    dist = dist.min(dev.spec.detection_range);
                }
                anchors.push((dev.position, dist, dev.floor, mean_rssi));
            }
            let Some(floor) = majority_floor(&anchors) else {
                continue;
            };
            let mut same_floor: Vec<(Point, f64, f64)> = anchors
                .iter()
                .filter(|(_, _, f, _)| *f == floor)
                .map(|(p, r, _, rssi)| (*p, *r, *rssi))
                .collect();
            if same_floor.len() < cfg.min_devices {
                continue;
            }
            // Strongest anchors first; keep at most max_devices.
            same_floor.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            same_floor.truncate(cfg.max_devices.max(cfg.min_devices));
            let chosen: Vec<(Point, f64)> = same_floor.iter().map(|(p, r, _)| (*p, *r)).collect();
            if let Some(est) = least_squares_position(&chosen) {
                // Sanity clamp: the object cannot be farther from the
                // nearest-sounding anchor than its (clamped) range plus
                // slack; project wild solutions back to the anchor hull.
                let est = clamp_to_anchor_hull(est, &chosen);
                fixes.push(Fix {
                    object,
                    loc: Loc::point(BuildingId(0), floor, est),
                    t,
                });
            }
        }
        t = t.advance(period);
    }
    fixes
}

fn majority_floor(anchors: &[(Point, f64, FloorId, f64)]) -> Option<FloorId> {
    let mut counts: std::collections::BTreeMap<FloorId, usize> = std::collections::BTreeMap::new();
    for (_, _, f, _) in anchors {
        *counts.entry(*f).or_default() += 1;
    }
    counts.into_iter().max_by_key(|(_, c)| *c).map(|(f, _)| f)
}

/// Keep estimates within the physically plausible neighbourhood of the
/// anchors: inside the anchor bounding box inflated by the largest estimated
/// range. Wildly diverged least-squares solutions (near-collinear anchors ×
/// inconsistent NLOS ranges) are projected back onto that box.
fn clamp_to_anchor_hull(est: Point, anchors: &[(Point, f64)]) -> Point {
    let mut bb = vita_geometry::Aabb::empty();
    let mut max_r: f64 = 0.0;
    for (p, r) in anchors {
        bb = bb.expanded_to(*p);
        max_r = max_r.max(*r);
    }
    let bb = bb.inflated(max_r);
    Point::new(
        est.x.clamp(bb.min.x, bb.max.x),
        est.y.clamp(bb.min.y, bb.max.y),
    )
}

/// Least-squares solution of the circle system. Returns `None` when the
/// anchors are (nearly) collinear and the normal matrix is singular.
pub fn least_squares_position(anchors: &[(Point, f64)]) -> Option<Point> {
    let n = anchors.len();
    if n < 3 {
        return None;
    }
    let (xn, yn) = (anchors[n - 1].0.x, anchors[n - 1].0.y);
    let rn = anchors[n - 1].1;
    // Rows: 2(x_n - x_i)·x + 2(y_n - y_i)·y = r_i² − r_n² − x_i² + x_n² − y_i² + y_n²
    let mut ata = [[0.0f64; 2]; 2];
    let mut atb = [0.0f64; 2];
    for &(p, r) in &anchors[..n - 1] {
        let a0 = 2.0 * (xn - p.x);
        let a1 = 2.0 * (yn - p.y);
        let b = r * r - rn * rn - p.x * p.x + xn * xn - p.y * p.y + yn * yn;
        ata[0][0] += a0 * a0;
        ata[0][1] += a0 * a1;
        ata[1][0] += a1 * a0;
        ata[1][1] += a1 * a1;
        atb[0] += a0 * b;
        atb[1] += a1 * b;
    }
    let det = ata[0][0] * ata[1][1] - ata[0][1] * ata[1][0];
    if det.abs() < 1e-9 {
        return None;
    }
    let x = (atb[0] * ata[1][1] - atb[1] * ata[0][1]) / det;
    let y = (ata[0][0] * atb[1] - ata[1][0] * atb[0]) / det;
    if x.is_finite() && y.is_finite() {
        Some(Point::new(x, y))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_devices::{DeviceSpec, DeviceType};
    use vita_indoor::ObjectId;
    use vita_rssi::{NoiseModel, RssiMeasurement};

    #[test]
    fn exact_solution_with_perfect_ranges() {
        let target = Point::new(3.0, 4.0);
        let anchors = vec![
            (Point::new(0.0, 0.0), target.dist(Point::new(0.0, 0.0))),
            (Point::new(10.0, 0.0), target.dist(Point::new(10.0, 0.0))),
            (Point::new(0.0, 10.0), target.dist(Point::new(0.0, 10.0))),
            (Point::new(10.0, 10.0), target.dist(Point::new(10.0, 10.0))),
        ];
        let est = least_squares_position(&anchors).unwrap();
        assert!(est.dist(target) < 1e-6, "estimate {est} vs {target}");
    }

    #[test]
    fn collinear_anchors_rejected() {
        let anchors = vec![
            (Point::new(0.0, 0.0), 5.0),
            (Point::new(5.0, 0.0), 3.0),
            (Point::new(10.0, 0.0), 5.0),
        ];
        assert!(least_squares_position(&anchors).is_none());
    }

    #[test]
    fn too_few_anchors_rejected() {
        let anchors = vec![(Point::new(0.0, 0.0), 5.0), (Point::new(5.0, 0.0), 3.0)];
        assert!(least_squares_position(&anchors).is_none());
    }

    #[test]
    fn noisy_ranges_give_bounded_error() {
        let target = Point::new(6.0, 2.0);
        // ±0.3 m range errors.
        let offs = [0.3, -0.25, 0.2, -0.3];
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(12.0, 0.0),
            Point::new(0.0, 8.0),
            Point::new(12.0, 8.0),
        ];
        let anchors: Vec<(Point, f64)> = pts
            .iter()
            .zip(offs)
            .map(|(p, o)| (*p, target.dist(*p) + o))
            .collect();
        let est = least_squares_position(&anchors).unwrap();
        assert!(est.dist(target) < 1.0, "error {}", est.dist(target));
    }

    /// End-to-end: synthesize noiseless RSSI for a static object and verify
    /// trilateration recovers its position via the default conversion.
    #[test]
    fn recovers_static_object_from_clean_rssi() {
        let model = PathLossModel {
            fluctuation: NoiseModel::None,
            ..Default::default()
        };
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let mut reg = DeviceRegistry::new();
        let d0 = reg.place(spec, FloorId(0), Point::new(0.0, 0.0));
        let d1 = reg.place(spec, FloorId(0), Point::new(20.0, 0.0));
        let d2 = reg.place(spec, FloorId(0), Point::new(0.0, 15.0));
        let d3 = reg.place(spec, FloorId(0), Point::new(20.0, 15.0));
        let target = Point::new(7.0, 5.0);
        let mut ms = Vec::new();
        for t in (0..10_000).step_by(1000) {
            for did in [d0, d1, d2, d3] {
                let dev = reg.get(did).unwrap();
                let rssi = model.mean_rssi(dev.position.dist(target), dev.spec.rssi_at_1m, 0, 0.0);
                ms.push(RssiMeasurement {
                    object: ObjectId(0),
                    device: did,
                    rssi,
                    t: Timestamp(t),
                });
            }
        }
        let store = RssiStore::new(ms);
        let conv = default_conversion(model);
        let cfg = TrilaterationConfig {
            sampling_hz: Hz(1.0),
            window_ms: 2000,
            min_devices: 3,
            ..Default::default()
        };
        let fixes = trilaterate(&reg, &store, &cfg, &conv);
        assert!(!fixes.is_empty());
        for f in &fixes {
            let p = f.loc.as_point().unwrap();
            assert!(p.dist(target) < 0.1, "fix {} off target {}", p, target);
            assert_eq!(f.loc.floor, FloorId(0));
        }
    }

    #[test]
    fn no_fix_with_fewer_than_min_devices() {
        let model = PathLossModel {
            fluctuation: NoiseModel::None,
            ..Default::default()
        };
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let mut reg = DeviceRegistry::new();
        let d0 = reg.place(spec, FloorId(0), Point::new(0.0, 0.0));
        let d1 = reg.place(spec, FloorId(0), Point::new(20.0, 0.0));
        let mut ms = Vec::new();
        for did in [d0, d1] {
            ms.push(RssiMeasurement {
                object: ObjectId(0),
                device: did,
                rssi: -50.0,
                t: Timestamp(0),
            });
        }
        let store = RssiStore::new(ms);
        let conv = default_conversion(model);
        let fixes = trilaterate(&reg, &store, &TrilaterationConfig::default(), &conv);
        assert!(fixes.is_empty());
    }

    #[test]
    fn custom_conversion_function_is_used() {
        // A conversion that always reports 5 m puts the estimate at the
        // centroid-ish solution of constant-range circles.
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let mut reg = DeviceRegistry::new();
        let ids = [
            reg.place(spec, FloorId(0), Point::new(0.0, 0.0)),
            reg.place(spec, FloorId(0), Point::new(10.0, 0.0)),
            reg.place(spec, FloorId(0), Point::new(5.0, 8.0)),
        ];
        let mut ms = Vec::new();
        for did in ids {
            ms.push(RssiMeasurement {
                object: ObjectId(0),
                device: did,
                rssi: -55.0,
                t: Timestamp(0),
            });
        }
        let store = RssiStore::new(ms);
        let constant = |_rssi: f64, _d: &vita_devices::Device| 5.0;
        let cfg = TrilaterationConfig {
            sampling_hz: Hz(1.0),
            window_ms: 1000,
            min_devices: 3,
            ..Default::default()
        };
        let fixes = trilaterate(&reg, &store, &cfg, &constant);
        // Two grid instants see the t=0 measurements: t=0 and t=1000
        // (whose window reaches back to them).
        assert_eq!(fixes.len(), 2);
        for f in &fixes {
            let p = f.loc.as_point().unwrap();
            // Equidistant point from three anchors = circumcenter (5, ~2.9).
            assert!((p.x - 5.0).abs() < 0.5, "{p}");
        }
    }
}
