//! Property-based tests for positioning invariants.

use proptest::prelude::*;

use vita_devices::{DeviceRegistry, DeviceSpec, DeviceType};
use vita_geometry::Point;
use vita_indoor::{DeviceId, FloorId, Hz, ObjectId, Timestamp};
use vita_positioning::{
    least_squares_position, proximity_records, ProximityConfig, TrilaterationConfig,
};
use vita_rssi::{RssiMeasurement, RssiStore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Least-squares with perfect ranges from ≥3 non-collinear anchors
    /// recovers the target.
    #[test]
    fn exact_ranges_recover_target(
        tx in -40.0f64..40.0,
        ty in -40.0f64..40.0,
        jitter in 0.1f64..10.0,
    ) {
        let target = Point::new(tx, ty);
        // Non-collinear anchor ring around the domain, jittered.
        let anchors: Vec<(Point, f64)> = [
            Point::new(-50.0 - jitter, -50.0),
            Point::new(50.0, -50.0 + jitter),
            Point::new(50.0 - jitter, 50.0),
            Point::new(-50.0, 50.0 - jitter),
        ]
        .iter()
        .map(|&p| (p, p.dist(target)))
        .collect();
        let est = least_squares_position(&anchors).unwrap();
        prop_assert!(est.dist(target) < 1e-5, "err {}", est.dist(target));
    }

    /// Range perturbations produce bounded position error (continuity):
    /// ±e metre range errors never move the LS solution more than a small
    /// multiple of e for a well-conditioned square anchor layout.
    #[test]
    fn bounded_error_under_range_noise(
        tx in 5.0f64..15.0,
        ty in 5.0f64..15.0,
        e1 in -0.5f64..0.5,
        e2 in -0.5f64..0.5,
        e3 in -0.5f64..0.5,
        e4 in -0.5f64..0.5,
    ) {
        let target = Point::new(tx, ty);
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(0.0, 20.0),
            Point::new(20.0, 20.0),
        ];
        let errs = [e1, e2, e3, e4];
        let anchors: Vec<(Point, f64)> = pts
            .iter()
            .zip(errs)
            .map(|(p, e)| (*p, (p.dist(target) + e).max(0.05)))
            .collect();
        let est = least_squares_position(&anchors).unwrap();
        let max_e = errs.iter().fold(0.0f64, |a, b| a.max(b.abs()));
        prop_assert!(
            est.dist(target) <= 6.0 * max_e + 1e-6,
            "err {} for max range err {}",
            est.dist(target),
            max_e
        );
    }

    /// Proximity records partition each (object, device) measurement stream:
    /// every measurement time falls inside exactly one record, records are
    /// disjoint and ordered.
    #[test]
    fn proximity_records_partition_measurements(
        times in proptest::collection::btree_set(0u64..120_000, 1..60),
    ) {
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec {
            detection_hz: Hz(1.0),
            ..DeviceSpec::default_for(DeviceType::Rfid)
        };
        let d = reg.place(spec, FloorId(0), Point::new(0.0, 0.0));
        let ms: Vec<RssiMeasurement> = times
            .iter()
            .map(|&t| RssiMeasurement {
                object: ObjectId(0),
                device: d,
                rssi: -50.0,
                t: Timestamp(t),
            })
            .collect();
        let store = RssiStore::new(ms);
        let recs = proximity_records(&reg, &store, &ProximityConfig::default());

        // Every measurement covered by exactly one record.
        for &t in &times {
            let covering = recs
                .iter()
                .filter(|r| r.ts.0 <= t && t <= r.te.0)
                .count();
            prop_assert_eq!(covering, 1, "t={} covered by {} records", t, covering);
        }
        // Records disjoint and sorted.
        for w in recs.windows(2) {
            prop_assert!(w[0].te < w[1].ts);
        }
        // Gap property: consecutive records are separated by more than the
        // grace window; within a record no gap exceeds it.
        let max_gap = (1000.0 * 1.5f64).ceil() as u64;
        for w in recs.windows(2) {
            prop_assert!(w[1].ts.0 - w[0].te.0 > max_gap);
        }
    }

    /// Trilateration config invariants: the sampling grid always yields
    /// fixes at absolute multiples of the period, wherever the first
    /// measurement falls (the property that makes positioning chunkable).
    #[test]
    fn fixes_align_to_sampling_grid(offset in 0u64..5_000) {
        let mut reg = DeviceRegistry::new();
        let spec = DeviceSpec::default_for(DeviceType::WiFi);
        let ids: Vec<DeviceId> = vec![
            reg.place(spec, FloorId(0), Point::new(0.0, 0.0)),
            reg.place(spec, FloorId(0), Point::new(10.0, 0.0)),
            reg.place(spec, FloorId(0), Point::new(5.0, 8.0)),
        ];
        let mut ms = Vec::new();
        for k in 0..10u64 {
            for &d in &ids {
                ms.push(RssiMeasurement {
                    object: ObjectId(0),
                    device: d,
                    rssi: -50.0,
                    t: Timestamp(offset + k * 500),
                });
            }
        }
        let store = RssiStore::new(ms);
        let cfg = TrilaterationConfig {
            sampling_hz: Hz(1.0),
            window_ms: 2_000,
            ..Default::default()
        };
        let conv = |_r: f64, _d: &vita_devices::Device| 5.0;
        let fixes = vita_positioning::trilaterate(&reg, &store, &cfg, &conv);
        for f in &fixes {
            prop_assert_eq!(f.t.0 % 1000, 0, "fix at {} off grid", f.t.0);
        }
    }
}
