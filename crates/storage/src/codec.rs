//! Binary persistence for the generated data tables — the versioned wire
//! format behind [`crate::Repository::export`] / `import` and the
//! `Vita::save_to` / `load_from` convenience in `vita-core`.
//!
//! ## Wire format (version 2, current)
//!
//! A compact little-endian framing built on `bytes`, **run-segmented** so
//! a multi-run repository round-trips without flattening its [`RunId`]
//! dimension:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "VITA"
//! 4       1     version (2)
//! 5       1     record-type tag (1=trajectory 2=rssi 3=fix 4=proximity)
//! 6       4     run-section count (u32)
//! 10      …     sections, strictly ascending by run id:
//!                 run_id     u32
//!                 row_count  u64
//!                 rows       row_count × fixed row width
//! end-8   8     FNV-1a 64 checksum of every preceding byte
//! ```
//!
//! Rows are fixed-width (trajectory/fix 37 bytes, RSSI/proximity 24), so a
//! section's extent is known from its header and a run-0-only export costs
//! 16 bytes over the v1 framing (30 bytes of framing vs 14: the section
//! header and checksum, minus the absorbed v1 count). Empty sections are
//! never written. The trailing checksum is an integrity check (not
//! cryptographic): random corruption of a valid file decodes to a
//! [`CodecError`], never to silently wrong data.
//!
//! ## Segment files (spill tier)
//!
//! A sealed segment spilled to disk by the segmented backend uses the
//! same envelope with the record-type tag's high bit set
//! (`tag | 0x80`), marking a **segment** file: each run section carries
//! `row_count` rows followed by `row_count` little-endian `u64` arrival
//! stamps (seqs). Sealed sections are physically `(t, seq)`-sorted, so
//! the seqs are neither contiguous nor monotone and must travel with the
//! rows for page-in to reproduce bit-identical answers. The flag bit
//! keeps the two shapes mutually unreadable: feeding a segment file to a
//! table decoder (or vice versa) is [`CodecError::WrongRecordType`],
//! never a silent misparse. [`encode_segment`] / [`decode_segment`] are
//! the public entry points; whole-repository export composes the same
//! framing walker and row codecs.
//!
//! ## Version 1 (legacy, read-only)
//!
//! `magic | version=1 | tag | row_count u64 | rows` — no run sections, no
//! checksum. v1 files still decode behind the version dispatch; every row
//! lands in [`RunId::DEFAULT`] (run 0), which is exactly what the v1
//! exporter had flattened them to. The v2 writer is the only writer; the
//! `codec_roundtrip` golden-fixture test pins v1 decoding in CI.
//!
//! ## Decode guarantees
//!
//! Decoders accept exactly the documented framing and fail loudly
//! otherwise: unknown location-kind tags are [`CodecError::BadLocKind`]
//! (not silently coerced), bytes past the last declared row are
//! [`CodecError::TrailingBytes`] (concatenated or padded files do not pass
//! as one table), header-claimed counts are cross-checked against the
//! remaining byte budget up front ([`CodecError::CountOverflow`] /
//! [`CodecError::Truncated`]) instead of looping per-row on absurd counts.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use vita_geometry::Point;
use vita_indoor::{
    BuildingId, DeviceId, FloorId, Loc, LocKind, ObjectId, PartitionId, RunId, Timestamp,
};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

const MAGIC: &[u8; 4] = b"VITA";
/// Current wire-format version: run-segmented framing + checksum.
const VERSION: u8 = 2;
/// Legacy single-run framing, still decoded (into run 0).
const VERSION_V1: u8 = 1;

const TAG_TRAJECTORY: u8 = 1;
const TAG_RSSI: u8 = 2;
const TAG_FIX: u8 = 3;
const TAG_PROXIMITY: u8 = 4;
/// High bit of the tag byte: the file is a *segment* (rows + seqs per
/// section), not a plain table.
const SEQ_FLAG: u8 = 0x80;

/// Fixed row widths (bytes) per record type. A `Loc` is 25 bytes for both
/// kinds (partition payloads are padded), keeping every row fixed-width.
const LOC_SIZE: usize = 25;
const TRAJECTORY_ROW: usize = 4 + LOC_SIZE + 8;
const RSSI_ROW: usize = 4 + 4 + 8 + 8;
const FIX_ROW: usize = 4 + LOC_SIZE + 8;
const PROXIMITY_ROW: usize = 4 + 4 + 8 + 8;

/// `magic + version + tag + section count` — the fixed v2 header.
const V2_HEADER: usize = 4 + 1 + 1 + 4;
/// `run_id + row_count` — the fixed per-section header.
const SECTION_HEADER: usize = 4 + 8;
const CHECKSUM_SIZE: usize = 8;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `VITA` magic.
    BadMagic,
    /// A version this build cannot decode (neither 1 nor 2).
    UnsupportedVersion(u8),
    /// The file holds a different table's rows.
    WrongRecordType { expected: u8, got: u8 },
    /// The buffer ends before the declared rows/sections do.
    Truncated,
    /// A location row carries an unknown kind tag (not point/partition).
    BadLocKind(u8),
    /// Bytes remain after the last declared row — a concatenated, padded
    /// or otherwise corrupt file.
    TrailingBytes,
    /// A header-declared count does not fit the address space (the
    /// `count × row width` budget overflows).
    CountOverflow,
    /// The trailing checksum does not match the framed bytes.
    ChecksumMismatch,
    /// v2 run sections must be strictly ascending by run id.
    UnsortedRuns { prev: u32, next: u32 },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a Vita data file"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::WrongRecordType { expected, got } => {
                write!(f, "wrong record type: expected {expected}, got {got}")
            }
            CodecError::Truncated => write!(f, "file truncated"),
            CodecError::BadLocKind(k) => write!(f, "unknown location kind tag {k}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after the last declared row"),
            CodecError::CountOverflow => write!(f, "declared row count overflows the file budget"),
            CodecError::ChecksumMismatch => write!(f, "checksum mismatch (corrupt file)"),
            CodecError::UnsortedRuns { prev, next } => {
                write!(
                    f,
                    "run sections not strictly ascending ({prev} then {next})"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit over the framed bytes — fast, dependency-free integrity
/// hashing (not cryptographic).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_loc(loc: &Loc, buf: &mut BytesMut) {
    buf.put_u32_le(loc.building.0);
    buf.put_u32_le(loc.floor.0);
    match loc.kind {
        LocKind::Point(p) => {
            buf.put_u8(0);
            buf.put_f64_le(p.x);
            buf.put_f64_le(p.y);
        }
        LocKind::Partition(pid) => {
            buf.put_u8(1);
            buf.put_u32_le(pid.0);
            buf.put_u32_le(0); // pad to keep rows fixed-width
            buf.put_u64_le(0);
        }
    }
}

fn get_loc(buf: &mut Bytes) -> Result<Loc, CodecError> {
    if buf.remaining() < LOC_SIZE {
        return Err(CodecError::Truncated);
    }
    let building = BuildingId(buf.get_u32_le());
    let floor = FloorId(buf.get_u32_le());
    match buf.get_u8() {
        0 => {
            let x = buf.get_f64_le();
            let y = buf.get_f64_le();
            Ok(Loc::point(building, floor, Point::new(x, y)))
        }
        1 => {
            let pid = PartitionId(buf.get_u32_le());
            buf.advance(12);
            Ok(Loc::partition(building, floor, pid))
        }
        k => Err(CodecError::BadLocKind(k)),
    }
}

fn put_trajectory(s: &TrajectorySample, buf: &mut BytesMut) {
    buf.put_u32_le(s.object.0);
    put_loc(&s.loc, buf);
    buf.put_u64_le(s.t.0);
}

fn get_trajectory(buf: &mut Bytes) -> Result<TrajectorySample, CodecError> {
    if buf.remaining() < TRAJECTORY_ROW {
        return Err(CodecError::Truncated);
    }
    let object = ObjectId(buf.get_u32_le());
    let loc = get_loc(buf)?;
    let t = Timestamp(buf.get_u64_le());
    Ok(TrajectorySample { object, loc, t })
}

fn put_rssi(m: &RssiMeasurement, buf: &mut BytesMut) {
    buf.put_u32_le(m.object.0);
    buf.put_u32_le(m.device.0);
    buf.put_f64_le(m.rssi);
    buf.put_u64_le(m.t.0);
}

fn get_rssi(buf: &mut Bytes) -> Result<RssiMeasurement, CodecError> {
    if buf.remaining() < RSSI_ROW {
        return Err(CodecError::Truncated);
    }
    Ok(RssiMeasurement {
        object: ObjectId(buf.get_u32_le()),
        device: DeviceId(buf.get_u32_le()),
        rssi: buf.get_f64_le(),
        t: Timestamp(buf.get_u64_le()),
    })
}

fn put_fix(fx: &Fix, buf: &mut BytesMut) {
    buf.put_u32_le(fx.object.0);
    put_loc(&fx.loc, buf);
    buf.put_u64_le(fx.t.0);
}

fn get_fix(buf: &mut Bytes) -> Result<Fix, CodecError> {
    if buf.remaining() < FIX_ROW {
        return Err(CodecError::Truncated);
    }
    let object = ObjectId(buf.get_u32_le());
    let loc = get_loc(buf)?;
    let t = Timestamp(buf.get_u64_le());
    Ok(Fix { object, loc, t })
}

fn put_proximity(r: &ProximityRecord, buf: &mut BytesMut) {
    buf.put_u32_le(r.object.0);
    buf.put_u32_le(r.device.0);
    buf.put_u64_le(r.ts.0);
    buf.put_u64_le(r.te.0);
}

fn get_proximity(buf: &mut Bytes) -> Result<ProximityRecord, CodecError> {
    if buf.remaining() < PROXIMITY_ROW {
        return Err(CodecError::Truncated);
    }
    Ok(ProximityRecord {
        object: ObjectId(buf.get_u32_le()),
        device: DeviceId(buf.get_u32_le()),
        ts: Timestamp(buf.get_u64_le()),
        te: Timestamp(buf.get_u64_le()),
    })
}

/// Fixed-width wire encoding for one record type — the capability the
/// generic table and segment codecs are written against. `TAG` is the
/// record-type byte in the file header, `ROW` the fixed row width.
pub trait WireRecord: Copy + Send + Sync + 'static {
    /// Record-type tag byte for this row type's files.
    const TAG: u8;
    /// Fixed encoded row width in bytes.
    const ROW: usize;
    /// Append exactly [`Self::ROW`] bytes for this row.
    fn put_row(&self, buf: &mut BytesMut);
    /// Read one row, checking the remaining byte budget.
    fn get_row(buf: &mut Bytes) -> Result<Self, CodecError>;
}

impl WireRecord for TrajectorySample {
    const TAG: u8 = TAG_TRAJECTORY;
    const ROW: usize = TRAJECTORY_ROW;
    fn put_row(&self, buf: &mut BytesMut) {
        put_trajectory(self, buf)
    }
    fn get_row(buf: &mut Bytes) -> Result<Self, CodecError> {
        get_trajectory(buf)
    }
}

impl WireRecord for RssiMeasurement {
    const TAG: u8 = TAG_RSSI;
    const ROW: usize = RSSI_ROW;
    fn put_row(&self, buf: &mut BytesMut) {
        put_rssi(self, buf)
    }
    fn get_row(buf: &mut Bytes) -> Result<Self, CodecError> {
        get_rssi(buf)
    }
}

impl WireRecord for Fix {
    const TAG: u8 = TAG_FIX;
    const ROW: usize = FIX_ROW;
    fn put_row(&self, buf: &mut BytesMut) {
        put_fix(self, buf)
    }
    fn get_row(buf: &mut Bytes) -> Result<Self, CodecError> {
        get_fix(buf)
    }
}

impl WireRecord for ProximityRecord {
    const TAG: u8 = TAG_PROXIMITY;
    const ROW: usize = PROXIMITY_ROW;
    fn put_row(&self, buf: &mut BytesMut) {
        put_proximity(self, buf)
    }
    fn get_row(buf: &mut Bytes) -> Result<Self, CodecError> {
        get_proximity(buf)
    }
}

/// Write the fixed v2 header for `tag` into a buffer sized for
/// `sections` sections of `payload` total payload bytes.
fn v2_header(tag: u8, sections: usize, payload: usize) -> BytesMut {
    let mut buf =
        BytesMut::with_capacity(V2_HEADER + sections * SECTION_HEADER + payload + CHECKSUM_SIZE);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(tag);
    buf.put_u32_le(sections as u32);
    buf
}

/// Seal a framed body with its trailing FNV-1a checksum.
fn v2_finish(mut buf: BytesMut) -> Bytes {
    let checksum = fnv1a(buf.as_ref());
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Encode run sections in the v2 framing. The writer is total — it emits
/// a canonical file for *any* input: empty sections are skipped, and
/// sections are written in ascending run-id order with same-run sections
/// concatenated (repository exporters already pass ascending unique ids,
/// so this is a no-op rearrangement on the hot path).
fn encode_runs<T: WireRecord>(sections: &[(RunId, &[T])]) -> Bytes {
    let mut by_run: std::collections::BTreeMap<u32, Vec<&[T]>> = std::collections::BTreeMap::new();
    for (run, rows) in sections {
        if !rows.is_empty() {
            by_run.entry(run.0).or_default().push(rows);
        }
    }
    let rows_total: usize = by_run
        .values()
        .flat_map(|parts| parts.iter().map(|rows| rows.len()))
        .sum();
    let mut buf = v2_header(T::TAG, by_run.len(), rows_total * T::ROW);
    for (run, parts) in by_run {
        buf.put_u32_le(run);
        buf.put_u64_le(parts.iter().map(|rows| rows.len() as u64).sum());
        for rows in parts {
            for r in rows {
                r.put_row(&mut buf);
            }
        }
    }
    v2_finish(buf)
}

/// Encode a table file from **already-encoded** row bytes — the splice
/// path `export` uses to reuse spilled segment bytes without a typed
/// decode/re-encode. Each chunk must hold a whole number of `T` rows;
/// chunks are concatenated in the given order within their section.
pub(crate) fn encode_runs_raw<T: WireRecord>(sections: &[(RunId, Vec<&[u8]>)]) -> Bytes {
    let mut by_run: std::collections::BTreeMap<u32, Vec<&[u8]>> = std::collections::BTreeMap::new();
    for (run, chunks) in sections {
        for chunk in chunks {
            debug_assert_eq!(chunk.len() % T::ROW, 0, "chunk must be whole rows");
            if !chunk.is_empty() {
                by_run.entry(run.0).or_default().push(chunk);
            }
        }
    }
    let bytes_total: usize = by_run.values().flatten().map(|c| c.len()).sum();
    let mut buf = v2_header(T::TAG, by_run.len(), bytes_total);
    for (run, chunks) in by_run {
        buf.put_u32_le(run);
        buf.put_u64_le(chunks.iter().map(|c| (c.len() / T::ROW) as u64).sum());
        for chunk in chunks {
            buf.put_slice(chunk);
        }
    }
    v2_finish(buf)
}

/// One run section of a segment file: rows plus their per-table arrival
/// stamps, parallel arrays in the stored `(t, seq)` order.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentSection<T> {
    /// Run the rows belong to.
    pub run: RunId,
    /// Rows in stored order.
    pub rows: Vec<T>,
    /// Arrival stamp of each row, parallel to `rows`.
    pub seqs: Vec<u64>,
}

/// Encode one sealed segment as a self-describing spill file: the v2
/// envelope with the tag's segment bit set, each section carrying its
/// rows followed by their seqs. Canonicalized like `encode_runs`
/// (ascending run ids, same-run parts merged, empty parts dropped).
///
/// # Panics
/// If any section's `rows` and `seqs` lengths differ.
pub fn encode_segment<T: WireRecord>(sections: &[(RunId, &[T], &[u64])]) -> Bytes {
    type Parts<'a, T> = Vec<(&'a [T], &'a [u64])>;
    let mut by_run: std::collections::BTreeMap<u32, Parts<'_, T>> =
        std::collections::BTreeMap::new();
    for (run, rows, seqs) in sections {
        assert_eq!(rows.len(), seqs.len(), "rows and seqs must be parallel");
        if !rows.is_empty() {
            by_run.entry(run.0).or_default().push((rows, seqs));
        }
    }
    let rows_total: usize = by_run
        .values()
        .flat_map(|parts| parts.iter().map(|(rows, _)| rows.len()))
        .sum();
    let mut buf = v2_header(T::TAG | SEQ_FLAG, by_run.len(), rows_total * (T::ROW + 8));
    for (run, parts) in by_run {
        buf.put_u32_le(run);
        buf.put_u64_le(parts.iter().map(|(rows, _)| rows.len() as u64).sum());
        for (rows, _) in &parts {
            for r in *rows {
                r.put_row(&mut buf);
            }
        }
        for (_, seqs) in &parts {
            for &s in *seqs {
                buf.put_u64_le(s);
            }
        }
    }
    v2_finish(buf)
}

/// Decode a segment file produced by [`encode_segment`]. Fails with
/// [`CodecError::WrongRecordType`] on a plain table file (and table
/// decoders fail the same way on segment files) — the two framings are
/// mutually unreadable by construction.
pub fn decode_segment<T: WireRecord>(data: Bytes) -> Result<Vec<SegmentSection<T>>, CodecError> {
    walk_v2(T::TAG | SEQ_FLAG, data, |buf, run, count| {
        let rows = read_rows(buf, count, T::ROW, &T::get_row)?;
        let seqs = read_seqs(buf, count)?;
        Ok((!rows.is_empty()).then_some(SegmentSection { run, rows, seqs }))
    })
}

/// A segment section with rows left as raw bytes — zero-copy slices of
/// the (checksum-verified) file, used to splice spilled rows straight
/// into a table export without a typed round trip.
#[derive(Debug, Clone)]
pub(crate) struct RawSection {
    pub run: RunId,
    /// `seqs.len() × T::ROW` bytes of encoded rows in stored order.
    pub rows: Bytes,
    pub seqs: Vec<u64>,
}

/// Decode a segment file keeping row payloads as raw byte slices. The
/// checksum is still verified before anything is returned; only the
/// per-row field parse is skipped.
pub(crate) fn decode_segment_raw<T: WireRecord>(
    data: Bytes,
) -> Result<Vec<RawSection>, CodecError> {
    walk_v2(T::TAG | SEQ_FLAG, data, |buf, run, count| {
        let needed = count
            .checked_mul(T::ROW as u64)
            .ok_or(CodecError::CountOverflow)?;
        if count > usize::MAX as u64 {
            return Err(CodecError::CountOverflow);
        }
        if needed > buf.remaining() as u64 {
            return Err(CodecError::Truncated);
        }
        let rows = buf.split_to(needed as usize);
        let seqs = read_seqs(buf, count)?;
        Ok((!seqs.is_empty()).then_some(RawSection { run, rows, seqs }))
    })
}

/// Read one section's seq block (`count` little-endian u64s).
fn read_seqs(buf: &mut Bytes, count: u64) -> Result<Vec<u64>, CodecError> {
    read_rows(buf, count, 8, &|b: &mut Bytes| {
        if b.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        Ok(b.get_u64_le())
    })
}

/// Read one section's rows with the byte budget cross-checked up front:
/// an absurd header-claimed count fails in O(1) instead of allocating or
/// looping per row.
fn read_rows<T>(
    buf: &mut Bytes,
    count: u64,
    row_size: usize,
    get_row: &impl Fn(&mut Bytes) -> Result<T, CodecError>,
) -> Result<Vec<T>, CodecError> {
    let needed = count
        .checked_mul(row_size as u64)
        .ok_or(CodecError::CountOverflow)?;
    if count > usize::MAX as u64 {
        return Err(CodecError::CountOverflow);
    }
    if needed > buf.remaining() as u64 {
        return Err(CodecError::Truncated);
    }
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        out.push(get_row(buf)?);
    }
    Ok(out)
}

/// Walk the v2 envelope shared by table and segment files: validate
/// magic/version/tag, split off the trailing checksum, hand each
/// strictly-ascending run section's payload to `read` (which returns
/// `None` for sections the caller drops), reject trailing bytes, and
/// verify the checksum last — structural errors are more precise, and a
/// file that parses but hashes wrong is plain corruption.
fn walk_v2<S>(
    expected_tag: u8,
    data: Bytes,
    mut read: impl FnMut(&mut Bytes, RunId, u64) -> Result<Option<S>, CodecError>,
) -> Result<Vec<S>, CodecError> {
    let mut buf = data.clone();
    if buf.remaining() < 6 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let got = buf.get_u8();
    if got != expected_tag {
        return Err(CodecError::WrongRecordType {
            expected: expected_tag,
            got,
        });
    }
    if data.remaining() < V2_HEADER + CHECKSUM_SIZE {
        return Err(CodecError::Truncated);
    }
    let body_len = data.remaining() - CHECKSUM_SIZE;
    let expected_checksum = data.slice(body_len..).get_u64_le();
    let body = data.slice(..body_len);
    let mut buf = body.clone();
    buf.advance(6); // magic + version + tag, validated above
    let section_count = buf.get_u32_le();
    // Fast-fail: each section needs at least its header.
    if u64::from(section_count) * SECTION_HEADER as u64 > buf.remaining() as u64 {
        return Err(CodecError::Truncated);
    }
    let mut out: Vec<S> = Vec::with_capacity(section_count as usize);
    let mut prev: Option<u32> = None;
    for _ in 0..section_count {
        if buf.remaining() < SECTION_HEADER {
            return Err(CodecError::Truncated);
        }
        let run = buf.get_u32_le();
        if let Some(p) = prev {
            if run <= p {
                return Err(CodecError::UnsortedRuns { prev: p, next: run });
            }
        }
        prev = Some(run);
        let count = buf.get_u64_le();
        if let Some(section) = read(&mut buf, RunId(run), count)? {
            out.push(section);
        }
    }
    if buf.remaining() != 0 {
        return Err(CodecError::TrailingBytes);
    }
    if fnv1a(body.as_ref()) != expected_checksum {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok(out)
}

/// Decode a table file of either version into its run sections, ascending
/// by run id. v1 files decode as one [`RunId::DEFAULT`] section (or none,
/// when empty). Sections with zero rows are never produced.
fn decode_runs<T: WireRecord>(data: Bytes) -> Result<Vec<(RunId, Vec<T>)>, CodecError> {
    let mut buf = data.clone();
    if buf.remaining() < 6 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if buf.get_u8() == VERSION_V1 {
        let got = buf.get_u8();
        if got != T::TAG {
            return Err(CodecError::WrongRecordType {
                expected: T::TAG,
                got,
            });
        }
        if buf.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let count = buf.get_u64_le();
        let rows = read_rows(&mut buf, count, T::ROW, &T::get_row)?;
        if buf.remaining() != 0 {
            return Err(CodecError::TrailingBytes);
        }
        return Ok(if rows.is_empty() {
            Vec::new()
        } else {
            vec![(RunId::DEFAULT, rows)]
        });
    }
    walk_v2(T::TAG, data, |buf, run, count| {
        let rows = read_rows(buf, count, T::ROW, &T::get_row)?;
        Ok((!rows.is_empty()).then_some((run, rows)))
    })
}

/// Encode trajectory samples as one [`RunId::DEFAULT`] section.
pub fn encode_trajectories(samples: &[TrajectorySample]) -> Bytes {
    encode_trajectories_runs(&[(RunId::DEFAULT, samples)])
}

/// Encode per-run trajectory sections (canonicalized: ascending run
/// ids, same-run sections merged, empty sections dropped).
pub fn encode_trajectories_runs(sections: &[(RunId, &[TrajectorySample])]) -> Bytes {
    encode_runs(sections)
}

/// Decode trajectory samples, all runs concatenated in section order.
pub fn decode_trajectories(data: Bytes) -> Result<Vec<TrajectorySample>, CodecError> {
    Ok(flatten(decode_trajectories_runs(data)?))
}

/// Decode per-run trajectory sections (v1 files land in run 0).
pub fn decode_trajectories_runs(
    data: Bytes,
) -> Result<Vec<(RunId, Vec<TrajectorySample>)>, CodecError> {
    decode_runs(data)
}

/// Encode RSSI measurements as one [`RunId::DEFAULT`] section.
pub fn encode_rssi(ms: &[RssiMeasurement]) -> Bytes {
    encode_rssi_runs(&[(RunId::DEFAULT, ms)])
}

/// Encode per-run RSSI sections (canonicalized; see
/// [`encode_trajectories_runs`]).
pub fn encode_rssi_runs(sections: &[(RunId, &[RssiMeasurement])]) -> Bytes {
    encode_runs(sections)
}

/// Decode RSSI measurements, all runs concatenated in section order.
pub fn decode_rssi(data: Bytes) -> Result<Vec<RssiMeasurement>, CodecError> {
    Ok(flatten(decode_rssi_runs(data)?))
}

/// Decode per-run RSSI sections (v1 files land in run 0).
pub fn decode_rssi_runs(data: Bytes) -> Result<Vec<(RunId, Vec<RssiMeasurement>)>, CodecError> {
    decode_runs(data)
}

/// Encode deterministic fixes as one [`RunId::DEFAULT`] section.
pub fn encode_fixes(fs: &[Fix]) -> Bytes {
    encode_fixes_runs(&[(RunId::DEFAULT, fs)])
}

/// Encode per-run fix sections (canonicalized; see
/// [`encode_trajectories_runs`]).
pub fn encode_fixes_runs(sections: &[(RunId, &[Fix])]) -> Bytes {
    encode_runs(sections)
}

/// Decode deterministic fixes, all runs concatenated in section order.
pub fn decode_fixes(data: Bytes) -> Result<Vec<Fix>, CodecError> {
    Ok(flatten(decode_fixes_runs(data)?))
}

/// Decode per-run fix sections (v1 files land in run 0).
pub fn decode_fixes_runs(data: Bytes) -> Result<Vec<(RunId, Vec<Fix>)>, CodecError> {
    decode_runs(data)
}

/// Encode proximity records as one [`RunId::DEFAULT`] section.
pub fn encode_proximity(rs: &[ProximityRecord]) -> Bytes {
    encode_proximity_runs(&[(RunId::DEFAULT, rs)])
}

/// Encode per-run proximity sections (canonicalized; see
/// [`encode_trajectories_runs`]).
pub fn encode_proximity_runs(sections: &[(RunId, &[ProximityRecord])]) -> Bytes {
    encode_runs(sections)
}

/// Decode proximity records, all runs concatenated in section order.
pub fn decode_proximity(data: Bytes) -> Result<Vec<ProximityRecord>, CodecError> {
    Ok(flatten(decode_proximity_runs(data)?))
}

/// Decode per-run proximity sections (v1 files land in run 0).
pub fn decode_proximity_runs(
    data: Bytes,
) -> Result<Vec<(RunId, Vec<ProximityRecord>)>, CodecError> {
    decode_runs(data)
}

fn flatten<T>(sections: Vec<(RunId, Vec<T>)>) -> Vec<T> {
    sections.into_iter().flat_map(|(_, rows)| rows).collect()
}

/// Filesystem half of [`crate::RepositoryExport::write_dir`]: disk I/O
/// stays confined to the persistence modules (audit rule R2), so the
/// facade in `lib.rs` delegates the actual `fs` calls here. Each file is
/// written crash-atomically via [`crate::segment::write_atomic`].
pub(crate) fn write_export_dir(
    export: &crate::RepositoryExport,
    dir: &std::path::Path,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let tables: [&Bytes; 4] = [
        &export.trajectories,
        &export.rssi,
        &export.fixes,
        &export.proximity,
    ];
    for (name, data) in crate::RepositoryExport::FILE_NAMES.iter().zip(tables) {
        crate::segment::write_atomic(&dir.join(name), data.as_ref())?;
    }
    Ok(())
}

/// Filesystem half of [`crate::RepositoryExport::read_dir`]: purely file
/// I/O — decode errors surface when the export is imported.
pub(crate) fn read_export_dir(dir: &std::path::Path) -> std::io::Result<crate::RepositoryExport> {
    let read = |name: &str| std::fs::read(dir.join(name)).map(Bytes::from);
    let [t, r, f, p] = crate::RepositoryExport::FILE_NAMES;
    Ok(crate::RepositoryExport {
        trajectories: read(t)?,
        rssi: read(r)?,
        fixes: read(f)?,
        proximity: read(p)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajectories() -> Vec<TrajectorySample> {
        vec![
            TrajectorySample::new(
                ObjectId(1),
                BuildingId(0),
                FloorId(0),
                Point::new(1.5, 2.5),
                Timestamp(1000),
            ),
            TrajectorySample {
                object: ObjectId(2),
                loc: Loc::partition(BuildingId(0), FloorId(1), PartitionId(7)),
                t: Timestamp(2000),
            },
        ]
    }

    /// Hand-encode a v1 trajectory file (the legacy writer no longer
    /// exists, so tests produce its output byte-for-byte).
    fn encode_trajectories_v1(samples: &[TrajectorySample]) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION_V1);
        buf.put_u8(TAG_TRAJECTORY);
        buf.put_u64_le(samples.len() as u64);
        for s in samples {
            put_trajectory(s, &mut buf);
        }
        buf.freeze()
    }

    #[test]
    fn trajectory_round_trip() {
        let original = sample_trajectories();
        let encoded = encode_trajectories(&original);
        let decoded = decode_trajectories(encoded).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn rssi_round_trip() {
        let original = vec![
            RssiMeasurement {
                object: ObjectId(0),
                device: DeviceId(3),
                rssi: -62.25,
                t: Timestamp(500),
            },
            RssiMeasurement {
                object: ObjectId(9),
                device: DeviceId(0),
                rssi: -40.0,
                t: Timestamp(999),
            },
        ];
        let decoded = decode_rssi(encode_rssi(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn fix_round_trip() {
        let original = vec![Fix {
            object: ObjectId(4),
            loc: Loc::point(BuildingId(0), FloorId(2), Point::new(-3.25, 8.0)),
            t: Timestamp(12345),
        }];
        let decoded = decode_fixes(encode_fixes(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn proximity_round_trip() {
        let original = vec![ProximityRecord {
            object: ObjectId(5),
            device: DeviceId(6),
            ts: Timestamp(100),
            te: Timestamp(5000),
        }];
        let decoded = decode_proximity(encode_proximity(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn multi_run_sections_round_trip() {
        let run0 = sample_trajectories();
        let run3: Vec<TrajectorySample> = (0..5)
            .map(|i| {
                TrajectorySample::new(
                    ObjectId(i),
                    BuildingId(1),
                    FloorId(0),
                    Point::new(i as f64, -1.0),
                    Timestamp(i as u64 * 10),
                )
            })
            .collect();
        let sections = [
            (RunId(0), run0.as_slice()),
            (RunId(3), run3.as_slice()),
            (RunId(7), run0.as_slice()),
        ];
        let decoded = decode_trajectories_runs(encode_trajectories_runs(&sections)).unwrap();
        assert_eq!(decoded.len(), 3);
        for ((run, rows), (want_run, want_rows)) in decoded.iter().zip(&sections) {
            assert_eq!(run, want_run);
            assert_eq!(rows.as_slice(), *want_rows);
        }
        // The flattening reader concatenates sections in run order.
        let flat = decode_trajectories(encode_trajectories_runs(&sections)).unwrap();
        assert_eq!(flat.len(), run0.len() * 2 + run3.len());
    }

    #[test]
    fn encoder_canonicalizes_unsorted_and_duplicate_sections() {
        // The writer is total: out-of-order and repeated run ids encode
        // to the canonical ascending-merged file instead of a file the
        // decoder would reject.
        let rows = sample_trajectories();
        let extra = vec![rows[0]];
        let messy = [
            (RunId(5), rows.as_slice()),
            (RunId(1), extra.as_slice()),
            (RunId(5), extra.as_slice()),
        ];
        let decoded = decode_trajectories_runs(encode_trajectories_runs(&messy)).unwrap();
        let mut run5 = rows.clone();
        run5.extend_from_slice(&extra);
        assert_eq!(decoded, vec![(RunId(1), extra), (RunId(5), run5)]);
    }

    #[test]
    fn empty_sections_are_skipped() {
        let rows = sample_trajectories();
        let sections = [
            (RunId(1), [].as_slice()),
            (RunId(2), rows.as_slice()),
            (RunId(5), [].as_slice()),
        ];
        let decoded = decode_trajectories_runs(encode_trajectories_runs(&sections)).unwrap();
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].0, RunId(2));
    }

    #[test]
    fn empty_tables_round_trip() {
        assert!(decode_trajectories(encode_trajectories(&[]))
            .unwrap()
            .is_empty());
        assert!(decode_rssi(encode_rssi(&[])).unwrap().is_empty());
        assert!(decode_fixes(encode_fixes(&[])).unwrap().is_empty());
        assert!(decode_proximity(encode_proximity(&[])).unwrap().is_empty());
        assert!(decode_trajectories_runs(encode_trajectories(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn v1_files_decode_into_run_zero() {
        let original = sample_trajectories();
        let v1 = encode_trajectories_v1(&original);
        assert_eq!(decode_trajectories(v1.clone()).unwrap(), original);
        let sections = decode_trajectories_runs(v1).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].0, RunId::DEFAULT);
        assert_eq!(sections[0].1, original);
        // An empty v1 file has no sections at all.
        assert!(decode_trajectories_runs(encode_trajectories_v1(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wrong_type_rejected() {
        let data = encode_rssi(&[]);
        match decode_trajectories(data).unwrap_err() {
            CodecError::WrongRecordType { expected, got } => {
                assert_eq!(expected, TAG_TRAJECTORY);
                assert_eq!(got, TAG_RSSI);
            }
            e => panic!("wrong error {e:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let data = Bytes::from_static(b"NOPE\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00");
        assert_eq!(decode_trajectories(data).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let full = encode_trajectories(&sample_trajectories());
        let cut = full.slice(0..full.len() - 5);
        assert_eq!(decode_trajectories(cut).unwrap_err(), CodecError::Truncated);
        let tiny = full.slice(0..6);
        assert_eq!(
            decode_trajectories(tiny).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn version_checked() {
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u8(99);
        raw.put_u8(TAG_TRAJECTORY);
        raw.put_u64_le(0);
        assert_eq!(
            decode_trajectories(raw.freeze()).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn bad_loc_kind_rejected() {
        // v1 framing so no checksum shields the corrupt kind byte: one
        // point-trajectory row whose loc kind tag is 9.
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u8(VERSION_V1);
        raw.put_u8(TAG_TRAJECTORY);
        raw.put_u64_le(1);
        raw.put_u32_le(1); // object
        raw.put_u32_le(0); // building
        raw.put_u32_le(0); // floor
        raw.put_u8(9); // unknown kind tag
        raw.put_slice(&[0u8; 16]); // payload
        raw.put_u64_le(1000); // t
        assert_eq!(
            decode_trajectories(raw.freeze()).unwrap_err(),
            CodecError::BadLocKind(9)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        // A valid v2 file with junk appended after the checksum.
        let valid = encode_trajectories(&sample_trajectories());
        let mut raw = BytesMut::with_capacity(valid.len() + 3);
        raw.put_slice(valid.as_ref());
        raw.put_slice(b"xyz");
        assert_eq!(
            decode_trajectories(raw.freeze()).unwrap_err(),
            CodecError::TrailingBytes
        );
        // Same for v1: two empty files concatenated.
        let v1 = encode_trajectories_v1(&[]);
        let mut cat = BytesMut::new();
        cat.put_slice(v1.as_ref());
        cat.put_slice(v1.as_ref());
        assert_eq!(
            decode_trajectories(cat.freeze()).unwrap_err(),
            CodecError::TrailingBytes
        );
    }

    #[test]
    fn absurd_counts_fail_fast() {
        // v1 header claiming u64::MAX rows: the count × row-width budget
        // overflows → CountOverflow, before any row loop.
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u8(VERSION_V1);
        raw.put_u8(TAG_TRAJECTORY);
        raw.put_u64_le(u64::MAX);
        assert_eq!(
            decode_trajectories(raw.freeze()).unwrap_err(),
            CodecError::CountOverflow
        );
        // A large-but-representable claim with no bytes behind it fails
        // the up-front budget check as Truncated.
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u8(VERSION_V1);
        raw.put_u8(TAG_TRAJECTORY);
        raw.put_u64_le(1 << 40);
        assert_eq!(
            decode_trajectories(raw.freeze()).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn checksum_mismatch_detected() {
        let valid = encode_trajectories(&sample_trajectories());
        // Flip one payload byte (an x coordinate) — structure still
        // parses, the checksum does not.
        let mut bytes = valid.as_ref().to_vec();
        let payload = V2_HEADER + SECTION_HEADER + 14;
        bytes[payload] ^= 0x40;
        assert_eq!(
            decode_trajectories(Bytes::from(bytes)).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        // Flip a checksum byte itself.
        let mut bytes = valid.as_ref().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(
            decode_trajectories(Bytes::from(bytes)).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn unsorted_run_sections_rejected() {
        // Hand-build a v2 file with sections (3, 3): duplicates and
        // descending ids are both "not strictly ascending".
        for (first, second) in [(3u32, 3u32), (5, 2)] {
            let mut body = BytesMut::new();
            body.put_slice(MAGIC);
            body.put_u8(VERSION);
            body.put_u8(TAG_PROXIMITY);
            body.put_u32_le(2);
            for run in [first, second] {
                body.put_u32_le(run);
                body.put_u64_le(0);
            }
            let checksum = fnv1a(body.as_ref());
            body.put_u64_le(checksum);
            assert_eq!(
                decode_proximity(body.freeze()).unwrap_err(),
                CodecError::UnsortedRuns {
                    prev: first,
                    next: second
                }
            );
        }
    }

    #[test]
    fn segment_round_trip_preserves_rows_and_seqs() {
        let rows = sample_trajectories();
        let seqs_a = [7u64, 3];
        let seqs_b = [11u64, 2];
        let sections = [
            (RunId(1), rows.as_slice(), seqs_a.as_slice()),
            (RunId(4), rows.as_slice(), seqs_b.as_slice()),
        ];
        let decoded = decode_segment::<TrajectorySample>(encode_segment(&sections)).unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].run, RunId(1));
        assert_eq!(decoded[0].rows, rows);
        assert_eq!(decoded[0].seqs, seqs_a);
        assert_eq!(decoded[1].run, RunId(4));
        assert_eq!(decoded[1].seqs, seqs_b);
    }

    #[test]
    fn segment_and_table_files_are_mutually_unreadable() {
        let rows = sample_trajectories();
        let seqs = [0u64, 1];
        let seg = encode_segment(&[(RunId(0), rows.as_slice(), seqs.as_slice())]);
        match decode_trajectories(seg.clone()).unwrap_err() {
            CodecError::WrongRecordType { expected, got } => {
                assert_eq!(expected, TAG_TRAJECTORY);
                assert_eq!(got, TAG_TRAJECTORY | SEQ_FLAG);
            }
            e => panic!("wrong error {e:?}"),
        }
        let table = encode_trajectories(&rows);
        match decode_segment::<TrajectorySample>(table).unwrap_err() {
            CodecError::WrongRecordType { expected, got } => {
                assert_eq!(expected, TAG_TRAJECTORY | SEQ_FLAG);
                assert_eq!(got, TAG_TRAJECTORY);
            }
            e => panic!("wrong error {e:?}"),
        }
        // Cross-table segment mismatch is caught the same way.
        match decode_segment::<RssiMeasurement>(seg).unwrap_err() {
            CodecError::WrongRecordType { expected, got } => {
                assert_eq!(expected, TAG_RSSI | SEQ_FLAG);
                assert_eq!(got, TAG_TRAJECTORY | SEQ_FLAG);
            }
            e => panic!("wrong error {e:?}"),
        }
    }

    #[test]
    fn segment_truncation_and_corruption_detected() {
        let rows = sample_trajectories();
        let seqs = [5u64, 9];
        let seg = encode_segment(&[(RunId(2), rows.as_slice(), seqs.as_slice())]);
        for cut in [seg.len() - 1, seg.len() - 9, V2_HEADER + 3, 5] {
            assert!(
                decode_segment::<TrajectorySample>(seg.slice(..cut)).is_err(),
                "cut at {cut} must error"
            );
        }
        // Flip a seq byte: the structure still parses, the checksum does
        // not — and the raw decoder fails identically.
        let mut bytes = seg.as_ref().to_vec();
        let seq_off = V2_HEADER + SECTION_HEADER + 2 * TRAJECTORY_ROW + 3;
        bytes[seq_off] ^= 0x10;
        assert_eq!(
            decode_segment::<TrajectorySample>(Bytes::from(bytes.clone())).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        assert_eq!(
            decode_segment_raw::<TrajectorySample>(Bytes::from(bytes)).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn raw_segment_decode_matches_typed_decode() {
        let rows = sample_trajectories();
        let seqs = [1u64, 0];
        let seg = encode_segment(&[
            (RunId(0), rows.as_slice(), seqs.as_slice()),
            (RunId(6), rows.as_slice(), seqs.as_slice()),
        ]);
        let typed = decode_segment::<TrajectorySample>(seg.clone()).unwrap();
        let raw = decode_segment_raw::<TrajectorySample>(seg).unwrap();
        assert_eq!(typed.len(), raw.len());
        for (t, r) in typed.iter().zip(&raw) {
            assert_eq!(t.run, r.run);
            assert_eq!(t.seqs, r.seqs);
            // Re-decoding the raw row bytes yields the typed rows.
            let mut buf = r.rows.clone();
            let redecoded: Vec<TrajectorySample> = (0..t.rows.len())
                .map(|_| TrajectorySample::get_row(&mut buf).unwrap())
                .collect();
            assert_eq!(redecoded, t.rows);
            assert_eq!(buf.remaining(), 0);
        }
    }

    #[test]
    fn raw_splice_reproduces_typed_table_encoding() {
        let rows = sample_trajectories();
        // Encode each row separately, then splice the raw chunks back
        // into a table file: byte-identical to the typed encoder.
        let mut encoded = BytesMut::new();
        for r in &rows {
            r.put_row(&mut encoded);
        }
        let encoded = encoded.freeze();
        let chunks: Vec<&[u8]> = (0..rows.len())
            .map(|i| &encoded[i * TRAJECTORY_ROW..(i + 1) * TRAJECTORY_ROW])
            .collect();
        let spliced = encode_runs_raw::<TrajectorySample>(&[(RunId(3), chunks)]);
        let typed = encode_trajectories_runs(&[(RunId(3), rows.as_slice())]);
        assert_eq!(spliced, typed);
    }

    #[test]
    fn empty_segment_round_trips() {
        let seg = encode_segment::<TrajectorySample>(&[]);
        assert!(decode_segment::<TrajectorySample>(seg.clone())
            .unwrap()
            .is_empty());
        assert!(decode_segment_raw::<TrajectorySample>(seg)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn section_count_cross_checked() {
        // Header claims 1000 sections over an empty body: fail fast.
        let mut body = BytesMut::new();
        body.put_slice(MAGIC);
        body.put_u8(VERSION);
        body.put_u8(TAG_FIX);
        body.put_u32_le(1000);
        let checksum = fnv1a(body.as_ref());
        body.put_u64_le(checksum);
        assert_eq!(
            decode_fixes(body.freeze()).unwrap_err(),
            CodecError::Truncated
        );
    }
}
