//! Binary persistence for the generated data tables.
//!
//! A compact little-endian framing built on `bytes`: each file is a magic +
//! version header, a record-type tag, a row count, and fixed-width rows.
//! This replaces the paper's DBMS durability with file round-tripping good
//! enough for sharing generated datasets between runs and tools.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use vita_geometry::Point;
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, LocKind, ObjectId, PartitionId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

const MAGIC: &[u8; 4] = b"VITA";
const VERSION: u8 = 1;

const TAG_TRAJECTORY: u8 = 1;
const TAG_RSSI: u8 = 2;
const TAG_FIX: u8 = 3;
const TAG_PROXIMITY: u8 = 4;

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    BadMagic,
    UnsupportedVersion(u8),
    WrongRecordType { expected: u8, got: u8 },
    Truncated,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not a Vita data file"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CodecError::WrongRecordType { expected, got } => {
                write!(f, "wrong record type: expected {expected}, got {got}")
            }
            CodecError::Truncated => write!(f, "file truncated"),
        }
    }
}

impl std::error::Error for CodecError {}

fn header(tag: u8, count: u64, buf: &mut BytesMut) {
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(tag);
    buf.put_u64_le(count);
}

fn check_header(tag: u8, buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 14 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let got = buf.get_u8();
    if got != tag {
        return Err(CodecError::WrongRecordType { expected: tag, got });
    }
    Ok(buf.get_u64_le())
}

fn put_loc(loc: &Loc, buf: &mut BytesMut) {
    buf.put_u32_le(loc.building.0);
    buf.put_u32_le(loc.floor.0);
    match loc.kind {
        LocKind::Point(p) => {
            buf.put_u8(0);
            buf.put_f64_le(p.x);
            buf.put_f64_le(p.y);
        }
        LocKind::Partition(pid) => {
            buf.put_u8(1);
            buf.put_u32_le(pid.0);
            buf.put_u32_le(0); // pad to keep rows fixed-width-ish
            buf.put_u64_le(0);
        }
    }
}

fn get_loc(buf: &mut Bytes) -> Result<Loc, CodecError> {
    if buf.remaining() < 9 {
        return Err(CodecError::Truncated);
    }
    let building = BuildingId(buf.get_u32_le());
    let floor = FloorId(buf.get_u32_le());
    let kind = buf.get_u8();
    match kind {
        0 => {
            if buf.remaining() < 16 {
                return Err(CodecError::Truncated);
            }
            let x = buf.get_f64_le();
            let y = buf.get_f64_le();
            Ok(Loc::point(building, floor, Point::new(x, y)))
        }
        _ => {
            if buf.remaining() < 16 {
                return Err(CodecError::Truncated);
            }
            let pid = PartitionId(buf.get_u32_le());
            buf.advance(12);
            Ok(Loc::partition(building, floor, pid))
        }
    }
}

/// Encode trajectory samples.
pub fn encode_trajectories(samples: &[TrajectorySample]) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + samples.len() * 37);
    header(TAG_TRAJECTORY, samples.len() as u64, &mut buf);
    for s in samples {
        buf.put_u32_le(s.object.0);
        put_loc(&s.loc, &mut buf);
        buf.put_u64_le(s.t.0);
    }
    buf.freeze()
}

/// Decode trajectory samples.
pub fn decode_trajectories(mut data: Bytes) -> Result<Vec<TrajectorySample>, CodecError> {
    let count = check_header(TAG_TRAJECTORY, &mut data)?;
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let object = ObjectId(data.get_u32_le());
        let loc = get_loc(&mut data)?;
        if data.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let t = Timestamp(data.get_u64_le());
        out.push(TrajectorySample { object, loc, t });
    }
    Ok(out)
}

/// Encode RSSI measurements.
pub fn encode_rssi(ms: &[RssiMeasurement]) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + ms.len() * 24);
    header(TAG_RSSI, ms.len() as u64, &mut buf);
    for m in ms {
        buf.put_u32_le(m.object.0);
        buf.put_u32_le(m.device.0);
        buf.put_f64_le(m.rssi);
        buf.put_u64_le(m.t.0);
    }
    buf.freeze()
}

/// Decode RSSI measurements.
pub fn decode_rssi(mut data: Bytes) -> Result<Vec<RssiMeasurement>, CodecError> {
    let count = check_header(TAG_RSSI, &mut data)?;
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        if data.remaining() < 24 {
            return Err(CodecError::Truncated);
        }
        out.push(RssiMeasurement {
            object: ObjectId(data.get_u32_le()),
            device: DeviceId(data.get_u32_le()),
            rssi: data.get_f64_le(),
            t: Timestamp(data.get_u64_le()),
        });
    }
    Ok(out)
}

/// Encode deterministic fixes.
pub fn encode_fixes(fs: &[Fix]) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + fs.len() * 37);
    header(TAG_FIX, fs.len() as u64, &mut buf);
    for f in fs {
        buf.put_u32_le(f.object.0);
        put_loc(&f.loc, &mut buf);
        buf.put_u64_le(f.t.0);
    }
    buf.freeze()
}

/// Decode deterministic fixes.
pub fn decode_fixes(mut data: Bytes) -> Result<Vec<Fix>, CodecError> {
    let count = check_header(TAG_FIX, &mut data)?;
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        if data.remaining() < 4 {
            return Err(CodecError::Truncated);
        }
        let object = ObjectId(data.get_u32_le());
        let loc = get_loc(&mut data)?;
        if data.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let t = Timestamp(data.get_u64_le());
        out.push(Fix { object, loc, t });
    }
    Ok(out)
}

/// Encode proximity records.
pub fn encode_proximity(rs: &[ProximityRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(14 + rs.len() * 24);
    header(TAG_PROXIMITY, rs.len() as u64, &mut buf);
    for r in rs {
        buf.put_u32_le(r.object.0);
        buf.put_u32_le(r.device.0);
        buf.put_u64_le(r.ts.0);
        buf.put_u64_le(r.te.0);
    }
    buf.freeze()
}

/// Decode proximity records.
pub fn decode_proximity(mut data: Bytes) -> Result<Vec<ProximityRecord>, CodecError> {
    let count = check_header(TAG_PROXIMITY, &mut data)?;
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        if data.remaining() < 24 {
            return Err(CodecError::Truncated);
        }
        out.push(ProximityRecord {
            object: ObjectId(data.get_u32_le()),
            device: DeviceId(data.get_u32_le()),
            ts: Timestamp(data.get_u64_le()),
            te: Timestamp(data.get_u64_le()),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajectories() -> Vec<TrajectorySample> {
        vec![
            TrajectorySample::new(
                ObjectId(1),
                BuildingId(0),
                FloorId(0),
                Point::new(1.5, 2.5),
                Timestamp(1000),
            ),
            TrajectorySample {
                object: ObjectId(2),
                loc: Loc::partition(BuildingId(0), FloorId(1), PartitionId(7)),
                t: Timestamp(2000),
            },
        ]
    }

    #[test]
    fn trajectory_round_trip() {
        let original = sample_trajectories();
        let encoded = encode_trajectories(&original);
        let decoded = decode_trajectories(encoded).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn rssi_round_trip() {
        let original = vec![
            RssiMeasurement {
                object: ObjectId(0),
                device: DeviceId(3),
                rssi: -62.25,
                t: Timestamp(500),
            },
            RssiMeasurement {
                object: ObjectId(9),
                device: DeviceId(0),
                rssi: -40.0,
                t: Timestamp(999),
            },
        ];
        let decoded = decode_rssi(encode_rssi(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn fix_round_trip() {
        let original = vec![Fix {
            object: ObjectId(4),
            loc: Loc::point(BuildingId(0), FloorId(2), Point::new(-3.25, 8.0)),
            t: Timestamp(12345),
        }];
        let decoded = decode_fixes(encode_fixes(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn proximity_round_trip() {
        let original = vec![ProximityRecord {
            object: ObjectId(5),
            device: DeviceId(6),
            ts: Timestamp(100),
            te: Timestamp(5000),
        }];
        let decoded = decode_proximity(encode_proximity(&original)).unwrap();
        assert_eq!(decoded, original);
    }

    #[test]
    fn empty_tables_round_trip() {
        assert!(decode_trajectories(encode_trajectories(&[]))
            .unwrap()
            .is_empty());
        assert!(decode_rssi(encode_rssi(&[])).unwrap().is_empty());
        assert!(decode_fixes(encode_fixes(&[])).unwrap().is_empty());
        assert!(decode_proximity(encode_proximity(&[])).unwrap().is_empty());
    }

    #[test]
    fn wrong_type_rejected() {
        let data = encode_rssi(&[]);
        match decode_trajectories(data).unwrap_err() {
            CodecError::WrongRecordType { expected, got } => {
                assert_eq!(expected, TAG_TRAJECTORY);
                assert_eq!(got, TAG_RSSI);
            }
            e => panic!("wrong error {e:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let data = Bytes::from_static(b"NOPE\x01\x01\x00\x00\x00\x00\x00\x00\x00\x00");
        assert_eq!(decode_trajectories(data).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncation_detected() {
        let full = encode_trajectories(&sample_trajectories());
        let cut = full.slice(0..full.len() - 5);
        assert_eq!(decode_trajectories(cut).unwrap_err(), CodecError::Truncated);
        let tiny = full.slice(0..6);
        assert_eq!(
            decode_trajectories(tiny).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn version_checked() {
        let mut raw = BytesMut::new();
        raw.put_slice(MAGIC);
        raw.put_u8(99);
        raw.put_u8(TAG_TRAJECTORY);
        raw.put_u64_le(0);
        assert_eq!(
            decode_trajectories(raw.freeze()).unwrap_err(),
            CodecError::UnsupportedVersion(99)
        );
    }
}
