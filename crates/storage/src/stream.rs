//! Data Stream APIs (paper §2, Storage).
//!
//! "The Data Stream APIs module encapsulates some commonly used functions
//! and query processing algorithms that can be directly called by the
//! Producer." These are iterator/window utilities over time-ordered records
//! shared by the generation layers and the experiment harness.

use vita_indoor::Timestamp;

/// Anything with a timestamp can flow through the stream APIs.
pub trait Timed {
    fn time(&self) -> Timestamp;
}

impl Timed for vita_mobility::TrajectorySample {
    fn time(&self) -> Timestamp {
        self.t
    }
}

impl Timed for vita_rssi::RssiMeasurement {
    fn time(&self) -> Timestamp {
        self.t
    }
}

impl Timed for vita_positioning::Fix {
    fn time(&self) -> Timestamp {
        self.t
    }
}

/// A non-overlapping tumbling window over time-ordered records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TumblingWindow {
    pub width_ms: u64,
}

impl TumblingWindow {
    pub fn new(width_ms: u64) -> Self {
        TumblingWindow {
            width_ms: width_ms.max(1),
        }
    }

    /// Split `records` (must be time-ordered) into consecutive windows.
    /// Returns (window_start, slice) pairs; empty windows are skipped.
    pub fn split<'a, T: Timed>(&self, records: &'a [T]) -> Vec<(Timestamp, &'a [T])> {
        let mut out = Vec::new();
        if records.is_empty() {
            return out;
        }
        debug_assert!(
            records.windows(2).all(|w| w[0].time() <= w[1].time()),
            "records must be time-ordered"
        );
        let mut start_idx = 0;
        let mut window_start = Timestamp(records[0].time().0 / self.width_ms * self.width_ms);
        for (i, r) in records.iter().enumerate() {
            while r.time().0 >= window_start.0 + self.width_ms {
                if i > start_idx {
                    out.push((window_start, &records[start_idx..i]));
                }
                start_idx = i;
                window_start = Timestamp(r.time().0 / self.width_ms * self.width_ms);
            }
        }
        out.push((window_start, &records[start_idx..]));
        out
    }
}

/// Downsample time-ordered records to at most one per `period_ms` (keeping
/// the first record of each period). This is how a lower positioning
/// sampling frequency is emulated from denser data.
pub fn downsample<T: Timed + Clone>(records: &[T], period_ms: u64) -> Vec<T> {
    let period = period_ms.max(1);
    let mut out = Vec::new();
    let mut next_allowed = 0u64;
    for r in records {
        if r.time().0 >= next_allowed {
            out.push(r.clone());
            next_allowed = (r.time().0 / period + 1) * period;
        }
    }
    out
}

/// Rate (records per second) over the span of the records.
pub fn record_rate<T: Timed>(records: &[T]) -> f64 {
    let (Some(first), Some(last)) = (records.first(), records.last()) else {
        return 0.0;
    };
    if records.len() < 2 {
        return 0.0;
    }
    let span_ms = last.time().since(first.time());
    if span_ms == 0 {
        return 0.0;
    }
    (records.len() as f64 - 1.0) / (span_ms as f64 / 1000.0)
}

/// Merge multiple time-ordered streams into one time-ordered stream — a
/// `BinaryHeap` k-way merge, `O(n log k)` instead of one linear scan over
/// all stream heads per output record. Ties go to the lowest stream
/// index, exactly as the scan-based merge resolved them.
pub fn merge_by_time<T: Timed + Clone>(streams: &[&[T]]) -> Vec<T> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let total: usize = streams.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; streams.len()];
    // Min-heap of (head timestamp, stream index); a stream re-enters the
    // heap with its next head after each pop.
    let mut heads: BinaryHeap<Reverse<(Timestamp, usize)>> = streams
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.is_empty())
        .map(|(k, s)| Reverse((s[0].time(), k)))
        .collect();
    while let Some(Reverse((_, k))) = heads.pop() {
        out.push(streams[k][cursors[k]].clone());
        cursors[k] += 1;
        if let Some(next) = streams[k].get(cursors[k]) {
            heads.push(Reverse((next.time(), k)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, FloorId, ObjectId};
    use vita_mobility::TrajectorySample;

    fn s(t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(0),
            BuildingId(0),
            FloorId(0),
            Point::new(t as f64, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn tumbling_window_splits_correctly() {
        let records: Vec<TrajectorySample> = (0..10).map(|i| s(i * 100)).collect();
        let windows = TumblingWindow::new(300).split(&records);
        // t: 0,100,200 | 300,400,500 | 600,700,800 | 900
        assert_eq!(windows.len(), 4);
        assert_eq!(windows[0].1.len(), 3);
        assert_eq!(windows[3].1.len(), 1);
        assert_eq!(windows[1].0, Timestamp(300));
        let total: usize = windows.iter().map(|(_, w)| w.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn tumbling_window_skips_empty_gaps() {
        let records = vec![s(0), s(100), s(5000)];
        let windows = TumblingWindow::new(1000).split(&records);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[1].0, Timestamp(5000));
    }

    #[test]
    fn empty_input_empty_windows() {
        let records: Vec<TrajectorySample> = vec![];
        assert!(TumblingWindow::new(100).split(&records).is_empty());
    }

    #[test]
    fn downsample_keeps_one_per_period() {
        let records: Vec<TrajectorySample> = (0..20).map(|i| s(i * 100)).collect();
        let down = downsample(&records, 500);
        // Keeps t = 0, 500, 1000, 1500.
        let ts: Vec<u64> = down.iter().map(|r| r.t.0).collect();
        assert_eq!(ts, vec![0, 500, 1000, 1500]);
    }

    #[test]
    fn downsample_with_irregular_input() {
        let records = vec![s(0), s(10), s(490), s(510), s(1700)];
        let down = downsample(&records, 500);
        let ts: Vec<u64> = down.iter().map(|r| r.t.0).collect();
        assert_eq!(ts, vec![0, 510, 1700]);
    }

    #[test]
    fn record_rate_computed() {
        let records: Vec<TrajectorySample> = (0..11).map(|i| s(i * 100)).collect();
        // 10 intervals over 1 second.
        assert!((record_rate(&records) - 10.0).abs() < 1e-9);
        assert_eq!(record_rate(&records[..1]), 0.0);
    }

    #[test]
    fn merge_by_time_interleaves() {
        let a = vec![s(0), s(200), s(400)];
        let b = vec![s(100), s(300)];
        let merged = merge_by_time(&[&a, &b]);
        let ts: Vec<u64> = merged.iter().map(|r| r.t.0).collect();
        assert_eq!(ts, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn merge_many_streams() {
        // 16 strided streams: stream k holds t = k, k+16, k+32, … — the
        // merge must interleave them back into 0..N in one sorted pass.
        const K: usize = 16;
        const PER: u64 = 25;
        let streams: Vec<Vec<TrajectorySample>> = (0..K as u64)
            .map(|k| (0..PER).map(|i| s(k + i * K as u64)).collect())
            .collect();
        let refs: Vec<&[TrajectorySample]> = streams.iter().map(Vec::as_slice).collect();
        let merged = merge_by_time(&refs);
        assert_eq!(merged.len(), K * PER as usize);
        let ts: Vec<u64> = merged.iter().map(|r| r.t.0).collect();
        let want: Vec<u64> = (0..K as u64 * PER).collect();
        assert_eq!(ts, want);
    }

    #[test]
    fn merge_ties_keep_stream_order() {
        // Equal timestamps come out in stream order (lowest index first):
        // the x coordinate marks which stream each record came from.
        fn tagged(t: u64, x: f64) -> TrajectorySample {
            TrajectorySample::new(
                ObjectId(0),
                BuildingId(0),
                FloorId(0),
                Point::new(x, 0.0),
                Timestamp(t),
            )
        }
        let a = vec![tagged(10, 0.0), tagged(20, 0.0)];
        let b = vec![tagged(10, 1.0), tagged(20, 1.0)];
        let c = vec![tagged(10, 2.0)];
        let merged = merge_by_time(&[&a, &b, &c]);
        let tags: Vec<(u64, f64)> = merged.iter().map(|r| (r.t.0, r.point().x)).collect();
        assert_eq!(
            tags,
            vec![(10, 0.0), (10, 1.0), (10, 2.0), (20, 0.0), (20, 1.0)]
        );
    }

    #[test]
    fn merge_handles_empty_streams() {
        let a: Vec<TrajectorySample> = vec![];
        let b = vec![s(5)];
        let merged = merge_by_time(&[&a, &b]);
        assert_eq!(merged.len(), 1);
    }
}
