//! # vita-storage
//!
//! The Storage component (paper §2, §4.2): indexed repositories for every
//! generated data product, Data Stream APIs for the Producer, and binary
//! persistence. Replaces the paper's PostgreSQL+PostGIS deployment with an
//! embedded, laptop-scale engine (see DESIGN.md substitution table).
//!
//! * [`table`] — typed tables with time / object / device indexes and a
//!   per-floor spatial index (range + kNN) over trajectory points.
//! * [`stream`] — tumbling windows, downsampling, stream merge.
//! * [`codec`] — compact binary encode/decode for file round-trips.
//! * [`Repository`] — the thread-safe facade bundling all tables.
//!
//! ## The `ProductSink` contract
//!
//! The streaming pipeline hands each layer's data products to storage as
//! **owned batches** ([`ProductBatch`]) through the [`ProductSink`] trait,
//! rather than materializing a whole run and copying it in afterwards.
//! Implementations and producers agree on three rules:
//!
//! * **Ordering** — rows *within* one batch are time-ordered by their
//!   producer (one batch per moving object is the pipeline default).
//!   Batches from concurrent producers may interleave arbitrarily; every
//!   table indexes by time, object, and device, so the row *sets* any
//!   query returns are independent of arrival order. Ties are not: rows
//!   sharing a timestamp come back in arrival order, which is
//!   scheduler-dependent under concurrent producers — consumers needing a
//!   run-stable total order must sort on a full key, as the parity tests
//!   do.
//! * **Batch size** — producers should target hundreds-to-thousands of
//!   rows per batch. Batches move into the tables wholesale (one `Vec`
//!   append plus index updates); degenerate one-row batches degrade to the
//!   per-row insert cost.
//! * **Backpressure** — [`ProductSink::accept`] may block briefly on the
//!   table's write lock but never buffers unboundedly. Producers bound the
//!   number of in-flight batches upstream (the pipeline uses a bounded
//!   channel between stage workers), so peak memory stays at
//!   `O(channel capacity × batch size)` instead of `O(run size)`.
//!
//! ## Choosing a backend
//!
//! Two [`ProductSink`] backends implement the same contract:
//!
//! * [`Repository`] — all four tables behind one `RwLock` each. The right
//!   default for small runs and single-writer ingestion: lowest constant
//!   cost, and queries hand out references instead of owned rows.
//! * [`ShardedRepository`] — each table partitioned by **object-id hash**
//!   across N shards with per-shard locks, so concurrent stage workers
//!   appending different objects' batches stop contending on one lock per
//!   table. Choose it when ≥ 4 workers ingest concurrently or runs reach
//!   thousands of objects. Shard count: the worker count rounded up to a
//!   power of two ([`DEFAULT_SHARDS`] = 8 suits the default pipeline);
//!   more shards only fragment small runs. Reads are rebalance-free
//!   shard-merges returning the same row sets as the single repository;
//!   the ordering / batch-size / backpressure contract above is unchanged.
//!
//! [`StorageBackend`] names the choice for configuration surfaces and
//! [`AnyRepository`] dispatches between the two at runtime (this is what
//! `vita-core`'s pipeline stores).
//!
//! ## The run dimension
//!
//! Both backends store data from **many concurrent generation runs** in
//! one repository: every ingested row carries the [`RunId`] passed to
//! [`ProductSink::accept_run`] (plain [`ProductSink::accept`] writes under
//! [`RunId::DEFAULT`]). Each table keeps a run index next to its time /
//! object / device indexes, so
//!
//! * the pre-existing query surface is unchanged and answers over **all
//!   runs merged**, and
//! * every query has a `*_run` variant scoped to one run (e.g.
//!   [`table::TrajectoryTable::time_window_run`],
//!   [`ShardedRepository::fixes_scan_run`]) whose answer is exactly what a
//!   repository that only ever saw that run would return — run isolation,
//!   enforced by the `run_isolation` proptest suite on both backends.
//!
//! Run tags are an in-memory dimension: [`Repository::export`] serializes
//! rows without them (the binary codec predates runs), so an
//! export/import round-trip lands every row in [`RunId::DEFAULT`].

pub mod codec;
pub mod sharded;
pub mod stream;
pub mod table;

pub use codec::{
    decode_fixes, decode_proximity, decode_rssi, decode_trajectories, encode_fixes,
    encode_proximity, encode_rssi, encode_trajectories, CodecError,
};
pub use sharded::{ShardCounts, ShardedRepository, DEFAULT_SHARDS};
pub use stream::{downsample, merge_by_time, record_rate, Timed, TumblingWindow};
pub use table::{FixTable, ProximityTable, RowId, RssiTable, TrajectoryTable};

use parking_lot::RwLock;

use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

pub use vita_indoor::RunId;

/// One owned batch of a generated data product, as handed from a producer
/// stage to a [`ProductSink`]. Carrying the `Vec` by value lets sinks move
/// rows into their tables without intermediate copies.
#[derive(Debug, Clone)]
pub enum ProductBatch {
    Trajectories(Vec<TrajectorySample>),
    Rssi(Vec<RssiMeasurement>),
    Fixes(Vec<Fix>),
    Proximity(Vec<ProximityRecord>),
}

impl ProductBatch {
    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match self {
            ProductBatch::Trajectories(v) => v.len(),
            ProductBatch::Rssi(v) => v.len(),
            ProductBatch::Fixes(v) => v.len(),
            ProductBatch::Proximity(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Batch ingestion endpoint for pipeline stages (see the crate docs for the
/// ordering / batch-size / backpressure contract). [`Repository`] is the
/// canonical implementation; alternative backends (sharded repositories,
/// async ingestion) implement the same trait.
pub trait ProductSink: Send + Sync {
    /// Ingest one owned batch under [`RunId::DEFAULT`] — the single-run
    /// convenience form of [`ProductSink::accept_run`].
    fn accept(&self, batch: ProductBatch) {
        self.accept_run(RunId::DEFAULT, batch);
    }

    /// Ingest one owned batch tagged with the run that produced it. Rows
    /// keep the tag in every table, so concurrent runs sharing a sink can
    /// be queried in isolation afterwards (the run dimension). May block
    /// briefly (lock contention) but must not buffer unboundedly.
    fn accept_run(&self, run: RunId, batch: ProductBatch);
}

/// The data keeper for one generation run: all repositories behind one
/// thread-safe facade ("Storage serves as both the data provider and data
/// keeper").
#[derive(Debug, Default)]
pub struct Repository {
    pub trajectories: RwLock<TrajectoryTable>,
    pub rssi: RwLock<RssiTable>,
    pub fixes: RwLock<FixTable>,
    pub proximity: RwLock<ProximityTable>,
}

impl ProductSink for Repository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        match batch {
            ProductBatch::Trajectories(v) => self.trajectories.write().append_batch_run(run, v),
            ProductBatch::Rssi(v) => self.rssi.write().append_batch_run(run, v),
            ProductBatch::Fixes(v) => self.fixes.write().append_batch_run(run, v),
            ProductBatch::Proximity(v) => self.proximity.write().append_batch_run(run, v),
        }
    }
}

impl Repository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest trajectory samples as owned batches; each batch moves into the
    /// table wholesale (no per-sample re-insertion or cloning).
    pub fn store_trajectories(&self, batches: impl IntoIterator<Item = Vec<TrajectorySample>>) {
        let mut table = self.trajectories.write();
        for b in batches {
            table.append_batch(b);
        }
    }

    /// Ingest RSSI measurements.
    pub fn store_rssi(&self, ms: impl IntoIterator<Item = RssiMeasurement>) {
        self.rssi.write().insert_bulk(ms);
    }

    /// Ingest deterministic fixes.
    pub fn store_fixes(&self, fs: impl IntoIterator<Item = Fix>) {
        self.fixes.write().insert_bulk(fs);
    }

    /// Ingest proximity records.
    pub fn store_proximity(&self, rs: impl IntoIterator<Item = ProximityRecord>) {
        self.proximity.write().insert_bulk(rs);
    }

    /// Row counts of all tables: (trajectories, rssi, fixes, proximity).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.trajectories.read().len(),
            self.rssi.read().len(),
            self.fixes.read().len(),
            self.proximity.read().len(),
        )
    }

    /// Row counts of one run: (trajectories, rssi, fixes, proximity).
    pub fn counts_run(&self, run: RunId) -> (usize, usize, usize, usize) {
        (
            self.trajectories.read().len_run(run),
            self.rssi.read().len_run(run),
            self.fixes.read().len_run(run),
            self.proximity.read().len_run(run),
        )
    }

    /// Every run with at least one row in any table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        let mut runs: Vec<RunId> = self.trajectories.read().run_ids();
        runs.extend(self.rssi.read().run_ids());
        runs.extend(self.fixes.read().run_ids());
        runs.extend(self.proximity.read().run_ids());
        runs.sort_unstable();
        runs.dedup();
        runs
    }

    /// Serialize every table into one buffer per table.
    pub fn export(&self) -> RepositoryExport {
        RepositoryExport {
            trajectories: encode_trajectories(
                &self.trajectories.read().scan().copied().collect::<Vec<_>>(),
            ),
            rssi: encode_rssi(&self.rssi.read().scan().copied().collect::<Vec<_>>()),
            fixes: encode_fixes(&self.fixes.read().scan().copied().collect::<Vec<_>>()),
            proximity: encode_proximity(&self.proximity.read().scan().copied().collect::<Vec<_>>()),
        }
    }

    /// Rebuild a repository from an export.
    pub fn import(export: &RepositoryExport) -> Result<Self, CodecError> {
        let repo = Repository::new();
        repo.store_trajectories([decode_trajectories(export.trajectories.clone())?]);
        repo.store_rssi(decode_rssi(export.rssi.clone())?);
        repo.store_fixes(decode_fixes(export.fixes.clone())?);
        repo.store_proximity(decode_proximity(export.proximity.clone())?);
        Ok(repo)
    }
}

/// Serialized form of a [`Repository`].
#[derive(Debug, Clone)]
pub struct RepositoryExport {
    pub trajectories: bytes::Bytes,
    pub rssi: bytes::Bytes,
    pub fixes: bytes::Bytes,
    pub proximity: bytes::Bytes,
}

/// The storage-backend choice, for configuration surfaces (see the
/// crate-level "Choosing a backend" docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// One [`Repository`]: four tables, one `RwLock` each.
    #[default]
    Single,
    /// A [`ShardedRepository`] with `shards` partitions per table.
    Sharded { shards: usize },
}

/// Runtime dispatch between the two [`ProductSink`] backends. Queries that
/// must work on either backend return owned rows (every product row is
/// `Copy`); backend-specific surfaces are reachable through
/// [`AnyRepository::as_single`] / [`AnyRepository::as_sharded`].
#[derive(Debug)]
pub enum AnyRepository {
    Single(Box<Repository>),
    Sharded(ShardedRepository),
}

impl AnyRepository {
    pub fn new(backend: StorageBackend) -> Self {
        match backend {
            StorageBackend::Single => AnyRepository::Single(Box::new(Repository::new())),
            StorageBackend::Sharded { shards } => {
                AnyRepository::Sharded(ShardedRepository::new(shards))
            }
        }
    }

    /// The backend this repository implements.
    pub fn backend(&self) -> StorageBackend {
        match self {
            AnyRepository::Single(_) => StorageBackend::Single,
            AnyRepository::Sharded(s) => StorageBackend::Sharded {
                shards: s.shard_count(),
            },
        }
    }

    pub fn as_single(&self) -> Option<&Repository> {
        match self {
            AnyRepository::Single(r) => Some(r),
            AnyRepository::Sharded(_) => None,
        }
    }

    pub fn as_sharded(&self) -> Option<&ShardedRepository> {
        match self {
            AnyRepository::Single(_) => None,
            AnyRepository::Sharded(s) => Some(s),
        }
    }

    /// Row counts of all tables: (trajectories, rssi, fixes, proximity).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        match self {
            AnyRepository::Single(r) => r.counts(),
            AnyRepository::Sharded(s) => s.counts(),
        }
    }

    /// Row counts per shard, in shard order (one entry for the single
    /// backend).
    pub fn per_shard_counts(&self) -> Vec<ShardCounts> {
        match self {
            AnyRepository::Single(r) => {
                let (trajectories, rssi, fixes, proximity) = r.counts();
                vec![ShardCounts {
                    trajectories,
                    rssi,
                    fixes,
                    proximity,
                }]
            }
            AnyRepository::Sharded(s) => s.per_shard_counts(),
        }
    }

    /// Every run with at least one row in any table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        match self {
            AnyRepository::Single(r) => r.run_ids(),
            AnyRepository::Sharded(s) => s.run_ids(),
        }
    }

    /// Row counts of one run: (trajectories, rssi, fixes, proximity).
    pub fn counts_run(&self, run: RunId) -> (usize, usize, usize, usize) {
        match self {
            AnyRepository::Single(r) => r.counts_run(run),
            AnyRepository::Sharded(s) => s.counts_run(run),
        }
    }

    /// Owned copy of every trajectory sample, all runs merged (single:
    /// insertion order; sharded: shard order — the same row set either
    /// way).
    pub fn trajectory_rows(&self) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => r.trajectories.read().scan().copied().collect(),
            AnyRepository::Sharded(s) => s.trajectories_scan(),
        }
    }

    /// Owned copy of one run's trajectory samples.
    pub fn trajectory_rows_run(&self, run: RunId) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => r
                .trajectories
                .read()
                .scan_run(run)
                .into_iter()
                .copied()
                .collect(),
            AnyRepository::Sharded(s) => s.trajectories_scan_run(run),
        }
    }

    /// Owned copy of every RSSI measurement, all runs merged.
    pub fn rssi_rows(&self) -> Vec<RssiMeasurement> {
        match self {
            AnyRepository::Single(r) => r.rssi.read().scan().copied().collect(),
            AnyRepository::Sharded(s) => s.rssi_scan(),
        }
    }

    /// Owned copy of one run's RSSI measurements.
    pub fn rssi_rows_run(&self, run: RunId) -> Vec<RssiMeasurement> {
        match self {
            AnyRepository::Single(r) => r.rssi.read().scan_run(run).into_iter().copied().collect(),
            AnyRepository::Sharded(s) => s.rssi_scan_run(run),
        }
    }

    /// Owned copy of every positioning fix, all runs merged.
    pub fn fix_rows(&self) -> Vec<Fix> {
        match self {
            AnyRepository::Single(r) => r.fixes.read().scan().copied().collect(),
            AnyRepository::Sharded(s) => s.fixes_scan(),
        }
    }

    /// Owned copy of one run's positioning fixes.
    pub fn fix_rows_run(&self, run: RunId) -> Vec<Fix> {
        match self {
            AnyRepository::Single(r) => r.fixes.read().scan_run(run).into_iter().copied().collect(),
            AnyRepository::Sharded(s) => s.fixes_scan_run(run),
        }
    }

    /// Owned copy of every proximity record, all runs merged.
    pub fn proximity_rows(&self) -> Vec<ProximityRecord> {
        match self {
            AnyRepository::Single(r) => r.proximity.read().scan().copied().collect(),
            AnyRepository::Sharded(s) => s.proximity_scan(),
        }
    }

    /// Owned copy of one run's proximity records.
    pub fn proximity_rows_run(&self, run: RunId) -> Vec<ProximityRecord> {
        match self {
            AnyRepository::Single(r) => r
                .proximity
                .read()
                .scan_run(run)
                .into_iter()
                .copied()
                .collect(),
            AnyRepository::Sharded(s) => s.proximity_scan_run(run),
        }
    }

    /// Serialize every table into one buffer per table (either backend
    /// produces the [`Repository::import`]-compatible wire format).
    pub fn export(&self) -> RepositoryExport {
        match self {
            AnyRepository::Single(r) => r.export(),
            AnyRepository::Sharded(s) => s.export(),
        }
    }
}

impl Default for AnyRepository {
    fn default() -> Self {
        AnyRepository::new(StorageBackend::Single)
    }
}

impl ProductSink for AnyRepository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        match self {
            AnyRepository::Single(r) => r.accept_run(run, batch),
            AnyRepository::Sharded(s) => s.accept_run(run, batch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, Timestamp};

    fn sample(o: u32, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(0),
            Point::new(t as f64, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn repository_ingest_and_counts() {
        let repo = Repository::new();
        repo.store_trajectories([(0..10).map(|i| sample(0, i * 100)).collect()]);
        repo.store_rssi([RssiMeasurement {
            object: ObjectId(0),
            device: DeviceId(0),
            rssi: -50.0,
            t: Timestamp(0),
        }]);
        repo.store_fixes([Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(0.0, 0.0)),
            t: Timestamp(0),
        }]);
        repo.store_proximity([ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(0),
            te: Timestamp(100),
        }]);
        assert_eq!(repo.counts(), (10, 1, 1, 1));
    }

    #[test]
    fn product_sink_routes_batches_to_tables() {
        let repo = Repository::new();
        let sink: &dyn ProductSink = &repo;
        sink.accept(ProductBatch::Trajectories(
            (0..5).map(|i| sample(0, i * 100)).collect(),
        ));
        sink.accept(ProductBatch::Rssi(vec![RssiMeasurement {
            object: ObjectId(0),
            device: DeviceId(0),
            rssi: -42.0,
            t: Timestamp(0),
        }]));
        sink.accept(ProductBatch::Fixes(vec![Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(1.0, 1.0)),
            t: Timestamp(50),
        }]));
        sink.accept(ProductBatch::Proximity(Vec::new()));
        assert_eq!(repo.counts(), (5, 1, 1, 0));
        assert_eq!(ProductBatch::Rssi(Vec::new()).len(), 0);
        assert!(ProductBatch::Fixes(Vec::new()).is_empty());
    }

    #[test]
    fn export_import_round_trip() {
        let repo = Repository::new();
        repo.store_trajectories([(0..25).map(|i| sample(i % 3, i as u64 * 40)).collect()]);
        repo.store_rssi((0..7).map(|i| RssiMeasurement {
            object: ObjectId(i),
            device: DeviceId(i % 2),
            rssi: -40.0 - i as f64,
            t: Timestamp(i as u64 * 10),
        }));
        let export = repo.export();
        let restored = Repository::import(&export).unwrap();
        assert_eq!(restored.counts(), repo.counts());
        // Spot check a trace.
        let a = repo.trajectories.read().object_trace(ObjectId(1)).len();
        let b = restored.trajectories.read().object_trace(ObjectId(1)).len();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let repo = Arc::new(Repository::new());
        repo.store_trajectories([(0..100).map(|i| sample(0, i * 10)).collect()]);
        let mut handles = Vec::new();
        for k in 0..4 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for _ in 0..50 {
                    total += r
                        .trajectories
                        .read()
                        .time_window(Timestamp(k * 100), Timestamp(k * 100 + 500))
                        .len();
                }
                total
            }));
        }
        let w = Arc::clone(&repo);
        let writer = std::thread::spawn(move || {
            for i in 100..200u64 {
                w.store_trajectories([vec![sample(1, i * 10)]]);
            }
        });
        for h in handles {
            assert!(h.join().is_ok());
        }
        writer.join().unwrap();
        assert_eq!(repo.counts().0, 200);
    }
}
