#![forbid(unsafe_code)]
//! # vita-storage
//!
//! The Storage component (paper §2, §4.2): indexed repositories for every
//! generated data product, Data Stream APIs for the Producer, and binary
//! persistence. Replaces the paper's PostgreSQL+PostGIS deployment with an
//! embedded, laptop-scale engine (see DESIGN.md substitution table).
//!
//! * [`table`] — typed tables with time / object / device indexes and a
//!   per-floor spatial index (range + kNN) over trajectory points.
//! * [`stream`] — tumbling windows, downsampling, stream merge.
//! * [`codec`] — compact binary encode/decode for file round-trips.
//! * [`Repository`] — the thread-safe facade bundling all tables.
//!
//! ## The `ProductSink` contract
//!
//! The streaming pipeline hands each layer's data products to storage as
//! **owned batches** ([`ProductBatch`]) through the [`ProductSink`] trait,
//! rather than materializing a whole run and copying it in afterwards.
//! Implementations and producers agree on three rules:
//!
//! * **Ordering** — rows *within* one batch are time-ordered by their
//!   producer (one batch per moving object is the pipeline default).
//!   Batches from concurrent producers may interleave arbitrarily; every
//!   table indexes by time, object, and device, so the row *sets* any
//!   query returns are independent of arrival order. Ties are not: rows
//!   sharing a timestamp come back in arrival order, which is
//!   scheduler-dependent under concurrent producers — consumers needing a
//!   run-stable total order must sort on a full key, as the parity tests
//!   do.
//! * **Batch size** — producers should target hundreds-to-thousands of
//!   rows per batch. Batches move into the tables wholesale (one `Vec`
//!   append plus index updates); degenerate one-row batches degrade to the
//!   per-row insert cost.
//! * **Backpressure** — [`ProductSink::accept`] may block briefly on the
//!   table's write lock but never buffers unboundedly. Producers bound the
//!   number of in-flight batches upstream (the pipeline uses a bounded
//!   channel between stage workers), so peak memory stays at
//!   `O(channel capacity × batch size)` instead of `O(run size)`.
//!
//! ## Choosing a backend
//!
//! Three [`ProductSink`] backends implement the same contract:
//!
//! * [`Repository`] — all four tables behind one `RwLock` each. The right
//!   default for small runs and single-writer ingestion: lowest constant
//!   cost, and queries hand out references instead of owned rows.
//! * [`ShardedRepository`] — each table partitioned by **object-id hash**
//!   across N shards with per-shard locks, so concurrent stage workers
//!   appending different objects' batches stop contending on one lock per
//!   table. Choose it when ≥ 4 workers ingest concurrently or runs reach
//!   thousands of objects. Shard count: the worker count rounded up to a
//!   power of two ([`DEFAULT_SHARDS`] = 8 suits the default pipeline);
//!   more shards only fragment small runs. Reads are rebalance-free
//!   shard-merges returning the same row sets as the single repository;
//!   the ordering / batch-size / backpressure contract above is unchanged.
//! * [`SegmentedRepository`] — each table a list of immutable, run-
//!   segmented segments published by atomic snapshot swap, with a
//!   background sealer/compactor building indexes once at seal time (see
//!   the [`segment`] module docs). Readers pin a snapshot and never block;
//!   choose it when queries must stay fast *while* ingestion runs (the
//!   online-serving workload). For purely offline workloads the locked
//!   backends skip the sealer thread and the per-query merge.
//!
//! [`StorageBackend`] names the choice for configuration surfaces and
//! [`AnyRepository`] dispatches between the three at runtime (this is what
//! `vita-core`'s pipeline stores).
//!
//! ## The run dimension
//!
//! Both backends store data from **many concurrent generation runs** in
//! one repository: every ingested row carries the [`RunId`] passed to
//! [`ProductSink::accept_run`] (plain [`ProductSink::accept`] writes under
//! [`RunId::DEFAULT`]). Each table keeps a run index next to its time /
//! object / device indexes, so
//!
//! every query takes a [`RunScope`] naming the runs it answers over:
//!
//! * [`RunScope::All`] merges **all runs** — what a repository that ignored
//!   run tags would return, and
//! * [`RunScope::One`] restricts the same query to one run, whose answer is
//!   exactly what a repository that only ever saw that run would return —
//!   run isolation, enforced by the `run_isolation` proptest suite on both
//!   backends.
//!
//! [`RunId`] converts into a scope (`run.into()`), so scoped call sites
//! stay short. (The pre-`RunScope` method names — `counts_run`,
//! `time_window_run`, `trajectory_rows`, … — went through a deprecation
//! cycle and are gone.)
//!
//! ## Persistence & wire format
//!
//! [`Repository::export`] serializes each table into one buffer of the
//! versioned binary wire format (see the [`codec`] module docs for the
//! framing layout). The format is **run-segmented**: every table file
//! carries one section per run, so a multi-run repository survives
//! `export` → `import` with its run dimension intact — per-run row sets
//! come back bit-identical on every run-scoped query path, on either
//! backend (the `persistence_roundtrip` proptest suite). Both backends
//! export the same format and import from it:
//! [`Repository::import`] / [`ShardedRepository::import`] rebuild a
//! specific backend, [`AnyRepository::import`] rebuilds whichever
//! [`StorageBackend`] the caller names — which is how run tags survive
//! backend switches through `Vita::save_to` / `load_from` in `vita-core`.
//! Legacy v1 files (written before the run dimension existed) still
//! decode; their rows land in [`RunId::DEFAULT`], exactly where the v1
//! exporter had flattened them. [`RepositoryExport::write_dir`] /
//! [`RepositoryExport::read_dir`] move the four table buffers to and from
//! a directory on disk.

pub mod codec;
pub mod segment;
pub mod sharded;
pub mod stream;
pub mod table;

pub use codec::{
    decode_fixes, decode_fixes_runs, decode_proximity, decode_proximity_runs, decode_rssi,
    decode_rssi_runs, decode_segment, decode_trajectories, decode_trajectories_runs, encode_fixes,
    encode_fixes_runs, encode_proximity, encode_proximity_runs, encode_rssi, encode_rssi_runs,
    encode_segment, encode_trajectories, encode_trajectories_runs, CodecError, SegmentSection,
    WireRecord,
};
pub use segment::{SegmentConfig, SegmentStats, SegmentedRepository, SpillConfig, SpillError};
pub use sharded::{ShardedRepository, DEFAULT_SHARDS};
pub use stream::{downsample, merge_by_time, record_rate, Timed, TumblingWindow};
pub use table::{FixTable, ProximityTable, RowId, RssiTable, TrajectoryTable};

use parking_lot::RwLock;

use vita_geometry::{Aabb, Point};
use vita_indoor::{FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

pub use vita_indoor::RunId;

/// Which runs a query answers over — the run dimension made explicit (see
/// the crate-level "run dimension" docs).
///
/// Every query method on the storage backends takes a `RunScope` as its
/// first argument. [`RunId`] converts into one, so call sites restricted to
/// a single run read `repo.counts(run.into())`.
///
/// # Examples
///
/// ```
/// use vita_storage::{RunId, RunScope};
///
/// assert_eq!(RunScope::default(), RunScope::All);
/// let scope: RunScope = RunId(3).into();
/// assert_eq!(scope, RunScope::One(RunId(3)));
/// assert_eq!(scope.run(), Some(RunId(3)));
/// assert_eq!(RunScope::All.run(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RunScope {
    /// All runs merged — what a repository that ignored run tags would
    /// answer.
    #[default]
    All,
    /// One run in isolation — what a repository that only ever saw that
    /// run would answer.
    One(RunId),
}

impl RunScope {
    /// The scoped run, or `None` for [`RunScope::All`].
    #[inline]
    pub fn run(self) -> Option<RunId> {
        match self {
            RunScope::All => None,
            RunScope::One(run) => Some(run),
        }
    }
}

impl From<RunId> for RunScope {
    fn from(run: RunId) -> Self {
        RunScope::One(run)
    }
}

/// Named row counts of the four product tables, as returned by the `counts`
/// queries (formerly an anonymous `(usize, usize, usize, usize)`).
///
/// # Examples
///
/// ```
/// use vita_storage::TableCounts;
///
/// let c = TableCounts { trajectories: 10, rssi: 4, fixes: 2, proximity: 1 };
/// assert_eq!(c.total(), 17);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TableCounts {
    pub trajectories: usize,
    pub rssi: usize,
    pub fixes: usize,
    pub proximity: usize,
}

impl TableCounts {
    /// Total rows across all four tables.
    pub fn total(&self) -> usize {
        self.trajectories + self.rssi + self.fixes + self.proximity
    }
}

impl std::ops::Add for TableCounts {
    type Output = TableCounts;

    fn add(self, rhs: TableCounts) -> TableCounts {
        TableCounts {
            trajectories: self.trajectories + rhs.trajectories,
            rssi: self.rssi + rhs.rssi,
            fixes: self.fixes + rhs.fixes,
            proximity: self.proximity + rhs.proximity,
        }
    }
}

/// Former name of [`TableCounts`]: per-shard count reports predate the
/// named struct and keep their spelling.
pub type ShardCounts = TableCounts;

/// One owned batch of a generated data product, as handed from a producer
/// stage to a [`ProductSink`]. Carrying the `Vec` by value lets sinks move
/// rows into their tables without intermediate copies.
#[derive(Debug, Clone)]
pub enum ProductBatch {
    Trajectories(Vec<TrajectorySample>),
    Rssi(Vec<RssiMeasurement>),
    Fixes(Vec<Fix>),
    Proximity(Vec<ProximityRecord>),
}

impl ProductBatch {
    /// Number of rows in the batch.
    pub fn len(&self) -> usize {
        match self {
            ProductBatch::Trajectories(v) => v.len(),
            ProductBatch::Rssi(v) => v.len(),
            ProductBatch::Fixes(v) => v.len(),
            ProductBatch::Proximity(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Batch ingestion endpoint for pipeline stages (see the crate docs for the
/// ordering / batch-size / backpressure contract). [`Repository`] is the
/// canonical implementation; alternative backends (sharded repositories,
/// async ingestion) implement the same trait.
pub trait ProductSink: Send + Sync {
    /// Ingest one owned batch under [`RunId::DEFAULT`] — the single-run
    /// convenience form of [`ProductSink::accept_run`].
    fn accept(&self, batch: ProductBatch) {
        self.accept_run(RunId::DEFAULT, batch);
    }

    /// Ingest one owned batch tagged with the run that produced it. Rows
    /// keep the tag in every table, so concurrent runs sharing a sink can
    /// be queried in isolation afterwards (the run dimension). May block
    /// briefly (lock contention) but must not buffer unboundedly.
    fn accept_run(&self, run: RunId, batch: ProductBatch);
}

/// The data keeper for one generation run: all repositories behind one
/// thread-safe facade ("Storage serves as both the data provider and data
/// keeper").
#[derive(Debug, Default)]
pub struct Repository {
    pub trajectories: RwLock<TrajectoryTable>,
    pub rssi: RwLock<RssiTable>,
    pub fixes: RwLock<FixTable>,
    pub proximity: RwLock<ProximityTable>,
}

impl ProductSink for Repository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        match batch {
            ProductBatch::Trajectories(v) => self.trajectories.write().append_batch_run(run, v),
            ProductBatch::Rssi(v) => self.rssi.write().append_batch_run(run, v),
            ProductBatch::Fixes(v) => self.fixes.write().append_batch_run(run, v),
            ProductBatch::Proximity(v) => self.proximity.write().append_batch_run(run, v),
        }
    }
}

impl Repository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest trajectory samples as owned batches; each batch moves into the
    /// table wholesale (no per-sample re-insertion or cloning).
    pub fn store_trajectories(&self, batches: impl IntoIterator<Item = Vec<TrajectorySample>>) {
        let mut table = self.trajectories.write();
        for b in batches {
            table.append_batch(b);
        }
    }

    /// Ingest RSSI measurements.
    pub fn store_rssi(&self, ms: impl IntoIterator<Item = RssiMeasurement>) {
        self.rssi.write().insert_bulk(ms);
    }

    /// Ingest deterministic fixes.
    pub fn store_fixes(&self, fs: impl IntoIterator<Item = Fix>) {
        self.fixes.write().insert_bulk(fs);
    }

    /// Ingest proximity records.
    pub fn store_proximity(&self, rs: impl IntoIterator<Item = ProximityRecord>) {
        self.proximity.write().insert_bulk(rs);
    }

    /// Row counts of the four tables under `scope`.
    pub fn counts(&self, scope: RunScope) -> TableCounts {
        match scope.run() {
            None => TableCounts {
                trajectories: self.trajectories.read().len(),
                rssi: self.rssi.read().len(),
                fixes: self.fixes.read().len(),
                proximity: self.proximity.read().len(),
            },
            Some(run) => TableCounts {
                trajectories: self.trajectories.read().len_run(run),
                rssi: self.rssi.read().len_run(run),
                fixes: self.fixes.read().len_run(run),
                proximity: self.proximity.read().len_run(run),
            },
        }
    }

    /// Every run with at least one row in any table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        let mut runs: Vec<RunId> = self.trajectories.read().run_ids();
        runs.extend(self.rssi.read().run_ids());
        runs.extend(self.fixes.read().run_ids());
        runs.extend(self.proximity.read().run_ids());
        runs.sort_unstable();
        runs.dedup();
        runs
    }

    /// Serialize every table into one buffer per table, one wire-format
    /// section per run: run tags survive the export (see the crate-level
    /// "Persistence & wire format" docs).
    pub fn export(&self) -> RepositoryExport {
        let trajectories = self.trajectories.read();
        let rssi = self.rssi.read();
        let fixes = self.fixes.read();
        let proximity = self.proximity.read();
        let t_sections = run_sections(trajectories.run_ids(), |r| {
            trajectories.scan_run(r).into_iter().copied().collect()
        });
        let r_sections = run_sections(rssi.run_ids(), |r| {
            rssi.scan_run(r).into_iter().copied().collect()
        });
        let f_sections = run_sections(fixes.run_ids(), |r| {
            fixes.scan_run(r).into_iter().copied().collect()
        });
        let p_sections = run_sections(proximity.run_ids(), |r| {
            proximity.scan_run(r).into_iter().copied().collect()
        });
        RepositoryExport {
            trajectories: encode_trajectories_runs(&borrow_sections(&t_sections)),
            rssi: encode_rssi_runs(&borrow_sections(&r_sections)),
            fixes: encode_fixes_runs(&borrow_sections(&f_sections)),
            proximity: encode_proximity_runs(&borrow_sections(&p_sections)),
        }
    }

    /// Rebuild a repository from an export, run by run: every row comes
    /// back under the run id it was exported with (v1-format exports land
    /// in [`RunId::DEFAULT`]).
    pub fn import(export: &RepositoryExport) -> Result<Self, CodecError> {
        let repo = Repository::new();
        for (run, rows) in decode_trajectories_runs(export.trajectories.clone())? {
            repo.trajectories.write().append_batch_run(run, rows);
        }
        for (run, rows) in decode_rssi_runs(export.rssi.clone())? {
            repo.rssi.write().append_batch_run(run, rows);
        }
        for (run, rows) in decode_fixes_runs(export.fixes.clone())? {
            repo.fixes.write().append_batch_run(run, rows);
        }
        for (run, rows) in decode_proximity_runs(export.proximity.clone())? {
            repo.proximity.write().append_batch_run(run, rows);
        }
        Ok(repo)
    }
}

/// Collect one owned row set per run, ready for the sectioned encoders
/// (shared by both backends' `export` implementations).
pub(crate) fn run_sections<T>(
    runs: Vec<RunId>,
    rows_of: impl Fn(RunId) -> Vec<T>,
) -> Vec<(RunId, Vec<T>)> {
    runs.into_iter().map(|r| (r, rows_of(r))).collect()
}

/// The borrowed view the sectioned encoders take.
pub(crate) fn borrow_sections<T>(sections: &[(RunId, Vec<T>)]) -> Vec<(RunId, &[T])> {
    sections.iter().map(|(r, v)| (*r, v.as_slice())).collect()
}

/// Serialized form of a repository (either backend): one wire-format
/// buffer per table, run-segmented.
#[derive(Debug, Clone)]
pub struct RepositoryExport {
    pub trajectories: bytes::Bytes,
    pub rssi: bytes::Bytes,
    pub fixes: bytes::Bytes,
    pub proximity: bytes::Bytes,
}

impl RepositoryExport {
    /// The file names `write_dir` / `read_dir` use, in table order.
    pub const FILE_NAMES: [&'static str; 4] = [
        "trajectories.vita",
        "rssi.vita",
        "fixes.vita",
        "proximity.vita",
    ];

    /// Write the four table buffers into `dir` (created if missing) under
    /// [`RepositoryExport::FILE_NAMES`]. Each file is written
    /// crash-atomically (temp file in `dir`, then rename): a crash
    /// mid-save can leave stale tables or `.tmp` orphans, but never a
    /// torn table file under a final name.
    pub fn write_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        codec::write_export_dir(self, dir)
    }

    /// Read the four table files back from `dir`. Purely file IO — decode
    /// errors surface when the export is imported.
    pub fn read_dir(dir: &std::path::Path) -> std::io::Result<Self> {
        codec::read_export_dir(dir)
    }
}

/// The storage-backend choice, for configuration surfaces (see the
/// crate-level "Choosing a backend" docs).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// One [`Repository`]: four tables, one `RwLock` each.
    #[default]
    Single,
    /// A [`ShardedRepository`] with `shards` partitions per table.
    Sharded { shards: usize },
    /// A [`SegmentedRepository`]: immutable segments, snapshot-pinned
    /// lock-free reads, background sealer/compactor. With a
    /// [`SpillConfig`], sealed segments past the memory budget are
    /// spilled to disk and paged back on query; `None` keeps the store
    /// all-resident (and still honors the `VITA_SPILL_*` environment —
    /// see [`SpillConfig::from_env`]).
    Segmented { spill: Option<SpillConfig> },
}

impl StorageBackend {
    /// The all-resident segmented backend — [`StorageBackend::Segmented`]
    /// without a spill tier.
    pub fn segmented() -> Self {
        StorageBackend::Segmented { spill: None }
    }
}

/// A backend string did not parse; carries the offending text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBackendError(pub String);

impl std::fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown storage backend '{}' (expected single | sharded(N) | \
             segmented | segmented-spill(BUDGET_ROWS))",
            self.0
        )
    }
}

impl std::error::Error for ParseBackendError {}

/// The textual backend names used by configuration surfaces (properties
/// files, `vita-lab` specs, trial records): `single`, `sharded(N)`,
/// `segmented`, and `segmented-spill(BUDGET_ROWS)`. The spill variant
/// prints only its row budget — the directory is an operational detail
/// (and [`std::str::FromStr`] reconstructs it from `VITA_SPILL_DIR` or the
/// system temp dir), so a backend round-trips through its display form
/// with the same memory budget.
impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageBackend::Single => write!(f, "single"),
            StorageBackend::Sharded { shards } => write!(f, "sharded({shards})"),
            StorageBackend::Segmented { spill: None } => write!(f, "segmented"),
            StorageBackend::Segmented { spill: Some(c) } => {
                write!(f, "segmented-spill({})", c.memory_budget_rows)
            }
        }
    }
}

/// Parse the [`std::fmt::Display`] form. `sharded` without a shard count
/// uses [`DEFAULT_SHARDS`]; `segmented-spill` without a budget uses the
/// [`SpillConfig::new`] default. The spill directory comes from
/// `VITA_SPILL_DIR` when set, else `<temp>/vita-spill` — each repository
/// instance creates (and removes) its own subdirectory underneath, so a
/// shared parent is safe.
impl std::str::FromStr for StorageBackend {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let err = || ParseBackendError(s.to_string());
        // Split "name(arg)" into name + optional arg.
        let (name, arg) = match s.find('(') {
            Some(open) if s.ends_with(')') => (&s[..open], Some(s[open + 1..s.len() - 1].trim())),
            Some(_) => return Err(err()),
            None => (s, None),
        };
        match (name, arg) {
            ("single", None) => Ok(StorageBackend::Single),
            ("sharded", None) => Ok(StorageBackend::Sharded {
                shards: DEFAULT_SHARDS,
            }),
            ("sharded", Some(n)) => Ok(StorageBackend::Sharded {
                shards: n.parse().map_err(|_| err())?,
            }),
            ("segmented", None) => Ok(StorageBackend::segmented()),
            ("segmented-spill", arg) => {
                let dir = std::env::var_os("VITA_SPILL_DIR")
                    .map(std::path::PathBuf::from)
                    .unwrap_or_else(|| std::env::temp_dir().join("vita-spill"));
                let mut spill = SpillConfig::new(dir);
                if let Some(n) = arg {
                    spill.memory_budget_rows = n.parse().map_err(|_| err())?;
                }
                Ok(StorageBackend::Segmented { spill: Some(spill) })
            }
            _ => Err(err()),
        }
    }
}

/// Runtime dispatch between the three [`ProductSink`] backends. Queries
/// that must work on any backend return owned rows (every product row is
/// `Copy`); backend-specific surfaces are reachable through
/// [`AnyRepository::as_single`] / [`AnyRepository::as_sharded`] /
/// [`AnyRepository::as_segmented`].
#[derive(Debug)]
pub enum AnyRepository {
    Single(Box<Repository>),
    Sharded(ShardedRepository),
    Segmented(SegmentedRepository),
}

impl AnyRepository {
    pub fn new(backend: StorageBackend) -> Self {
        match backend {
            StorageBackend::Single => AnyRepository::Single(Box::new(Repository::new())),
            StorageBackend::Sharded { shards } => {
                AnyRepository::Sharded(ShardedRepository::new(shards))
            }
            StorageBackend::Segmented { spill: None } => {
                AnyRepository::Segmented(SegmentedRepository::new())
            }
            StorageBackend::Segmented { spill: Some(cfg) } => AnyRepository::Segmented(
                SegmentedRepository::with_spill(SegmentConfig::default(), cfg),
            ),
        }
    }

    /// The backend this repository implements.
    pub fn backend(&self) -> StorageBackend {
        match self {
            AnyRepository::Single(_) => StorageBackend::Single,
            AnyRepository::Sharded(s) => StorageBackend::Sharded {
                shards: s.shard_count(),
            },
            AnyRepository::Segmented(s) => StorageBackend::Segmented {
                spill: s.spill_config().cloned(),
            },
        }
    }

    pub fn as_single(&self) -> Option<&Repository> {
        match self {
            AnyRepository::Single(r) => Some(r),
            _ => None,
        }
    }

    pub fn as_sharded(&self) -> Option<&ShardedRepository> {
        match self {
            AnyRepository::Sharded(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_segmented(&self) -> Option<&SegmentedRepository> {
        match self {
            AnyRepository::Segmented(s) => Some(s),
            _ => None,
        }
    }

    /// Row counts of the four tables under `scope`.
    pub fn counts(&self, scope: RunScope) -> TableCounts {
        match self {
            AnyRepository::Single(r) => r.counts(scope),
            AnyRepository::Sharded(s) => s.counts(scope),
            AnyRepository::Segmented(s) => s.counts(scope),
        }
    }

    /// Row counts per shard, in shard order (one entry for the unsharded
    /// backends).
    pub fn per_shard_counts(&self) -> Vec<ShardCounts> {
        match self {
            AnyRepository::Single(r) => vec![r.counts(RunScope::All)],
            AnyRepository::Sharded(s) => s.per_shard_counts(),
            AnyRepository::Segmented(s) => s.per_shard_counts(),
        }
    }

    /// Every run with at least one row in any table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        match self {
            AnyRepository::Single(r) => r.run_ids(),
            AnyRepository::Sharded(s) => s.run_ids(),
            AnyRepository::Segmented(s) => s.run_ids(),
        }
    }

    /// Owned copy of the trajectory samples under `scope` (single and
    /// segmented: insertion order; sharded: shard order — the same row set
    /// either way).
    pub fn trajectories(&self, scope: RunScope) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => {
                let t = r.trajectories.read();
                match scope.run() {
                    None => t.scan().copied().collect(),
                    Some(run) => t.scan_run(run).into_iter().copied().collect(),
                }
            }
            AnyRepository::Sharded(s) => s.trajectories_scan(scope),
            AnyRepository::Segmented(s) => s.trajectories_scan(scope),
        }
    }

    /// Owned copy of the RSSI measurements under `scope` (same ordering
    /// contract as [`AnyRepository::trajectories`]).
    pub fn rssi(&self, scope: RunScope) -> Vec<RssiMeasurement> {
        match self {
            AnyRepository::Single(r) => {
                let t = r.rssi.read();
                match scope.run() {
                    None => t.scan().copied().collect(),
                    Some(run) => t.scan_run(run).into_iter().copied().collect(),
                }
            }
            AnyRepository::Sharded(s) => s.rssi_scan(scope),
            AnyRepository::Segmented(s) => s.rssi_scan(scope),
        }
    }

    /// Owned copy of the positioning fixes under `scope` (same ordering
    /// contract as [`AnyRepository::trajectories`]).
    pub fn fixes(&self, scope: RunScope) -> Vec<Fix> {
        match self {
            AnyRepository::Single(r) => {
                let t = r.fixes.read();
                match scope.run() {
                    None => t.scan().copied().collect(),
                    Some(run) => t.scan_run(run).into_iter().copied().collect(),
                }
            }
            AnyRepository::Sharded(s) => s.fixes_scan(scope),
            AnyRepository::Segmented(s) => s.fixes_scan(scope),
        }
    }

    /// Owned copy of the proximity records under `scope` (same ordering
    /// contract as [`AnyRepository::trajectories`]).
    pub fn proximity(&self, scope: RunScope) -> Vec<ProximityRecord> {
        match self {
            AnyRepository::Single(r) => {
                let t = r.proximity.read();
                match scope.run() {
                    None => t.scan().copied().collect(),
                    Some(run) => t.scan_run(run).into_iter().copied().collect(),
                }
            }
            AnyRepository::Sharded(s) => s.proximity_scan(scope),
            AnyRepository::Segmented(s) => s.proximity_scan(scope),
        }
    }

    /// Latest trajectory sample at or before `t` (inclusive) per object
    /// under `scope`, sorted by object id — the backend-agnostic snapshot
    /// query serving dispatches to (see
    /// [`table::TrajectoryTable::snapshot_at`] for the contract).
    pub fn snapshot_at(&self, scope: RunScope, t: Timestamp) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => r
                .trajectories
                .read()
                .snapshot_at(scope, t)
                .into_iter()
                .copied()
                .collect(),
            AnyRepository::Sharded(s) => s.trajectories_snapshot_at(scope, t),
            AnyRepository::Segmented(s) => s.trajectories_snapshot_at(scope, t),
        }
    }

    /// Trajectory samples in the **half-open** window `from <= t < to`
    /// under `scope`, time-ordered (ties: single keeps arrival order,
    /// sharded keeps shard order — the same row set either way).
    pub fn time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => r
                .trajectories
                .read()
                .time_window(scope, from, to)
                .into_iter()
                .copied()
                .collect(),
            AnyRepository::Sharded(s) => s.trajectories_time_window(scope, from, to),
            AnyRepository::Segmented(s) => s.trajectories_time_window(scope, from, to),
        }
    }

    /// An object's trajectory under `scope`, time-ordered.
    pub fn object_trace(&self, scope: RunScope, o: ObjectId) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => r
                .trajectories
                .read()
                .object_trace(scope, o)
                .into_iter()
                .copied()
                .collect(),
            AnyRepository::Sharded(s) => s.object_trace(scope, o),
            AnyRepository::Segmented(s) => s.object_trace(scope, o),
        }
    }

    /// Trajectory samples on `floor` inside `query` under `scope` (single:
    /// insertion order; sharded: shard order — the same row set either
    /// way).
    pub fn range_query(
        &self,
        scope: RunScope,
        floor: FloorId,
        query: &Aabb,
    ) -> Vec<TrajectorySample> {
        match self {
            AnyRepository::Single(r) => r
                .trajectories
                .read()
                .range_query(scope, floor, query)
                .into_iter()
                .copied()
                .collect(),
            AnyRepository::Sharded(s) => s.trajectories_range_query(scope, floor, query),
            AnyRepository::Segmented(s) => s.trajectories_range_query(scope, floor, query),
        }
    }

    /// The k trajectory samples nearest `p` on `floor` under `scope`, with
    /// their distances, nearest first (the distance multiset is identical
    /// across backends; equal-distance ties may order differently).
    pub fn knn(
        &self,
        scope: RunScope,
        floor: FloorId,
        p: Point,
        k: usize,
    ) -> Vec<(TrajectorySample, f64)> {
        match self {
            AnyRepository::Single(r) => r
                .trajectories
                .read()
                .knn(scope, floor, p, k)
                .into_iter()
                .map(|(s, d)| (*s, d))
                .collect(),
            AnyRepository::Sharded(s) => s.trajectories_knn(scope, floor, p, k),
            AnyRepository::Segmented(s) => s.trajectories_knn(scope, floor, p, k),
        }
    }

    /// Serialize every table into one buffer per table, run-segmented:
    /// either backend produces the same wire format, importable by any of
    /// the three `import` constructors.
    pub fn export(&self) -> RepositoryExport {
        match self {
            AnyRepository::Single(r) => r.export(),
            AnyRepository::Sharded(s) => s.export(),
            AnyRepository::Segmented(s) => s.export(),
        }
    }

    /// Rebuild a repository of the requested backend shape from an
    /// export, run by run. The export's own backend does not matter —
    /// the wire format is backend-agnostic — so this is how run-tagged
    /// data moves across backend switches.
    pub fn import(export: &RepositoryExport, backend: StorageBackend) -> Result<Self, CodecError> {
        Ok(match backend {
            StorageBackend::Single => AnyRepository::Single(Box::new(Repository::import(export)?)),
            StorageBackend::Sharded { shards } => {
                AnyRepository::Sharded(ShardedRepository::import(export, shards)?)
            }
            StorageBackend::Segmented { spill: None } => {
                AnyRepository::Segmented(SegmentedRepository::import(export)?)
            }
            StorageBackend::Segmented { spill } => AnyRepository::Segmented(
                SegmentedRepository::import_with(export, SegmentConfig::default(), spill)?,
            ),
        })
    }
}

impl Default for AnyRepository {
    fn default() -> Self {
        AnyRepository::new(StorageBackend::Single)
    }
}

impl ProductSink for AnyRepository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        match self {
            AnyRepository::Single(r) => r.accept_run(run, batch),
            AnyRepository::Sharded(s) => s.accept_run(run, batch),
            AnyRepository::Segmented(s) => s.accept_run(run, batch),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, Timestamp};

    fn sample(o: u32, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(0),
            Point::new(t as f64, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn repository_ingest_and_counts() {
        let repo = Repository::new();
        repo.store_trajectories([(0..10).map(|i| sample(0, i * 100)).collect()]);
        repo.store_rssi([RssiMeasurement {
            object: ObjectId(0),
            device: DeviceId(0),
            rssi: -50.0,
            t: Timestamp(0),
        }]);
        repo.store_fixes([Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(0.0, 0.0)),
            t: Timestamp(0),
        }]);
        repo.store_proximity([ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(0),
            te: Timestamp(100),
        }]);
        assert_eq!(
            repo.counts(RunScope::All),
            TableCounts {
                trajectories: 10,
                rssi: 1,
                fixes: 1,
                proximity: 1
            }
        );
        assert_eq!(repo.counts(RunScope::All).total(), 13);
    }

    #[test]
    fn product_sink_routes_batches_to_tables() {
        let repo = Repository::new();
        let sink: &dyn ProductSink = &repo;
        sink.accept(ProductBatch::Trajectories(
            (0..5).map(|i| sample(0, i * 100)).collect(),
        ));
        sink.accept(ProductBatch::Rssi(vec![RssiMeasurement {
            object: ObjectId(0),
            device: DeviceId(0),
            rssi: -42.0,
            t: Timestamp(0),
        }]));
        sink.accept(ProductBatch::Fixes(vec![Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(1.0, 1.0)),
            t: Timestamp(50),
        }]));
        sink.accept(ProductBatch::Proximity(Vec::new()));
        assert_eq!(
            repo.counts(RunScope::All),
            TableCounts {
                trajectories: 5,
                rssi: 1,
                fixes: 1,
                proximity: 0
            }
        );
        assert_eq!(ProductBatch::Rssi(Vec::new()).len(), 0);
        assert!(ProductBatch::Fixes(Vec::new()).is_empty());
    }

    #[test]
    fn export_import_round_trip() {
        let repo = Repository::new();
        repo.store_trajectories([(0..25).map(|i| sample(i % 3, i as u64 * 40)).collect()]);
        repo.store_rssi((0..7).map(|i| RssiMeasurement {
            object: ObjectId(i),
            device: DeviceId(i % 2),
            rssi: -40.0 - i as f64,
            t: Timestamp(i as u64 * 10),
        }));
        let export = repo.export();
        let restored = Repository::import(&export).unwrap();
        assert_eq!(restored.counts(RunScope::All), repo.counts(RunScope::All));
        // Spot check a trace.
        let a = repo
            .trajectories
            .read()
            .object_trace(RunScope::All, ObjectId(1))
            .len();
        let b = restored
            .trajectories
            .read()
            .object_trace(RunScope::All, ObjectId(1))
            .len();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let repo = Arc::new(Repository::new());
        repo.store_trajectories([(0..100).map(|i| sample(0, i * 10)).collect()]);
        let mut handles = Vec::new();
        for k in 0..4 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for _ in 0..50 {
                    total += r
                        .trajectories
                        .read()
                        .time_window(RunScope::All, Timestamp(k * 100), Timestamp(k * 100 + 500))
                        .len();
                }
                total
            }));
        }
        let w = Arc::clone(&repo);
        let writer = std::thread::spawn(move || {
            for i in 100..200u64 {
                w.store_trajectories([vec![sample(1, i * 10)]]);
            }
        });
        for h in handles {
            assert!(h.join().is_ok());
        }
        writer.join().unwrap();
        assert_eq!(repo.counts(RunScope::All).trajectories, 200);
    }
}
