//! # vita-storage
//!
//! The Storage component (paper §2, §4.2): indexed repositories for every
//! generated data product, Data Stream APIs for the Producer, and binary
//! persistence. Replaces the paper's PostgreSQL+PostGIS deployment with an
//! embedded, laptop-scale engine (see DESIGN.md substitution table).
//!
//! * [`table`] — typed tables with time / object / device indexes and a
//!   per-floor spatial index (range + kNN) over trajectory points.
//! * [`stream`] — tumbling windows, downsampling, stream merge.
//! * [`codec`] — compact binary encode/decode for file round-trips.
//! * [`Repository`] — the thread-safe facade bundling all tables.

pub mod codec;
pub mod stream;
pub mod table;

pub use codec::{
    decode_fixes, decode_proximity, decode_rssi, decode_trajectories, encode_fixes,
    encode_proximity, encode_rssi, encode_trajectories, CodecError,
};
pub use stream::{downsample, merge_by_time, record_rate, Timed, TumblingWindow};
pub use table::{FixTable, ProximityTable, RowId, RssiTable, TrajectoryTable};

use parking_lot::RwLock;

use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

/// The data keeper for one generation run: all repositories behind one
/// thread-safe facade ("Storage serves as both the data provider and data
/// keeper").
#[derive(Debug, Default)]
pub struct Repository {
    pub trajectories: RwLock<TrajectoryTable>,
    pub rssi: RwLock<RssiTable>,
    pub fixes: RwLock<FixTable>,
    pub proximity: RwLock<ProximityTable>,
}

impl Repository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest trajectory samples.
    pub fn store_trajectories(&self, samples: impl IntoIterator<Item = TrajectorySample>) {
        self.trajectories.write().insert_bulk(samples);
    }

    /// Ingest RSSI measurements.
    pub fn store_rssi(&self, ms: impl IntoIterator<Item = RssiMeasurement>) {
        self.rssi.write().insert_bulk(ms);
    }

    /// Ingest deterministic fixes.
    pub fn store_fixes(&self, fs: impl IntoIterator<Item = Fix>) {
        self.fixes.write().insert_bulk(fs);
    }

    /// Ingest proximity records.
    pub fn store_proximity(&self, rs: impl IntoIterator<Item = ProximityRecord>) {
        self.proximity.write().insert_bulk(rs);
    }

    /// Row counts of all tables: (trajectories, rssi, fixes, proximity).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        (
            self.trajectories.read().len(),
            self.rssi.read().len(),
            self.fixes.read().len(),
            self.proximity.read().len(),
        )
    }

    /// Serialize every table into one buffer per table.
    pub fn export(&self) -> RepositoryExport {
        RepositoryExport {
            trajectories: encode_trajectories(
                &self.trajectories.read().scan().copied().collect::<Vec<_>>(),
            ),
            rssi: encode_rssi(&self.rssi.read().scan().copied().collect::<Vec<_>>()),
            fixes: encode_fixes(&self.fixes.read().scan().copied().collect::<Vec<_>>()),
            proximity: encode_proximity(&self.proximity.read().scan().copied().collect::<Vec<_>>()),
        }
    }

    /// Rebuild a repository from an export.
    pub fn import(export: &RepositoryExport) -> Result<Self, CodecError> {
        let repo = Repository::new();
        repo.store_trajectories(decode_trajectories(export.trajectories.clone())?);
        repo.store_rssi(decode_rssi(export.rssi.clone())?);
        repo.store_fixes(decode_fixes(export.fixes.clone())?);
        repo.store_proximity(decode_proximity(export.proximity.clone())?);
        Ok(repo)
    }
}

/// Serialized form of a [`Repository`].
#[derive(Debug, Clone)]
pub struct RepositoryExport {
    pub trajectories: bytes::Bytes,
    pub rssi: bytes::Bytes,
    pub fixes: bytes::Bytes,
    pub proximity: bytes::Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, Timestamp};

    fn sample(o: u32, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(0),
            Point::new(t as f64, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn repository_ingest_and_counts() {
        let repo = Repository::new();
        repo.store_trajectories((0..10).map(|i| sample(0, i * 100)));
        repo.store_rssi([RssiMeasurement {
            object: ObjectId(0),
            device: DeviceId(0),
            rssi: -50.0,
            t: Timestamp(0),
        }]);
        repo.store_fixes([Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(0.0, 0.0)),
            t: Timestamp(0),
        }]);
        repo.store_proximity([ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(0),
            te: Timestamp(100),
        }]);
        assert_eq!(repo.counts(), (10, 1, 1, 1));
    }

    #[test]
    fn export_import_round_trip() {
        let repo = Repository::new();
        repo.store_trajectories((0..25).map(|i| sample(i % 3, i as u64 * 40)));
        repo.store_rssi((0..7).map(|i| RssiMeasurement {
            object: ObjectId(i),
            device: DeviceId(i % 2),
            rssi: -40.0 - i as f64,
            t: Timestamp(i as u64 * 10),
        }));
        let export = repo.export();
        let restored = Repository::import(&export).unwrap();
        assert_eq!(restored.counts(), repo.counts());
        // Spot check a trace.
        let a = repo.trajectories.read().object_trace(ObjectId(1)).len();
        let b = restored.trajectories.read().object_trace(ObjectId(1)).len();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_readers_and_writer() {
        use std::sync::Arc;
        let repo = Arc::new(Repository::new());
        repo.store_trajectories((0..100).map(|i| sample(0, i * 10)));
        let mut handles = Vec::new();
        for k in 0..4 {
            let r = Arc::clone(&repo);
            handles.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for _ in 0..50 {
                    total += r
                        .trajectories
                        .read()
                        .time_window(Timestamp(k * 100), Timestamp(k * 100 + 500))
                        .len();
                }
                total
            }));
        }
        let w = Arc::clone(&repo);
        let writer = std::thread::spawn(move || {
            for i in 100..200u64 {
                w.store_trajectories([sample(1, i * 10)]);
            }
        });
        for h in handles {
            assert!(h.join().is_ok());
        }
        writer.join().unwrap();
        assert_eq!(repo.counts().0, 200);
    }
}
