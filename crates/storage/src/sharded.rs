//! The sharded repository: scale-out storage partitioning for concurrent
//! ingestion (ROADMAP "sharded repository"; cf. the scale-out themes of the
//! database literature in PAPERS.md).
//!
//! [`ShardedRepository`] partitions each of the four product tables by
//! **object-id hash** across N shards, each a full [`Repository`] with its
//! own per-table locks. Concurrent stage workers appending batches for
//! different objects therefore take *different* locks instead of
//! serializing on one `RwLock` per table — the contention bottleneck of the
//! single [`Repository`] at high worker counts.
//!
//! Placement is static (`hash(object) % shards`): a row's shard never
//! changes, so reads need no rebalancing and no cross-shard coordination —
//! every query is answered by visiting the owning shard (object-keyed
//! queries) or by merging per-shard answers (time-, device- and
//! space-keyed queries). Once the same batches have been ingested, the
//! shard-merge queries return the **same row sets** as a single
//! [`Repository`]; orders are documented per method, and rows sharing a
//! sort key may interleave differently across backends (exactly as
//! arrival order under concurrent producers is scheduler-dependent — see
//! the crate-level `ProductSink` contract). One caveat *during* ingestion:
//! a mixed-object batch lands shard by shard, so a reader racing the
//! append can see part of it (single-object batches — the pipeline
//! default — are atomic; see [`ShardedRepository::accept`]).

use vita_geometry::{Aabb, Point};
use vita_indoor::{DeviceId, FloorId, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

use crate::{
    borrow_sections, encode_fixes_runs, encode_proximity_runs, encode_rssi_runs,
    encode_trajectories_runs, run_sections, CodecError, ProductBatch, ProductSink, Repository,
    RepositoryExport, RunScope, ShardCounts, TableCounts,
};

/// Default shard count: enough to spread a typical stage-worker pool
/// (usually half the cores) across distinct locks without fragmenting
/// small runs.
pub const DEFAULT_SHARDS: usize = 8;

/// SplitMix64 finalizer: a cheap, well-mixing integer hash so consecutive
/// object ids (the common allocation pattern) spread evenly over shards
/// instead of striping.
#[inline]
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`ProductSink`] that partitions every table by object-id hash across
/// N shards with per-shard locks (see the module docs for the design).
///
/// # Examples
///
/// ```
/// use vita_geometry::Point;
/// use vita_indoor::{BuildingId, FloorId, ObjectId, RunId, Timestamp};
/// use vita_mobility::TrajectorySample;
/// use vita_storage::{ProductBatch, ProductSink, RunScope, ShardedRepository};
///
/// let repo = ShardedRepository::new(4);
/// // Two runs ingest concurrently-shaped batches into the same tables.
/// for (run, objects) in [(RunId(0), 0..6u32), (RunId(1), 0..3u32)] {
///     for o in objects {
///         repo.accept_run(
///             run,
///             ProductBatch::Trajectories(vec![TrajectorySample::new(
///                 ObjectId(o),
///                 BuildingId(0),
///                 FloorId(0),
///                 Point::new(o as f64, 0.0),
///                 Timestamp(100 * o as u64),
///             )]),
///         );
///     }
/// }
/// // `RunScope::All` merges all runs; `run.into()` isolates one.
/// assert_eq!(repo.trajectories_scan(RunScope::All).len(), 9);
/// assert_eq!(repo.trajectories_scan(RunId(1).into()).len(), 3);
/// assert_eq!(repo.run_ids(), vec![RunId(0), RunId(1)]);
/// // Every row of one object lives in exactly one shard.
/// assert_eq!(repo.object_trace(RunScope::All, ObjectId(2)).len(), 2);
/// assert_eq!(repo.object_trace(RunId(1).into(), ObjectId(2)).len(), 1);
/// ```
#[derive(Debug)]
pub struct ShardedRepository {
    shards: Vec<Repository>,
}

impl ShardedRepository {
    /// A repository with `shards` partitions (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedRepository {
            shards: (0..shards.max(1)).map(|_| Repository::new()).collect(),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning every row of `o` — stable for the repository's
    /// lifetime (no rebalancing).
    pub fn shard_of(&self, o: ObjectId) -> usize {
        (mix64(o.0 as u64) % self.shards.len() as u64) as usize
    }

    /// The underlying shards, in shard order. Exposed for tests and
    /// diagnostics; production callers should use the merge queries.
    pub fn shards(&self) -> &[Repository] {
        &self.shards
    }

    /// Row counts of the four tables under `scope`, summed across shards.
    pub fn counts(&self, scope: RunScope) -> TableCounts {
        self.shards
            .iter()
            .fold(TableCounts::default(), |acc, s| acc + s.counts(scope))
    }

    /// Every run with at least one row in any shard, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        let mut runs: Vec<RunId> = self.shards.iter().flat_map(|s| s.run_ids()).collect();
        runs.sort_unstable();
        runs.dedup();
        runs
    }

    /// Row counts per shard, in shard order.
    pub fn per_shard_counts(&self) -> Vec<ShardCounts> {
        self.shards
            .iter()
            .map(|s| s.counts(RunScope::All))
            .collect()
    }

    /// Route one owned batch to its shards. Pipeline batches are typically
    /// single-object (one trajectory chunk per object), so the common case
    /// — detected by a plain id comparison, no hashing — moves the whole
    /// `Vec` to one shard without copying or re-allocating.
    ///
    /// Batch atomicity is **per shard**: a mixed-object batch is appended
    /// shard by shard, so a concurrent reader can observe part of it — a
    /// state the single [`Repository`] (one write lock per batch) never
    /// exposes. Single-object batches, the pipeline default, stay atomic.
    fn route<T>(
        &self,
        rows: Vec<T>,
        object_of: impl Fn(&T) -> ObjectId,
        append: impl Fn(&Repository, Vec<T>),
    ) {
        let Some(first) = rows.first() else { return };
        let first = object_of(first);
        if rows.iter().all(|r| object_of(r) == first) {
            append(&self.shards[self.shard_of(first)], rows);
            return;
        }
        let mut parts: Vec<Vec<T>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for r in rows {
            let shard = self.shard_of(object_of(&r));
            parts[shard].push(r);
        }
        for (shard, part) in self.shards.iter().zip(parts) {
            if !part.is_empty() {
                append(shard, part);
            }
        }
    }

    // ---- trajectory queries -------------------------------------------

    /// `scope`'s trajectory samples, in shard order (within a shard:
    /// insertion order). The row *set* equals a single repository's scan.
    pub fn trajectories_scan(&self, scope: RunScope) -> Vec<TrajectorySample> {
        concat(&self.shards, |s| {
            let t = s.trajectories.read();
            match scope.run() {
                None => t.scan().copied().collect(),
                Some(run) => t.scan_run(run).into_iter().copied().collect(),
            }
        })
    }

    /// Shard-merge of [`crate::TrajectoryTable::time_window`]: `scope`'s
    /// samples with `from <= t < to` (half-open, like the single-table
    /// contract), time-ordered; ties keep shard order.
    pub fn trajectories_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<TrajectorySample> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.trajectories
                    .read()
                    .time_window(scope, from, to)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |s| s.t,
        )
    }

    /// Shard-merge of [`crate::TrajectoryTable::snapshot_at`] (`t`
    /// inclusive): objects are disjoint across shards, so merging the
    /// per-shard snapshots by object id reproduces the single-table answer
    /// exactly.
    pub fn trajectories_snapshot_at(&self, scope: RunScope, t: Timestamp) -> Vec<TrajectorySample> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.trajectories
                    .read()
                    .snapshot_at(scope, t)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |s| s.object,
        )
    }

    /// `scope`'s trace of object `o`, time-ordered — answered entirely by
    /// the owning shard, identical to the single-table answer.
    pub fn object_trace(&self, scope: RunScope, o: ObjectId) -> Vec<TrajectorySample> {
        self.shards[self.shard_of(o)]
            .trajectories
            .read()
            .object_trace(scope, o)
            .into_iter()
            .copied()
            .collect()
    }

    /// Shard-merge spatial range query: `scope`'s samples on `floor`
    /// inside `query`, in shard order (within a shard: insertion order).
    /// Same row set as the single-table
    /// [`crate::TrajectoryTable::range_query`]; needs only per-shard
    /// *read* locks.
    pub fn trajectories_range_query(
        &self,
        scope: RunScope,
        floor: FloorId,
        query: &Aabb,
    ) -> Vec<TrajectorySample> {
        concat(&self.shards, |s| {
            s.trajectories
                .read()
                .range_query(scope, floor, query)
                .into_iter()
                .copied()
                .collect()
        })
    }

    /// Shard-merge kNN: `scope`'s k nearest per shard, merged by distance
    /// and cut to the global k (ties at equal distance keep shard order; a
    /// single repository breaks such ties in insertion order instead — the
    /// returned distance multiset is identical either way).
    pub fn trajectories_knn(
        &self,
        scope: RunScope,
        floor: FloorId,
        p: Point,
        k: usize,
    ) -> Vec<(TrajectorySample, f64)> {
        let mut merged = merge_sorted(
            per_shard(&self.shards, |s| {
                s.trajectories
                    .read()
                    .knn(scope, floor, p, k)
                    .into_iter()
                    .map(|(s, d)| (*s, d))
                    .collect()
            }),
            // f64 distances are non-NaN (they come from Point::dist);
            // order by bits is order by value for non-negative floats.
            |(_, d): &(TrajectorySample, f64)| d.to_bits(),
        );
        merged.truncate(k);
        merged
    }

    // ---- rssi queries -------------------------------------------------

    /// `scope`'s RSSI measurements, in shard order.
    pub fn rssi_scan(&self, scope: RunScope) -> Vec<RssiMeasurement> {
        concat(&self.shards, |s| {
            let t = s.rssi.read();
            match scope.run() {
                None => t.scan().copied().collect(),
                Some(run) => t.scan_run(run).into_iter().copied().collect(),
            }
        })
    }

    /// Shard-merge of [`crate::RssiTable::time_window`] (half-open),
    /// time-ordered; ties keep shard order.
    pub fn rssi_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<RssiMeasurement> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.rssi
                    .read()
                    .time_window(scope, from, to)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |m| m.t,
        )
    }

    /// `scope`'s measurements of object `o`, time-ordered — owning shard
    /// only.
    pub fn rssi_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<RssiMeasurement> {
        self.shards[self.shard_of(o)]
            .rssi
            .read()
            .of_object(scope, o)
            .into_iter()
            .copied()
            .collect()
    }

    /// `scope`'s measurements through device `d` across all shards,
    /// time-ordered; ties keep shard order (devices are not the partition
    /// key, so this is a merge).
    pub fn rssi_of_device(&self, scope: RunScope, d: DeviceId) -> Vec<RssiMeasurement> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.rssi
                    .read()
                    .of_device(scope, d)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |m| m.t,
        )
    }

    // ---- fix queries --------------------------------------------------

    /// `scope`'s fixes, in shard order.
    pub fn fixes_scan(&self, scope: RunScope) -> Vec<Fix> {
        concat(&self.shards, |s| {
            let t = s.fixes.read();
            match scope.run() {
                None => t.scan().copied().collect(),
                Some(run) => t.scan_run(run).into_iter().copied().collect(),
            }
        })
    }

    /// Shard-merge of [`crate::FixTable::time_window`] (half-open),
    /// time-ordered; ties keep shard order.
    pub fn fixes_time_window(&self, scope: RunScope, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.fixes
                    .read()
                    .time_window(scope, from, to)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |f| f.t,
        )
    }

    /// `scope`'s fixes of object `o`, time-ordered — owning shard only.
    pub fn fixes_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<Fix> {
        self.shards[self.shard_of(o)]
            .fixes
            .read()
            .of_object(scope, o)
            .into_iter()
            .copied()
            .collect()
    }

    // ---- proximity queries --------------------------------------------

    /// `scope`'s proximity records, in shard order.
    pub fn proximity_scan(&self, scope: RunScope) -> Vec<ProximityRecord> {
        concat(&self.shards, |s| {
            let t = s.proximity.read();
            match scope.run() {
                None => t.scan().copied().collect(),
                Some(run) => t.scan_run(run).into_iter().copied().collect(),
            }
        })
    }

    /// Shard-merge of [`crate::ProximityTable::overlapping`] (closed record
    /// period vs half-open window), ordered by start time; ties keep shard
    /// order.
    pub fn proximity_overlapping(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<ProximityRecord> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.proximity
                    .read()
                    .overlapping(scope, from, to)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |r| r.ts,
        )
    }

    /// `scope`'s detection periods of object `o`, ordered by start time —
    /// owning shard only.
    pub fn proximity_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<ProximityRecord> {
        self.shards[self.shard_of(o)]
            .proximity
            .read()
            .of_object(scope, o)
            .into_iter()
            .copied()
            .collect()
    }

    /// `scope`'s detection periods through device `d` across all shards,
    /// ordered by start time; ties keep shard order.
    pub fn proximity_of_device(&self, scope: RunScope, d: DeviceId) -> Vec<ProximityRecord> {
        merge_sorted(
            per_shard(&self.shards, |s| {
                s.proximity
                    .read()
                    .of_device(scope, d)
                    .into_iter()
                    .copied()
                    .collect()
            }),
            |r| r.ts,
        )
    }

    /// Serialize every table into one buffer per table, one wire-format
    /// section per run (rows within a section in shard order) — the same
    /// backend-agnostic format as [`Repository::export`], importable by
    /// any of the `import` constructors.
    pub fn export(&self) -> RepositoryExport {
        let runs = self.run_ids();
        let t = run_sections(runs.clone(), |r| self.trajectories_scan(r.into()));
        let m = run_sections(runs.clone(), |r| self.rssi_scan(r.into()));
        let f = run_sections(runs.clone(), |r| self.fixes_scan(r.into()));
        let p = run_sections(runs, |r| self.proximity_scan(r.into()));
        RepositoryExport {
            trajectories: encode_trajectories_runs(&borrow_sections(&t)),
            rssi: encode_rssi_runs(&borrow_sections(&m)),
            fixes: encode_fixes_runs(&borrow_sections(&f)),
            proximity: encode_proximity_runs(&borrow_sections(&p)),
        }
    }

    /// Rebuild a sharded repository (`shards` partitions) from an export,
    /// run by run: rows land in their owning shards (object-id hash, the
    /// same placement ingestion uses) under their exported run ids.
    pub fn import(export: &RepositoryExport, shards: usize) -> Result<Self, CodecError> {
        let repo = ShardedRepository::new(shards);
        for (run, rows) in crate::codec::decode_trajectories_runs(export.trajectories.clone())? {
            repo.accept_run(run, ProductBatch::Trajectories(rows));
        }
        for (run, rows) in crate::codec::decode_rssi_runs(export.rssi.clone())? {
            repo.accept_run(run, ProductBatch::Rssi(rows));
        }
        for (run, rows) in crate::codec::decode_fixes_runs(export.fixes.clone())? {
            repo.accept_run(run, ProductBatch::Fixes(rows));
        }
        for (run, rows) in crate::codec::decode_proximity_runs(export.proximity.clone())? {
            repo.accept_run(run, ProductBatch::Proximity(rows));
        }
        Ok(repo)
    }
}

impl Default for ShardedRepository {
    fn default() -> Self {
        ShardedRepository::new(DEFAULT_SHARDS)
    }
}

impl ProductSink for ShardedRepository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        match batch {
            ProductBatch::Trajectories(v) => self.route(
                v,
                |s| s.object,
                |shard, rows| shard.trajectories.write().append_batch_run(run, rows),
            ),
            ProductBatch::Rssi(v) => self.route(
                v,
                |m| m.object,
                |shard, rows| shard.rssi.write().append_batch_run(run, rows),
            ),
            ProductBatch::Fixes(v) => self.route(
                v,
                |f| f.object,
                |shard, rows| shard.fixes.write().append_batch_run(run, rows),
            ),
            ProductBatch::Proximity(v) => self.route(
                v,
                |r| r.object,
                |shard, rows| shard.proximity.write().append_batch_run(run, rows),
            ),
        }
    }
}

/// Concatenate per-shard answers in shard order.
fn concat<T>(shards: &[Repository], f: impl Fn(&Repository) -> Vec<T>) -> Vec<T> {
    let mut out = Vec::new();
    for s in shards {
        out.append(&mut f(s));
    }
    out
}

/// Collect per-shard answers (each lock is held only while its shard is
/// queried).
fn per_shard<T>(shards: &[Repository], f: impl Fn(&Repository) -> Vec<T>) -> Vec<Vec<T>> {
    shards.iter().map(f).collect()
}

/// Merge per-shard result vectors — each already sorted by `key` — into
/// one sorted vector. The stable stdlib sort detects and merges the
/// pre-sorted runs, so this is an N-way merge in practice; ties keep shard
/// order (stability).
fn merge_sorted<T, K: Ord>(per_shard: Vec<Vec<T>>, key: impl Fn(&T) -> K) -> Vec<T> {
    let mut out: Vec<T> = Vec::with_capacity(per_shard.iter().map(Vec::len).sum());
    for part in per_shard {
        out.extend(part);
    }
    out.sort_by_key(key);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_geometry::Point;
    use vita_indoor::{BuildingId, Loc};

    fn sample(o: u32, t: u64, x: f64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(0),
            Point::new(x, 0.0),
            Timestamp(t),
        )
    }

    #[test]
    fn routing_is_stable_and_total() {
        let repo = ShardedRepository::new(4);
        for o in 0..100 {
            let s = repo.shard_of(ObjectId(o));
            assert!(s < 4);
            assert_eq!(s, repo.shard_of(ObjectId(o)));
        }
        // The hash actually spreads: 100 consecutive ids never all land in
        // one shard.
        let hit: std::collections::HashSet<usize> =
            (0..100).map(|o| repo.shard_of(ObjectId(o))).collect();
        assert!(hit.len() > 1);
    }

    #[test]
    fn single_object_batch_takes_the_fast_path_and_queries_merge() {
        let repo = ShardedRepository::new(3);
        for o in 0..9u32 {
            repo.accept(ProductBatch::Trajectories(
                (0..5).map(|i| sample(o, i * 100, o as f64)).collect(),
            ));
        }
        assert_eq!(repo.counts(RunScope::All).trajectories, 45);
        assert_eq!(repo.trajectories_scan(RunScope::All).len(), 45);
        let w = repo.trajectories_time_window(RunScope::All, Timestamp(100), Timestamp(300));
        assert_eq!(w.len(), 18);
        assert!(w.windows(2).all(|p| p[0].t <= p[1].t));
        let trace = repo.object_trace(RunScope::All, ObjectId(4));
        assert_eq!(trace.len(), 5);
        assert!(trace.windows(2).all(|p| p[0].t < p[1].t));
        let snap = repo.trajectories_snapshot_at(RunScope::All, Timestamp(250));
        assert_eq!(snap.len(), 9);
        assert!(snap.windows(2).all(|p| p[0].object < p[1].object));
        assert!(snap.iter().all(|s| s.t == Timestamp(200)));
    }

    #[test]
    fn mixed_object_batch_is_partitioned() {
        let repo = ShardedRepository::new(4);
        let rows: Vec<TrajectorySample> =
            (0..40u32).map(|o| sample(o, o as u64, o as f64)).collect();
        repo.accept(ProductBatch::Trajectories(rows));
        assert_eq!(repo.counts(RunScope::All).trajectories, 40);
        let per = repo.per_shard_counts();
        assert_eq!(per.len(), 4);
        assert_eq!(per.iter().map(|c| c.trajectories).sum::<usize>(), 40);
        assert_eq!(per.iter().map(ShardCounts::total).sum::<usize>(), 40);
        // Each object still answers from exactly one shard.
        for o in 0..40u32 {
            assert_eq!(repo.object_trace(RunScope::All, ObjectId(o)).len(), 1);
        }
    }

    #[test]
    fn device_and_proximity_queries_merge_across_shards() {
        let repo = ShardedRepository::new(4);
        repo.accept(ProductBatch::Rssi(
            (0..20u32)
                .map(|o| RssiMeasurement {
                    object: ObjectId(o),
                    device: DeviceId(o % 2),
                    rssi: -40.0 - o as f64,
                    t: Timestamp(o as u64 * 10),
                })
                .collect(),
        ));
        let d0 = repo.rssi_of_device(RunScope::All, DeviceId(0));
        assert_eq!(d0.len(), 10);
        assert!(d0.windows(2).all(|p| p[0].t <= p[1].t));
        assert_eq!(repo.rssi_of_object(RunScope::All, ObjectId(3)).len(), 1);

        repo.accept(ProductBatch::Proximity(
            (0..6u32)
                .map(|o| ProximityRecord {
                    object: ObjectId(o),
                    device: DeviceId(0),
                    ts: Timestamp(o as u64 * 100),
                    te: Timestamp(o as u64 * 100 + 50),
                })
                .collect(),
        ));
        let overlap = repo.proximity_overlapping(RunScope::All, Timestamp(0), Timestamp(250));
        assert_eq!(overlap.len(), 3);
        assert!(overlap.windows(2).all(|p| p[0].ts <= p[1].ts));
        assert_eq!(
            repo.proximity_of_device(RunScope::All, DeviceId(0)).len(),
            6
        );
    }

    #[test]
    fn spatial_queries_merge_and_respect_k() {
        let repo = ShardedRepository::new(3);
        for o in 0..12u32 {
            repo.accept(ProductBatch::Trajectories(vec![sample(o, 0, o as f64)]));
        }
        let hits = repo.trajectories_range_query(
            RunScope::All,
            FloorId(0),
            &Aabb::new(Point::new(2.5, -1.0), Point::new(6.5, 1.0)),
        );
        assert_eq!(hits.len(), 4); // x = 3, 4, 5, 6
        let near = repo.trajectories_knn(RunScope::All, FloorId(0), Point::new(5.2, 0.0), 3);
        assert_eq!(near.len(), 3);
        assert!(near.windows(2).all(|p| p[0].1 <= p[1].1));
        let xs: Vec<f64> = near.iter().map(|(s, _)| s.point().x).collect();
        assert_eq!(xs, vec![5.0, 6.0, 4.0]);
    }

    #[test]
    fn export_is_importable_by_the_single_repository() {
        let repo = ShardedRepository::new(2);
        repo.accept(ProductBatch::Trajectories(
            (0..10u32).map(|o| sample(o, o as u64 * 10, 0.0)).collect(),
        ));
        repo.accept(ProductBatch::Fixes(vec![Fix {
            object: ObjectId(1),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(1.0, 2.0)),
            t: Timestamp(5),
        }]));
        let restored = Repository::import(&repo.export()).unwrap();
        assert_eq!(restored.counts(RunScope::All), repo.counts(RunScope::All));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let repo = ShardedRepository::new(0);
        assert_eq!(repo.shard_count(), 1);
        repo.accept(ProductBatch::Trajectories(vec![sample(7, 0, 0.0)]));
        assert_eq!(repo.counts(RunScope::All).trajectories, 1);
    }
}
