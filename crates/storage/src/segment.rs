//! The segmented storage backend: immutable run-segmented segments with
//! epoch-pinned snapshot reads and a background sealer/compactor.
//!
//! [`Repository`](crate::Repository) and
//! [`ShardedRepository`](crate::ShardedRepository) both sit readers and
//! writers on the same `RwLock`s, so under live ingestion the read tail
//! inherits every writer pause — and each append throws away cached
//! spatial indexes, forcing O(n) rebuilds mid-ingest. This module takes
//! the modern-engine answer instead: make the data immutable and publish
//! it by pointer swap.
//!
//! * Each table is a list of **immutable segments**. Every accepted batch
//!   becomes a small unsealed segment (one per-run section, rows in
//!   arrival order, no indexes); a background **sealer** merges unsealed
//!   segments into sealed ones — per-run sections, exactly like the v2
//!   wire format's section layout — and builds each sealed section's time
//!   / object / device / per-floor spatial indexes **once**, at seal
//!   time. A **compactor** folds accumulated sealed segments together so
//!   the list stays short.
//! * The current segment list is published through a `SnapshotCell`:
//!   readers pin the current snapshot (an `Arc` — the pin is the
//!   reference count), answer the whole query against that frozen state,
//!   and drop the pin when done. Readers never take a lock on the hot
//!   path and never block ingestion or sealing; writers never invalidate
//!   anything a reader holds.
//!
//! Every row is stamped with a per-table **sequence number** at accept
//! time. Queries order ties by it, which makes the segmented backend's
//! answers *bit-identical* to the single [`Repository`](crate::Repository)
//! under deterministic ingestion — arrival order is reconstructed from
//! the seqs no matter how sealing and compaction have rearranged the
//! physical rows. The cross-backend parity suites hold all three backends
//! to that standard.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Mutex, RwLock};
use vita_geometry::{Aabb, GridIndex, Point};
use vita_indoor::{DeviceId, FloorId, LocKind, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

use crate::codec::{
    decode_fixes_runs, decode_proximity_runs, decode_rssi_runs, decode_trajectories_runs,
    encode_fixes_runs, encode_proximity_runs, encode_rssi_runs, encode_trajectories_runs,
};
use crate::{
    borrow_sections, run_sections, CodecError, ProductBatch, ProductSink, RepositoryExport,
    RunScope, ShardCounts, TableCounts,
};

/// Per-table arrival stamp; ties in every query order by it, which is what
/// keeps segmented answers bit-identical to the single repository.
type Seq = u64;

// ---------------------------------------------------------------------------
// Snapshot publication: epoch-pinned Arc swap
// ---------------------------------------------------------------------------

static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Entries a thread keeps before it evicts its pin cache wholesale. Small:
/// a cached entry keeps a whole table snapshot alive, and four cells per
/// repository means even a test spawning many repositories stays bounded.
const PIN_CACHE_CAP: usize = 64;

/// A pin-cache entry: the cell version seen and the snapshot pinned at it.
type PinEntry = (u64, Arc<dyn Any + Send + Sync>);

thread_local! {
    /// Per-thread pin cache: cell id → (version seen, pinned snapshot).
    /// Keyed by a globally unique cell id, so a dropped repository's stale
    /// entries can never alias a new cell.
    static PIN_CACHE: RefCell<HashMap<u64, PinEntry>> = RefCell::new(HashMap::new());
}

/// Atomically published `Arc<T>` with an epoch counter.
///
/// The hot read path is lock-free: a thread that has already pinned the
/// current version re-uses its cached `Arc` after one atomic load. Only
/// the first read after a publish touches the publication slot's lock —
/// and writers hold that lock just long enough to swap a pointer, so even
/// the refresh path never waits behind ingestion or sealing work.
struct SnapshotCell<T: Send + Sync + 'static> {
    id: u64,
    version: AtomicU64,
    slot: RwLock<Arc<T>>,
}

impl<T: Send + Sync + 'static> SnapshotCell<T> {
    fn new(value: T) -> Self {
        SnapshotCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(1),
            slot: RwLock::new(Arc::new(value)),
        }
    }

    /// Pin the current snapshot. The returned `Arc` *is* the pin: the
    /// snapshot (and every segment it references) stays alive until the
    /// caller drops it, no matter what writers publish meanwhile.
    ///
    /// Per thread the pinned snapshots are monotone — once a thread has
    /// seen a snapshot, later pins never observe an older one — which is
    /// what makes reader-side prefix-consistency assertions sound.
    fn pin(&self) -> Arc<T> {
        let version = self.version.load(Ordering::Acquire);
        let hit = PIN_CACHE.with(|c| {
            c.borrow()
                .get(&self.id)
                .and_then(|(v, arc)| (*v == version).then(|| Arc::clone(arc)))
        });
        if let Some(any) = hit {
            if let Ok(arc) = any.downcast::<T>() {
                return arc;
            }
        }
        // The slot may hold a snapshot *newer* than `version` (a writer
        // stores before bumping); caching it under the older version is
        // fine — the next bump forces a refresh, and the slot only ever
        // moves forward, so per-thread monotonicity holds.
        let fresh = Arc::clone(&self.slot.read());
        PIN_CACHE.with(|c| {
            let mut cache = c.borrow_mut();
            if cache.len() >= PIN_CACHE_CAP && !cache.contains_key(&self.id) {
                cache.clear();
            }
            cache.insert(
                self.id,
                (version, Arc::clone(&fresh) as Arc<dyn Any + Send + Sync>),
            );
        });
        fresh
    }

    /// The slot's current value, bypassing the thread-local cache. Writers
    /// (which serialize on the table's writer lock) use this to read their
    /// own latest publish back.
    fn latest(&self) -> Arc<T> {
        Arc::clone(&self.slot.read())
    }

    /// Publish a new snapshot: store, then bump the epoch. Callers
    /// serialize publishes through the table's writer lock.
    fn publish(&self, value: Arc<T>) {
        *self.slot.write() = value;
        self.version.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Rows, sections, segments
// ---------------------------------------------------------------------------

/// Field access the generic segmented table needs from a product row.
trait SegmentRow: Copy + Send + Sync + 'static {
    fn time(&self) -> Timestamp;
    fn object(&self) -> Option<ObjectId>;
    fn device(&self) -> Option<DeviceId>;
    fn floor_point(&self) -> Option<(FloorId, Point)>;
}

impl SegmentRow for TrajectorySample {
    fn time(&self) -> Timestamp {
        self.t
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        None
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        match self.loc.kind {
            LocKind::Point(p) => Some((self.loc.floor, p)),
            _ => None,
        }
    }
}

impl SegmentRow for RssiMeasurement {
    fn time(&self) -> Timestamp {
        self.t
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        Some(self.device)
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        None
    }
}

impl SegmentRow for Fix {
    fn time(&self) -> Timestamp {
        self.t
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        None
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        match self.loc.kind {
            LocKind::Point(p) => Some((self.loc.floor, p)),
            _ => None,
        }
    }
}

impl SegmentRow for ProximityRecord {
    fn time(&self) -> Timestamp {
        self.ts
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        Some(self.device)
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        None
    }
}

/// Indexes a sealed section carries, built exactly once at seal time.
/// There is no time index: a sealed section's rows are stored physically
/// in `(t, seq)` order, so time windows are contiguous sub-slices.
struct SectionIndex {
    /// Row positions per object, ascending — because rows are
    /// `(t, seq)`-sorted, each list is the object's trace in trace order.
    by_object: HashMap<ObjectId, Vec<u32>>,
    by_device: HashMap<DeviceId, Vec<u32>>,
    /// Per-floor grid over point-located rows (trajectory table only).
    spatial: HashMap<FloorId, GridIndex>,
}

/// One run's rows inside a segment — the in-memory mirror of the v2 wire
/// format's per-run section. `rows` and `seqs` are parallel. Unsealed
/// sections keep arrival order (ascending seqs); sealed sections are
/// physically re-sorted to `(t, seq)` order, which turns the dominant
/// serving query (time windows) into binary search plus sequential copy.
/// Arrival order is never lost — seqs travel with the rows, and the
/// arrival-ordered readers (scan, export) order by seq value.
struct Section<R> {
    run: RunId,
    rows: Vec<R>,
    seqs: Vec<Seq>,
    min_t: Timestamp,
    max_t: Timestamp,
    /// `Some` once sealed; unsealed sections answer by linear scan.
    index: Option<SectionIndex>,
}

impl<R: SegmentRow> Section<R> {
    fn unsealed(run: RunId, rows: Vec<R>, seqs: Vec<Seq>) -> Self {
        let (mut min_t, mut max_t) = (Timestamp(u64::MAX), Timestamp(0));
        for r in &rows {
            min_t = min_t.min(r.time());
            max_t = max_t.max(r.time());
        }
        Section {
            run,
            rows,
            seqs,
            min_t,
            max_t,
            index: None,
        }
    }

    /// Seal a section from arrival-ordered rows: physically re-sort to
    /// `(t, seq)` order, then index.
    fn sealed(run: RunId, rows: Vec<R>, seqs: Vec<Seq>, build_spatial: bool) -> Self {
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (rows[i as usize].time(), seqs[i as usize]));
        let sorted_rows: Vec<R> = order.iter().map(|&i| rows[i as usize]).collect();
        let sorted_seqs: Vec<Seq> = order.iter().map(|&i| seqs[i as usize]).collect();
        Self::from_sorted(run, sorted_rows, sorted_seqs, build_spatial)
    }

    /// A sealed section built by *merging* already-sealed parts — the
    /// compaction path. The dominant cost of sealing is the `(t, seq)`
    /// sort; the parts are already physically sorted, so an `O(n log k)`
    /// k-way merge replaces it and everything else is a linear pass. On
    /// one-core hosts this is the difference between compaction being
    /// invisible to query threads and showing up in their tail latency.
    fn merged(run: RunId, parts: &[&Section<R>], build_spatial: bool) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let total: usize = parts.iter().map(|p| p.rows.len()).sum();
        let mut rows = Vec::with_capacity(total);
        let mut seqs = Vec::with_capacity(total);
        let key = |pi: usize, pos: usize| (parts[pi].rows[pos].time(), parts[pi].seqs[pos]);
        let mut heap: BinaryHeap<Reverse<(Timestamp, Seq, usize, usize)>> = (0..parts.len())
            .filter(|&pi| !parts[pi].rows.is_empty())
            .map(|pi| {
                let (t, s) = key(pi, 0);
                Reverse((t, s, pi, 0))
            })
            .collect();
        while let Some(Reverse((_, s, pi, pos))) = heap.pop() {
            rows.push(parts[pi].rows[pos]);
            seqs.push(s);
            if pos + 1 < parts[pi].rows.len() {
                let (t, s) = key(pi, pos + 1);
                heap.push(Reverse((t, s, pi, pos + 1)));
            }
        }
        Self::from_sorted(run, rows, seqs, build_spatial)
    }

    /// Index rows already in `(t, seq)` order into a sealed section.
    fn from_sorted(run: RunId, rows: Vec<R>, seqs: Vec<Seq>, build_spatial: bool) -> Self {
        debug_assert!(
            (1..rows.len()).all(|i| (rows[i - 1].time(), seqs[i - 1]) < (rows[i].time(), seqs[i]))
        );
        let (min_t, max_t) = match (rows.first(), rows.last()) {
            (Some(first), Some(last)) => (first.time(), last.time()),
            _ => (Timestamp(u64::MAX), Timestamp(0)),
        };
        let mut by_object: HashMap<ObjectId, Vec<u32>> = HashMap::new();
        let mut by_device: HashMap<DeviceId, Vec<u32>> = HashMap::new();
        for (i, r) in rows.iter().enumerate() {
            if let Some(o) = r.object() {
                by_object.entry(o).or_default().push(i as u32);
            }
            if let Some(d) = r.device() {
                by_device.entry(d).or_default().push(i as u32);
            }
        }
        let spatial = if build_spatial {
            build_spatial_grids(&rows)
        } else {
            HashMap::new()
        };
        Section {
            run,
            rows,
            seqs,
            min_t,
            max_t,
            index: Some(SectionIndex {
                by_object,
                by_device,
                spatial,
            }),
        }
    }
}

/// Per-floor grids over point-located rows: one linear insert pass per
/// floor, domain inflated so edge points never fall outside.
fn build_spatial_grids<R: SegmentRow>(rows: &[R]) -> HashMap<FloorId, GridIndex> {
    let mut per_floor: HashMap<FloorId, Vec<(u32, Point)>> = HashMap::new();
    for (i, r) in rows.iter().enumerate() {
        if let Some((floor, p)) = r.floor_point() {
            per_floor.entry(floor).or_default().push((i as u32, p));
        }
    }
    let mut spatial = HashMap::new();
    for (floor, pts) in per_floor {
        let domain =
            Aabb::from_points(&pts.iter().map(|(_, p)| *p).collect::<Vec<_>>()).inflated(1.0);
        let cell = (domain.width().max(domain.height()) / 32.0).max(0.5);
        let mut g = GridIndex::new(domain, cell);
        for (id, p) in pts {
            g.insert_point(id, p);
        }
        spatial.insert(floor, g);
    }
    spatial
}

/// An immutable group of per-run sections. Unsealed segments hold exactly
/// one section (the accepted batch); sealed segments hold one section per
/// run, each indexed.
struct Segment<R> {
    sections: Vec<Section<R>>,
    len: usize,
    sealed: bool,
}

/// The frozen state a reader pins: the table's current segment list.
struct TableSnapshot<R> {
    segments: Vec<Arc<Segment<R>>>,
    len: usize,
}

impl<R> Default for TableSnapshot<R> {
    fn default() -> Self {
        TableSnapshot {
            segments: Vec::new(),
            len: 0,
        }
    }
}

/// Merge segments into one sealed segment: rows regrouped into one section
/// per run (wire-format shape), every section indexed. Segment list order
/// is seq order, so per-run concatenation preserves arrival order.
fn build_sealed<R: SegmentRow>(consumed: &[Arc<Segment<R>>], build_spatial: bool) -> Segment<R> {
    let mut per_run: BTreeMap<RunId, Vec<&Section<R>>> = BTreeMap::new();
    let mut len = 0usize;
    for seg in consumed {
        len += seg.len;
        for sec in &seg.sections {
            per_run.entry(sec.run).or_default().push(sec);
        }
    }
    let sections = per_run
        .into_iter()
        .map(|(run, parts)| {
            if parts.iter().all(|p| p.index.is_some()) {
                // Compaction: every part is sealed, merge their indexes.
                Section::merged(run, &parts, build_spatial)
            } else {
                // Sealing: fresh batches are arrival-ordered, sort from
                // scratch.
                let total: usize = parts.iter().map(|p| p.rows.len()).sum();
                let mut rows = Vec::with_capacity(total);
                let mut seqs = Vec::with_capacity(total);
                for p in parts {
                    rows.extend_from_slice(&p.rows);
                    seqs.extend_from_slice(&p.seqs);
                }
                debug_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
                Section::sealed(run, rows, seqs, build_spatial)
            }
        })
        .collect();
    Segment {
        sections,
        len,
        sealed: true,
    }
}

// ---------------------------------------------------------------------------
// Queries over a pinned snapshot
// ---------------------------------------------------------------------------

impl<R: SegmentRow> TableSnapshot<R> {
    /// Sections belonging to `scope`, across all segments. Sections are
    /// single-run, so run scoping is section selection — no per-row
    /// filtering anywhere on the read path.
    fn scoped_sections(&self, scope: RunScope) -> impl Iterator<Item = &Section<R>> {
        let run = scope.run();
        self.segments
            .iter()
            .flat_map(|seg| seg.sections.iter())
            .filter(move |sec| run.is_none_or(|r| sec.run == r))
    }

    fn len(&self, scope: RunScope) -> usize {
        match scope.run() {
            None => self.len,
            Some(_) => self.scoped_sections(scope).map(|s| s.rows.len()).sum(),
        }
    }

    fn run_ids(&self) -> Vec<RunId> {
        let mut runs: Vec<RunId> = self.scoped_sections(RunScope::All).map(|s| s.run).collect();
        runs.sort_unstable();
        runs.dedup();
        runs
    }

    /// All rows under `scope` in arrival (seq) order — exactly the single
    /// repository's insertion order.
    fn scan(&self, scope: RunScope) -> Vec<R> {
        let mut out: Vec<(Seq, R)> = Vec::with_capacity(self.len(scope));
        for sec in self.scoped_sections(scope) {
            out.extend(sec.seqs.iter().copied().zip(sec.rows.iter().copied()));
        }
        out.sort_unstable_by_key(|(s, _)| *s);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// Rows in the half-open window `from <= t < to`, ordered by
    /// `(t, seq)` — time order with ties in arrival order, the
    /// single-table contract.
    ///
    /// Sealed sections are physically `(t, seq)`-sorted, so each one
    /// contributes a *contiguous sub-slice* found by binary search; the
    /// global order comes from a k-way merge of those slices, sequential
    /// memory all the way. Windows routinely span a large fraction of the
    /// table, and on the serving path this query was the entire p99, so
    /// it gets the zero-gather layout.
    fn time_window(&self, scope: RunScope, from: Timestamp, to: Timestamp) -> Vec<R> {
        let sections: Vec<&Section<R>> = self
            .scoped_sections(scope)
            .filter(|sec| sec.max_t >= from && sec.min_t < to)
            .collect();
        // Unsealed sections are arrival-ordered: gather their window rows
        // into owned sorted runs first (stable sort on time keeps seq
        // order among ties), then merge those alongside the sealed slices.
        let mut owned: Vec<(Vec<R>, Vec<Seq>)> = Vec::new();
        for sec in &sections {
            if sec.index.is_none() {
                let mut ids: Vec<u32> = (0..sec.rows.len() as u32)
                    .filter(|&i| {
                        let t = sec.rows[i as usize].time();
                        t >= from && t < to
                    })
                    .collect();
                ids.sort_by_key(|&i| sec.rows[i as usize].time());
                owned.push((
                    ids.iter().map(|&i| sec.rows[i as usize]).collect(),
                    ids.iter().map(|&i| sec.seqs[i as usize]).collect(),
                ));
            }
        }
        let mut inputs: Vec<(&[R], &[Seq])> = Vec::with_capacity(sections.len());
        let mut owned_it = owned.iter();
        for sec in &sections {
            match &sec.index {
                Some(_) => {
                    let lo = sec.rows.partition_point(|r| r.time() < from);
                    let hi = sec.rows.partition_point(|r| r.time() < to);
                    if lo < hi {
                        inputs.push((&sec.rows[lo..hi], &sec.seqs[lo..hi]));
                    }
                }
                None => {
                    let (rows, seqs) = owned_it.next().expect("one owned run per unsealed");
                    if !rows.is_empty() {
                        inputs.push((&rows[..], &seqs[..]));
                    }
                }
            }
        }
        merge_sorted_slices(inputs)
    }

    /// Rows of object `o` ordered by `(t, seq)`.
    fn of_object(&self, scope: RunScope, o: ObjectId) -> Vec<R> {
        let mut out: Vec<(Timestamp, Seq, R)> = Vec::new();
        for sec in self.scoped_sections(scope) {
            match &sec.index {
                Some(ix) => {
                    if let Some(ids) = ix.by_object.get(&o) {
                        out.extend(ids.iter().map(|&i| {
                            let r = sec.rows[i as usize];
                            (r.time(), sec.seqs[i as usize], r)
                        }));
                    }
                }
                None => out.extend(
                    sec.rows
                        .iter()
                        .zip(&sec.seqs)
                        .filter(|(r, _)| r.object() == Some(o))
                        .map(|(&r, &s)| (r.time(), s, r)),
                ),
            }
        }
        out.sort_unstable_by_key(|(t, s, _)| (*t, *s));
        out.into_iter().map(|(_, _, r)| r).collect()
    }

    /// Rows through device `d` ordered by `(t, seq)`.
    fn of_device(&self, scope: RunScope, d: DeviceId) -> Vec<R> {
        let mut out: Vec<(Timestamp, Seq, R)> = Vec::new();
        for sec in self.scoped_sections(scope) {
            match &sec.index {
                Some(ix) => {
                    if let Some(ids) = ix.by_device.get(&d) {
                        out.extend(ids.iter().map(|&i| {
                            let r = sec.rows[i as usize];
                            (r.time(), sec.seqs[i as usize], r)
                        }));
                    }
                }
                None => out.extend(
                    sec.rows
                        .iter()
                        .zip(&sec.seqs)
                        .filter(|(r, _)| r.device() == Some(d))
                        .map(|(&r, &s)| (r.time(), s, r)),
                ),
            }
        }
        out.sort_unstable_by_key(|(t, s, _)| (*t, *s));
        out.into_iter().map(|(_, _, r)| r).collect()
    }

    /// Latest row at or before `at` per object, sorted by object id; among
    /// an object's rows sharing the latest timestamp the highest seq
    /// (last arrived) wins — the single-table snapshot contract.
    ///
    /// Sealed sections resolve one candidate per object by binary search:
    /// `by_object` lists are position-ascending and rows are physically
    /// `(t, seq)`-sorted, so an object's list is its trace in trace order
    /// and the latest row at or before `at` is the last id before the
    /// partition point. Only that one candidate touches the cross-section
    /// map — on big tables this query used to walk most rows.
    fn snapshot_at(&self, scope: RunScope, at: Timestamp) -> Vec<R> {
        fn upd<R: SegmentRow>(
            latest: &mut HashMap<ObjectId, (Timestamp, Seq, R)>,
            o: ObjectId,
            t: Timestamp,
            s: Seq,
            r: R,
        ) {
            match latest.get(&o) {
                Some((bt, bs, _)) if (*bt, *bs) > (t, s) => {}
                _ => {
                    latest.insert(o, (t, s, r));
                }
            }
        }
        let mut latest: HashMap<ObjectId, (Timestamp, Seq, R)> = HashMap::new();
        for sec in self.scoped_sections(scope) {
            if sec.min_t > at {
                continue;
            }
            match &sec.index {
                Some(ix) => {
                    let whole = sec.max_t <= at;
                    for (&o, ids) in &ix.by_object {
                        let cut = if whole {
                            ids.len()
                        } else {
                            ids.partition_point(|&i| sec.rows[i as usize].time() <= at)
                        };
                        if let Some(&i) = ids[..cut].last() {
                            let (t, s) = (sec.rows[i as usize].time(), sec.seqs[i as usize]);
                            upd(&mut latest, o, t, s, sec.rows[i as usize]);
                        }
                    }
                }
                None => {
                    for (r, &s) in sec.rows.iter().zip(&sec.seqs) {
                        if r.time() <= at {
                            if let Some(o) = r.object() {
                                upd(&mut latest, o, r.time(), s, *r);
                            }
                        }
                    }
                }
            }
        }
        let mut v: Vec<R> = latest.into_values().map(|(_, _, r)| r).collect();
        v.sort_unstable_by_key(|r| r.object());
        v
    }

    /// Point rows on `floor` inside `query`, in arrival (seq) order.
    fn range_query(&self, scope: RunScope, floor: FloorId, query: &Aabb) -> Vec<R> {
        let mut out: Vec<(Seq, R)> = Vec::new();
        for sec in self.scoped_sections(scope) {
            match &sec.index {
                Some(ix) => {
                    if let Some(g) = ix.spatial.get(&floor) {
                        for i in g.query_bbox(query) {
                            let r = sec.rows[i as usize];
                            if matches!(r.floor_point(), Some((_, p)) if query.contains_point(p)) {
                                out.push((sec.seqs[i as usize], r));
                            }
                        }
                    }
                }
                None => out.extend(
                    sec.rows
                        .iter()
                        .zip(&sec.seqs)
                        .filter(|(r, _)| {
                            matches!(r.floor_point(),
                                     Some((f, p)) if f == floor && query.contains_point(p))
                        })
                        .map(|(&r, &s)| (s, r)),
                ),
            }
        }
        out.sort_unstable_by_key(|(s, _)| *s);
        out.into_iter().map(|(_, r)| r).collect()
    }

    /// The k nearest point rows to `p` on `floor`, nearest first; ties by
    /// seq. Sealed sections run the same expanding-radius grid search as
    /// the locked tables (with the same out-of-domain radius anchor), so
    /// the distance multiset matches the other backends exactly.
    fn knn(&self, scope: RunScope, floor: FloorId, p: Point, k: usize) -> Vec<(R, f64)> {
        if k == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(f64, Seq, R)> = Vec::new();
        for sec in self.scoped_sections(scope) {
            match &sec.index {
                Some(ix) => {
                    let Some(g) = ix.spatial.get(&floor) else {
                        continue;
                    };
                    let dom = g.domain();
                    let max_radius = dom.dist_to_point(p) + dom.width() + dom.height() + 1.0;
                    let mut radius = g.cell_size().max(f64::MIN_POSITIVE);
                    let mut candidates: Vec<u32>;
                    loop {
                        candidates = g.query_radius(p, radius.min(max_radius));
                        if candidates.len() >= k || radius >= max_radius {
                            break;
                        }
                        radius *= 2.0;
                    }
                    // A per-section top-k is enough: the global top-k under
                    // the (dist, seq) total order is the top-k of the
                    // per-section top-ks.
                    let mut local: Vec<(f64, Seq, R)> = candidates
                        .into_iter()
                        .filter_map(|i| {
                            let r = sec.rows[i as usize];
                            r.floor_point()
                                .map(|(_, q)| (q.dist(p), sec.seqs[i as usize], r))
                        })
                        .collect();
                    local.sort_unstable_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
                    local.truncate(k);
                    scored.extend(local);
                }
                None => scored.extend(sec.rows.iter().zip(&sec.seqs).filter_map(|(r, &s)| {
                    match r.floor_point() {
                        Some((f, q)) if f == floor => Some((q.dist(p), s, *r)),
                        _ => None,
                    }
                })),
            }
        }
        scored.sort_unstable_by(|a, b| (a.0, a.1).partial_cmp(&(b.0, b.1)).unwrap());
        scored.truncate(k);
        scored.into_iter().map(|(d, _, r)| (r, d)).collect()
    }
}

impl TableSnapshot<ProximityRecord> {
    /// Records whose closed detection period `[ts, te]` intersects the
    /// half-open window `[from, to)`, in arrival (seq) order — the
    /// [`crate::table::ProximityTable::overlapping`] contract.
    fn overlapping(&self, scope: RunScope, from: Timestamp, to: Timestamp) -> Vec<ProximityRecord> {
        let mut out: Vec<(Seq, ProximityRecord)> = Vec::new();
        for sec in self.scoped_sections(scope) {
            out.extend(
                sec.rows
                    .iter()
                    .zip(&sec.seqs)
                    .filter(|(r, _)| r.ts < to && r.te >= from)
                    .map(|(&r, &s)| (s, r)),
            );
        }
        out.sort_unstable_by_key(|(s, _)| *s);
        out.into_iter().map(|(_, r)| r).collect()
    }
}

/// Merge `(rows, seqs)` slice pairs — each already `(t, seq)`-sorted —
/// into one `(t, seq)`-ordered row vector. A lone input is a straight
/// `memcpy`. A handful of inputs (the common case: one compacted segment
/// holds one section per run) merge by a linear min-pick over the cursors
/// — cheaper than a heap at small k because the cursors stay in registers
/// and there is no sift traffic. Beyond that, a min-heap gives
/// `O(n log k)`. All access is sequential: the inputs are contiguous,
/// there is no id-list indirection anywhere.
fn merge_sorted_slices<R: SegmentRow>(inputs: Vec<(&[R], &[Seq])>) -> Vec<R> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    const LINEAR_MAX: usize = 8;
    let total: usize = inputs.iter().map(|(rows, _)| rows.len()).sum();
    let mut out = Vec::with_capacity(total);
    match inputs.len() {
        0 => {}
        1 => out.extend_from_slice(inputs[0].0),
        k if k <= LINEAR_MAX => {
            // (next key, cursor, input) per input; exhausted inputs drop
            // out.
            let mut cursors: Vec<((Timestamp, Seq), usize, usize)> = inputs
                .iter()
                .enumerate()
                .map(|(li, (rows, seqs))| ((rows[0].time(), seqs[0]), 0, li))
                .collect();
            while let Some(win) = (0..cursors.len()).min_by_key(|&c| cursors[c].0) {
                let (_, pos, li) = cursors[win];
                let (rows, seqs) = inputs[li];
                out.push(rows[pos]);
                if pos + 1 < rows.len() {
                    cursors[win] = ((rows[pos + 1].time(), seqs[pos + 1]), pos + 1, li);
                } else {
                    cursors.swap_remove(win);
                }
            }
        }
        _ => {
            let mut heap: BinaryHeap<Reverse<(Timestamp, Seq, usize, usize)>> = inputs
                .iter()
                .enumerate()
                .map(|(li, (rows, seqs))| Reverse((rows[0].time(), seqs[0], li, 0)))
                .collect();
            while let Some(Reverse((_, _, li, pos))) = heap.pop() {
                let (rows, seqs) = inputs[li];
                out.push(rows[pos]);
                if pos + 1 < rows.len() {
                    heap.push(Reverse((rows[pos + 1].time(), seqs[pos + 1], li, pos + 1)));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The writable table: append, seal, compact
// ---------------------------------------------------------------------------

/// One product table of the segmented backend.
struct SegTable<R: SegmentRow> {
    cell: SnapshotCell<TableSnapshot<R>>,
    /// Serializes publishes (appends and seal/compact swaps) and carries
    /// the next sequence number. Held only to clone a segment-pointer list
    /// and swap the snapshot — never while rows are copied or indexed.
    writer: Mutex<Seq>,
    /// Build per-floor grids at seal time (trajectory table only — the
    /// other tables answer no spatial queries).
    build_spatial: bool,
}

impl<R: SegmentRow> SegTable<R> {
    fn new(build_spatial: bool) -> Self {
        SegTable {
            cell: SnapshotCell::new(TableSnapshot::default()),
            writer: Mutex::new(0),
            build_spatial,
        }
    }

    fn pin(&self) -> Arc<TableSnapshot<R>> {
        self.cell.pin()
    }

    /// Accept one batch: stamp seqs, wrap it as an unsealed segment, and
    /// publish a snapshot with it appended. O(#segments) pointer copies
    /// plus the batch move — no index work on the ingest path. Returns the
    /// number of unsealed rows now pending, for seal scheduling.
    fn append(&self, run: RunId, rows: Vec<R>) -> (usize, usize) {
        if rows.is_empty() {
            return (0, 0);
        }
        let mut next_seq = self.writer.lock();
        let base = *next_seq;
        *next_seq += rows.len() as Seq;
        let seqs: Vec<Seq> = (base..*next_seq).collect();
        let len = rows.len();
        let seg = Arc::new(Segment {
            sections: vec![Section::unsealed(run, rows, seqs)],
            len,
            sealed: false,
        });
        let cur = self.cell.latest();
        let mut segments = Vec::with_capacity(cur.segments.len() + 1);
        segments.extend(cur.segments.iter().cloned());
        segments.push(seg);
        let minis = segments.iter().rev().take_while(|s| !s.sealed).count();
        let pending = segments.iter().rev().take(minis).map(|s| s.len).sum();
        self.cell.publish(Arc::new(TableSnapshot {
            segments,
            len: cur.len + len,
        }));
        (pending, minis)
    }

    /// Swap a contiguous group of segments for its merged replacement, if
    /// the group is still present unchanged (identity-compared). Only the
    /// sealer removes segments, so a `false` means another maintenance
    /// pass got there first — the caller just drops its build.
    fn try_replace(&self, consumed: &[Arc<Segment<R>>], replacement: Segment<R>) -> bool {
        if consumed.is_empty() {
            return false;
        }
        let guard = self.writer.lock();
        let cur = self.cell.latest();
        let Some(start) = cur
            .segments
            .iter()
            .position(|s| Arc::ptr_eq(s, &consumed[0]))
        else {
            return false;
        };
        if cur.segments.len() < start + consumed.len()
            || !cur.segments[start..start + consumed.len()]
                .iter()
                .zip(consumed)
                .all(|(a, b)| Arc::ptr_eq(a, b))
        {
            return false;
        }
        let mut segments = Vec::with_capacity(cur.segments.len() + 1 - consumed.len());
        segments.extend(cur.segments[..start].iter().cloned());
        segments.push(Arc::new(replacement));
        segments.extend(cur.segments[start + consumed.len()..].iter().cloned());
        self.cell.publish(Arc::new(TableSnapshot {
            segments,
            len: cur.len,
        }));
        drop(guard);
        true
    }

    /// One maintenance round: seal the trailing unsealed suffix when it is
    /// past the thresholds (always, under `force`), then compact the sealed
    /// part. Merges are built outside the writer lock; the swap inside it
    /// is a pointer splice.
    ///
    /// Background compaction is **size-tiered and budget-bounded**: one
    /// pass folds at most one adjacent run of *small* sealed segments whose
    /// merged size fits a row budget of `compact_segments × seal_rows`, and
    /// leaves graduated (half-budget-or-larger) segments alone. Every row
    /// is therefore merged O(log) times and no single pass builds more than
    /// one budget's worth of indexes — re-merging the whole prefix on every
    /// pass would be quadratic, and on small hosts that CPU draw evicts the
    /// query threads and shows up directly as read tail latency. Under
    /// `force` the whole sealed prefix folds into one segment regardless.
    /// Seal the trailing unsealed suffix when it is past the thresholds
    /// (always, under `force`). Called by the background sealer on its
    /// tick and by writers whose append crossed `seal_rows` — see
    /// [`SegInner::append_and_seal`].
    fn seal_pass(&self, cfg: &SegmentConfig, force: bool) -> bool {
        let snap = self.cell.latest();
        let first_unsealed = snap
            .segments
            .iter()
            .rposition(|s| s.sealed)
            .map_or(0, |i| i + 1);
        let minis = &snap.segments[first_unsealed..];
        if minis.is_empty() {
            return false;
        }
        let rows: usize = minis.iter().map(|s| s.len).sum();
        if !(force || minis.len() >= cfg.seal_segments || rows >= cfg.seal_rows) {
            return false;
        }
        let merged = build_sealed(minis, self.build_spatial);
        self.try_replace(minis, merged)
    }

    /// Compact the sealed prefix: fold at most one size-tiered run of
    /// small adjacent segments (the whole prefix under `force`).
    fn compact_pass(&self, cfg: &SegmentConfig, force: bool) -> bool {
        let mut compacted_now = false;
        let snap = self.cell.latest();
        let prefix = snap.segments.iter().take_while(|s| s.sealed).count();
        let group: Option<Vec<Arc<Segment<R>>>> = if force {
            (prefix >= 2).then(|| snap.segments[..prefix].to_vec())
        } else {
            let budget = cfg
                .compact_segments
                .max(2)
                .saturating_mul(cfg.seal_rows)
                .max(2);
            let small = (budget / 2).max(1);
            let min_run = cfg.compact_segments.max(2);
            let mut found = None;
            let mut start = 0;
            let mut rows = 0usize;
            for i in 0..=prefix {
                if i < prefix && snap.segments[i].len < small {
                    if rows + snap.segments[i].len <= budget {
                        rows += snap.segments[i].len;
                        continue;
                    }
                    // Budget-full run: its merge graduates past `small`
                    // immediately, so any length ≥ 2 is a productive fold.
                    if i - start >= 2 {
                        found = Some(snap.segments[start..i].to_vec());
                        break;
                    }
                    start = i;
                    rows = snap.segments[i].len;
                    continue;
                }
                // Run closed by a graduated segment or the prefix end: only
                // fold full-length runs, otherwise the trailing few smalls
                // would re-merge on every pass and each row would be copied
                // O(budget / seal size) times instead of O(1).
                if i - start >= min_run {
                    found = Some(snap.segments[start..i].to_vec());
                    break;
                }
                start = i + 1;
                rows = 0;
            }
            found
        };
        if let Some(group) = group {
            let merged = build_sealed(&group, self.build_spatial);
            compacted_now = self.try_replace(&group, merged);
        }
        compacted_now
    }

    /// (sealed, unsealed) segment counts in the current snapshot.
    fn segment_counts(&self) -> (usize, usize) {
        let snap = self.cell.latest();
        let sealed = snap.segments.iter().filter(|s| s.sealed).count();
        (sealed, snap.segments.len() - sealed)
    }
}

// ---------------------------------------------------------------------------
// The repository facade
// ---------------------------------------------------------------------------

/// Sealer/compactor tuning for [`SegmentedRepository`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Seal the pending unsealed segments once they hold this many rows.
    /// The writer whose append crosses this seals inline, so full
    /// backlogs seal promptly regardless of `tick` and index work is
    /// paced by ingestion rather than bursting on the background thread.
    pub seal_rows: usize,
    /// … or once this many unsealed segments have accumulated. Unsealed
    /// segments are scanned linearly but are batch-sized, so this trades a
    /// little read work for a lot less sealing churn.
    pub seal_segments: usize,
    /// Sizes background compaction: one pass folds at most one run of
    /// adjacent small sealed segments totalling `compact_segments ×
    /// seal_rows` rows, and segments past half that row budget are left
    /// alone until `seal_now`.
    pub compact_segments: usize,
    /// How long the background sealer sleeps when no writer signals it.
    /// Count-triggered seals and compaction advance at most once per tick,
    /// bounding the sealer's steady-state CPU draw next to query threads.
    pub tick: Duration,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            seal_rows: 4096,
            seal_segments: 64,
            compact_segments: 8,
            tick: Duration::from_millis(40),
        }
    }
}

/// Sealer/compactor progress counters plus the current segment inventory,
/// summed over the four tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Completed seal operations (unsealed suffix → one sealed segment).
    pub seals: u64,
    /// Completed compactions (sealed prefix → one sealed segment).
    pub compactions: u64,
    /// Sealed segments currently live.
    pub sealed_segments: usize,
    /// Unsealed (per-batch) segments currently live.
    pub unsealed_segments: usize,
}

struct SegInner {
    trajectories: SegTable<TrajectorySample>,
    rssi: SegTable<RssiMeasurement>,
    fixes: SegTable<Fix>,
    proximity: SegTable<ProximityRecord>,
    config: SegmentConfig,
    seals: AtomicU64,
    compactions: AtomicU64,
    shutdown: AtomicBool,
    signal: StdMutex<()>,
    wake: Condvar,
}

impl SegInner {
    /// Append one batch; when the unsealed backlog crosses `seal_rows`,
    /// the *writer* seals it inline. This paces index work to ingestion —
    /// the same place the locked backends pay it, but without a read lock
    /// anywhere — instead of letting it burst on the background thread.
    /// On one-core hosts a background burst evicts the query threads and
    /// lands straight in their tail latency; writer-side sealing also
    /// backpressures ingestion instead of letting the backlog run ahead
    /// of the sealer. The mini-count trigger is deliberately left to the
    /// background tick: firing it inline would seal on every 64th tiny
    /// streamed chunk, producing far more (and far smaller) sealed
    /// segments per second than the tick-paced sealer does, and the extra
    /// compaction debt those small segments accrue (one more merge level
    /// each to reach graduation) costs more CPU than the fused burst
    /// saves. The background thread also owns all compaction, so it is
    /// signalled either way.
    fn append_and_seal<R: SegmentRow>(&self, table: &SegTable<R>, run: RunId, rows: Vec<R>) {
        let (pending, _minis) = table.append(run, rows);
        if pending >= self.config.seal_rows {
            if table.seal_pass(&self.config, false) {
                self.seals.fetch_add(1, Ordering::Relaxed);
            }
            self.wake.notify_one();
        }
    }

    /// One maintenance round over all four tables: seal checks every
    /// call, compaction only when `compact` is set. A compaction is the
    /// biggest single burst of background CPU (up to a whole row budget
    /// re-merged), so the sealer runs it on a slower cadence than the
    /// seal check — on one-core hosts every burst event collides with a
    /// handful of in-flight queries, and the collision count, not the
    /// per-event cost, is what shows up at p99.
    fn maintenance_pass(&self, force: bool, compact: bool) {
        fn round<R: SegmentRow>(inner: &SegInner, table: &SegTable<R>, force: bool, compact: bool) {
            if table.seal_pass(&inner.config, force) {
                inner.seals.fetch_add(1, Ordering::Relaxed);
            }
            if (force || compact) && table.compact_pass(&inner.config, force) {
                inner.compactions.fetch_add(1, Ordering::Relaxed);
            }
        }
        round(self, &self.trajectories, force, compact);
        round(self, &self.rssi, force, compact);
        round(self, &self.fixes, force, compact);
        round(self, &self.proximity, force, compact);
    }
}

/// Compact on every Nth sealer tick (seal checks run every tick).
const COMPACT_EVERY: u32 = 8;

fn sealer_loop(inner: &SegInner) {
    let mut tick = 0u32;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        tick = tick.wrapping_add(1);
        inner.maintenance_pass(false, tick.is_multiple_of(COMPACT_EVERY));
        let guard = inner.signal.lock().expect("sealer signal");
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Timed wait: a writer's notify (threshold crossed) wakes it early,
        // the timeout bounds how stale an un-notified backlog can get.
        let _ = inner
            .wake
            .wait_timeout(guard, inner.config.tick)
            .expect("sealer signal");
    }
}

/// The third storage backend: immutable, sorted, run-segmented segments
/// published by atomic snapshot swap, with a background sealer/compactor
/// (see the module docs for the design).
///
/// Readers pin a snapshot per query and never block — not on ingestion,
/// not on sealing — while writers pay O(segment count) pointer copies per
/// batch and no index maintenance at all. Choose it when queries must stay
/// fast *while* `run_many` ingests; prefer the locked backends for purely
/// offline workloads, which skip the sealer thread.
///
/// # Examples
///
/// ```
/// use vita_storage::{ProductBatch, ProductSink, RunScope, SegmentedRepository};
/// use vita_geometry::Point;
/// use vita_indoor::{BuildingId, FloorId, ObjectId, Timestamp};
/// use vita_mobility::TrajectorySample;
///
/// let repo = SegmentedRepository::new();
/// repo.accept(ProductBatch::Trajectories(vec![TrajectorySample::new(
///     ObjectId(7),
///     BuildingId(0),
///     FloorId(0),
///     Point::new(1.0, 2.0),
///     Timestamp(100),
/// )]));
/// // Queries answer from a pinned snapshot; sealing in the background
/// // never changes an answer.
/// assert_eq!(repo.counts(RunScope::All).trajectories, 1);
/// repo.seal_now();
/// assert_eq!(repo.object_trace(RunScope::All, ObjectId(7)).len(), 1);
/// assert!(repo.stats().seals >= 1);
/// ```
pub struct SegmentedRepository {
    inner: Arc<SegInner>,
    sealer: StdMutex<Option<JoinHandle<()>>>,
}

impl Default for SegmentedRepository {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SegmentedRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedRepository")
            .field("counts", &self.counts(RunScope::All))
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for SegmentedRepository {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
        if let Some(handle) = self.sealer.lock().expect("sealer handle").take() {
            let _ = handle.join();
        }
    }
}

impl ProductSink for SegmentedRepository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        let i = &self.inner;
        match batch {
            ProductBatch::Trajectories(v) => i.append_and_seal(&i.trajectories, run, v),
            ProductBatch::Rssi(v) => i.append_and_seal(&i.rssi, run, v),
            ProductBatch::Fixes(v) => i.append_and_seal(&i.fixes, run, v),
            ProductBatch::Proximity(v) => i.append_and_seal(&i.proximity, run, v),
        }
    }
}

impl SegmentedRepository {
    /// A segmented repository with the default [`SegmentConfig`] and the
    /// background sealer running.
    pub fn new() -> Self {
        Self::with_config(SegmentConfig::default())
    }

    /// A segmented repository with explicit sealer/compactor tuning.
    pub fn with_config(config: SegmentConfig) -> Self {
        let inner = Arc::new(SegInner {
            trajectories: SegTable::new(true),
            rssi: SegTable::new(false),
            fixes: SegTable::new(false),
            proximity: SegTable::new(false),
            config,
            seals: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            signal: StdMutex::new(()),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&inner);
        let sealer = std::thread::Builder::new()
            .name("vita-sealer".into())
            .spawn(move || sealer_loop(&worker))
            .expect("spawn sealer");
        SegmentedRepository {
            inner,
            sealer: StdMutex::new(Some(sealer)),
        }
    }

    /// Run one synchronous seal+compact round, regardless of thresholds:
    /// every pending unsealed segment is sealed and the sealed prefix is
    /// folded. Queries answer identically before and after — this exists
    /// so tests and benches can put the repository in a known segment
    /// state deterministically.
    pub fn seal_now(&self) {
        self.inner.maintenance_pass(true, true);
    }

    /// Sealer/compactor counters and the live segment inventory.
    pub fn stats(&self) -> SegmentStats {
        let mut stats = SegmentStats {
            seals: self.inner.seals.load(Ordering::Relaxed),
            compactions: self.inner.compactions.load(Ordering::Relaxed),
            ..SegmentStats::default()
        };
        let i = &self.inner;
        for (sealed, unsealed) in [
            i.trajectories.segment_counts(),
            i.rssi.segment_counts(),
            i.fixes.segment_counts(),
            i.proximity.segment_counts(),
        ] {
            stats.sealed_segments += sealed;
            stats.unsealed_segments += unsealed;
        }
        stats
    }

    /// Row counts of the four tables under `scope`.
    pub fn counts(&self, scope: RunScope) -> TableCounts {
        TableCounts {
            trajectories: self.inner.trajectories.pin().len(scope),
            rssi: self.inner.rssi.pin().len(scope),
            fixes: self.inner.fixes.pin().len(scope),
            proximity: self.inner.proximity.pin().len(scope),
        }
    }

    /// The whole-repository counts, shaped like one shard (the segmented
    /// backend does not partition).
    pub fn per_shard_counts(&self) -> Vec<ShardCounts> {
        vec![self.counts(RunScope::All)]
    }

    /// Every run with at least one row in any table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        let mut runs = self.inner.trajectories.pin().run_ids();
        runs.extend(self.inner.rssi.pin().run_ids());
        runs.extend(self.inner.fixes.pin().run_ids());
        runs.extend(self.inner.proximity.pin().run_ids());
        runs.sort_unstable();
        runs.dedup();
        runs
    }

    /// `scope`'s trajectory rows in arrival order (the single
    /// repository's insertion order, reconstructed from seqs).
    pub fn trajectories_scan(&self, scope: RunScope) -> Vec<TrajectorySample> {
        self.inner.trajectories.pin().scan(scope)
    }

    /// `scope`'s samples in the half-open window `from <= t < to`,
    /// time-ordered with ties in arrival order.
    pub fn trajectories_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<TrajectorySample> {
        self.inner.trajectories.pin().time_window(scope, from, to)
    }

    /// Latest sample at or before `t` (inclusive) per object of `scope`,
    /// sorted by object id.
    pub fn trajectories_snapshot_at(&self, scope: RunScope, t: Timestamp) -> Vec<TrajectorySample> {
        self.inner.trajectories.pin().snapshot_at(scope, t)
    }

    /// `scope`'s trace of object `o`, time-ordered.
    pub fn object_trace(&self, scope: RunScope, o: ObjectId) -> Vec<TrajectorySample> {
        self.inner.trajectories.pin().of_object(scope, o)
    }

    /// `scope`'s samples on `floor` inside `query`, in arrival order.
    pub fn trajectories_range_query(
        &self,
        scope: RunScope,
        floor: FloorId,
        query: &Aabb,
    ) -> Vec<TrajectorySample> {
        self.inner
            .trajectories
            .pin()
            .range_query(scope, floor, query)
    }

    /// `scope`'s k nearest samples to `p` on `floor`, nearest first.
    pub fn trajectories_knn(
        &self,
        scope: RunScope,
        floor: FloorId,
        p: Point,
        k: usize,
    ) -> Vec<(TrajectorySample, f64)> {
        self.inner.trajectories.pin().knn(scope, floor, p, k)
    }

    /// `scope`'s RSSI rows in arrival order.
    pub fn rssi_scan(&self, scope: RunScope) -> Vec<RssiMeasurement> {
        self.inner.rssi.pin().scan(scope)
    }

    /// `scope`'s measurements in the half-open window `from <= t < to`.
    pub fn rssi_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<RssiMeasurement> {
        self.inner.rssi.pin().time_window(scope, from, to)
    }

    /// `scope`'s measurements of object `o`, time-ordered.
    pub fn rssi_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<RssiMeasurement> {
        self.inner.rssi.pin().of_object(scope, o)
    }

    /// `scope`'s measurements through device `d`, time-ordered.
    pub fn rssi_of_device(&self, scope: RunScope, d: DeviceId) -> Vec<RssiMeasurement> {
        self.inner.rssi.pin().of_device(scope, d)
    }

    /// `scope`'s fixes in arrival order.
    pub fn fixes_scan(&self, scope: RunScope) -> Vec<Fix> {
        self.inner.fixes.pin().scan(scope)
    }

    /// `scope`'s fixes in the half-open window `from <= t < to`.
    pub fn fixes_time_window(&self, scope: RunScope, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        self.inner.fixes.pin().time_window(scope, from, to)
    }

    /// `scope`'s fixes of object `o`, time-ordered.
    pub fn fixes_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<Fix> {
        self.inner.fixes.pin().of_object(scope, o)
    }

    /// `scope`'s proximity rows in arrival order.
    pub fn proximity_scan(&self, scope: RunScope) -> Vec<ProximityRecord> {
        self.inner.proximity.pin().scan(scope)
    }

    /// `scope`'s records whose detection period intersects `[from, to)`,
    /// in arrival order.
    pub fn proximity_overlapping(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<ProximityRecord> {
        self.inner.proximity.pin().overlapping(scope, from, to)
    }

    /// `scope`'s detection periods of object `o`, ordered by start time.
    pub fn proximity_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<ProximityRecord> {
        self.inner.proximity.pin().of_object(scope, o)
    }

    /// `scope`'s detection periods through device `d`, ordered by start
    /// time.
    pub fn proximity_of_device(&self, scope: RunScope, d: DeviceId) -> Vec<ProximityRecord> {
        self.inner.proximity.pin().of_device(scope, d)
    }

    /// Serialize every table into the backend-agnostic run-segmented wire
    /// format (scan order — arrival order — inside each run section, like
    /// the other backends).
    pub fn export(&self) -> RepositoryExport {
        let t = self.inner.trajectories.pin();
        let r = self.inner.rssi.pin();
        let f = self.inner.fixes.pin();
        let p = self.inner.proximity.pin();
        let t_sections = run_sections(t.run_ids(), |run| t.scan(run.into()));
        let r_sections = run_sections(r.run_ids(), |run| r.scan(run.into()));
        let f_sections = run_sections(f.run_ids(), |run| f.scan(run.into()));
        let p_sections = run_sections(p.run_ids(), |run| p.scan(run.into()));
        RepositoryExport {
            trajectories: encode_trajectories_runs(&borrow_sections(&t_sections)),
            rssi: encode_rssi_runs(&borrow_sections(&r_sections)),
            fixes: encode_fixes_runs(&borrow_sections(&f_sections)),
            proximity: encode_proximity_runs(&borrow_sections(&p_sections)),
        }
    }

    /// Rebuild a segmented repository from an export, run by run (the
    /// export's own backend does not matter — the wire format is
    /// backend-agnostic).
    pub fn import(export: &RepositoryExport) -> Result<Self, CodecError> {
        let repo = SegmentedRepository::new();
        for (run, rows) in decode_trajectories_runs(export.trajectories.clone())? {
            repo.accept_run(run, ProductBatch::Trajectories(rows));
        }
        for (run, rows) in decode_rssi_runs(export.rssi.clone())? {
            repo.accept_run(run, ProductBatch::Rssi(rows));
        }
        for (run, rows) in decode_fixes_runs(export.fixes.clone())? {
            repo.accept_run(run, ProductBatch::Fixes(rows));
        }
        for (run, rows) in decode_proximity_runs(export.proximity.clone())? {
            repo.accept_run(run, ProductBatch::Proximity(rows));
        }
        Ok(repo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_indoor::BuildingId;

    fn ts(o: u32, f: u32, x: f64, y: f64, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(f),
            Point::new(x, y),
            Timestamp(t),
        )
    }

    fn filled() -> SegmentedRepository {
        let repo = SegmentedRepository::new();
        for b in 0..6u64 {
            let batch: Vec<TrajectorySample> = (0..20)
                .map(|i| {
                    ts(
                        (i % 4) as u32,
                        0,
                        (b * 20 + i) as f64,
                        1.0,
                        b * 200 + i * 10,
                    )
                })
                .collect();
            repo.accept_run(RunId((b % 2) as u32), ProductBatch::Trajectories(batch));
        }
        repo
    }

    #[test]
    fn snapshot_cell_pins_are_monotone_and_lock_free_on_repeat() {
        let cell = SnapshotCell::new(1u32);
        let a = cell.pin();
        let b = cell.pin();
        assert!(Arc::ptr_eq(&a, &b));
        cell.publish(Arc::new(2));
        assert_eq!(*cell.pin(), 2);
        // The old pin still reads the old value — that is the epoch pin.
        assert_eq!(*a, 1);
    }

    #[test]
    fn queries_are_invariant_under_sealing() {
        let repo = filled();
        let before_scan = repo.trajectories_scan(RunScope::All);
        let before_window =
            repo.trajectories_time_window(RunScope::All, Timestamp(100), Timestamp(900));
        let before_snap = repo.trajectories_snapshot_at(RunScope::One(RunId(1)), Timestamp(700));
        let before_trace = repo.object_trace(RunScope::All, ObjectId(2));
        let before_range = repo.trajectories_range_query(
            RunScope::All,
            FloorId(0),
            &Aabb::new(Point::new(10.0, 0.0), Point::new(60.0, 2.0)),
        );
        let before_knn = repo.trajectories_knn(RunScope::All, FloorId(0), Point::new(30.0, 1.0), 7);
        repo.seal_now();
        let stats = repo.stats();
        assert!(stats.seals >= 1, "seal_now must seal: {stats:?}");
        assert_eq!(repo.trajectories_scan(RunScope::All), before_scan);
        assert_eq!(
            repo.trajectories_time_window(RunScope::All, Timestamp(100), Timestamp(900)),
            before_window
        );
        assert_eq!(
            repo.trajectories_snapshot_at(RunScope::One(RunId(1)), Timestamp(700)),
            before_snap
        );
        assert_eq!(repo.object_trace(RunScope::All, ObjectId(2)), before_trace);
        assert_eq!(
            repo.trajectories_range_query(
                RunScope::All,
                FloorId(0),
                &Aabb::new(Point::new(10.0, 0.0), Point::new(60.0, 2.0)),
            ),
            before_range
        );
        let after_knn = repo.trajectories_knn(RunScope::All, FloorId(0), Point::new(30.0, 1.0), 7);
        assert_eq!(before_knn.len(), after_knn.len());
        for ((s1, d1), (s2, d2)) in before_knn.iter().zip(&after_knn) {
            assert_eq!(s1, s2);
            assert!((d1 - d2).abs() < 1e-12);
        }
    }

    #[test]
    fn sealing_then_appending_then_compacting_preserves_arrival_order() {
        let repo = filled();
        repo.seal_now();
        // More rows on top of the sealed state, then force a second seal
        // and a compaction.
        repo.accept_run(
            RunId(0),
            ProductBatch::Trajectories((0..10).map(|i| ts(9, 0, i as f64, 5.0, 50 + i)).collect()),
        );
        repo.seal_now();
        repo.seal_now();
        let stats = repo.stats();
        assert!(stats.compactions >= 1, "expected a compaction: {stats:?}");
        assert_eq!(stats.unsealed_segments, 0);
        let trace = repo.object_trace(RunScope::All, ObjectId(9));
        assert_eq!(trace.len(), 10);
        assert!(trace.windows(2).all(|w| w[0].t < w[1].t));
        assert_eq!(repo.counts(RunScope::All).trajectories, 130);
    }

    #[test]
    fn run_scoped_counts_and_isolation() {
        let repo = filled();
        repo.seal_now();
        let all = repo.counts(RunScope::All);
        let r0 = repo.counts(RunId(0).into());
        let r1 = repo.counts(RunId(1).into());
        assert_eq!(all.trajectories, r0.trajectories + r1.trajectories);
        assert_eq!(repo.run_ids(), vec![RunId(0), RunId(1)]);
        assert!(repo
            .trajectories_scan(RunId(0).into())
            .iter()
            .zip(repo.trajectories_scan(RunId(0).into()))
            .all(|(a, b)| *a == b));
        assert!(repo.counts(RunId(7).into()).trajectories == 0);
    }

    #[test]
    fn export_import_round_trips_runs_and_order() {
        let repo = filled();
        repo.accept_run(
            RunId(1),
            ProductBatch::Rssi(vec![RssiMeasurement {
                object: ObjectId(1),
                device: DeviceId(3),
                rssi: -48.0,
                t: Timestamp(123),
            }]),
        );
        repo.seal_now();
        let export = repo.export();
        let restored = SegmentedRepository::import(&export).unwrap();
        assert_eq!(restored.counts(RunScope::All), repo.counts(RunScope::All));
        assert_eq!(restored.run_ids(), repo.run_ids());
        assert_eq!(
            restored.trajectories_scan(RunId(0).into()),
            repo.trajectories_scan(RunId(0).into())
        );
        assert_eq!(restored.rssi_of_device(RunScope::All, DeviceId(3)).len(), 1);
    }

    #[test]
    fn readers_pinned_mid_ingest_see_frozen_state() {
        let repo = SegmentedRepository::new();
        repo.accept(ProductBatch::Trajectories(
            (0..5).map(|i| ts(0, 0, i as f64, 0.0, i * 10)).collect(),
        ));
        let pinned = repo.inner.trajectories.pin();
        repo.accept(ProductBatch::Trajectories(
            (5..12).map(|i| ts(0, 0, i as f64, 0.0, i * 10)).collect(),
        ));
        repo.seal_now();
        // The pin still answers from the pre-append world.
        assert_eq!(pinned.len(RunScope::All), 5);
        assert_eq!(repo.counts(RunScope::All).trajectories, 12);
    }

    #[test]
    fn proximity_overlapping_matches_contract() {
        let repo = SegmentedRepository::new();
        repo.accept(ProductBatch::Proximity(vec![ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(100),
            te: Timestamp(300),
        }]));
        repo.seal_now();
        assert_eq!(
            repo.proximity_overlapping(RunScope::All, Timestamp(300), Timestamp(400))
                .len(),
            1
        );
        assert_eq!(
            repo.proximity_overlapping(RunScope::All, Timestamp(0), Timestamp(100))
                .len(),
            0
        );
    }
}
