//! The segmented storage backend: immutable run-segmented segments with
//! epoch-pinned snapshot reads and a background sealer/compactor.
//!
//! [`Repository`](crate::Repository) and
//! [`ShardedRepository`](crate::ShardedRepository) both sit readers and
//! writers on the same `RwLock`s, so under live ingestion the read tail
//! inherits every writer pause — and each append throws away cached
//! spatial indexes, forcing O(n) rebuilds mid-ingest. This module takes
//! the modern-engine answer instead: make the data immutable and publish
//! it by pointer swap.
//!
//! * Each table is a list of **immutable segments**. Every accepted batch
//!   becomes a small unsealed segment (one per-run section, rows in
//!   arrival order, no indexes); a background **sealer** merges unsealed
//!   segments into sealed ones — per-run sections, exactly like the v2
//!   wire format's section layout — and builds each sealed section's time
//!   / object / device / per-floor spatial indexes **once**, at seal
//!   time. A **compactor** folds accumulated sealed segments together so
//!   the list stays short.
//! * The current segment list is published through a `SnapshotCell`:
//!   readers pin the current snapshot (an `Arc` — the pin is the
//!   reference count), answer the whole query against that frozen state,
//!   and drop the pin when done. Readers never take a lock on the hot
//!   path and never block ingestion or sealing; writers never invalidate
//!   anything a reader holds.
//!
//! Every row is stamped with a per-table **sequence number** at accept
//! time. Queries order ties by it, which makes the segmented backend's
//! answers *bit-identical* to the single [`Repository`](crate::Repository)
//! under deterministic ingestion — arrival order is reconstructed from
//! the seqs no matter how sealing and compaction have rearranged the
//! physical rows. The cross-backend parity suites hold all three backends
//! to that standard.
//!
//! ## Tiered storage (spill)
//!
//! With a [`SpillConfig`], sealed segments become a two-tier store:
//! `Resident` (decoded rows + indexes in memory) or `Spilled` (a
//! self-describing segment file on disk, written atomically via temp
//! file + rename). Every segment — spilled or not — keeps per-section
//! **meta** (run, row count, time bounds, floor set) plus its seq range,
//! so query planning (run/time/floor pruning) never touches disk; only a
//! query that actually needs a spilled section's rows pages the segment
//! back in, through a per-table capacity-bounded clock cache of decoded
//! segments. `memory_budget_rows` bounds decoded sealed rows held by the
//! repository (segment lists + caches together); maintenance evicts
//! coldest-first by last-pinned tick, and a seal/compact output that
//! cannot fit is spilled directly instead of being published resident.
//! Writers that outrun the spiller stall on the
//! [`SegmentedRepository::spill_pending_rows`] high-water mark and pay
//! the eviction IO themselves — explicit backpressure instead of
//! unbounded growth. Readers still pin snapshots lock-free; page-in
//! rebuilds sections deterministically, so answers stay bit-identical
//! to the all-resident backend.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};
use vita_geometry::{Aabb, GridIndex, Point};
use vita_indoor::{DeviceId, FloorId, LocKind, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

use crate::codec::{
    decode_fixes_runs, decode_proximity_runs, decode_rssi_runs, decode_segment, decode_segment_raw,
    decode_trajectories_runs, encode_fixes_runs, encode_proximity_runs, encode_rssi_runs,
    encode_runs_raw, encode_segment, encode_trajectories_runs, WireRecord,
};
use crate::{
    borrow_sections, run_sections, CodecError, ProductBatch, ProductSink, RepositoryExport,
    RunScope, ShardCounts, TableCounts,
};

/// Per-table arrival stamp; ties in every query order by it, which is what
/// keeps segmented answers bit-identical to the single repository.
type Seq = u64;

// ---------------------------------------------------------------------------
// Snapshot publication: epoch-pinned Arc swap
// ---------------------------------------------------------------------------

static NEXT_CELL_ID: AtomicU64 = AtomicU64::new(1);

/// Entries a thread keeps before it evicts the least-recently-pinned
/// one. Small: a cached entry keeps a whole table snapshot alive, and
/// four cells per repository means even a test spawning many
/// repositories stays bounded.
const PIN_CACHE_CAP: usize = 64;

/// A pin-cache entry: the cell version seen, the tick of the last pin
/// through this entry, and the snapshot pinned.
struct PinEntry {
    version: u64,
    used: u64,
    snap: Arc<dyn Any + Send + Sync>,
}

/// Per-thread pin cache with least-recently-pinned eviction. A full
/// cache evicts exactly one cold entry per new cell — a workload
/// rotating over more than [`PIN_CACHE_CAP`] live tables keeps its hot
/// set cached instead of losing everything to a wholesale clear.
#[derive(Default)]
struct PinCache {
    map: HashMap<u64, PinEntry>,
    tick: u64,
}

impl PinCache {
    fn get(&mut self, id: u64, version: u64) -> Option<Arc<dyn Any + Send + Sync>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(&id)?;
        if entry.version != version {
            return None;
        }
        entry.used = tick;
        Some(Arc::clone(&entry.snap))
    }

    fn insert(&mut self, id: u64, version: u64, snap: Arc<dyn Any + Send + Sync>) {
        self.tick += 1;
        if self.map.len() >= PIN_CACHE_CAP && !self.map.contains_key(&id) {
            if let Some(&coldest) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(id, _)| id)
            {
                self.map.remove(&coldest);
            }
        }
        self.map.insert(
            id,
            PinEntry {
                version,
                used: self.tick,
                snap,
            },
        );
    }
}

thread_local! {
    /// Per-thread pin cache: cell id → (version seen, pinned snapshot).
    /// Keyed by a globally unique cell id, so a dropped repository's stale
    /// entries can never alias a new cell.
    static PIN_CACHE: RefCell<PinCache> = RefCell::new(PinCache::default());
}

/// Atomically published `Arc<T>` with an epoch counter.
///
/// The hot read path is lock-free: a thread that has already pinned the
/// current version re-uses its cached `Arc` after one atomic load. Only
/// the first read after a publish touches the publication slot's lock —
/// and writers hold that lock just long enough to swap a pointer, so even
/// the refresh path never waits behind ingestion or sealing work.
struct SnapshotCell<T: Send + Sync + 'static> {
    id: u64,
    version: AtomicU64,
    slot: RwLock<Arc<T>>,
}

impl<T: Send + Sync + 'static> SnapshotCell<T> {
    fn new(value: T) -> Self {
        SnapshotCell {
            id: NEXT_CELL_ID.fetch_add(1, Ordering::Relaxed),
            version: AtomicU64::new(1),
            slot: RwLock::new(Arc::new(value)),
        }
    }

    /// Pin the current snapshot. The returned `Arc` *is* the pin: the
    /// snapshot (and every segment it references) stays alive until the
    /// caller drops it, no matter what writers publish meanwhile.
    ///
    /// Per thread the pinned snapshots are monotone — once a thread has
    /// seen a snapshot, later pins never observe an older one — which is
    /// what makes reader-side prefix-consistency assertions sound.
    fn pin(&self) -> Arc<T> {
        let version = self.version.load(Ordering::Acquire);
        let hit = PIN_CACHE.with(|c| c.borrow_mut().get(self.id, version));
        if let Some(any) = hit {
            if let Ok(arc) = any.downcast::<T>() {
                return arc;
            }
        }
        // The slot may hold a snapshot *newer* than `version` (a writer
        // stores before bumping); caching it under the older version is
        // fine — the next bump forces a refresh, and the slot only ever
        // moves forward, so per-thread monotonicity holds.
        let fresh = Arc::clone(&self.slot.read());
        PIN_CACHE.with(|c| {
            c.borrow_mut().insert(
                self.id,
                version,
                Arc::clone(&fresh) as Arc<dyn Any + Send + Sync>,
            );
        });
        fresh
    }

    /// The slot's current value, bypassing the thread-local cache. Writers
    /// (which serialize on the table's writer lock) use this to read their
    /// own latest publish back.
    fn latest(&self) -> Arc<T> {
        Arc::clone(&self.slot.read())
    }

    /// Publish a new snapshot: store, then bump the epoch. Callers
    /// serialize publishes through the table's writer lock.
    fn publish(&self, value: Arc<T>) {
        *self.slot.write() = value;
        self.version.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------------
// Rows, sections, segments
// ---------------------------------------------------------------------------

/// Field access the generic segmented table needs from a product row.
/// [`WireRecord`] rides along so any table can spill its sealed segments
/// through the segment codec.
trait SegmentRow: WireRecord {
    fn time(&self) -> Timestamp;
    fn object(&self) -> Option<ObjectId>;
    fn device(&self) -> Option<DeviceId>;
    fn floor_point(&self) -> Option<(FloorId, Point)>;
}

impl SegmentRow for TrajectorySample {
    fn time(&self) -> Timestamp {
        self.t
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        None
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        match self.loc.kind {
            LocKind::Point(p) => Some((self.loc.floor, p)),
            _ => None,
        }
    }
}

impl SegmentRow for RssiMeasurement {
    fn time(&self) -> Timestamp {
        self.t
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        Some(self.device)
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        None
    }
}

impl SegmentRow for Fix {
    fn time(&self) -> Timestamp {
        self.t
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        None
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        match self.loc.kind {
            LocKind::Point(p) => Some((self.loc.floor, p)),
            _ => None,
        }
    }
}

impl SegmentRow for ProximityRecord {
    fn time(&self) -> Timestamp {
        self.ts
    }
    fn object(&self) -> Option<ObjectId> {
        Some(self.object)
    }
    fn device(&self) -> Option<DeviceId> {
        Some(self.device)
    }
    fn floor_point(&self) -> Option<(FloorId, Point)> {
        None
    }
}

/// Indexes a sealed section carries, built exactly once at seal time.
/// There is no time index: a sealed section's rows are stored physically
/// in `(t, seq)` order, so time windows are contiguous sub-slices.
struct SectionIndex {
    /// Row positions per object, ascending — because rows are
    /// `(t, seq)`-sorted, each list is the object's trace in trace order.
    by_object: HashMap<ObjectId, Vec<u32>>,
    by_device: HashMap<DeviceId, Vec<u32>>,
    /// Per-floor grid over point-located rows (trajectory table only).
    spatial: HashMap<FloorId, GridIndex>,
}

/// One run's rows inside a segment — the in-memory mirror of the v2 wire
/// format's per-run section. `rows` and `seqs` are parallel. Unsealed
/// sections keep arrival order (ascending seqs); sealed sections are
/// physically re-sorted to `(t, seq)` order, which turns the dominant
/// serving query (time windows) into binary search plus sequential copy.
/// Arrival order is never lost — seqs travel with the rows, and the
/// arrival-ordered readers (scan, export) order by seq value.
struct Section<R> {
    run: RunId,
    rows: Vec<R>,
    seqs: Vec<Seq>,
    min_t: Timestamp,
    max_t: Timestamp,
    /// `Some` once sealed; unsealed sections answer by linear scan.
    index: Option<SectionIndex>,
}

impl<R: SegmentRow> Section<R> {
    fn unsealed(run: RunId, rows: Vec<R>, seqs: Vec<Seq>) -> Self {
        let (mut min_t, mut max_t) = (Timestamp(u64::MAX), Timestamp(0));
        for r in &rows {
            min_t = min_t.min(r.time());
            max_t = max_t.max(r.time());
        }
        Section {
            run,
            rows,
            seqs,
            min_t,
            max_t,
            index: None,
        }
    }

    /// Seal a section from arrival-ordered rows: physically re-sort to
    /// `(t, seq)` order, then index.
    fn sealed(run: RunId, rows: Vec<R>, seqs: Vec<Seq>, build_spatial: bool) -> Self {
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (rows[i as usize].time(), seqs[i as usize]));
        let sorted_rows: Vec<R> = order.iter().map(|&i| rows[i as usize]).collect();
        let sorted_seqs: Vec<Seq> = order.iter().map(|&i| seqs[i as usize]).collect();
        Self::from_sorted(run, sorted_rows, sorted_seqs, build_spatial)
    }

    /// A sealed section built by *merging* already-sealed parts — the
    /// compaction path. The dominant cost of sealing is the `(t, seq)`
    /// sort; the parts are already physically sorted, so an `O(n log k)`
    /// k-way merge replaces it and everything else is a linear pass. On
    /// one-core hosts this is the difference between compaction being
    /// invisible to query threads and showing up in their tail latency.
    fn merged(run: RunId, parts: &[&Section<R>], build_spatial: bool) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let total: usize = parts.iter().map(|p| p.rows.len()).sum();
        let mut rows = Vec::with_capacity(total);
        let mut seqs = Vec::with_capacity(total);
        let key = |pi: usize, pos: usize| (parts[pi].rows[pos].time(), parts[pi].seqs[pos]);
        let mut heap: BinaryHeap<Reverse<(Timestamp, Seq, usize, usize)>> = (0..parts.len())
            .filter(|&pi| !parts[pi].rows.is_empty())
            .map(|pi| {
                let (t, s) = key(pi, 0);
                Reverse((t, s, pi, 0))
            })
            .collect();
        while let Some(Reverse((_, s, pi, pos))) = heap.pop() {
            rows.push(parts[pi].rows[pos]);
            seqs.push(s);
            if pos + 1 < parts[pi].rows.len() {
                let (t, s) = key(pi, pos + 1);
                heap.push(Reverse((t, s, pi, pos + 1)));
            }
        }
        Self::from_sorted(run, rows, seqs, build_spatial)
    }

    /// Index rows already in `(t, seq)` order into a sealed section.
    fn from_sorted(run: RunId, rows: Vec<R>, seqs: Vec<Seq>, build_spatial: bool) -> Self {
        debug_assert!(
            (1..rows.len()).all(|i| (rows[i - 1].time(), seqs[i - 1]) < (rows[i].time(), seqs[i]))
        );
        let (min_t, max_t) = match (rows.first(), rows.last()) {
            (Some(first), Some(last)) => (first.time(), last.time()),
            _ => (Timestamp(u64::MAX), Timestamp(0)),
        };
        let mut by_object: HashMap<ObjectId, Vec<u32>> = HashMap::new();
        let mut by_device: HashMap<DeviceId, Vec<u32>> = HashMap::new();
        for (i, r) in rows.iter().enumerate() {
            if let Some(o) = r.object() {
                by_object.entry(o).or_default().push(i as u32);
            }
            if let Some(d) = r.device() {
                by_device.entry(d).or_default().push(i as u32);
            }
        }
        let spatial = if build_spatial {
            build_spatial_grids(&rows)
        } else {
            HashMap::new()
        };
        Section {
            run,
            rows,
            seqs,
            min_t,
            max_t,
            index: Some(SectionIndex {
                by_object,
                by_device,
                spatial,
            }),
        }
    }
}

/// Per-floor grids over point-located rows: one linear insert pass per
/// floor, domain inflated so edge points never fall outside.
fn build_spatial_grids<R: SegmentRow>(rows: &[R]) -> HashMap<FloorId, GridIndex> {
    let mut per_floor: HashMap<FloorId, Vec<(u32, Point)>> = HashMap::new();
    for (i, r) in rows.iter().enumerate() {
        if let Some((floor, p)) = r.floor_point() {
            per_floor.entry(floor).or_default().push((i as u32, p));
        }
    }
    let mut spatial = HashMap::new();
    for (floor, pts) in per_floor {
        let domain =
            Aabb::from_points(&pts.iter().map(|(_, p)| *p).collect::<Vec<_>>()).inflated(1.0);
        let cell = (domain.width().max(domain.height()) / 32.0).max(0.5);
        let mut g = GridIndex::new(domain, cell);
        for (id, p) in pts {
            g.insert_point(id, p);
        }
        spatial.insert(floor, g);
    }
    spatial
}

// ---------------------------------------------------------------------------
// Spill tier: config, errors, segment state
// ---------------------------------------------------------------------------

/// Spill-tier configuration for the segmented backend. `None` spill on
/// [`crate::StorageBackend::Segmented`] keeps today's all-resident
/// behavior; with a config, sealed segments past the memory budget are
/// evicted to `dir` and paged back on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillConfig {
    /// Directory for segment files. Each repository instance creates a
    /// unique subdirectory under it (removed on drop), so concurrent
    /// repositories can share a `dir`.
    pub dir: PathBuf,
    /// Decoded sealed rows the repository may hold in memory — segment
    /// lists and page-in caches together. Unsealed (head) segments are
    /// always resident on top of this.
    pub memory_budget_rows: usize,
    /// Per-table capacity (in segments) of the page-in clock cache.
    pub cache_segments: usize,
}

impl SpillConfig {
    /// A spill config with the default budget and cache sizing.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            memory_budget_rows: 1 << 20,
            cache_segments: 8,
        }
    }

    /// Spill config from the environment, for running existing suites
    /// against the spill tier without touching their code:
    /// `VITA_SPILL_DIR` (required), `VITA_SPILL_BUDGET_ROWS`,
    /// `VITA_SPILL_CACHE_SEGMENTS`. Consulted by
    /// [`SegmentedRepository::new`] / `with_config`; explicit
    /// [`SegmentedRepository::with_spill`] ignores the environment.
    pub fn from_env() -> Option<SpillConfig> {
        let dir = std::env::var_os("VITA_SPILL_DIR")?;
        let mut cfg = SpillConfig::new(PathBuf::from(dir));
        if let Some(n) = std::env::var("VITA_SPILL_BUDGET_ROWS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.memory_budget_rows = n;
        }
        if let Some(n) = std::env::var("VITA_SPILL_CACHE_SEGMENTS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.cache_segments = n;
        }
        Some(cfg)
    }
}

/// Why a spill-tier operation failed. Queries that page in a spilled
/// segment surface this through their `try_` variants; the infallible
/// query methods panic on it (a corrupt or unreadable spill file is an
/// operational failure, never silently wrong rows).
#[derive(Debug)]
pub enum SpillError {
    /// Reading or writing a segment file failed.
    Io(std::io::Error),
    /// A segment file failed validation on page-in (truncated, bit-flipped,
    /// or not a segment file at all).
    Codec(CodecError),
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill io: {e}"),
            SpillError::Codec(e) => write!(f, "spill file corrupt: {e}"),
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io(e) => Some(e),
            SpillError::Codec(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for SpillError {
    fn from(e: std::io::Error) -> Self {
        SpillError::Io(e)
    }
}

impl From<CodecError> for SpillError {
    fn from(e: CodecError) -> Self {
        SpillError::Codec(e)
    }
}

/// The single panic funnel behind the infallible query flavors: every
/// `foo(..)` that has a `try_foo(..)` twin unwraps through
/// [`SpillOk::spill_ok`], so the documented panic-on-unreadable-spill
/// contract lives on exactly one audited line.
trait SpillOk<T> {
    /// Unwrap, panicking with the spill-contract message on `Err`.
    fn spill_ok(self) -> T;
}

impl<T> SpillOk<T> for Result<T, SpillError> {
    fn spill_ok(self) -> T {
        // audit: allow(R4) documented contract: infallible query flavors panic on unreadable spill files rather than return wrong rows; use the try_ twins to degrade gracefully
        self.expect("spilled segment unreadable")
    }
}

/// Write `bytes` to `path` crash-atomically: a temp file in the same
/// directory, then rename. A crash mid-write leaves a `.tmp` orphan,
/// never a torn file under the final name.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("vita.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

static NEXT_SEGMENT_ID: AtomicU64 = AtomicU64::new(1);

/// Planning metadata for one section, retained on the segment whether its
/// rows are resident or spilled — run/time/floor pruning never does IO.
#[derive(Debug, Clone)]
struct SectionMeta {
    run: RunId,
    rows: usize,
    min_t: Timestamp,
    max_t: Timestamp,
    /// Floors of point-located rows, sorted. `None` on tables that never
    /// answer spatial queries (no pruning possible or needed).
    floors: Option<Vec<FloorId>>,
}

impl SectionMeta {
    fn of<R: SegmentRow>(sec: &Section<R>, track_floors: bool) -> Self {
        let floors = track_floors.then(|| {
            let mut floors: Vec<FloorId> = sec
                .rows
                .iter()
                .filter_map(|r| r.floor_point().map(|(f, _)| f))
                .collect();
            floors.sort_unstable();
            floors.dedup();
            floors
        });
        SectionMeta {
            run: sec.run,
            rows: sec.rows.len(),
            min_t: sec.min_t,
            max_t: sec.max_t,
            floors,
        }
    }
}

/// Where a segment's rows live.
enum SegmentState<R> {
    /// Decoded rows (and indexes) in memory.
    Resident(Vec<Section<R>>),
    /// Rows in a segment file; meta stays on the [`Segment`].
    Spilled { path: PathBuf },
}

/// An immutable group of per-run sections. Unsealed segments hold exactly
/// one section (the accepted batch) and are always resident; sealed
/// segments hold one section per run, each indexed, and may be spilled.
/// The `id` is stable across the resident → spilled republish, so cache
/// entries and spill files stay keyed to the same logical segment.
struct Segment<R> {
    id: u64,
    len: usize,
    sealed: bool,
    /// One entry per section, in section order (ascending run for sealed
    /// segments — the segment-file section order).
    meta: Vec<SectionMeta>,
    /// `(min, max)` seq over all rows; `(0, 0)` for an empty segment.
    seq_range: (Seq, Seq),
    /// Tick of the last query that touched this segment; the spiller
    /// evicts coldest-first. Monotone ticks come from the repository's
    /// touch counter.
    last_touch: AtomicU64,
    state: SegmentState<R>,
}

impl<R: SegmentRow> Segment<R> {
    fn resident(sections: Vec<Section<R>>, sealed: bool, track_floors: bool) -> Self {
        let len = sections.iter().map(|s| s.rows.len()).sum();
        let meta = sections
            .iter()
            .map(|s| SectionMeta::of(s, track_floors))
            .collect();
        let seqs = sections.iter().flat_map(|s| s.seqs.iter().copied());
        let seq_range = seqs
            .clone()
            .min()
            .map_or((0, 0), |min| (min, seqs.max().expect("nonempty"))); // audit: allow(R4) invariant: a min implies the seq iterator is non-empty, so max exists
        Segment {
            id: NEXT_SEGMENT_ID.fetch_add(1, Ordering::Relaxed),
            len,
            sealed,
            meta,
            seq_range,
            last_touch: AtomicU64::new(0),
            state: SegmentState::Resident(sections),
        }
    }

    /// The spilled twin published in place of a resident segment: same
    /// id, meta, and heat — only the rows moved to disk.
    fn spilled_twin(&self, path: PathBuf) -> Self {
        debug_assert!(self.sealed, "only sealed segments spill");
        Segment {
            id: self.id,
            len: self.len,
            sealed: true,
            meta: self.meta.clone(),
            seq_range: self.seq_range,
            last_touch: AtomicU64::new(self.last_touch.load(Ordering::Relaxed)),
            state: SegmentState::Spilled { path },
        }
    }

    fn resident_sections(&self) -> Option<&[Section<R>]> {
        match &self.state {
            SegmentState::Resident(s) => Some(s),
            SegmentState::Spilled { .. } => None,
        }
    }

    fn is_spilled(&self) -> bool {
        matches!(self.state, SegmentState::Spilled { .. })
    }

    fn spill_path(&self) -> Option<&Path> {
        match &self.state {
            SegmentState::Spilled { path } => Some(path),
            SegmentState::Resident(_) => None,
        }
    }
}

/// The decoded rows of one spilled segment — what the page-in cache
/// holds. Sections are rebuilt deterministically from the file
/// (`(t, seq)` order is stored, indexes are a function of it), so a
/// paged-in segment answers bit-identically to its resident original.
struct SegmentData<R> {
    sections: Vec<Section<R>>,
}

/// The frozen state a reader pins: the table's current segment list.
struct TableSnapshot<R> {
    segments: Vec<Arc<Segment<R>>>,
    len: usize,
}

impl<R> Default for TableSnapshot<R> {
    fn default() -> Self {
        TableSnapshot {
            segments: Vec::new(),
            len: 0,
        }
    }
}

/// Merge sections (in segment-list order — seq order per run) into one
/// sealed segment's sections: rows regrouped into one section per run
/// (wire-format shape), every section indexed.
fn build_sealed<R: SegmentRow>(sections: Vec<&Section<R>>, build_spatial: bool) -> Vec<Section<R>> {
    let mut per_run: BTreeMap<RunId, Vec<&Section<R>>> = BTreeMap::new();
    for sec in sections {
        per_run.entry(sec.run).or_default().push(sec);
    }
    per_run
        .into_iter()
        .map(|(run, parts)| {
            if parts.iter().all(|p| p.index.is_some()) {
                // Compaction: every part is sealed, merge their indexes.
                Section::merged(run, &parts, build_spatial)
            } else {
                // Sealing: fresh batches are arrival-ordered, sort from
                // scratch.
                let total: usize = parts.iter().map(|p| p.rows.len()).sum();
                let mut rows = Vec::with_capacity(total);
                let mut seqs = Vec::with_capacity(total);
                for p in parts {
                    rows.extend_from_slice(&p.rows);
                    seqs.extend_from_slice(&p.seqs);
                }
                debug_assert!(seqs.windows(2).all(|w| w[0] < w[1]));
                Section::sealed(run, rows, seqs, build_spatial)
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Queries over a pinned snapshot
// ---------------------------------------------------------------------------

impl<R: SegmentRow> TableSnapshot<R> {
    /// Row count under `scope`, answered from per-section meta — no row
    /// access, so it never pages anything in.
    fn len(&self, scope: RunScope) -> usize {
        match scope.run() {
            None => self.len,
            Some(r) => self
                .segments
                .iter()
                .flat_map(|seg| seg.meta.iter())
                .filter(|m| m.run == r)
                .map(|m| m.rows)
                .sum(),
        }
    }

    fn run_ids(&self) -> Vec<RunId> {
        let mut runs: Vec<RunId> = self
            .segments
            .iter()
            .flat_map(|seg| seg.meta.iter())
            .map(|m| m.run)
            .collect();
        runs.sort_unstable();
        runs.dedup();
        runs
    }
}

// The data queries are free functions over the sections a plan already
// selected — resident references and paged-in decodes alike. Planning
// happens against per-section meta in [`SegTable::try_query`], so these
// only ever see sections that passed the run-scope and meta pruning.
// Every output order is keyed on `(t, seq)` or seq alone, and seqs are
// unique per table, so no answer depends on section input order.

/// All rows in arrival (seq) order — exactly the single repository's
/// insertion order.
fn scan_sections<R: SegmentRow>(sections: &[&Section<R>]) -> Vec<R> {
    let total: usize = sections.iter().map(|s| s.rows.len()).sum();
    let mut out: Vec<(Seq, R)> = Vec::with_capacity(total);
    for sec in sections {
        out.extend(sec.seqs.iter().copied().zip(sec.rows.iter().copied()));
    }
    out.sort_unstable_by_key(|(s, _)| *s);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Rows in the half-open window `from <= t < to`, ordered by `(t, seq)`
/// — time order with ties in arrival order, the single-table contract.
///
/// Sealed sections are physically `(t, seq)`-sorted, so each one
/// contributes a *contiguous sub-slice* found by binary search; the
/// global order comes from a k-way merge of those slices, sequential
/// memory all the way. Windows routinely span a large fraction of the
/// table, and on the serving path this query was the entire p99, so it
/// gets the zero-gather layout.
fn time_window_sections<R: SegmentRow>(
    sections: &[&Section<R>],
    from: Timestamp,
    to: Timestamp,
) -> Vec<R> {
    // Unsealed sections are arrival-ordered: gather their window rows
    // into owned sorted runs first (stable sort on time keeps seq order
    // among ties), then merge those alongside the sealed slices.
    let mut owned: Vec<(Vec<R>, Vec<Seq>)> = Vec::new();
    for sec in sections {
        if sec.index.is_none() {
            let mut ids: Vec<u32> = (0..sec.rows.len() as u32)
                .filter(|&i| {
                    let t = sec.rows[i as usize].time();
                    t >= from && t < to
                })
                .collect();
            ids.sort_by_key(|&i| sec.rows[i as usize].time());
            owned.push((
                ids.iter().map(|&i| sec.rows[i as usize]).collect(),
                ids.iter().map(|&i| sec.seqs[i as usize]).collect(),
            ));
        }
    }
    let mut inputs: Vec<(&[R], &[Seq])> = Vec::with_capacity(sections.len());
    let mut owned_it = owned.iter();
    for sec in sections {
        match &sec.index {
            Some(_) => {
                let lo = sec.rows.partition_point(|r| r.time() < from);
                let hi = sec.rows.partition_point(|r| r.time() < to);
                if lo < hi {
                    inputs.push((&sec.rows[lo..hi], &sec.seqs[lo..hi]));
                }
            }
            None => {
                let (rows, seqs) = owned_it.next().expect("one owned run per unsealed"); // audit: allow(R4) invariant: one owned-run entry was built per unsealed section just above
                if !rows.is_empty() {
                    inputs.push((&rows[..], &seqs[..]));
                }
            }
        }
    }
    merge_sorted_slices(inputs)
}

/// Rows of object `o` ordered by `(t, seq)`.
fn of_object_sections<R: SegmentRow>(sections: &[&Section<R>], o: ObjectId) -> Vec<R> {
    let mut out: Vec<(Timestamp, Seq, R)> = Vec::new();
    for sec in sections {
        match &sec.index {
            Some(ix) => {
                if let Some(ids) = ix.by_object.get(&o) {
                    out.extend(ids.iter().map(|&i| {
                        let r = sec.rows[i as usize];
                        (r.time(), sec.seqs[i as usize], r)
                    }));
                }
            }
            None => out.extend(
                sec.rows
                    .iter()
                    .zip(&sec.seqs)
                    .filter(|(r, _)| r.object() == Some(o))
                    .map(|(&r, &s)| (r.time(), s, r)),
            ),
        }
    }
    out.sort_unstable_by_key(|(t, s, _)| (*t, *s));
    out.into_iter().map(|(_, _, r)| r).collect()
}

/// Rows through device `d` ordered by `(t, seq)`.
fn of_device_sections<R: SegmentRow>(sections: &[&Section<R>], d: DeviceId) -> Vec<R> {
    let mut out: Vec<(Timestamp, Seq, R)> = Vec::new();
    for sec in sections {
        match &sec.index {
            Some(ix) => {
                if let Some(ids) = ix.by_device.get(&d) {
                    out.extend(ids.iter().map(|&i| {
                        let r = sec.rows[i as usize];
                        (r.time(), sec.seqs[i as usize], r)
                    }));
                }
            }
            None => out.extend(
                sec.rows
                    .iter()
                    .zip(&sec.seqs)
                    .filter(|(r, _)| r.device() == Some(d))
                    .map(|(&r, &s)| (r.time(), s, r)),
            ),
        }
    }
    out.sort_unstable_by_key(|(t, s, _)| (*t, *s));
    out.into_iter().map(|(_, _, r)| r).collect()
}

/// Latest row at or before `at` per object, sorted by object id; among
/// an object's rows sharing the latest timestamp the highest seq (last
/// arrived) wins — the single-table snapshot contract.
///
/// Sealed sections resolve one candidate per object by binary search:
/// `by_object` lists are position-ascending and rows are physically
/// `(t, seq)`-sorted, so an object's list is its trace in trace order
/// and the latest row at or before `at` is the last id before the
/// partition point. Only that one candidate touches the cross-section
/// map — on big tables this query used to walk most rows.
fn snapshot_at_sections<R: SegmentRow>(sections: &[&Section<R>], at: Timestamp) -> Vec<R> {
    fn upd<R: SegmentRow>(
        latest: &mut HashMap<ObjectId, (Timestamp, Seq, R)>,
        o: ObjectId,
        t: Timestamp,
        s: Seq,
        r: R,
    ) {
        match latest.get(&o) {
            Some((bt, bs, _)) if (*bt, *bs) > (t, s) => {}
            _ => {
                latest.insert(o, (t, s, r));
            }
        }
    }
    let mut latest: HashMap<ObjectId, (Timestamp, Seq, R)> = HashMap::new();
    for sec in sections {
        if sec.min_t > at {
            continue;
        }
        match &sec.index {
            Some(ix) => {
                let whole = sec.max_t <= at;
                for (&o, ids) in &ix.by_object {
                    let cut = if whole {
                        ids.len()
                    } else {
                        ids.partition_point(|&i| sec.rows[i as usize].time() <= at)
                    };
                    if let Some(&i) = ids[..cut].last() {
                        let (t, s) = (sec.rows[i as usize].time(), sec.seqs[i as usize]);
                        upd(&mut latest, o, t, s, sec.rows[i as usize]);
                    }
                }
            }
            None => {
                for (r, &s) in sec.rows.iter().zip(&sec.seqs) {
                    if r.time() <= at {
                        if let Some(o) = r.object() {
                            upd(&mut latest, o, r.time(), s, *r);
                        }
                    }
                }
            }
        }
    }
    let mut v: Vec<R> = latest.into_values().map(|(_, _, r)| r).collect();
    v.sort_unstable_by_key(|r| r.object());
    v
}

/// Point rows on `floor` inside `query`, in arrival (seq) order.
fn range_query_sections<R: SegmentRow>(
    sections: &[&Section<R>],
    floor: FloorId,
    query: &Aabb,
) -> Vec<R> {
    let mut out: Vec<(Seq, R)> = Vec::new();
    for sec in sections {
        match &sec.index {
            Some(ix) => {
                if let Some(g) = ix.spatial.get(&floor) {
                    for i in g.query_bbox(query) {
                        let r = sec.rows[i as usize];
                        if matches!(r.floor_point(), Some((_, p)) if query.contains_point(p)) {
                            out.push((sec.seqs[i as usize], r));
                        }
                    }
                }
            }
            None => out.extend(
                sec.rows
                    .iter()
                    .zip(&sec.seqs)
                    .filter(|(r, _)| {
                        matches!(r.floor_point(),
                                 Some((f, p)) if f == floor && query.contains_point(p))
                    })
                    .map(|(&r, &s)| (s, r)),
            ),
        }
    }
    out.sort_unstable_by_key(|(s, _)| *s);
    out.into_iter().map(|(_, r)| r).collect()
}

/// The k nearest point rows to `p` on `floor`, nearest first; ties by
/// seq. Sealed sections run the same expanding-radius grid search as
/// the locked tables (with the same out-of-domain radius anchor), so
/// the distance multiset matches the other backends exactly.
fn knn_sections<R: SegmentRow>(
    sections: &[&Section<R>],
    floor: FloorId,
    p: Point,
    k: usize,
) -> Vec<(R, f64)> {
    if k == 0 {
        return Vec::new();
    }
    let mut scored: Vec<(f64, Seq, R)> = Vec::new();
    for sec in sections {
        match &sec.index {
            Some(ix) => {
                let Some(g) = ix.spatial.get(&floor) else {
                    continue;
                };
                let dom = g.domain();
                let max_radius = dom.dist_to_point(p) + dom.width() + dom.height() + 1.0;
                let mut radius = g.cell_size().max(f64::MIN_POSITIVE);
                let mut candidates: Vec<u32>;
                loop {
                    candidates = g.query_radius(p, radius.min(max_radius));
                    if candidates.len() >= k || radius >= max_radius {
                        break;
                    }
                    radius *= 2.0;
                }
                // A per-section top-k is enough: the global top-k under
                // the (dist, seq) total order is the top-k of the
                // per-section top-ks.
                let mut local: Vec<(f64, Seq, R)> = candidates
                    .into_iter()
                    .filter_map(|i| {
                        let r = sec.rows[i as usize];
                        r.floor_point()
                            .map(|(_, q)| (q.dist(p), sec.seqs[i as usize], r))
                    })
                    .collect();
                local.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                local.truncate(k);
                scored.extend(local);
            }
            None => scored.extend(sec.rows.iter().zip(&sec.seqs).filter_map(|(r, &s)| {
                match r.floor_point() {
                    Some((f, q)) if f == floor => Some((q.dist(p), s, *r)),
                    _ => None,
                }
            })),
        }
    }
    scored.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scored.truncate(k);
    scored.into_iter().map(|(d, _, r)| (r, d)).collect()
}

/// Records whose closed detection period `[ts, te]` intersects the
/// half-open window `[from, to)`, in arrival (seq) order — the
/// [`crate::table::ProximityTable::overlapping`] contract.
fn overlapping_sections(
    sections: &[&Section<ProximityRecord>],
    from: Timestamp,
    to: Timestamp,
) -> Vec<ProximityRecord> {
    let mut out: Vec<(Seq, ProximityRecord)> = Vec::new();
    for sec in sections {
        out.extend(
            sec.rows
                .iter()
                .zip(&sec.seqs)
                .filter(|(r, _)| r.ts < to && r.te >= from)
                .map(|(&r, &s)| (s, r)),
        );
    }
    out.sort_unstable_by_key(|(s, _)| *s);
    out.into_iter().map(|(_, r)| r).collect()
}

/// Merge `(rows, seqs)` slice pairs — each already `(t, seq)`-sorted —
/// into one `(t, seq)`-ordered row vector. A lone input is a straight
/// `memcpy`. A handful of inputs (the common case: one compacted segment
/// holds one section per run) merge by a linear min-pick over the cursors
/// — cheaper than a heap at small k because the cursors stay in registers
/// and there is no sift traffic. Beyond that, a min-heap gives
/// `O(n log k)`. All access is sequential: the inputs are contiguous,
/// there is no id-list indirection anywhere.
fn merge_sorted_slices<R: SegmentRow>(inputs: Vec<(&[R], &[Seq])>) -> Vec<R> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    const LINEAR_MAX: usize = 8;
    let total: usize = inputs.iter().map(|(rows, _)| rows.len()).sum();
    let mut out = Vec::with_capacity(total);
    match inputs.len() {
        0 => {}
        1 => out.extend_from_slice(inputs[0].0),
        k if k <= LINEAR_MAX => {
            // (next key, cursor, input) per input; exhausted inputs drop
            // out.
            let mut cursors: Vec<((Timestamp, Seq), usize, usize)> = inputs
                .iter()
                .enumerate()
                .map(|(li, (rows, seqs))| ((rows[0].time(), seqs[0]), 0, li))
                .collect();
            while let Some(win) = (0..cursors.len()).min_by_key(|&c| cursors[c].0) {
                let (_, pos, li) = cursors[win];
                let (rows, seqs) = inputs[li];
                out.push(rows[pos]);
                if pos + 1 < rows.len() {
                    cursors[win] = ((rows[pos + 1].time(), seqs[pos + 1]), pos + 1, li);
                } else {
                    cursors.swap_remove(win);
                }
            }
        }
        _ => {
            let mut heap: BinaryHeap<Reverse<(Timestamp, Seq, usize, usize)>> = inputs
                .iter()
                .enumerate()
                .map(|(li, (rows, seqs))| Reverse((rows[0].time(), seqs[0], li, 0)))
                .collect();
            while let Some(Reverse((_, _, li, pos))) = heap.pop() {
                let (rows, seqs) = inputs[li];
                out.push(rows[pos]);
                if pos + 1 < rows.len() {
                    heap.push(Reverse((rows[pos + 1].time(), seqs[pos + 1], li, pos + 1)));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The writable table: append, seal, compact, spill
// ---------------------------------------------------------------------------

/// Spill state shared by the four tables and the maintenance path.
struct SpillShared {
    /// Effective config: `dir` is this instance's unique subdirectory
    /// (created at build time, removed on drop).
    cfg: SpillConfig,
    /// The config as the caller passed it, for
    /// [`SegmentedRepository::spill_config`].
    original: SpillConfig,
    /// Monotone heat clock: queries stamp the segments their plan
    /// touches, and the spiller evicts the coldest stamp first.
    touch: AtomicU64,
    spills: AtomicU64,
    page_ins: AtomicU64,
    writer_stalls: AtomicU64,
    /// Serializes budget enforcement (the sealer tick and stalled
    /// writers), so concurrent enforcers never double-spill.
    enforce_lock: Mutex<()>,
}

/// A page-in cache entry; `data` is shared with in-flight queries, so
/// eviction never invalidates a reader.
struct CacheEntry<R> {
    id: u64,
    rows: usize,
    referenced: bool,
    data: Arc<SegmentData<R>>,
}

/// One table's cache of decoded spilled segments: capacity-bounded,
/// second-chance (clock) replacement. Bounded both in entries
/// (`cache_segments`) and in rows (the room the memory budget leaves).
struct ClockCache<R> {
    entries: Vec<CacheEntry<R>>,
    hand: usize,
}

impl<R> Default for ClockCache<R> {
    fn default() -> Self {
        ClockCache {
            entries: Vec::new(),
            hand: 0,
        }
    }
}

impl<R> ClockCache<R> {
    fn rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows).sum()
    }

    fn get(&mut self, id: u64) -> Option<Arc<SegmentData<R>>> {
        let e = self.entries.iter_mut().find(|e| e.id == id)?;
        e.referenced = true;
        Some(Arc::clone(&e.data))
    }

    /// Insert (or refresh) `id`, then evict second-chance victims while
    /// over either cap. The entry just inserted is exempt: the cache
    /// must hold at least the segment the current query is reading.
    fn insert(
        &mut self,
        id: u64,
        rows: usize,
        data: Arc<SegmentData<R>>,
        cap_segments: usize,
        cap_rows: usize,
    ) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.referenced = true;
            return;
        }
        self.entries.push(CacheEntry {
            id,
            rows,
            referenced: true,
            data,
        });
        while self.entries.len() > 1
            && (self.entries.len() > cap_segments.max(1) || self.rows() > cap_rows)
        {
            if self.evict_one_except(Some(id)).is_none() {
                break;
            }
        }
    }

    /// Evict one clock victim, skipping `keep`; returns the rows freed.
    fn evict_one_except(&mut self, keep: Option<u64>) -> Option<usize> {
        if !self.entries.iter().any(|e| Some(e.id) != keep) {
            return None;
        }
        loop {
            if self.hand >= self.entries.len() {
                self.hand = 0;
            }
            if Some(self.entries[self.hand].id) == keep {
                self.hand += 1;
                continue;
            }
            if self.entries[self.hand].referenced {
                self.entries[self.hand].referenced = false;
                self.hand += 1;
                continue;
            }
            return Some(self.entries.swap_remove(self.hand).rows);
        }
    }

    fn remove(&mut self, id: u64) {
        if let Some(i) = self.entries.iter().position(|e| e.id == id) {
            self.entries.swap_remove(i);
        }
    }
}

/// Current segment inventory of one table, for [`SegmentStats`].
#[derive(Default)]
struct TableInventory {
    sealed: usize,
    unsealed: usize,
    spilled_segments: usize,
    spilled_rows: usize,
    sealed_resident_rows: usize,
    head_rows: usize,
}

/// Encode a sealed segment's sections into its self-describing file
/// bytes (rows and seqs travel together — see the codec's segment
/// framing).
fn encode_sections<R: SegmentRow>(sections: &[Section<R>]) -> Bytes {
    let parts: Vec<(RunId, &[R], &[Seq])> = sections
        .iter()
        .map(|s| (s.run, s.rows.as_slice(), s.seqs.as_slice()))
        .collect();
    encode_segment(&parts)
}

/// Under forced compaction with a spill cap: the first run of ≥ 2
/// adjacent sealed segments whose merged size fits `cap`. Oversized
/// loners are skipped — they already sit at the spill grain, and a
/// merge beyond it could never be resident (or cached) again without
/// blowing the memory ceiling on page-in.
fn pick_capped_group<R>(prefix: &[Arc<Segment<R>>], cap: usize) -> Option<Vec<Arc<Segment<R>>>> {
    let mut start = 0;
    while start + 1 < prefix.len() {
        let mut rows = prefix[start].len;
        let mut end = start + 1;
        while end < prefix.len() && rows + prefix[end].len <= cap {
            rows += prefix[end].len;
            end += 1;
        }
        if end - start >= 2 {
            return Some(prefix[start..end].to_vec());
        }
        start = end;
    }
    None
}

/// One product table of the segmented backend.
struct SegTable<R: SegmentRow> {
    cell: SnapshotCell<TableSnapshot<R>>,
    /// Serializes publishes (appends and seal/compact swaps) and carries
    /// the next sequence number. Held only to clone a segment-pointer list
    /// and swap the snapshot — never while rows are copied or indexed.
    writer: Mutex<Seq>,
    /// Build per-floor grids at seal time (trajectory table only — the
    /// other tables answer no spatial queries).
    build_spatial: bool,
    /// Spill tier shared state; `None` keeps the table all-resident.
    spill: Option<Arc<SpillShared>>,
    /// Decoded spilled segments, shared with in-flight queries.
    cache: Mutex<ClockCache<R>>,
}

impl<R: SegmentRow> SegTable<R> {
    fn new(build_spatial: bool, spill: Option<Arc<SpillShared>>) -> Self {
        SegTable {
            cell: SnapshotCell::new(TableSnapshot::default()),
            writer: Mutex::new(0),
            build_spatial,
            spill,
            cache: Mutex::new(ClockCache::default()),
        }
    }

    fn pin(&self) -> Arc<TableSnapshot<R>> {
        self.cell.pin()
    }

    /// Accept one batch: stamp seqs, wrap it as an unsealed segment, and
    /// publish a snapshot with it appended. O(#segments) pointer copies
    /// plus the batch move — no index work on the ingest path. Returns the
    /// number of unsealed rows now pending, for seal scheduling.
    fn append(&self, run: RunId, rows: Vec<R>) -> (usize, usize) {
        if rows.is_empty() {
            return (0, 0);
        }
        let mut next_seq = self.writer.lock();
        let base = *next_seq;
        *next_seq += rows.len() as Seq;
        let seqs: Vec<Seq> = (base..*next_seq).collect();
        let len = rows.len();
        // Heads are never pruned or spilled, so skip the floor-meta scan
        // on the ingest path (`floors: None` means "never prune").
        let seg = Arc::new(Segment::resident(
            vec![Section::unsealed(run, rows, seqs)],
            false,
            false,
        ));
        let cur = self.cell.latest();
        let mut segments = Vec::with_capacity(cur.segments.len() + 1);
        segments.extend(cur.segments.iter().cloned());
        segments.push(seg);
        let minis = segments.iter().rev().take_while(|s| !s.sealed).count();
        let pending = segments.iter().rev().take(minis).map(|s| s.len).sum();
        self.cell.publish(Arc::new(TableSnapshot {
            segments,
            len: cur.len + len,
        }));
        (pending, minis)
    }

    /// Swap a contiguous group of segments for its merged replacement, if
    /// the group is still present unchanged (identity-compared). Only the
    /// sealer removes segments, so a `false` means another maintenance
    /// pass got there first — the caller just drops its build.
    fn try_replace(&self, consumed: &[Arc<Segment<R>>], replacement: Segment<R>) -> bool {
        if consumed.is_empty() {
            return false;
        }
        let guard = self.writer.lock();
        let cur = self.cell.latest();
        let Some(start) = cur
            .segments
            .iter()
            .position(|s| Arc::ptr_eq(s, &consumed[0]))
        else {
            return false;
        };
        if cur.segments.len() < start + consumed.len()
            || !cur.segments[start..start + consumed.len()]
                .iter()
                .zip(consumed)
                .all(|(a, b)| Arc::ptr_eq(a, b))
        {
            return false;
        }
        let mut segments = Vec::with_capacity(cur.segments.len() + 1 - consumed.len());
        segments.extend(cur.segments[..start].iter().cloned());
        segments.push(Arc::new(replacement));
        segments.extend(cur.segments[start + consumed.len()..].iter().cloned());
        self.cell.publish(Arc::new(TableSnapshot {
            segments,
            len: cur.len,
        }));
        drop(guard);
        true
    }

    /// Publish `replacement` for `consumed`, spilling it directly when
    /// the repository's decoded sealed rows would overshoot the budget
    /// (`global_decoded` is the repository-wide gauge *before* the
    /// swap). A replacement that never publishes (another pass won the
    /// race) takes its freshly written file with it; consumed spilled
    /// inputs drop their cache entries, but their files stay on disk
    /// until the repository drops — an already-pinned snapshot may still
    /// page them in.
    fn replace_maybe_spilled(
        &self,
        consumed: &[Arc<Segment<R>>],
        replacement: Segment<R>,
        global_decoded: usize,
    ) -> bool {
        let spill_direct = match &self.spill {
            Some(sh) if replacement.sealed && replacement.len > 0 => {
                let consumed_decoded: usize = consumed
                    .iter()
                    .filter(|s| s.sealed && !s.is_spilled())
                    .map(|s| s.len)
                    .sum();
                global_decoded.saturating_sub(consumed_decoded) + replacement.len
                    > sh.cfg.memory_budget_rows
            }
            _ => false,
        };
        let (replacement, written) = if spill_direct {
            let sh = self.spill.as_ref().expect("direct spill requires config"); // audit: allow(R4) invariant: spill_direct is only called on budget-enforcing repositories
            let sections = replacement
                .resident_sections()
                .expect("fresh replacement is resident"); // audit: allow(R4) invariant: the replacement segment was rebuilt resident two lines up
            let bytes = encode_sections(sections);
            let path = sh.cfg.dir.join(format!("seg-{}.vita", replacement.id));
            write_atomic(&path, &bytes).expect("segment spill failed"); // audit: allow(R4) operational: a failed spill write leaves the writer no correct continuation
            (replacement.spilled_twin(path.clone()), Some(path))
        } else {
            (replacement, None)
        };
        let ok = self.try_replace(consumed, replacement);
        if ok {
            if let Some(sh) = &self.spill {
                if written.is_some() {
                    sh.spills.fetch_add(1, Ordering::Relaxed);
                }
                if consumed.iter().any(|s| s.is_spilled()) {
                    let mut cache = self.cache.lock();
                    for seg in consumed.iter().filter(|s| s.is_spilled()) {
                        cache.remove(seg.id);
                    }
                }
            }
        } else if let Some(path) = written {
            let _ = std::fs::remove_file(path);
        }
        ok
    }

    /// Seal the trailing unsealed suffix when it is past the thresholds
    /// (always, under `force`). Called by the background sealer on its
    /// tick and by writers whose append crossed `seal_rows` — see
    /// [`SegInner::append_and_seal`].
    fn seal_pass(&self, cfg: &SegmentConfig, force: bool, global_decoded: usize) -> bool {
        let snap = self.cell.latest();
        let first_unsealed = snap
            .segments
            .iter()
            .rposition(|s| s.sealed)
            .map_or(0, |i| i + 1);
        let minis = &snap.segments[first_unsealed..];
        if minis.is_empty() {
            return false;
        }
        let rows: usize = minis.iter().map(|s| s.len).sum();
        if !(force || minis.len() >= cfg.seal_segments || rows >= cfg.seal_rows) {
            return false;
        }
        let parts: Vec<&Section<R>> = minis
            .iter()
            .flat_map(|s| {
                s.resident_sections()
                    .expect("unsealed segments are resident") // audit: allow(R4) invariant: unsealed segments are never spilled, so they are resident
            })
            .collect();
        let merged = build_sealed(parts, self.build_spatial);
        let replacement = Segment::resident(merged, true, self.build_spatial);
        self.replace_maybe_spilled(minis, replacement, global_decoded)
    }

    /// Compact the sealed prefix: fold at most one size-tiered run of
    /// small adjacent segments (the whole prefix under `force`).
    ///
    /// Background compaction is **size-tiered and budget-bounded**: one
    /// pass folds at most one adjacent run of *small* sealed segments whose
    /// merged size fits a row budget of `compact_segments × seal_rows`, and
    /// leaves graduated (half-budget-or-larger) segments alone. Every row
    /// is therefore merged O(log) times and no single pass builds more than
    /// one budget's worth of indexes — re-merging the whole prefix on every
    /// pass would be quadratic, and on small hosts that CPU draw evicts the
    /// query threads and shows up directly as read tail latency. Under
    /// `force` the whole sealed prefix folds into one segment — except with
    /// a spill tier, where groups are additionally capped so no segment
    /// outgrows the spill grain. Spilled inputs are paged in through the
    /// table's cache; a page-in failure skips the pass (queries surface
    /// the error, compaction never panics over it).
    fn compact_pass(&self, cfg: &SegmentConfig, force: bool, global_decoded: usize) -> bool {
        let snap = self.cell.latest();
        let prefix = snap.segments.iter().take_while(|s| s.sealed).count();
        let max_group = self.spill.as_ref().map(|sh| {
            (sh.cfg.memory_budget_rows / 2)
                .max(cfg.seal_rows.saturating_mul(2))
                .max(2)
        });
        let group: Option<Vec<Arc<Segment<R>>>> = if force {
            match max_group {
                None => (prefix >= 2).then(|| snap.segments[..prefix].to_vec()),
                Some(cap) => pick_capped_group(&snap.segments[..prefix], cap),
            }
        } else {
            let mut budget = cfg
                .compact_segments
                .max(2)
                .saturating_mul(cfg.seal_rows)
                .max(2);
            if let Some(cap) = max_group {
                budget = budget.min(cap);
            }
            let small = (budget / 2).max(1);
            let min_run = cfg.compact_segments.max(2);
            let mut found = None;
            let mut start = 0;
            let mut rows = 0usize;
            for i in 0..=prefix {
                if i < prefix && snap.segments[i].len < small {
                    if rows + snap.segments[i].len <= budget {
                        rows += snap.segments[i].len;
                        continue;
                    }
                    // Budget-full run: its merge graduates past `small`
                    // immediately, so any length ≥ 2 is a productive fold.
                    if i - start >= 2 {
                        found = Some(snap.segments[start..i].to_vec());
                        break;
                    }
                    start = i;
                    rows = snap.segments[i].len;
                    continue;
                }
                // Run closed by a graduated segment or the prefix end: only
                // fold full-length runs, otherwise the trailing few smalls
                // would re-merge on every pass and each row would be copied
                // O(budget / seal size) times instead of O(1).
                if i - start >= min_run {
                    found = Some(snap.segments[start..i].to_vec());
                    break;
                }
                start = i + 1;
                rows = 0;
            }
            found
        };
        let Some(group) = group else {
            return false;
        };
        self.compact_group(&group, global_decoded).unwrap_or(false)
    }

    /// Merge `group` (paging spilled inputs in) and publish the result.
    fn compact_group(
        &self,
        group: &[Arc<Segment<R>>],
        global_decoded: usize,
    ) -> Result<bool, SpillError> {
        let mut holders: Vec<Arc<SegmentData<R>>> = Vec::new();
        for seg in group {
            if seg.is_spilled() {
                // Compaction page-ins bypass the row cap: the merge needs
                // all inputs at once, and the output replaces them
                // immediately; the enforcement pass right after the round
                // trims any overshoot.
                holders.push(self.page_in(seg, usize::MAX)?);
            }
        }
        let mut holder_it = holders.iter();
        let mut sections: Vec<&Section<R>> = Vec::new();
        for seg in group {
            match seg.resident_sections() {
                Some(s) => sections.extend(s.iter()),
                None => sections.extend(
                    holder_it
                        .next()
                        .expect("one holder per spilled input") // audit: allow(R4) invariant: compaction registered one cache holder per spilled input
                        .sections
                        .iter(),
                ),
            }
        }
        let merged = build_sealed(sections, self.build_spatial);
        let replacement = Segment::resident(merged, true, self.build_spatial);
        Ok(self.replace_maybe_spilled(group, replacement, global_decoded))
    }

    /// Answer one query against a pinned snapshot: plan from per-section
    /// meta (`keep` plus run scoping — no IO), page in the spilled
    /// segments the plan touches, and hand every selected section to
    /// `f`. `cache_rows_cap` bounds this table's cache after the
    /// page-ins — the caller computes the room the global budget leaves.
    fn try_query<T>(
        &self,
        scope: RunScope,
        cache_rows_cap: usize,
        keep: impl Fn(&SectionMeta) -> bool,
        f: impl FnOnce(&[&Section<R>]) -> T,
    ) -> Result<T, SpillError> {
        let snap = self.cell.pin();
        let run = scope.run();
        let mut picks: Vec<(usize, Vec<usize>, Option<usize>)> = Vec::new();
        let mut holders: Vec<Arc<SegmentData<R>>> = Vec::new();
        for (si, seg) in snap.segments.iter().enumerate() {
            let wanted: Vec<usize> = seg
                .meta
                .iter()
                .enumerate()
                .filter(|(_, m)| run.is_none_or(|r| m.run == r) && keep(m))
                .map(|(i, _)| i)
                .collect();
            if wanted.is_empty() {
                continue;
            }
            if let Some(sh) = &self.spill {
                seg.last_touch.store(
                    sh.touch.fetch_add(1, Ordering::Relaxed) + 1,
                    Ordering::Relaxed,
                );
            }
            let holder = if seg.is_spilled() {
                holders.push(self.page_in(seg, cache_rows_cap)?);
                Some(holders.len() - 1)
            } else {
                None
            };
            picks.push((si, wanted, holder));
        }
        let mut sections: Vec<&Section<R>> = Vec::new();
        for (si, wanted, holder) in &picks {
            let secs: &[Section<R>] = match holder {
                Some(h) => &holders[*h].sections,
                None => snap.segments[*si]
                    .resident_sections()
                    .expect("unspilled segments are resident"), // audit: allow(R4) invariant: segments outside the spill set are resident by definition
            };
            sections.extend(wanted.iter().map(|&w| &secs[w]));
        }
        Ok(f(&sections))
    }

    /// The decoded rows of a spilled segment: from the cache, or — on a
    /// miss — read, checksum-verified, and deterministically rebuilt
    /// from its file. The stored `(t, seq)` order and the indexes
    /// derived from it make the paged-in copy answer bit-identically to
    /// the resident original.
    fn page_in(
        &self,
        seg: &Segment<R>,
        cache_rows_cap: usize,
    ) -> Result<Arc<SegmentData<R>>, SpillError> {
        let sh = self
            .spill
            .as_ref()
            .expect("spilled segment without spill config"); // audit: allow(R4) invariant: a Spilled state can only be produced under a spill config
        if let Some(data) = self.cache.lock().get(seg.id) {
            return Ok(data);
        }
        let path = seg.spill_path().expect("page_in on resident segment"); // audit: allow(R4) invariant: page_in is only called on segments in the Spilled state
        let bytes = std::fs::read(path)?;
        let decoded = decode_segment::<R>(Bytes::from(bytes))?;
        let sections: Vec<Section<R>> = decoded
            .into_iter()
            .map(|s| Section::from_sorted(s.run, s.rows, s.seqs, self.build_spatial))
            .collect();
        debug_assert_eq!(
            sections.len(),
            seg.meta.len(),
            "segment file sections must match meta"
        );
        let data = Arc::new(SegmentData { sections });
        sh.page_ins.fetch_add(1, Ordering::Relaxed);
        self.cache.lock().insert(
            seg.id,
            seg.len,
            Arc::clone(&data),
            sh.cfg.cache_segments,
            cache_rows_cap,
        );
        Ok(data)
    }

    /// Spill this table's coldest sealed resident segment. Returns the
    /// rows moved out of memory (0 when nothing is spillable or a
    /// concurrent maintenance pass replaced the victim first).
    fn spill_coldest(&self) -> Result<usize, SpillError> {
        let Some(sh) = &self.spill else {
            return Ok(0);
        };
        let snap = self.cell.latest();
        let Some(seg) = snap
            .segments
            .iter()
            .filter(|s| s.sealed && !s.is_spilled() && s.len > 0)
            .min_by_key(|s| s.last_touch.load(Ordering::Relaxed))
        else {
            return Ok(0);
        };
        let bytes = encode_sections(seg.resident_sections().expect("victim is resident")); // audit: allow(R4) invariant: the eviction victim was chosen from the resident set
        let path = sh.cfg.dir.join(format!("seg-{}.vita", seg.id));
        write_atomic(&path, &bytes)?;
        let twin = seg.spilled_twin(path.clone());
        if self.try_replace(std::slice::from_ref(seg), twin) {
            sh.spills.fetch_add(1, Ordering::Relaxed);
            Ok(seg.len)
        } else {
            let _ = std::fs::remove_file(&path);
            Ok(0)
        }
    }

    /// The last-touch tick of the coldest sealed resident segment, for
    /// picking the global eviction victim across tables.
    fn coldest_resident_touch(&self) -> Option<u64> {
        self.cell
            .latest()
            .segments
            .iter()
            .filter(|s| s.sealed && !s.is_spilled() && s.len > 0)
            .map(|s| s.last_touch.load(Ordering::Relaxed))
            .min()
    }

    /// Evict one clock victim from the page-in cache; returns rows freed.
    fn trim_cache_one(&self) -> usize {
        self.cache.lock().evict_one_except(None).unwrap_or(0)
    }

    fn cached_rows(&self) -> usize {
        self.cache.lock().rows()
    }

    fn sealed_resident_rows(&self) -> usize {
        self.cell
            .latest()
            .segments
            .iter()
            .filter(|s| s.sealed && !s.is_spilled())
            .map(|s| s.len)
            .sum()
    }

    fn inventory(&self) -> TableInventory {
        let snap = self.cell.latest();
        let mut inv = TableInventory::default();
        for seg in &snap.segments {
            if seg.sealed {
                inv.sealed += 1;
                if seg.is_spilled() {
                    inv.spilled_segments += 1;
                    inv.spilled_rows += seg.len;
                } else {
                    inv.sealed_resident_rows += seg.len;
                }
            } else {
                inv.unsealed += 1;
                inv.head_rows += seg.len;
            }
        }
        inv
    }
}

// ---------------------------------------------------------------------------
// The repository facade
// ---------------------------------------------------------------------------

/// Sealer/compactor tuning for [`SegmentedRepository`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentConfig {
    /// Seal the pending unsealed segments once they hold this many rows.
    /// The writer whose append crosses this seals inline, so full
    /// backlogs seal promptly regardless of `tick` and index work is
    /// paced by ingestion rather than bursting on the background thread.
    pub seal_rows: usize,
    /// … or once this many unsealed segments have accumulated. Unsealed
    /// segments are scanned linearly but are batch-sized, so this trades a
    /// little read work for a lot less sealing churn.
    pub seal_segments: usize,
    /// Sizes background compaction: one pass folds at most one run of
    /// adjacent small sealed segments totalling `compact_segments ×
    /// seal_rows` rows, and segments past half that row budget are left
    /// alone until `seal_now`.
    pub compact_segments: usize,
    /// How long the background sealer sleeps when no writer signals it.
    /// Count-triggered seals and compaction advance at most once per tick,
    /// bounding the sealer's steady-state CPU draw next to query threads.
    pub tick: Duration,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            seal_rows: 4096,
            seal_segments: 64,
            compact_segments: 8,
            tick: Duration::from_millis(40),
        }
    }
}

/// Sealer/compactor/spiller progress counters plus the current segment
/// inventory, summed over the four tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Completed seal operations (unsealed suffix → one sealed segment).
    pub seals: u64,
    /// Completed compactions (sealed prefix → one sealed segment).
    pub compactions: u64,
    /// Sealed segments currently live.
    pub sealed_segments: usize,
    /// Unsealed (per-batch) segments currently live.
    pub unsealed_segments: usize,
    /// Sealed segments currently evicted to disk.
    pub spilled_segments: usize,
    /// Rows held only on disk (in spilled segments).
    pub spilled_rows: usize,
    /// Decoded sealed rows in memory — sealed resident segments plus the
    /// page-in caches. This is the gauge `memory_budget_rows` bounds.
    pub resident_rows: usize,
    /// Rows in unsealed heads (always resident, not counted against the
    /// budget).
    pub head_rows: usize,
    /// Segment files written since the repository started.
    pub spills: u64,
    /// Spilled segments decoded back from disk since start.
    pub page_ins: u64,
    /// Appends that stalled on the spill backlog high-water mark.
    pub writer_stalls: u64,
}

struct SegInner {
    trajectories: SegTable<TrajectorySample>,
    rssi: SegTable<RssiMeasurement>,
    fixes: SegTable<Fix>,
    proximity: SegTable<ProximityRecord>,
    config: SegmentConfig,
    /// Spill tier shared across the four tables; `None` = all-resident.
    spill: Option<Arc<SpillShared>>,
    seals: AtomicU64,
    compactions: AtomicU64,
    shutdown: AtomicBool,
    signal: StdMutex<()>,
    wake: Condvar,
}

impl SegInner {
    /// Decoded sealed rows across all tables: sealed resident segments
    /// plus the page-in caches. This is the gauge `memory_budget_rows`
    /// bounds; unsealed heads ride on top. Computed from the snapshots on
    /// demand — there is no shadow accounting to drift.
    fn decoded_sealed_rows(&self) -> usize {
        self.trajectories.sealed_resident_rows()
            + self.trajectories.cached_rows()
            + self.rssi.sealed_resident_rows()
            + self.rssi.cached_rows()
            + self.fixes.sealed_resident_rows()
            + self.fixes.cached_rows()
            + self.proximity.sealed_resident_rows()
            + self.proximity.cached_rows()
    }

    /// Rows past the memory budget still waiting to be evicted; 0 with no
    /// spill tier or when under budget.
    fn spill_pending_rows(&self) -> usize {
        match &self.spill {
            Some(sh) => self
                .decoded_sealed_rows()
                .saturating_sub(sh.cfg.memory_budget_rows),
            None => 0,
        }
    }

    /// The page-in cache rows `table` may hold without pushing the
    /// repository over budget: the budget minus everything decoded
    /// *outside* this table's cache. The entry a query just inserted is
    /// exempt (the cache must hold the segment that query reads), so one
    /// oversized segment can overshoot transiently; the next enforcement
    /// pass evicts it.
    fn cache_room<R: SegmentRow>(&self, table: &SegTable<R>) -> usize {
        match &self.spill {
            Some(sh) => sh
                .cfg
                .memory_budget_rows
                .saturating_sub(self.decoded_sealed_rows() - table.cached_rows()),
            None => usize::MAX,
        }
    }

    /// Evict until decoded sealed rows fit the budget: shrink the fattest
    /// page-in cache first (those rows already have a disk copy — dropping
    /// them is free), then spill the globally coldest sealed resident
    /// segment. Serialized so concurrent enforcers (the sealer tick plus
    /// stalled writers) never double-spill the same victim.
    fn enforce_budget(&self) -> Result<(), SpillError> {
        let Some(sh) = &self.spill else {
            return Ok(());
        };
        let _guard = sh.enforce_lock.lock();
        loop {
            if self.decoded_sealed_rows() <= sh.cfg.memory_budget_rows {
                return Ok(());
            }
            let caches = [
                self.trajectories.cached_rows(),
                self.rssi.cached_rows(),
                self.fixes.cached_rows(),
                self.proximity.cached_rows(),
            ];
            if let Some((i, _)) = caches
                .iter()
                .enumerate()
                .filter(|(_, &r)| r > 0)
                .max_by_key(|&(_, &r)| r)
            {
                let freed = match i {
                    0 => self.trajectories.trim_cache_one(),
                    1 => self.rssi.trim_cache_one(),
                    2 => self.fixes.trim_cache_one(),
                    _ => self.proximity.trim_cache_one(),
                };
                if freed > 0 {
                    continue;
                }
            }
            if self.spill_coldest()? == 0 {
                // No spillable victim (everything sealed is already on
                // disk) or a concurrent replace won the race; the next
                // pass retries.
                return Ok(());
            }
        }
    }

    /// Spill the globally coldest sealed resident segment across tables.
    fn spill_coldest(&self) -> Result<usize, SpillError> {
        let coldest = [
            self.trajectories.coldest_resident_touch(),
            self.rssi.coldest_resident_touch(),
            self.fixes.coldest_resident_touch(),
            self.proximity.coldest_resident_touch(),
        ];
        let Some((i, _)) = coldest
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, t)))
            .min_by_key(|&(_, t)| t)
        else {
            return Ok(0);
        };
        match i {
            0 => self.trajectories.spill_coldest(),
            1 => self.rssi.spill_coldest(),
            2 => self.fixes.spill_coldest(),
            _ => self.proximity.spill_coldest(),
        }
    }

    /// Append one batch; when the unsealed backlog crosses `seal_rows`,
    /// the *writer* seals it inline. This paces index work to ingestion —
    /// the same place the locked backends pay it, but without a read lock
    /// anywhere — instead of letting it burst on the background thread.
    /// On one-core hosts a background burst evicts the query threads and
    /// lands straight in their tail latency; writer-side sealing also
    /// backpressures ingestion instead of letting the backlog run ahead
    /// of the sealer. The mini-count trigger is deliberately left to the
    /// background tick: firing it inline would seal on every 64th tiny
    /// streamed chunk, producing far more (and far smaller) sealed
    /// segments per second than the tick-paced sealer does, and the extra
    /// compaction debt those small segments accrue (one more merge level
    /// each to reach graduation) costs more CPU than the fused burst
    /// saves. The background thread also owns all compaction, so it is
    /// signalled either way.
    ///
    /// With a spill tier the writer additionally stalls while the decoded
    /// backlog sits a full seal past the budget, paying the eviction IO
    /// itself — explicit backpressure, so an ingest burst cannot outrun
    /// the spiller and blow the memory ceiling.
    fn append_and_seal<R: SegmentRow>(&self, table: &SegTable<R>, run: RunId, rows: Vec<R>) {
        let (pending, _minis) = table.append(run, rows);
        if pending >= self.config.seal_rows {
            if table.seal_pass(&self.config, false, self.decoded_sealed_rows()) {
                self.seals.fetch_add(1, Ordering::Relaxed);
            }
            self.wake.notify_one();
        }
        if let Some(sh) = &self.spill {
            if self.spill_pending_rows() >= self.config.seal_rows.max(1) {
                sh.writer_stalls.fetch_add(1, Ordering::Relaxed);
                self.enforce_budget().expect("segment spill failed"); // audit: allow(R4) operational: a failed spill under backpressure has no correct continuation
            }
        }
    }

    /// One maintenance round over all four tables: seal checks every
    /// call, compaction only when `compact` is set, then budget
    /// enforcement (the background spiller). A compaction is the biggest
    /// single burst of background CPU (up to a whole row budget
    /// re-merged), so the sealer runs it on a slower cadence than the
    /// seal check — on one-core hosts every burst event collides with a
    /// handful of in-flight queries, and the collision count, not the
    /// per-event cost, is what shows up at p99.
    fn maintenance_pass(&self, force: bool, compact: bool) {
        fn round<R: SegmentRow>(inner: &SegInner, table: &SegTable<R>, force: bool, compact: bool) {
            if table.seal_pass(&inner.config, force, inner.decoded_sealed_rows()) {
                inner.seals.fetch_add(1, Ordering::Relaxed);
            }
            if (force || compact)
                && table.compact_pass(&inner.config, force, inner.decoded_sealed_rows())
            {
                inner.compactions.fetch_add(1, Ordering::Relaxed);
            }
        }
        round(self, &self.trajectories, force, compact);
        round(self, &self.rssi, force, compact);
        round(self, &self.fixes, force, compact);
        round(self, &self.proximity, force, compact);
        self.enforce_budget().expect("segment spill failed"); // audit: allow(R4) operational: a failed spill under backpressure has no correct continuation
    }
}

/// Compact on every Nth sealer tick (seal checks run every tick).
const COMPACT_EVERY: u32 = 8;

fn sealer_loop(inner: &SegInner) {
    let mut tick = 0u32;
    loop {
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        tick = tick.wrapping_add(1);
        inner.maintenance_pass(false, tick.is_multiple_of(COMPACT_EVERY));
        let guard = inner.signal.lock().expect("sealer signal"); // audit: allow(R4) operational: a poisoned sealer mutex means a sealer thread already panicked
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Timed wait: a writer's notify (threshold crossed) wakes it early,
        // the timeout bounds how stale an un-notified backlog can get.
        let _ = inner
            .wake
            .wait_timeout(guard, inner.config.tick)
            .expect("sealer signal"); // audit: allow(R4) operational: a poisoned sealer mutex means a sealer thread already panicked
    }
}

/// The third storage backend: immutable, sorted, run-segmented segments
/// published by atomic snapshot swap, with a background sealer/compactor
/// (see the module docs for the design).
///
/// Readers pin a snapshot per query and never block — not on ingestion,
/// not on sealing — while writers pay O(segment count) pointer copies per
/// batch and no index maintenance at all. Choose it when queries must stay
/// fast *while* `run_many` ingests; prefer the locked backends for purely
/// offline workloads, which skip the sealer thread.
///
/// # Examples
///
/// ```
/// use vita_storage::{ProductBatch, ProductSink, RunScope, SegmentedRepository};
/// use vita_geometry::Point;
/// use vita_indoor::{BuildingId, FloorId, ObjectId, Timestamp};
/// use vita_mobility::TrajectorySample;
///
/// let repo = SegmentedRepository::new();
/// repo.accept(ProductBatch::Trajectories(vec![TrajectorySample::new(
///     ObjectId(7),
///     BuildingId(0),
///     FloorId(0),
///     Point::new(1.0, 2.0),
///     Timestamp(100),
/// )]));
/// // Queries answer from a pinned snapshot; sealing in the background
/// // never changes an answer.
/// assert_eq!(repo.counts(RunScope::All).trajectories, 1);
/// repo.seal_now();
/// assert_eq!(repo.object_trace(RunScope::All, ObjectId(7)).len(), 1);
/// assert!(repo.stats().seals >= 1);
/// ```
pub struct SegmentedRepository {
    inner: Arc<SegInner>,
    sealer: StdMutex<Option<JoinHandle<()>>>,
}

impl Default for SegmentedRepository {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SegmentedRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SegmentedRepository")
            .field("counts", &self.counts(RunScope::All))
            .field("stats", &self.stats())
            .finish()
    }
}

impl Drop for SegmentedRepository {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.wake.notify_all();
        // audit: allow(R4) operational: a poisoned handle mutex means a sealer thread already panicked
        if let Some(handle) = self.sealer.lock().expect("sealer handle").take() {
            let _ = handle.join();
        }
        // The spill subdirectory is per-instance, so with the sealer
        // joined and every query handle gone nothing can page from it;
        // consumed segments' files were deliberately kept for old pinned
        // snapshots and are swept here with the rest.
        if let Some(sh) = &self.inner.spill {
            let _ = std::fs::remove_dir_all(&sh.cfg.dir);
        }
    }
}

impl ProductSink for SegmentedRepository {
    fn accept_run(&self, run: RunId, batch: ProductBatch) {
        let i = &self.inner;
        match batch {
            ProductBatch::Trajectories(v) => i.append_and_seal(&i.trajectories, run, v),
            ProductBatch::Rssi(v) => i.append_and_seal(&i.rssi, run, v),
            ProductBatch::Fixes(v) => i.append_and_seal(&i.fixes, run, v),
            ProductBatch::Proximity(v) => i.append_and_seal(&i.proximity, run, v),
        }
    }
}

impl SegmentedRepository {
    /// A segmented repository with the default [`SegmentConfig`] and the
    /// background sealer running. Consults [`SpillConfig::from_env`], so
    /// whole suites can be rerun against the spill tier without code
    /// changes.
    pub fn new() -> Self {
        Self::with_config(SegmentConfig::default())
    }

    /// A segmented repository with explicit sealer/compactor tuning (and
    /// the spill tier if [`SpillConfig::from_env`] finds one).
    pub fn with_config(config: SegmentConfig) -> Self {
        Self::build(config, SpillConfig::from_env())
    }

    /// A segmented repository with the spill tier on: sealed segments
    /// past `spill.memory_budget_rows` are evicted to disk and paged
    /// back on demand. Ignores the environment.
    pub fn with_spill(config: SegmentConfig, spill: SpillConfig) -> Self {
        Self::build(config, Some(spill))
    }

    fn build(config: SegmentConfig, spill: Option<SpillConfig>) -> Self {
        // Distinguishes repositories sharing one configured dir (and one
        // process): each instance spills into its own subdirectory and
        // removes exactly that on drop.
        static NEXT_SPILL_INSTANCE: AtomicU64 = AtomicU64::new(1);
        let spill = spill.map(|original| {
            let dir = original.dir.join(format!(
                "vita-{}-{}",
                std::process::id(),
                NEXT_SPILL_INSTANCE.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).expect("create spill directory"); // audit: allow(R4) operational: an uncreatable spill directory fails construction loudly
            let mut cfg = original.clone();
            cfg.dir = dir;
            Arc::new(SpillShared {
                cfg,
                original,
                touch: AtomicU64::new(0),
                spills: AtomicU64::new(0),
                page_ins: AtomicU64::new(0),
                writer_stalls: AtomicU64::new(0),
                enforce_lock: Mutex::new(()),
            })
        });
        let inner = Arc::new(SegInner {
            trajectories: SegTable::new(true, spill.clone()),
            rssi: SegTable::new(false, spill.clone()),
            fixes: SegTable::new(false, spill.clone()),
            proximity: SegTable::new(false, spill.clone()),
            config,
            spill,
            seals: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            signal: StdMutex::new(()),
            wake: Condvar::new(),
        });
        let worker = Arc::clone(&inner);
        let sealer = std::thread::Builder::new()
            .name("vita-sealer".into())
            .spawn(move || sealer_loop(&worker))
            .expect("spawn sealer"); // audit: allow(R4) operational: failing to spawn the sealer thread fails construction loudly
        SegmentedRepository {
            inner,
            sealer: StdMutex::new(Some(sealer)),
        }
    }

    /// Run one synchronous seal+compact round, regardless of thresholds:
    /// every pending unsealed segment is sealed and the sealed prefix is
    /// folded. Queries answer identically before and after — this exists
    /// so tests and benches can put the repository in a known segment
    /// state deterministically.
    pub fn seal_now(&self) {
        self.inner.maintenance_pass(true, true);
    }

    /// The spill config this repository was built with, as the caller
    /// passed it; `None` when running all-resident.
    pub fn spill_config(&self) -> Option<&SpillConfig> {
        self.inner.spill.as_ref().map(|sh| &sh.original)
    }

    /// Decoded sealed rows past the memory budget, still waiting for
    /// eviction — the backpressure gauge writers stall on. Always 0
    /// without a spill tier.
    pub fn spill_pending_rows(&self) -> usize {
        self.inner.spill_pending_rows()
    }

    /// Sealer/compactor/spiller counters and the live segment inventory.
    pub fn stats(&self) -> SegmentStats {
        let i = &self.inner;
        let mut stats = SegmentStats {
            seals: i.seals.load(Ordering::Relaxed),
            compactions: i.compactions.load(Ordering::Relaxed),
            ..SegmentStats::default()
        };
        if let Some(sh) = &i.spill {
            stats.spills = sh.spills.load(Ordering::Relaxed);
            stats.page_ins = sh.page_ins.load(Ordering::Relaxed);
            stats.writer_stalls = sh.writer_stalls.load(Ordering::Relaxed);
        }
        for inv in [
            i.trajectories.inventory(),
            i.rssi.inventory(),
            i.fixes.inventory(),
            i.proximity.inventory(),
        ] {
            stats.sealed_segments += inv.sealed;
            stats.unsealed_segments += inv.unsealed;
            stats.spilled_segments += inv.spilled_segments;
            stats.spilled_rows += inv.spilled_rows;
            stats.resident_rows += inv.sealed_resident_rows;
            stats.head_rows += inv.head_rows;
        }
        stats.resident_rows += i.trajectories.cached_rows()
            + i.rssi.cached_rows()
            + i.fixes.cached_rows()
            + i.proximity.cached_rows();
        stats
    }

    /// Row counts of the four tables under `scope` — answered from
    /// per-section meta, never paging anything in.
    pub fn counts(&self, scope: RunScope) -> TableCounts {
        TableCounts {
            trajectories: self.inner.trajectories.pin().len(scope),
            rssi: self.inner.rssi.pin().len(scope),
            fixes: self.inner.fixes.pin().len(scope),
            proximity: self.inner.proximity.pin().len(scope),
        }
    }

    /// The whole-repository counts, shaped like one shard (the segmented
    /// backend does not partition).
    pub fn per_shard_counts(&self) -> Vec<ShardCounts> {
        vec![self.counts(RunScope::All)]
    }

    /// Every run with at least one row in any table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        let mut runs = self.inner.trajectories.pin().run_ids();
        runs.extend(self.inner.rssi.pin().run_ids());
        runs.extend(self.inner.fixes.pin().run_ids());
        runs.extend(self.inner.proximity.pin().run_ids());
        runs.sort_unstable();
        runs.dedup();
        runs
    }

    // Each query comes in an infallible flavor (panics if a spilled
    // segment file turns out unreadable — an operational failure, never
    // silently wrong rows) and a `try_` flavor surfacing [`SpillError`]
    // for callers that serve queries and want to degrade gracefully.
    // Without a spill tier the `try_` flavors cannot fail.

    /// `scope`'s trajectory rows in arrival order (the single
    /// repository's insertion order, reconstructed from seqs).
    pub fn trajectories_scan(&self, scope: RunScope) -> Vec<TrajectorySample> {
        self.try_trajectories_scan(scope).spill_ok()
    }

    /// Fallible twin of [`Self::trajectories_scan`].
    pub fn try_trajectories_scan(
        &self,
        scope: RunScope,
    ) -> Result<Vec<TrajectorySample>, SpillError> {
        let i = &self.inner;
        i.trajectories.try_query(
            scope,
            i.cache_room(&i.trajectories),
            |_| true,
            scan_sections,
        )
    }

    /// `scope`'s samples in the half-open window `from <= t < to`,
    /// time-ordered with ties in arrival order.
    pub fn trajectories_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<TrajectorySample> {
        self.try_trajectories_time_window(scope, from, to)
            .spill_ok()
    }

    /// Fallible twin of [`Self::trajectories_time_window`].
    pub fn try_trajectories_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<TrajectorySample>, SpillError> {
        let i = &self.inner;
        i.trajectories.try_query(
            scope,
            i.cache_room(&i.trajectories),
            |m| m.max_t >= from && m.min_t < to,
            |s| time_window_sections(s, from, to),
        )
    }

    /// Latest sample at or before `t` (inclusive) per object of `scope`,
    /// sorted by object id.
    pub fn trajectories_snapshot_at(&self, scope: RunScope, t: Timestamp) -> Vec<TrajectorySample> {
        self.try_trajectories_snapshot_at(scope, t).spill_ok()
    }

    /// Fallible twin of [`Self::trajectories_snapshot_at`].
    pub fn try_trajectories_snapshot_at(
        &self,
        scope: RunScope,
        t: Timestamp,
    ) -> Result<Vec<TrajectorySample>, SpillError> {
        let i = &self.inner;
        i.trajectories.try_query(
            scope,
            i.cache_room(&i.trajectories),
            |m| m.min_t <= t,
            |s| snapshot_at_sections(s, t),
        )
    }

    /// `scope`'s trace of object `o`, time-ordered.
    pub fn object_trace(&self, scope: RunScope, o: ObjectId) -> Vec<TrajectorySample> {
        self.try_object_trace(scope, o).spill_ok()
    }

    /// Fallible twin of [`Self::object_trace`].
    pub fn try_object_trace(
        &self,
        scope: RunScope,
        o: ObjectId,
    ) -> Result<Vec<TrajectorySample>, SpillError> {
        let i = &self.inner;
        i.trajectories.try_query(
            scope,
            i.cache_room(&i.trajectories),
            |_| true,
            |s| of_object_sections(s, o),
        )
    }

    /// `scope`'s samples on `floor` inside `query`, in arrival order.
    pub fn trajectories_range_query(
        &self,
        scope: RunScope,
        floor: FloorId,
        query: &Aabb,
    ) -> Vec<TrajectorySample> {
        self.try_trajectories_range_query(scope, floor, query)
            .spill_ok()
    }

    /// Fallible twin of [`Self::trajectories_range_query`].
    pub fn try_trajectories_range_query(
        &self,
        scope: RunScope,
        floor: FloorId,
        query: &Aabb,
    ) -> Result<Vec<TrajectorySample>, SpillError> {
        let i = &self.inner;
        i.trajectories.try_query(
            scope,
            i.cache_room(&i.trajectories),
            |m| {
                m.floors
                    .as_ref()
                    .is_none_or(|fl| fl.binary_search(&floor).is_ok())
            },
            |s| range_query_sections(s, floor, query),
        )
    }

    /// `scope`'s k nearest samples to `p` on `floor`, nearest first.
    pub fn trajectories_knn(
        &self,
        scope: RunScope,
        floor: FloorId,
        p: Point,
        k: usize,
    ) -> Vec<(TrajectorySample, f64)> {
        self.try_trajectories_knn(scope, floor, p, k).spill_ok()
    }

    /// Fallible twin of [`Self::trajectories_knn`].
    pub fn try_trajectories_knn(
        &self,
        scope: RunScope,
        floor: FloorId,
        p: Point,
        k: usize,
    ) -> Result<Vec<(TrajectorySample, f64)>, SpillError> {
        let i = &self.inner;
        i.trajectories.try_query(
            scope,
            i.cache_room(&i.trajectories),
            |m| {
                m.floors
                    .as_ref()
                    .is_none_or(|fl| fl.binary_search(&floor).is_ok())
            },
            |s| knn_sections(s, floor, p, k),
        )
    }

    /// `scope`'s RSSI rows in arrival order.
    pub fn rssi_scan(&self, scope: RunScope) -> Vec<RssiMeasurement> {
        self.try_rssi_scan(scope).spill_ok()
    }

    /// Fallible twin of [`Self::rssi_scan`].
    pub fn try_rssi_scan(&self, scope: RunScope) -> Result<Vec<RssiMeasurement>, SpillError> {
        let i = &self.inner;
        i.rssi
            .try_query(scope, i.cache_room(&i.rssi), |_| true, scan_sections)
    }

    /// `scope`'s measurements in the half-open window `from <= t < to`.
    pub fn rssi_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<RssiMeasurement> {
        self.try_rssi_time_window(scope, from, to).spill_ok()
    }

    /// Fallible twin of [`Self::rssi_time_window`].
    pub fn try_rssi_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<RssiMeasurement>, SpillError> {
        let i = &self.inner;
        i.rssi.try_query(
            scope,
            i.cache_room(&i.rssi),
            |m| m.max_t >= from && m.min_t < to,
            |s| time_window_sections(s, from, to),
        )
    }

    /// `scope`'s measurements of object `o`, time-ordered.
    pub fn rssi_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<RssiMeasurement> {
        self.try_rssi_of_object(scope, o).spill_ok()
    }

    /// Fallible twin of [`Self::rssi_of_object`].
    pub fn try_rssi_of_object(
        &self,
        scope: RunScope,
        o: ObjectId,
    ) -> Result<Vec<RssiMeasurement>, SpillError> {
        let i = &self.inner;
        i.rssi.try_query(
            scope,
            i.cache_room(&i.rssi),
            |_| true,
            |s| of_object_sections(s, o),
        )
    }

    /// `scope`'s measurements through device `d`, time-ordered.
    pub fn rssi_of_device(&self, scope: RunScope, d: DeviceId) -> Vec<RssiMeasurement> {
        self.try_rssi_of_device(scope, d).spill_ok()
    }

    /// Fallible twin of [`Self::rssi_of_device`].
    pub fn try_rssi_of_device(
        &self,
        scope: RunScope,
        d: DeviceId,
    ) -> Result<Vec<RssiMeasurement>, SpillError> {
        let i = &self.inner;
        i.rssi.try_query(
            scope,
            i.cache_room(&i.rssi),
            |_| true,
            |s| of_device_sections(s, d),
        )
    }

    /// `scope`'s fixes in arrival order.
    pub fn fixes_scan(&self, scope: RunScope) -> Vec<Fix> {
        self.try_fixes_scan(scope).spill_ok()
    }

    /// Fallible twin of [`Self::fixes_scan`].
    pub fn try_fixes_scan(&self, scope: RunScope) -> Result<Vec<Fix>, SpillError> {
        let i = &self.inner;
        i.fixes
            .try_query(scope, i.cache_room(&i.fixes), |_| true, scan_sections)
    }

    /// `scope`'s fixes in the half-open window `from <= t < to`.
    pub fn fixes_time_window(&self, scope: RunScope, from: Timestamp, to: Timestamp) -> Vec<Fix> {
        self.try_fixes_time_window(scope, from, to).spill_ok()
    }

    /// Fallible twin of [`Self::fixes_time_window`].
    pub fn try_fixes_time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<Fix>, SpillError> {
        let i = &self.inner;
        i.fixes.try_query(
            scope,
            i.cache_room(&i.fixes),
            |m| m.max_t >= from && m.min_t < to,
            |s| time_window_sections(s, from, to),
        )
    }

    /// `scope`'s fixes of object `o`, time-ordered.
    pub fn fixes_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<Fix> {
        self.try_fixes_of_object(scope, o).spill_ok()
    }

    /// Fallible twin of [`Self::fixes_of_object`].
    pub fn try_fixes_of_object(
        &self,
        scope: RunScope,
        o: ObjectId,
    ) -> Result<Vec<Fix>, SpillError> {
        let i = &self.inner;
        i.fixes.try_query(
            scope,
            i.cache_room(&i.fixes),
            |_| true,
            |s| of_object_sections(s, o),
        )
    }

    /// `scope`'s proximity rows in arrival order.
    pub fn proximity_scan(&self, scope: RunScope) -> Vec<ProximityRecord> {
        self.try_proximity_scan(scope).spill_ok()
    }

    /// Fallible twin of [`Self::proximity_scan`].
    pub fn try_proximity_scan(&self, scope: RunScope) -> Result<Vec<ProximityRecord>, SpillError> {
        let i = &self.inner;
        i.proximity
            .try_query(scope, i.cache_room(&i.proximity), |_| true, scan_sections)
    }

    /// `scope`'s records whose detection period intersects `[from, to)`,
    /// in arrival order.
    pub fn proximity_overlapping(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<ProximityRecord> {
        self.try_proximity_overlapping(scope, from, to).spill_ok()
    }

    /// Fallible twin of [`Self::proximity_overlapping`].
    pub fn try_proximity_overlapping(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<Vec<ProximityRecord>, SpillError> {
        let i = &self.inner;
        // Meta time bounds are over `ts` (the section sort key), so only
        // the `ts < to` half prunes; `te >= from` is checked per row.
        i.proximity.try_query(
            scope,
            i.cache_room(&i.proximity),
            |m| m.min_t < to,
            |s| overlapping_sections(s, from, to),
        )
    }

    /// `scope`'s detection periods of object `o`, ordered by start time.
    pub fn proximity_of_object(&self, scope: RunScope, o: ObjectId) -> Vec<ProximityRecord> {
        self.try_proximity_of_object(scope, o).spill_ok()
    }

    /// Fallible twin of [`Self::proximity_of_object`].
    pub fn try_proximity_of_object(
        &self,
        scope: RunScope,
        o: ObjectId,
    ) -> Result<Vec<ProximityRecord>, SpillError> {
        let i = &self.inner;
        i.proximity.try_query(
            scope,
            i.cache_room(&i.proximity),
            |_| true,
            |s| of_object_sections(s, o),
        )
    }

    /// `scope`'s detection periods through device `d`, ordered by start
    /// time.
    pub fn proximity_of_device(&self, scope: RunScope, d: DeviceId) -> Vec<ProximityRecord> {
        self.try_proximity_of_device(scope, d).spill_ok()
    }

    /// Fallible twin of [`Self::proximity_of_device`].
    pub fn try_proximity_of_device(
        &self,
        scope: RunScope,
        d: DeviceId,
    ) -> Result<Vec<ProximityRecord>, SpillError> {
        let i = &self.inner;
        i.proximity.try_query(
            scope,
            i.cache_room(&i.proximity),
            |_| true,
            |s| of_device_sections(s, d),
        )
    }

    /// Serialize every table into the backend-agnostic run-segmented wire
    /// format (scan order — arrival order — inside each run section, like
    /// the other backends). Spilled segments contribute their raw on-disk
    /// row bytes, spliced per run by seq without decoding rows to structs
    /// and re-encoding them — the segment file and the table wire format
    /// share the row encoding byte-for-byte.
    pub fn export(&self) -> RepositoryExport {
        self.try_export().spill_ok()
    }

    /// Fallible twin of [`Self::export`].
    pub fn try_export(&self) -> Result<RepositoryExport, SpillError> {
        let i = &self.inner;
        Ok(RepositoryExport {
            trajectories: export_table_raw(&i.trajectories)?,
            rssi: export_table_raw(&i.rssi)?,
            fixes: export_table_raw(&i.fixes)?,
            proximity: export_table_raw(&i.proximity)?,
        })
    }

    /// The pre-spill export path: decode every row to its struct, scan in
    /// arrival order, re-encode. Kept (hidden) as the reference the raw
    /// splice is benchmarked and parity-tested against.
    #[doc(hidden)]
    pub fn export_reencode(&self) -> RepositoryExport {
        let t_sections = run_sections(self.inner.trajectories.pin().run_ids(), |run| {
            self.trajectories_scan(run.into())
        });
        let r_sections = run_sections(self.inner.rssi.pin().run_ids(), |run| {
            self.rssi_scan(run.into())
        });
        let f_sections = run_sections(self.inner.fixes.pin().run_ids(), |run| {
            self.fixes_scan(run.into())
        });
        let p_sections = run_sections(self.inner.proximity.pin().run_ids(), |run| {
            self.proximity_scan(run.into())
        });
        RepositoryExport {
            trajectories: encode_trajectories_runs(&borrow_sections(&t_sections)),
            rssi: encode_rssi_runs(&borrow_sections(&r_sections)),
            fixes: encode_fixes_runs(&borrow_sections(&f_sections)),
            proximity: encode_proximity_runs(&borrow_sections(&p_sections)),
        }
    }

    /// Rebuild a segmented repository from an export, run by run (the
    /// export's own backend does not matter — the wire format is
    /// backend-agnostic). Consults [`SpillConfig::from_env`] like
    /// [`Self::new`].
    pub fn import(export: &RepositoryExport) -> Result<Self, CodecError> {
        Self::import_with(export, SegmentConfig::default(), SpillConfig::from_env())
    }

    /// [`Self::import`] with explicit tuning and an optional spill tier.
    pub fn import_with(
        export: &RepositoryExport,
        config: SegmentConfig,
        spill: Option<SpillConfig>,
    ) -> Result<Self, CodecError> {
        let repo = Self::build(config, spill);
        for (run, rows) in decode_trajectories_runs(export.trajectories.clone())? {
            repo.accept_run(run, ProductBatch::Trajectories(rows));
        }
        for (run, rows) in decode_rssi_runs(export.rssi.clone())? {
            repo.accept_run(run, ProductBatch::Rssi(rows));
        }
        for (run, rows) in decode_fixes_runs(export.fixes.clone())? {
            repo.accept_run(run, ProductBatch::Fixes(rows));
        }
        for (run, rows) in decode_proximity_runs(export.proximity.clone())? {
            repo.accept_run(run, ProductBatch::Proximity(rows));
        }
        Ok(repo)
    }
}

/// One table's wire-format bytes for [`SegmentedRepository::export`],
/// assembled from raw row bytes: resident sections re-encode rows (a
/// straight `put_row` pass, no sorting), spilled segments contribute the
/// row bytes already sitting in their files. Rows are regrouped per run
/// and ordered by seq — the same splice either way, so spilled and
/// resident state export byte-identically.
fn export_table_raw<R: SegmentRow>(table: &SegTable<R>) -> Result<Bytes, SpillError> {
    use crate::codec::RawSection;
    let snap = table.pin();
    let mut raw: Vec<RawSection> = Vec::new();
    for seg in &snap.segments {
        match seg.resident_sections() {
            Some(sections) => {
                for sec in sections {
                    let mut buf = BytesMut::with_capacity(sec.rows.len() * R::ROW);
                    for r in &sec.rows {
                        r.put_row(&mut buf);
                    }
                    raw.push(RawSection {
                        run: sec.run,
                        rows: buf.freeze(),
                        seqs: sec.seqs.clone(),
                    });
                }
            }
            None => {
                let path = seg.spill_path().expect("non-resident segment is spilled"); // audit: allow(R4) invariant: a segment is either Resident or Spilled; non-resident implies a path
                let bytes = std::fs::read(path)?;
                raw.extend(decode_segment_raw::<R>(Bytes::from(bytes))?);
            }
        }
    }
    let mut per_run: BTreeMap<RunId, Vec<(Seq, Bytes)>> = BTreeMap::new();
    for sec in &raw {
        for (i, &s) in sec.seqs.iter().enumerate() {
            per_run
                .entry(sec.run)
                .or_default()
                .push((s, sec.rows.slice(i * R::ROW..(i + 1) * R::ROW)));
        }
    }
    for rows in per_run.values_mut() {
        rows.sort_unstable_by_key(|(s, _)| *s);
    }
    let parts: Vec<(RunId, Vec<&[u8]>)> = per_run
        .iter()
        .map(|(run, rows)| (*run, rows.iter().map(|(_, b)| &b[..]).collect()))
        .collect();
    Ok(encode_runs_raw::<R>(&parts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_indoor::BuildingId;

    fn ts(o: u32, f: u32, x: f64, y: f64, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(f),
            Point::new(x, y),
            Timestamp(t),
        )
    }

    fn fill(repo: &SegmentedRepository) {
        for b in 0..6u64 {
            let batch: Vec<TrajectorySample> = (0..20)
                .map(|i| {
                    ts(
                        (i % 4) as u32,
                        0,
                        (b * 20 + i) as f64,
                        1.0,
                        b * 200 + i * 10,
                    )
                })
                .collect();
            repo.accept_run(RunId((b % 2) as u32), ProductBatch::Trajectories(batch));
        }
    }

    fn filled() -> SegmentedRepository {
        let repo = SegmentedRepository::new();
        fill(&repo);
        repo
    }

    #[test]
    fn snapshot_cell_pins_are_monotone_and_lock_free_on_repeat() {
        let cell = SnapshotCell::new(1u32);
        let a = cell.pin();
        let b = cell.pin();
        assert!(Arc::ptr_eq(&a, &b));
        cell.publish(Arc::new(2));
        assert_eq!(*cell.pin(), 2);
        // The old pin still reads the old value — that is the epoch pin.
        assert_eq!(*a, 1);
    }

    #[test]
    fn queries_are_invariant_under_sealing() {
        let repo = filled();
        let before_scan = repo.trajectories_scan(RunScope::All);
        let before_window =
            repo.trajectories_time_window(RunScope::All, Timestamp(100), Timestamp(900));
        let before_snap = repo.trajectories_snapshot_at(RunScope::One(RunId(1)), Timestamp(700));
        let before_trace = repo.object_trace(RunScope::All, ObjectId(2));
        let before_range = repo.trajectories_range_query(
            RunScope::All,
            FloorId(0),
            &Aabb::new(Point::new(10.0, 0.0), Point::new(60.0, 2.0)),
        );
        let before_knn = repo.trajectories_knn(RunScope::All, FloorId(0), Point::new(30.0, 1.0), 7);
        repo.seal_now();
        let stats = repo.stats();
        assert!(stats.seals >= 1, "seal_now must seal: {stats:?}");
        assert_eq!(repo.trajectories_scan(RunScope::All), before_scan);
        assert_eq!(
            repo.trajectories_time_window(RunScope::All, Timestamp(100), Timestamp(900)),
            before_window
        );
        assert_eq!(
            repo.trajectories_snapshot_at(RunScope::One(RunId(1)), Timestamp(700)),
            before_snap
        );
        assert_eq!(repo.object_trace(RunScope::All, ObjectId(2)), before_trace);
        assert_eq!(
            repo.trajectories_range_query(
                RunScope::All,
                FloorId(0),
                &Aabb::new(Point::new(10.0, 0.0), Point::new(60.0, 2.0)),
            ),
            before_range
        );
        let after_knn = repo.trajectories_knn(RunScope::All, FloorId(0), Point::new(30.0, 1.0), 7);
        assert_eq!(before_knn.len(), after_knn.len());
        for ((s1, d1), (s2, d2)) in before_knn.iter().zip(&after_knn) {
            assert_eq!(s1, s2);
            assert!((d1 - d2).abs() < 1e-12);
        }
    }

    #[test]
    fn sealing_then_appending_then_compacting_preserves_arrival_order() {
        let repo = filled();
        repo.seal_now();
        // More rows on top of the sealed state, then force a second seal
        // and a compaction.
        repo.accept_run(
            RunId(0),
            ProductBatch::Trajectories((0..10).map(|i| ts(9, 0, i as f64, 5.0, 50 + i)).collect()),
        );
        repo.seal_now();
        repo.seal_now();
        let stats = repo.stats();
        assert!(stats.compactions >= 1, "expected a compaction: {stats:?}");
        assert_eq!(stats.unsealed_segments, 0);
        let trace = repo.object_trace(RunScope::All, ObjectId(9));
        assert_eq!(trace.len(), 10);
        assert!(trace.windows(2).all(|w| w[0].t < w[1].t));
        assert_eq!(repo.counts(RunScope::All).trajectories, 130);
    }

    #[test]
    fn run_scoped_counts_and_isolation() {
        let repo = filled();
        repo.seal_now();
        let all = repo.counts(RunScope::All);
        let r0 = repo.counts(RunId(0).into());
        let r1 = repo.counts(RunId(1).into());
        assert_eq!(all.trajectories, r0.trajectories + r1.trajectories);
        assert_eq!(repo.run_ids(), vec![RunId(0), RunId(1)]);
        assert!(repo
            .trajectories_scan(RunId(0).into())
            .iter()
            .zip(repo.trajectories_scan(RunId(0).into()))
            .all(|(a, b)| *a == b));
        assert!(repo.counts(RunId(7).into()).trajectories == 0);
    }

    #[test]
    fn export_import_round_trips_runs_and_order() {
        let repo = filled();
        repo.accept_run(
            RunId(1),
            ProductBatch::Rssi(vec![RssiMeasurement {
                object: ObjectId(1),
                device: DeviceId(3),
                rssi: -48.0,
                t: Timestamp(123),
            }]),
        );
        repo.seal_now();
        let export = repo.export();
        let restored = SegmentedRepository::import(&export).unwrap();
        assert_eq!(restored.counts(RunScope::All), repo.counts(RunScope::All));
        assert_eq!(restored.run_ids(), repo.run_ids());
        assert_eq!(
            restored.trajectories_scan(RunId(0).into()),
            repo.trajectories_scan(RunId(0).into())
        );
        assert_eq!(restored.rssi_of_device(RunScope::All, DeviceId(3)).len(), 1);
    }

    #[test]
    fn readers_pinned_mid_ingest_see_frozen_state() {
        let repo = SegmentedRepository::new();
        repo.accept(ProductBatch::Trajectories(
            (0..5).map(|i| ts(0, 0, i as f64, 0.0, i * 10)).collect(),
        ));
        let pinned = repo.inner.trajectories.pin();
        repo.accept(ProductBatch::Trajectories(
            (5..12).map(|i| ts(0, 0, i as f64, 0.0, i * 10)).collect(),
        ));
        repo.seal_now();
        // The pin still answers from the pre-append world.
        assert_eq!(pinned.len(RunScope::All), 5);
        assert_eq!(repo.counts(RunScope::All).trajectories, 12);
    }

    #[test]
    fn proximity_overlapping_matches_contract() {
        let repo = SegmentedRepository::new();
        repo.accept(ProductBatch::Proximity(vec![ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(100),
            te: Timestamp(300),
        }]));
        repo.seal_now();
        assert_eq!(
            repo.proximity_overlapping(RunScope::All, Timestamp(300), Timestamp(400))
                .len(),
            1
        );
        assert_eq!(
            repo.proximity_overlapping(RunScope::All, Timestamp(0), Timestamp(100))
                .len(),
            0
        );
    }

    #[test]
    fn pin_cache_evicts_least_recently_pinned_past_capacity() {
        // More live cells than one thread's pin cache holds: pins taken
        // before the cache overflowed must stay valid (they are plain
        // Arcs), and re-pinning every cell must keep answering the right
        // value whether it was evicted or not.
        let cells: Vec<SnapshotCell<usize>> =
            (0..PIN_CACHE_CAP + 8).map(SnapshotCell::new).collect();
        let pins: Vec<Arc<usize>> = cells.iter().map(|c| c.pin()).collect();
        for (i, p) in pins.iter().enumerate() {
            assert_eq!(**p, i);
        }
        // Touch every cell in reverse so the cache churns through all of
        // them again with a different recency order.
        for (i, c) in cells.iter().enumerate().rev() {
            assert_eq!(*c.pin(), i);
        }
        cells[0].publish(Arc::new(999));
        assert_eq!(*cells[0].pin(), 999);
        // The pin taken before the publish still reads the old value.
        assert_eq!(*pins[0], 0);
    }

    fn spill_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("vita-spill-test-{tag}-{}", std::process::id()))
    }

    fn tiny_spill(tag: &str, budget: usize) -> SpillConfig {
        SpillConfig {
            dir: spill_dir(tag),
            memory_budget_rows: budget,
            cache_segments: 2,
        }
    }

    #[test]
    fn spilled_repository_is_bit_identical_and_bounded() {
        let cfg = SegmentConfig {
            seal_rows: 16,
            ..SegmentConfig::default()
        };
        // `build(.., None)` rather than `with_config`: the baseline must
        // stay all-resident even when the suite runs with VITA_SPILL_DIR.
        let baseline = SegmentedRepository::build(cfg, None);
        fill(&baseline);
        baseline.seal_now();
        let repo = SegmentedRepository::with_spill(cfg, tiny_spill("parity", 30));
        fill(&repo);
        repo.seal_now();
        let stats = repo.stats();
        assert!(stats.spills >= 1, "must have spilled: {stats:?}");
        assert!(stats.spilled_rows > 0, "{stats:?}");
        assert!(
            stats.resident_rows <= 30,
            "decoded sealed rows must fit the budget: {stats:?}"
        );
        // Every query path answers bit-identically to the all-resident
        // repository, paging spilled segments back in as needed.
        assert_eq!(repo.counts(RunScope::All), baseline.counts(RunScope::All));
        assert_eq!(
            repo.trajectories_scan(RunScope::All),
            baseline.trajectories_scan(RunScope::All)
        );
        assert_eq!(
            repo.trajectories_time_window(RunId(0).into(), Timestamp(100), Timestamp(900)),
            baseline.trajectories_time_window(RunId(0).into(), Timestamp(100), Timestamp(900))
        );
        assert_eq!(
            repo.trajectories_snapshot_at(RunScope::All, Timestamp(700)),
            baseline.trajectories_snapshot_at(RunScope::All, Timestamp(700))
        );
        assert_eq!(
            repo.object_trace(RunScope::All, ObjectId(2)),
            baseline.object_trace(RunScope::All, ObjectId(2))
        );
        let window = Aabb::new(Point::new(10.0, 0.0), Point::new(60.0, 2.0));
        assert_eq!(
            repo.trajectories_range_query(RunScope::All, FloorId(0), &window),
            baseline.trajectories_range_query(RunScope::All, FloorId(0), &window)
        );
        assert!(repo.stats().page_ins >= 1, "{:?}", repo.stats());
        // Queries paged segments in; the next maintenance round brings
        // the gauge back under the budget.
        repo.seal_now();
        assert!(repo.stats().resident_rows <= 30, "{:?}", repo.stats());
        // Export splices spilled raw bytes; it must equal the
        // all-resident export and the typed re-encode path byte-for-byte.
        let spilled_export = repo.export();
        let resident_export = baseline.export();
        let reencoded_export = repo.export_reencode();
        assert_eq!(spilled_export.trajectories, resident_export.trajectories);
        assert_eq!(spilled_export.rssi, resident_export.rssi);
        assert_eq!(spilled_export.fixes, resident_export.fixes);
        assert_eq!(spilled_export.proximity, resident_export.proximity);
        assert_eq!(spilled_export.trajectories, reencoded_export.trajectories);
        assert_eq!(spilled_export.rssi, reencoded_export.rssi);
        assert_eq!(spilled_export.fixes, reencoded_export.fixes);
        assert_eq!(spilled_export.proximity, reencoded_export.proximity);
    }

    #[test]
    fn spill_directory_is_removed_on_drop() {
        let cfg = SegmentConfig {
            seal_rows: 8,
            ..SegmentConfig::default()
        };
        let spill = tiny_spill("drop", 8);
        let parent = spill.dir.clone();
        {
            let repo = SegmentedRepository::with_spill(cfg, spill);
            fill(&repo);
            repo.seal_now();
            assert!(repo.stats().spills >= 1, "{:?}", repo.stats());
            let live = std::fs::read_dir(&parent).unwrap().count();
            assert!(live >= 1, "instance subdir must exist while alive");
        }
        let leftover = std::fs::read_dir(&parent).map(|d| d.count()).unwrap_or(0);
        assert_eq!(leftover, 0, "per-instance spill dir must be removed");
        let _ = std::fs::remove_dir_all(&parent);
    }
}
