//! Indexed in-memory tables for the generated data.
//!
//! The paper stores generated data "into different repositories with
//! efficient indices" on PostgreSQL+PostGIS (§4.2). This module is the
//! embedded substitute: each repository is a typed table with
//!
//! * a B-tree index on time (range/window scans),
//! * a hash index on object id (trace extraction),
//! * for location-bearing tables, a per-floor uniform-grid spatial index
//!   (range and nearest queries — the PostGIS role).

use std::collections::{BTreeMap, HashMap};

use vita_geometry::{Aabb, GridIndex, Point};
use vita_indoor::{DeviceId, FloorId, LocKind, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

/// Row identifier within one table.
pub type RowId = u32;

/// Merge a batch's `(timestamp, row)` pairs into a time index. When the
/// index is empty (the common bulk-load case) the B-tree is built in one
/// pass from the sorted pairs instead of `n` point insertions; the sort is
/// stable so rows sharing a timestamp keep arrival order, matching what
/// repeated [`TrajectoryTable::insert`] would have produced.
fn index_times<T>(
    batch: &[T],
    base: RowId,
    t_of: impl Fn(&T) -> Timestamp,
    by_time: &mut BTreeMap<Timestamp, Vec<RowId>>,
) {
    if by_time.is_empty() {
        let mut pairs: Vec<(Timestamp, RowId)> = batch
            .iter()
            .enumerate()
            .map(|(i, r)| (t_of(r), base + i as RowId))
            .collect();
        pairs.sort_by_key(|(t, _)| *t);
        let mut groups: Vec<(Timestamp, Vec<RowId>)> = Vec::new();
        for (t, id) in pairs {
            match groups.last_mut() {
                Some((gt, ids)) if *gt == t => ids.push(id),
                _ => groups.push((t, vec![id])),
            }
        }
        *by_time = groups.into_iter().collect();
    } else {
        for (i, r) in batch.iter().enumerate() {
            by_time.entry(t_of(r)).or_default().push(base + i as RowId);
        }
    }
}

/// A table of raw trajectory samples `(o_id, loc, t)`.
#[derive(Debug, Default, Clone)]
pub struct TrajectoryTable {
    rows: Vec<TrajectorySample>,
    by_time: BTreeMap<Timestamp, Vec<RowId>>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    /// Lazily built spatial index per floor (invalidated on insert).
    spatial: Option<HashMap<FloorId, GridIndex>>,
}

impl TrajectoryTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn insert(&mut self, s: TrajectorySample) -> RowId {
        let id = self.rows.len() as RowId;
        self.by_time.entry(s.t).or_default().push(id);
        self.by_object.entry(s.object).or_default().push(id);
        self.rows.push(s);
        self.spatial = None;
        id
    }

    pub fn insert_bulk(&mut self, samples: impl IntoIterator<Item = TrajectorySample>) {
        self.append_batch(samples.into_iter().collect());
    }

    /// Append one owned batch: rows move in wholesale, the time index is
    /// bulk-built when the table was empty, and the spatial index is
    /// invalidated once rather than per row. This is the ingest hot path of
    /// the streaming pipeline (one batch per [`crate::ProductBatch`]).
    pub fn append_batch(&mut self, mut batch: Vec<TrajectorySample>) {
        if batch.is_empty() {
            return;
        }
        let base = self.rows.len() as RowId;
        for (i, s) in batch.iter().enumerate() {
            self.by_object
                .entry(s.object)
                .or_default()
                .push(base + i as RowId);
        }
        index_times(&batch, base, |s| s.t, &mut self.by_time);
        self.rows.append(&mut batch);
        self.spatial = None;
    }

    pub fn get(&self, id: RowId) -> Option<&TrajectorySample> {
        self.rows.get(id as usize)
    }

    pub fn scan(&self) -> impl Iterator<Item = &TrajectorySample> {
        self.rows.iter()
    }

    /// All samples with `from <= t < to`, time-ordered.
    pub fn time_window(&self, from: Timestamp, to: Timestamp) -> Vec<&TrajectorySample> {
        let mut out = Vec::new();
        for (_, ids) in self.by_time.range(from..to) {
            out.extend(ids.iter().map(|&i| &self.rows[i as usize]));
        }
        out
    }

    /// An object's full trace, time-ordered.
    pub fn object_trace(&self, o: ObjectId) -> Vec<&TrajectorySample> {
        let mut rows: Vec<&TrajectorySample> = self
            .by_object
            .get(&o)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default();
        rows.sort_by_key(|s| s.t);
        rows
    }

    /// Latest sample at or before `t` for every object: the snapshot the
    /// demo GUI extracts when generation is paused (paper §5 step 4).
    pub fn snapshot_at(&self, t: Timestamp) -> Vec<&TrajectorySample> {
        let mut latest: HashMap<ObjectId, &TrajectorySample> = HashMap::new();
        for (_, ids) in self.by_time.range(..=t) {
            for &i in ids {
                let s = &self.rows[i as usize];
                latest.insert(s.object, s);
            }
        }
        let mut v: Vec<&TrajectorySample> = latest.into_values().collect();
        v.sort_by_key(|s| s.object);
        v
    }

    fn ensure_spatial(&mut self) {
        if self.spatial.is_some() {
            return;
        }
        let mut per_floor: HashMap<FloorId, Vec<(RowId, Point)>> = HashMap::new();
        for (i, s) in self.rows.iter().enumerate() {
            if let LocKind::Point(p) = s.loc.kind {
                per_floor
                    .entry(s.loc.floor)
                    .or_default()
                    .push((i as RowId, p));
            }
        }
        let mut indexes = HashMap::new();
        for (floor, pts) in per_floor {
            let domain =
                Aabb::from_points(&pts.iter().map(|(_, p)| *p).collect::<Vec<_>>()).inflated(1.0);
            let cell = (domain.width().max(domain.height()) / 32.0).max(0.5);
            let mut g = GridIndex::new(domain, cell);
            for (id, p) in pts {
                g.insert_point(id, p);
            }
            indexes.insert(floor, g);
        }
        self.spatial = Some(indexes);
    }

    /// Spatial range query: samples on `floor` inside `query` (any time).
    pub fn range_query(&mut self, floor: FloorId, query: &Aabb) -> Vec<&TrajectorySample> {
        self.ensure_spatial();
        let Some(g) = self.spatial.as_ref().unwrap().get(&floor) else {
            return Vec::new();
        };
        let mut ids = g.query_bbox(query);
        ids.sort_unstable();
        ids.into_iter()
            .map(|i| &self.rows[i as usize])
            .filter(|s| matches!(s.loc.kind, LocKind::Point(p) if query.contains_point(p)))
            .collect()
    }

    /// k nearest samples to `p` on `floor` (by point distance, any time).
    pub fn knn(&mut self, floor: FloorId, p: Point, k: usize) -> Vec<(&TrajectorySample, f64)> {
        self.ensure_spatial();
        let Some(g) = self.spatial.as_ref().unwrap().get(&floor) else {
            return Vec::new();
        };
        // Expanding-radius search over the grid.
        let mut radius = g.cell_size();
        let mut candidates: Vec<u32> = Vec::new();
        let max_radius = g.domain().width().max(g.domain().height()) * 2.0 + 1.0;
        while candidates.len() < k && radius <= max_radius {
            candidates = g.query_radius(p, radius);
            radius *= 2.0;
        }
        let mut scored: Vec<(&TrajectorySample, f64)> = candidates
            .into_iter()
            .filter_map(|i| {
                let s = &self.rows[i as usize];
                match s.loc.kind {
                    LocKind::Point(q) => Some((s, q.dist(p))),
                    LocKind::Partition(_) => None,
                }
            })
            .collect();
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        scored.truncate(k);
        scored
    }
}

/// A table of raw RSSI measurements `(o_id, d_id, rssi, t)`.
#[derive(Debug, Default, Clone)]
pub struct RssiTable {
    rows: Vec<RssiMeasurement>,
    by_time: BTreeMap<Timestamp, Vec<RowId>>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    by_device: HashMap<DeviceId, Vec<RowId>>,
}

impl RssiTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn insert(&mut self, m: RssiMeasurement) -> RowId {
        let id = self.rows.len() as RowId;
        self.by_time.entry(m.t).or_default().push(id);
        self.by_object.entry(m.object).or_default().push(id);
        self.by_device.entry(m.device).or_default().push(id);
        self.rows.push(m);
        id
    }

    pub fn insert_bulk(&mut self, ms: impl IntoIterator<Item = RssiMeasurement>) {
        self.append_batch(ms.into_iter().collect());
    }

    /// Append one owned batch (see [`TrajectoryTable::append_batch`]).
    pub fn append_batch(&mut self, mut batch: Vec<RssiMeasurement>) {
        if batch.is_empty() {
            return;
        }
        let base = self.rows.len() as RowId;
        for (i, m) in batch.iter().enumerate() {
            let id = base + i as RowId;
            self.by_object.entry(m.object).or_default().push(id);
            self.by_device.entry(m.device).or_default().push(id);
        }
        index_times(&batch, base, |m| m.t, &mut self.by_time);
        self.rows.append(&mut batch);
    }

    pub fn scan(&self) -> impl Iterator<Item = &RssiMeasurement> {
        self.rows.iter()
    }

    pub fn time_window(&self, from: Timestamp, to: Timestamp) -> Vec<&RssiMeasurement> {
        let mut out = Vec::new();
        for (_, ids) in self.by_time.range(from..to) {
            out.extend(ids.iter().map(|&i| &self.rows[i as usize]));
        }
        out
    }

    pub fn of_object(&self, o: ObjectId) -> Vec<&RssiMeasurement> {
        let mut rows: Vec<&RssiMeasurement> = self
            .by_object
            .get(&o)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default();
        rows.sort_by_key(|m| m.t);
        rows
    }

    pub fn of_device(&self, d: DeviceId) -> Vec<&RssiMeasurement> {
        let mut rows: Vec<&RssiMeasurement> = self
            .by_device
            .get(&d)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default();
        rows.sort_by_key(|m| m.t);
        rows
    }
}

/// A table of deterministic positioning fixes `(o_id, loc, t)`.
#[derive(Debug, Default, Clone)]
pub struct FixTable {
    rows: Vec<Fix>,
    by_time: BTreeMap<Timestamp, Vec<RowId>>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
}

impl FixTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn insert(&mut self, f: Fix) -> RowId {
        let id = self.rows.len() as RowId;
        self.by_time.entry(f.t).or_default().push(id);
        self.by_object.entry(f.object).or_default().push(id);
        self.rows.push(f);
        id
    }

    pub fn insert_bulk(&mut self, fs: impl IntoIterator<Item = Fix>) {
        self.append_batch(fs.into_iter().collect());
    }

    /// Append one owned batch (see [`TrajectoryTable::append_batch`]).
    pub fn append_batch(&mut self, mut batch: Vec<Fix>) {
        if batch.is_empty() {
            return;
        }
        let base = self.rows.len() as RowId;
        for (i, f) in batch.iter().enumerate() {
            self.by_object
                .entry(f.object)
                .or_default()
                .push(base + i as RowId);
        }
        index_times(&batch, base, |f| f.t, &mut self.by_time);
        self.rows.append(&mut batch);
    }

    pub fn scan(&self) -> impl Iterator<Item = &Fix> {
        self.rows.iter()
    }

    pub fn time_window(&self, from: Timestamp, to: Timestamp) -> Vec<&Fix> {
        let mut out = Vec::new();
        for (_, ids) in self.by_time.range(from..to) {
            out.extend(ids.iter().map(|&i| &self.rows[i as usize]));
        }
        out
    }

    pub fn of_object(&self, o: ObjectId) -> Vec<&Fix> {
        let mut rows: Vec<&Fix> = self
            .by_object
            .get(&o)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default();
        rows.sort_by_key(|f| f.t);
        rows
    }
}

/// A table of proximity detection periods `(o_id, d_id, ts, te)`.
#[derive(Debug, Default, Clone)]
pub struct ProximityTable {
    rows: Vec<ProximityRecord>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    by_device: HashMap<DeviceId, Vec<RowId>>,
}

impl ProximityTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn insert(&mut self, r: ProximityRecord) -> RowId {
        let id = self.rows.len() as RowId;
        self.by_object.entry(r.object).or_default().push(id);
        self.by_device.entry(r.device).or_default().push(id);
        self.rows.push(r);
        id
    }

    pub fn insert_bulk(&mut self, rs: impl IntoIterator<Item = ProximityRecord>) {
        self.append_batch(rs.into_iter().collect());
    }

    /// Append one owned batch (see [`TrajectoryTable::append_batch`]).
    pub fn append_batch(&mut self, mut batch: Vec<ProximityRecord>) {
        if batch.is_empty() {
            return;
        }
        let base = self.rows.len() as RowId;
        for (i, r) in batch.iter().enumerate() {
            let id = base + i as RowId;
            self.by_object.entry(r.object).or_default().push(id);
            self.by_device.entry(r.device).or_default().push(id);
        }
        self.rows.append(&mut batch);
    }

    pub fn scan(&self) -> impl Iterator<Item = &ProximityRecord> {
        self.rows.iter()
    }

    /// Records overlapping the window `[from, to)`.
    pub fn overlapping(&self, from: Timestamp, to: Timestamp) -> Vec<&ProximityRecord> {
        self.rows
            .iter()
            .filter(|r| r.ts < to && r.te >= from)
            .collect()
    }

    pub fn of_object(&self, o: ObjectId) -> Vec<&ProximityRecord> {
        let mut rows: Vec<&ProximityRecord> = self
            .by_object
            .get(&o)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default();
        rows.sort_by_key(|r| r.ts);
        rows
    }

    pub fn of_device(&self, d: DeviceId) -> Vec<&ProximityRecord> {
        let mut rows: Vec<&ProximityRecord> = self
            .by_device
            .get(&d)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default();
        rows.sort_by_key(|r| r.ts);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_indoor::BuildingId;

    fn ts(o: u32, f: u32, x: f64, y: f64, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(f),
            Point::new(x, y),
            Timestamp(t),
        )
    }

    #[test]
    fn trajectory_time_window_uses_index() {
        let mut t = TrajectoryTable::new();
        for i in 0..100u64 {
            t.insert(ts(0, 0, i as f64, 0.0, i * 100));
        }
        let w = t.time_window(Timestamp(1000), Timestamp(2000));
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|s| s.t.0 >= 1000 && s.t.0 < 2000));
    }

    #[test]
    fn object_trace_is_time_ordered() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(1, 0, 2.0, 0.0, 200));
        t.insert(ts(0, 0, 0.0, 0.0, 0));
        t.insert(ts(1, 0, 1.0, 0.0, 100));
        let trace = t.object_trace(ObjectId(1));
        assert_eq!(trace.len(), 2);
        assert!(trace[0].t < trace[1].t);
        assert!(t.object_trace(ObjectId(9)).is_empty());
    }

    #[test]
    fn snapshot_picks_latest_per_object() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 0.0, 0.0, 0));
        t.insert(ts(0, 0, 5.0, 0.0, 500));
        t.insert(ts(1, 0, 9.0, 0.0, 300));
        t.insert(ts(0, 0, 9.0, 0.0, 900)); // after snapshot time
        let snap = t.snapshot_at(Timestamp(600));
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].object, ObjectId(0));
        assert!((snap[0].point().x - 5.0).abs() < 1e-9);
        assert!((snap[1].point().x - 9.0).abs() < 1e-9);
    }

    #[test]
    fn spatial_range_query() {
        let mut t = TrajectoryTable::new();
        for i in 0..10 {
            t.insert(ts(i, 0, i as f64 * 2.0, 1.0, 0));
        }
        t.insert(ts(99, 1, 5.0, 1.0, 0)); // other floor
        let hits = t.range_query(
            FloorId(0),
            &Aabb::new(Point::new(3.0, 0.0), Point::new(9.0, 2.0)),
        );
        assert_eq!(hits.len(), 3); // x = 4, 6, 8
        let none = t.range_query(
            FloorId(3),
            &Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn knn_returns_sorted_neighbours() {
        let mut t = TrajectoryTable::new();
        for i in 0..20 {
            t.insert(ts(i, 0, i as f64, 0.0, 0));
        }
        let got = t.knn(FloorId(0), Point::new(7.2, 0.0), 3);
        assert_eq!(got.len(), 3);
        let xs: Vec<f64> = got.iter().map(|(s, _)| s.point().x).collect();
        assert_eq!(xs, vec![7.0, 8.0, 6.0]);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn spatial_index_invalidated_on_insert() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 0.0, 0.0, 0));
        let _ = t.knn(FloorId(0), Point::new(0.0, 0.0), 1);
        t.insert(ts(1, 0, 10.0, 0.0, 0));
        let got = t.knn(FloorId(0), Point::new(10.0, 0.0), 1);
        assert_eq!(got[0].0.object, ObjectId(1));
    }

    #[test]
    fn append_batch_matches_per_row_insert() {
        // Same rows via the bulk and per-row paths — queries must agree,
        // including order among duplicate timestamps.
        let rows: Vec<TrajectorySample> = (0..200)
            .map(|i| ts(i % 7, 0, i as f64, 0.0, (i % 40) as u64 * 50))
            .collect();
        let mut bulk = TrajectoryTable::new();
        bulk.append_batch(rows.clone());
        // Second batch exercises the non-empty merge path.
        let extra: Vec<TrajectorySample> =
            (0..60).map(|i| ts(i % 5, 0, i as f64, 1.0, 975)).collect();
        bulk.append_batch(extra.clone());

        let mut single = TrajectoryTable::new();
        for s in rows.iter().chain(&extra) {
            single.insert(*s);
        }
        assert_eq!(bulk.len(), single.len());
        let wa = bulk.time_window(Timestamp(0), Timestamp(2001));
        let wb = single.time_window(Timestamp(0), Timestamp(2001));
        assert_eq!(wa.len(), wb.len());
        for (a, b) in wa.iter().zip(&wb) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.object, b.object);
            assert!((a.point().x - b.point().x).abs() < 1e-12);
        }
        for o in 0..7 {
            assert_eq!(
                bulk.object_trace(ObjectId(o)).len(),
                single.object_trace(ObjectId(o)).len()
            );
        }
        let sa = bulk.snapshot_at(Timestamp(980));
        let sb = single.snapshot_at(Timestamp(980));
        assert_eq!(sa.len(), sb.len());
        for (a, b) in sa.iter().zip(&sb) {
            assert!((a.point().x - b.point().x).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut t = TrajectoryTable::new();
        t.append_batch(Vec::new());
        assert!(t.is_empty());
        let mut r = RssiTable::new();
        r.append_batch(Vec::new());
        assert!(r.is_empty());
    }

    #[test]
    fn rssi_table_indexes() {
        let mut t = RssiTable::new();
        for i in 0..10u64 {
            t.insert(RssiMeasurement {
                object: ObjectId((i % 2) as u32),
                device: DeviceId((i % 3) as u32),
                rssi: -40.0 - i as f64,
                t: Timestamp(i * 10),
            });
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.of_object(ObjectId(0)).len(), 5);
        assert_eq!(t.of_device(DeviceId(0)).len(), 4);
        assert_eq!(t.time_window(Timestamp(0), Timestamp(50)).len(), 5);
        // Per-object rows are time ordered.
        let rows = t.of_object(ObjectId(1));
        assert!(rows.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn fix_table_roundtrip() {
        use vita_indoor::Loc;
        let mut t = FixTable::new();
        t.insert(Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(1.0, 2.0)),
            t: Timestamp(100),
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.of_object(ObjectId(0)).len(), 1);
        assert_eq!(t.time_window(Timestamp(0), Timestamp(200)).len(), 1);
        assert_eq!(t.time_window(Timestamp(200), Timestamp(300)).len(), 0);
    }

    #[test]
    fn proximity_overlap_query() {
        let mut t = ProximityTable::new();
        t.insert(ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(100),
            te: Timestamp(500),
        });
        t.insert(ProximityRecord {
            object: ObjectId(1),
            device: DeviceId(1),
            ts: Timestamp(800),
            te: Timestamp(900),
        });
        assert_eq!(t.overlapping(Timestamp(0), Timestamp(600)).len(), 1);
        assert_eq!(t.overlapping(Timestamp(450), Timestamp(850)).len(), 2);
        assert_eq!(t.overlapping(Timestamp(901), Timestamp(1000)).len(), 0);
        assert_eq!(t.of_device(DeviceId(1)).len(), 1);
        assert_eq!(t.of_object(ObjectId(0)).len(), 1);
    }
}
