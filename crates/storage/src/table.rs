//! Indexed in-memory tables for the generated data.
//!
//! The paper stores generated data "into different repositories with
//! efficient indices" on PostgreSQL+PostGIS (§4.2). This module is the
//! embedded substitute: each repository is a typed table with
//!
//! * a B-tree index on time (range/window scans),
//! * a hash index on object id (trace extraction),
//! * for location-bearing tables, a per-floor uniform-grid spatial index
//!   (range and nearest queries — the PostGIS role).

use std::collections::{BTreeMap, HashMap};

use parking_lot::RwLock;
use vita_geometry::{Aabb, GridIndex, Point};
use vita_indoor::{DeviceId, FloorId, LocKind, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;

use crate::RunScope;

/// Row identifier within one table.
pub type RowId = u32;

/// Checked `usize → RowId` conversion for freshly assigned row ids.
///
/// `RowId` is `u32`; a table past 2³² rows would silently wrap under an
/// `as` cast, aliasing old rows in every index that stores row ids and
/// corrupting query answers from then on. Panic loudly instead: the
/// embedded engine does not support tables that large, and callers that
/// need more rows should shard (see [`crate::ShardedRepository`]).
#[inline]
pub(crate) fn checked_row_id(index: usize) -> RowId {
    RowId::try_from(index).unwrap_or_else(|_| {
        panic!(
            "table row index {index} exceeds RowId capacity ({}); \
             split the data across shards (ShardedRepository) or widen RowId",
            u32::MAX
        )
    })
}

/// Merge a batch's `(timestamp, row)` pairs into a time index. When the
/// index is empty (the common bulk-load case) the B-tree is built in one
/// pass from the sorted pairs instead of `n` point insertions; the sort is
/// stable so rows sharing a timestamp keep arrival order, matching what
/// repeated [`TrajectoryTable::insert`] would have produced.
fn index_times<T>(
    batch: &[T],
    base: RowId,
    t_of: impl Fn(&T) -> Timestamp,
    by_time: &mut BTreeMap<Timestamp, Vec<RowId>>,
) {
    if by_time.is_empty() {
        let mut pairs: Vec<(Timestamp, RowId)> = batch
            .iter()
            .enumerate()
            .map(|(i, r)| (t_of(r), base + i as RowId))
            .collect();
        pairs.sort_by_key(|(t, _)| *t);
        let mut groups: Vec<(Timestamp, Vec<RowId>)> = Vec::new();
        for (t, id) in pairs {
            match groups.last_mut() {
                Some((gt, ids)) if *gt == t => ids.push(id),
                _ => groups.push((t, vec![id])),
            }
        }
        *by_time = groups.into_iter().collect();
    } else {
        // One B-tree lookup per *run* of equal timestamps, not per row —
        // producers emit time-ordered batches (see the `ProductSink`
        // contract), where e.g. RSSI rows repeat each timestamp once per
        // device. Correct for unsorted input too: runs are just shorter.
        let mut i = 0;
        while i < batch.len() {
            let t = t_of(&batch[i]);
            let ids = by_time.entry(t).or_default();
            ids.push(base + i as RowId);
            i += 1;
            while i < batch.len() && t_of(&batch[i]) == t {
                ids.push(base + i as RowId);
                i += 1;
            }
        }
    }
}

/// A table of raw trajectory samples `(o_id, loc, t)`, tagged with the
/// [`RunId`] that produced each row (see the crate docs on the run
/// dimension). Every query takes a [`RunScope`]: [`RunScope::All`] answers
/// over all runs merged, [`RunScope::One`] restricts it to one run.
#[derive(Debug, Default)]
pub struct TrajectoryTable {
    rows: Vec<TrajectorySample>,
    /// Run tag of each row, parallel to `rows`.
    runs: Vec<RunId>,
    by_time: BTreeMap<Timestamp, Vec<RowId>>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    /// Row ids per run, in insertion order (BTreeMap so `run_ids` is
    /// sorted for free).
    by_run: BTreeMap<RunId, Vec<RowId>>,
    /// Lazily built spatial index per floor, cached behind its own lock so
    /// spatial *queries* work on `&self` — i.e. through a repository
    /// *read* lock, concurrently with other readers. A missing key means
    /// the floor's index has not been built; `None` records that the floor
    /// was scanned and holds no point rows. Mutations evict **only the
    /// floors their point rows touch** through `&mut self` (`get_mut`, no
    /// lock traffic), so ingestion into one floor never throws away
    /// another floor's grid — and within one shared-borrow epoch each
    /// entry only ever goes from absent to built (`OnceLock`-style), never
    /// stale.
    spatial: RwLock<HashMap<FloorId, Option<GridIndex>>>,
}

impl Clone for TrajectoryTable {
    fn clone(&self) -> Self {
        TrajectoryTable {
            rows: self.rows.clone(),
            runs: self.runs.clone(),
            by_time: self.by_time.clone(),
            by_object: self.by_object.clone(),
            by_run: self.by_run.clone(),
            spatial: RwLock::new(self.spatial.read().clone()),
        }
    }
}

impl TrajectoryTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one row under [`RunId::DEFAULT`].
    pub fn insert(&mut self, s: TrajectorySample) -> RowId {
        self.insert_run(RunId::DEFAULT, s)
    }

    /// Insert one row tagged with `run`.
    pub fn insert_run(&mut self, run: RunId, s: TrajectorySample) -> RowId {
        let id = checked_row_id(self.rows.len());
        self.by_time.entry(s.t).or_default().push(id);
        self.by_object.entry(s.object).or_default().push(id);
        self.by_run.entry(run).or_default().push(id);
        if matches!(s.loc.kind, LocKind::Point(_)) {
            self.spatial.get_mut().remove(&s.loc.floor);
        }
        self.rows.push(s);
        self.runs.push(run);
        id
    }

    pub fn insert_bulk(&mut self, samples: impl IntoIterator<Item = TrajectorySample>) {
        self.append_batch(samples.into_iter().collect());
    }

    /// Append one owned batch under [`RunId::DEFAULT`].
    pub fn append_batch(&mut self, batch: Vec<TrajectorySample>) {
        self.append_batch_run(RunId::DEFAULT, batch);
    }

    /// Append one owned batch tagged with `run`: rows move in wholesale,
    /// the time index is bulk-built when the table was empty, and only the
    /// floors the batch's point rows land on have their spatial index
    /// evicted — cold floors keep their grids through ingestion. This is
    /// the ingest hot path of the streaming pipeline (one batch per
    /// [`crate::ProductBatch`]).
    pub fn append_batch_run(&mut self, run: RunId, mut batch: Vec<TrajectorySample>) {
        if batch.is_empty() {
            return;
        }
        // One checked conversion covers the whole batch: if the last id
        // fits in RowId, every id in the batch does.
        let _ = checked_row_id(self.rows.len() + batch.len() - 1);
        let base = self.rows.len() as RowId;
        let run_ids = self.by_run.entry(run).or_default();
        for (i, s) in batch.iter().enumerate() {
            let id = base + i as RowId;
            self.by_object.entry(s.object).or_default().push(id);
            run_ids.push(id);
        }
        index_times(&batch, base, |s| s.t, &mut self.by_time);
        let spatial = self.spatial.get_mut();
        if !spatial.is_empty() {
            for s in &batch {
                if matches!(s.loc.kind, LocKind::Point(_)) {
                    spatial.remove(&s.loc.floor);
                }
            }
        }
        self.runs.resize(self.rows.len() + batch.len(), run);
        self.rows.append(&mut batch);
    }

    pub fn get(&self, id: RowId) -> Option<&TrajectorySample> {
        self.rows.get(id as usize)
    }

    /// Every run with at least one row in this table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        self.by_run.keys().copied().collect()
    }

    /// Rows ingested by `run`.
    pub fn len_run(&self, run: RunId) -> usize {
        self.by_run.get(&run).map_or(0, Vec::len)
    }

    /// Every row, all runs merged, in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &TrajectorySample> {
        self.rows.iter()
    }

    /// One run's rows, in insertion order.
    pub fn scan_run(&self, run: RunId) -> Vec<&TrajectorySample> {
        self.by_run
            .get(&run)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default()
    }

    /// All of `scope`'s samples in the **half-open** window
    /// `from <= t < to`, time-ordered (rows sharing a timestamp keep
    /// arrival order).
    ///
    /// Every `time_window` across the storage tables uses this half-open
    /// contract, and [`ProximityTable::overlapping`] intersects against the
    /// same half-open window, so adjacent windows partition a run with no
    /// row counted twice — and shard-merge queries
    /// ([`crate::ShardedRepository`]) cannot diverge from single-table
    /// answers at window edges.
    ///
    /// The scoped form walks the time index and filters per row — cost is
    /// `O(all runs' rows inside the window)`, which beats a per-run scan
    /// for the narrow windows time queries usually ask; for window spans
    /// approaching the whole run, prefer [`Self::scan_run`] and filter.
    pub fn time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&TrajectorySample> {
        let run = scope.run();
        let mut out = Vec::new();
        for (_, ids) in self.by_time.range(from..to) {
            out.extend(
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize]),
            );
        }
        out
    }

    /// `scope`'s trace of object `o`, time-ordered. Distinct runs reuse
    /// the same dense object-id space, so [`RunScope::All`] interleaves
    /// unrelated runs' objects — [`RunScope::One`] is the per-tenant view.
    pub fn object_trace(&self, scope: RunScope, o: ObjectId) -> Vec<&TrajectorySample> {
        let run = scope.run();
        let mut rows: Vec<&TrajectorySample> = self
            .by_object
            .get(&o)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize])
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by_key(|s| s.t);
        rows
    }

    /// Latest sample at or before `t` for every object of `scope` (the
    /// bound is **inclusive**: a sample stamped exactly `t` is eligible):
    /// the snapshot the demo GUI extracts when generation is paused (paper
    /// §5 step 4). Output is sorted by object id; among an object's samples
    /// sharing the latest timestamp the last-arrived row wins.
    ///
    /// [`RunScope::All`] walks the time index up to `t`;
    /// [`RunScope::One`] walks the run's own index instead — cost
    /// `O(this run's rows)`, independent of how many other runs share the
    /// table.
    pub fn snapshot_at(&self, scope: RunScope, t: Timestamp) -> Vec<&TrajectorySample> {
        let mut latest: HashMap<ObjectId, &TrajectorySample> = HashMap::new();
        match scope.run() {
            None => {
                for (_, ids) in self.by_time.range(..=t) {
                    for &i in ids {
                        let s = &self.rows[i as usize];
                        latest.insert(s.object, s);
                    }
                }
            }
            Some(run) => {
                let Some(ids) = self.by_run.get(&run) else {
                    return Vec::new();
                };
                // Ids are in arrival order, so replacing on `>=` reproduces
                // the snapshot contract: latest eligible timestamp wins,
                // last-arrived row wins among rows sharing it.
                for &i in ids {
                    let s = &self.rows[i as usize];
                    if s.t > t {
                        continue;
                    }
                    match latest.get(&s.object) {
                        Some(cur) if cur.t > s.t => {}
                        _ => {
                            latest.insert(s.object, s);
                        }
                    }
                }
            }
        }
        let mut v: Vec<&TrajectorySample> = latest.into_values().collect();
        v.sort_by_key(|s| s.object);
        v
    }

    /// Run `f` against `floor`'s spatial index, building it first if no
    /// cached copy exists (`None` if the floor holds no point rows).
    /// Readers share the cache under the inner read lock; the first query
    /// after a mutation rebuilds **that floor only** under the inner write
    /// lock. Taking `&self` is what lets spatial queries run through a
    /// repository *read* lock, concurrent with other readers (mutation is
    /// excluded for the whole call by the `&self` borrow).
    fn with_floor_spatial<R>(&self, floor: FloorId, f: impl FnOnce(Option<&GridIndex>) -> R) -> R {
        {
            let cache = self.spatial.read();
            if let Some(entry) = cache.get(&floor) {
                return f(entry.as_ref());
            }
        }
        let mut cache = self.spatial.write();
        // Another reader may have built this floor between the two locks.
        let entry = cache
            .entry(floor)
            .or_insert_with(|| build_floor_spatial(&self.rows, floor));
        f(entry.as_ref())
    }

    /// Spatial range query: `scope`'s samples on `floor` inside `query`
    /// (any time), in insertion order. Works on `&self`: callers behind a
    /// [`crate::Repository`] need only a read lock.
    pub fn range_query(
        &self,
        scope: RunScope,
        floor: FloorId,
        query: &Aabb,
    ) -> Vec<&TrajectorySample> {
        self.range_query_filtered(floor, query, scope.run())
    }

    fn range_query_filtered(
        &self,
        floor: FloorId,
        query: &Aabb,
        run: Option<RunId>,
    ) -> Vec<&TrajectorySample> {
        let mut ids = self.with_floor_spatial(floor, |g| {
            g.map(|g| g.query_bbox(query)).unwrap_or_default()
        });
        ids.sort_unstable();
        ids.into_iter()
            .filter(|&i| run.is_none_or(|r| self.runs[i as usize] == r))
            .map(|i| &self.rows[i as usize])
            .filter(|s| matches!(s.loc.kind, LocKind::Point(p) if query.contains_point(p)))
            .collect()
    }

    /// `scope`'s k nearest samples to `p` on `floor` (by point distance,
    /// any time). Works on `&self` (read-lock access), like
    /// [`Self::range_query`].
    pub fn knn(
        &self,
        scope: RunScope,
        floor: FloorId,
        p: Point,
        k: usize,
    ) -> Vec<(&TrajectorySample, f64)> {
        self.knn_filtered(floor, p, k, scope.run())
    }

    fn knn_filtered(
        &self,
        floor: FloorId,
        p: Point,
        k: usize,
        run: Option<RunId>,
    ) -> Vec<(&TrajectorySample, f64)> {
        let candidates = self.with_floor_spatial(floor, |g| {
            let Some(g) = g else {
                return Vec::new();
            };
            // Expanding-radius search over the grid. The cap must reach
            // the farthest indexed point even when `p` lies outside the
            // domain (a shard's domain covers only its own points, and
            // callers may query anywhere), so it is anchored at the
            // query's distance to the domain, not the domain size alone.
            let dom = g.domain();
            // Every indexed point is within this of `p` (distance to the
            // domain plus its diagonal, bounded by width + height).
            let max_radius = dom.dist_to_point(p) + dom.width() + dom.height() + 1.0;
            let mut radius = g.cell_size().max(f64::MIN_POSITIVE);
            let mut candidates: Vec<u32>;
            loop {
                candidates = g.query_radius(p, radius.min(max_radius));
                // The run filter must apply before the `>= k` stop test:
                // counting other runs' points would end the expansion with
                // fewer than k of this run's points in reach.
                if let Some(r) = run {
                    candidates.retain(|&i| self.runs[i as usize] == r);
                }
                if candidates.len() >= k || radius >= max_radius {
                    break;
                }
                radius *= 2.0;
            }
            candidates
        });
        let mut scored: Vec<(&TrajectorySample, f64)> = candidates
            .into_iter()
            .filter_map(|i| {
                let s = &self.rows[i as usize];
                match s.loc.kind {
                    LocKind::Point(q) => Some((s, q.dist(p))),
                    LocKind::Partition(_) => None,
                }
            })
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1));
        scored.truncate(k);
        scored
    }
}

/// Build one floor's spatial index over its point-located rows, or `None`
/// when the floor holds no point rows (cached as a negative entry so the
/// scan is not repeated per query).
fn build_floor_spatial(rows: &[TrajectorySample], floor: FloorId) -> Option<GridIndex> {
    let mut pts: Vec<(RowId, Point)> = Vec::new();
    for (i, s) in rows.iter().enumerate() {
        if let LocKind::Point(p) = s.loc.kind {
            if s.loc.floor == floor {
                pts.push((checked_row_id(i), p));
            }
        }
    }
    if pts.is_empty() {
        return None;
    }
    let domain = Aabb::from_points(&pts.iter().map(|(_, p)| *p).collect::<Vec<_>>()).inflated(1.0);
    let cell = (domain.width().max(domain.height()) / 32.0).max(0.5);
    let mut g = GridIndex::new(domain, cell);
    for (id, p) in pts {
        g.insert_point(id, p);
    }
    Some(g)
}

/// A table of raw RSSI measurements `(o_id, d_id, rssi, t)`, run-tagged
/// like [`TrajectoryTable`].
#[derive(Debug, Default, Clone)]
pub struct RssiTable {
    rows: Vec<RssiMeasurement>,
    runs: Vec<RunId>,
    by_time: BTreeMap<Timestamp, Vec<RowId>>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    by_device: HashMap<DeviceId, Vec<RowId>>,
    by_run: BTreeMap<RunId, Vec<RowId>>,
}

impl RssiTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one row under [`RunId::DEFAULT`].
    pub fn insert(&mut self, m: RssiMeasurement) -> RowId {
        self.insert_run(RunId::DEFAULT, m)
    }

    /// Insert one row tagged with `run`.
    pub fn insert_run(&mut self, run: RunId, m: RssiMeasurement) -> RowId {
        let id = checked_row_id(self.rows.len());
        self.by_time.entry(m.t).or_default().push(id);
        self.by_object.entry(m.object).or_default().push(id);
        self.by_device.entry(m.device).or_default().push(id);
        self.by_run.entry(run).or_default().push(id);
        self.rows.push(m);
        self.runs.push(run);
        id
    }

    pub fn insert_bulk(&mut self, ms: impl IntoIterator<Item = RssiMeasurement>) {
        self.append_batch(ms.into_iter().collect());
    }

    /// Append one owned batch under [`RunId::DEFAULT`].
    pub fn append_batch(&mut self, batch: Vec<RssiMeasurement>) {
        self.append_batch_run(RunId::DEFAULT, batch);
    }

    /// Append one owned batch tagged with `run` (see
    /// [`TrajectoryTable::append_batch_run`]).
    pub fn append_batch_run(&mut self, run: RunId, mut batch: Vec<RssiMeasurement>) {
        if batch.is_empty() {
            return;
        }
        let _ = checked_row_id(self.rows.len() + batch.len() - 1);
        let base = self.rows.len() as RowId;
        let run_ids = self.by_run.entry(run).or_default();
        for (i, m) in batch.iter().enumerate() {
            let id = base + i as RowId;
            self.by_object.entry(m.object).or_default().push(id);
            self.by_device.entry(m.device).or_default().push(id);
            run_ids.push(id);
        }
        index_times(&batch, base, |m| m.t, &mut self.by_time);
        self.runs.resize(self.rows.len() + batch.len(), run);
        self.rows.append(&mut batch);
    }

    /// Every row, all runs merged, in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &RssiMeasurement> {
        self.rows.iter()
    }

    /// One run's rows, in insertion order.
    pub fn scan_run(&self, run: RunId) -> Vec<&RssiMeasurement> {
        self.by_run
            .get(&run)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Every run with at least one row in this table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        self.by_run.keys().copied().collect()
    }

    /// Rows ingested by `run`.
    pub fn len_run(&self, run: RunId) -> usize {
        self.by_run.get(&run).map_or(0, Vec::len)
    }

    /// All of `scope`'s measurements in the **half-open** window
    /// `from <= t < to`, time-ordered (same contract as
    /// [`TrajectoryTable::time_window`]).
    pub fn time_window(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&RssiMeasurement> {
        let run = scope.run();
        let mut out = Vec::new();
        for (_, ids) in self.by_time.range(from..to) {
            out.extend(
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize]),
            );
        }
        out
    }

    /// `scope`'s measurements of object `o`, time-ordered.
    pub fn of_object(&self, scope: RunScope, o: ObjectId) -> Vec<&RssiMeasurement> {
        let run = scope.run();
        let mut rows: Vec<&RssiMeasurement> = self
            .by_object
            .get(&o)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize])
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by_key(|m| m.t);
        rows
    }

    /// `scope`'s measurements through device `d`, time-ordered.
    pub fn of_device(&self, scope: RunScope, d: DeviceId) -> Vec<&RssiMeasurement> {
        let run = scope.run();
        let mut rows: Vec<&RssiMeasurement> = self
            .by_device
            .get(&d)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize])
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by_key(|m| m.t);
        rows
    }
}

/// A table of deterministic positioning fixes `(o_id, loc, t)`, run-tagged
/// like [`TrajectoryTable`].
#[derive(Debug, Default, Clone)]
pub struct FixTable {
    rows: Vec<Fix>,
    runs: Vec<RunId>,
    by_time: BTreeMap<Timestamp, Vec<RowId>>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    by_run: BTreeMap<RunId, Vec<RowId>>,
}

impl FixTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one row under [`RunId::DEFAULT`].
    pub fn insert(&mut self, f: Fix) -> RowId {
        self.insert_run(RunId::DEFAULT, f)
    }

    /// Insert one row tagged with `run`.
    pub fn insert_run(&mut self, run: RunId, f: Fix) -> RowId {
        let id = checked_row_id(self.rows.len());
        self.by_time.entry(f.t).or_default().push(id);
        self.by_object.entry(f.object).or_default().push(id);
        self.by_run.entry(run).or_default().push(id);
        self.rows.push(f);
        self.runs.push(run);
        id
    }

    pub fn insert_bulk(&mut self, fs: impl IntoIterator<Item = Fix>) {
        self.append_batch(fs.into_iter().collect());
    }

    /// Append one owned batch under [`RunId::DEFAULT`].
    pub fn append_batch(&mut self, batch: Vec<Fix>) {
        self.append_batch_run(RunId::DEFAULT, batch);
    }

    /// Append one owned batch tagged with `run` (see
    /// [`TrajectoryTable::append_batch_run`]).
    pub fn append_batch_run(&mut self, run: RunId, mut batch: Vec<Fix>) {
        if batch.is_empty() {
            return;
        }
        let _ = checked_row_id(self.rows.len() + batch.len() - 1);
        let base = self.rows.len() as RowId;
        let run_ids = self.by_run.entry(run).or_default();
        for (i, f) in batch.iter().enumerate() {
            let id = base + i as RowId;
            self.by_object.entry(f.object).or_default().push(id);
            run_ids.push(id);
        }
        index_times(&batch, base, |f| f.t, &mut self.by_time);
        self.runs.resize(self.rows.len() + batch.len(), run);
        self.rows.append(&mut batch);
    }

    /// Every row, all runs merged, in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &Fix> {
        self.rows.iter()
    }

    /// One run's rows, in insertion order.
    pub fn scan_run(&self, run: RunId) -> Vec<&Fix> {
        self.by_run
            .get(&run)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Every run with at least one row in this table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        self.by_run.keys().copied().collect()
    }

    /// Rows ingested by `run`.
    pub fn len_run(&self, run: RunId) -> usize {
        self.by_run.get(&run).map_or(0, Vec::len)
    }

    /// All of `scope`'s fixes in the **half-open** window `from <= t < to`,
    /// time-ordered (same contract as [`TrajectoryTable::time_window`]).
    pub fn time_window(&self, scope: RunScope, from: Timestamp, to: Timestamp) -> Vec<&Fix> {
        let run = scope.run();
        let mut out = Vec::new();
        for (_, ids) in self.by_time.range(from..to) {
            out.extend(
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize]),
            );
        }
        out
    }

    /// `scope`'s fixes of object `o`, time-ordered.
    pub fn of_object(&self, scope: RunScope, o: ObjectId) -> Vec<&Fix> {
        let run = scope.run();
        let mut rows: Vec<&Fix> = self
            .by_object
            .get(&o)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize])
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by_key(|f| f.t);
        rows
    }
}

/// A table of proximity detection periods `(o_id, d_id, ts, te)`,
/// run-tagged like [`TrajectoryTable`].
#[derive(Debug, Default, Clone)]
pub struct ProximityTable {
    rows: Vec<ProximityRecord>,
    runs: Vec<RunId>,
    by_object: HashMap<ObjectId, Vec<RowId>>,
    by_device: HashMap<DeviceId, Vec<RowId>>,
    by_run: BTreeMap<RunId, Vec<RowId>>,
}

impl ProximityTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert one row under [`RunId::DEFAULT`].
    pub fn insert(&mut self, r: ProximityRecord) -> RowId {
        self.insert_run(RunId::DEFAULT, r)
    }

    /// Insert one row tagged with `run`.
    pub fn insert_run(&mut self, run: RunId, r: ProximityRecord) -> RowId {
        let id = checked_row_id(self.rows.len());
        self.by_object.entry(r.object).or_default().push(id);
        self.by_device.entry(r.device).or_default().push(id);
        self.by_run.entry(run).or_default().push(id);
        self.rows.push(r);
        self.runs.push(run);
        id
    }

    pub fn insert_bulk(&mut self, rs: impl IntoIterator<Item = ProximityRecord>) {
        self.append_batch(rs.into_iter().collect());
    }

    /// Append one owned batch under [`RunId::DEFAULT`].
    pub fn append_batch(&mut self, batch: Vec<ProximityRecord>) {
        self.append_batch_run(RunId::DEFAULT, batch);
    }

    /// Append one owned batch tagged with `run` (see
    /// [`TrajectoryTable::append_batch_run`]).
    pub fn append_batch_run(&mut self, run: RunId, mut batch: Vec<ProximityRecord>) {
        if batch.is_empty() {
            return;
        }
        let _ = checked_row_id(self.rows.len() + batch.len() - 1);
        let base = self.rows.len() as RowId;
        let run_ids = self.by_run.entry(run).or_default();
        for (i, r) in batch.iter().enumerate() {
            let id = base + i as RowId;
            self.by_object.entry(r.object).or_default().push(id);
            self.by_device.entry(r.device).or_default().push(id);
            run_ids.push(id);
        }
        self.runs.resize(self.rows.len() + batch.len(), run);
        self.rows.append(&mut batch);
    }

    /// Every row, all runs merged, in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &ProximityRecord> {
        self.rows.iter()
    }

    /// One run's rows, in insertion order.
    pub fn scan_run(&self, run: RunId) -> Vec<&ProximityRecord> {
        self.by_run
            .get(&run)
            .map(|ids| ids.iter().map(|&i| &self.rows[i as usize]).collect())
            .unwrap_or_default()
    }

    /// Every run with at least one row in this table, ascending.
    pub fn run_ids(&self) -> Vec<RunId> {
        self.by_run.keys().copied().collect()
    }

    /// Rows ingested by `run`.
    pub fn len_run(&self, run: RunId) -> usize {
        self.by_run.get(&run).map_or(0, Vec::len)
    }

    /// `scope`'s records whose **closed** detection period `[ts, te]`
    /// intersects the **half-open** query window `[from, to)` — i.e.
    /// `ts < to && te >= from`, in insertion order.
    ///
    /// The window contract matches `time_window` on the other tables: a
    /// detection ending exactly at `from` is included (the instant `from`
    /// lies in the window), one starting exactly at `to` is not. Adjacent
    /// windows therefore agree with point-event queries at their shared
    /// boundary, and shard-merge queries cannot diverge from single-table
    /// answers at window edges.
    ///
    /// The run-scoped form walks the run's own index (`by_run` ids are in
    /// insertion order): cost is `O(this run's rows)`, independent of how
    /// many other runs share the table.
    pub fn overlapping(
        &self,
        scope: RunScope,
        from: Timestamp,
        to: Timestamp,
    ) -> Vec<&ProximityRecord> {
        match scope.run() {
            None => self
                .rows
                .iter()
                .filter(|r| r.ts < to && r.te >= from)
                .collect(),
            Some(run) => self
                .by_run
                .get(&run)
                .map(|ids| {
                    ids.iter()
                        .map(|&i| &self.rows[i as usize])
                        .filter(|r| r.ts < to && r.te >= from)
                        .collect()
                })
                .unwrap_or_default(),
        }
    }

    /// `scope`'s detection periods of object `o`, ordered by start time.
    pub fn of_object(&self, scope: RunScope, o: ObjectId) -> Vec<&ProximityRecord> {
        let run = scope.run();
        let mut rows: Vec<&ProximityRecord> = self
            .by_object
            .get(&o)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize])
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by_key(|r| r.ts);
        rows
    }

    /// `scope`'s detection periods through device `d`, ordered by start
    /// time.
    pub fn of_device(&self, scope: RunScope, d: DeviceId) -> Vec<&ProximityRecord> {
        let run = scope.run();
        let mut rows: Vec<&ProximityRecord> = self
            .by_device
            .get(&d)
            .map(|ids| {
                ids.iter()
                    .filter(|&&i| run.is_none_or(|r| self.runs[i as usize] == r))
                    .map(|&i| &self.rows[i as usize])
                    .collect()
            })
            .unwrap_or_default();
        rows.sort_by_key(|r| r.ts);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vita_indoor::BuildingId;

    fn ts(o: u32, f: u32, x: f64, y: f64, t: u64) -> TrajectorySample {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(f),
            Point::new(x, y),
            Timestamp(t),
        )
    }

    #[test]
    fn trajectory_time_window_uses_index() {
        let mut t = TrajectoryTable::new();
        for i in 0..100u64 {
            t.insert(ts(0, 0, i as f64, 0.0, i * 100));
        }
        let w = t.time_window(RunScope::All, Timestamp(1000), Timestamp(2000));
        assert_eq!(w.len(), 10);
        assert!(w.iter().all(|s| s.t.0 >= 1000 && s.t.0 < 2000));
    }

    #[test]
    fn object_trace_is_time_ordered() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(1, 0, 2.0, 0.0, 200));
        t.insert(ts(0, 0, 0.0, 0.0, 0));
        t.insert(ts(1, 0, 1.0, 0.0, 100));
        let trace = t.object_trace(RunScope::All, ObjectId(1));
        assert_eq!(trace.len(), 2);
        assert!(trace[0].t < trace[1].t);
        assert!(t.object_trace(RunScope::All, ObjectId(9)).is_empty());
    }

    #[test]
    fn snapshot_picks_latest_per_object() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 0.0, 0.0, 0));
        t.insert(ts(0, 0, 5.0, 0.0, 500));
        t.insert(ts(1, 0, 9.0, 0.0, 300));
        t.insert(ts(0, 0, 9.0, 0.0, 900)); // after snapshot time
        let snap = t.snapshot_at(RunScope::All, Timestamp(600));
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].object, ObjectId(0));
        assert!((snap[0].point().x - 5.0).abs() < 1e-9);
        assert!((snap[1].point().x - 9.0).abs() < 1e-9);
    }

    #[test]
    fn spatial_range_query() {
        let mut t = TrajectoryTable::new();
        for i in 0..10 {
            t.insert(ts(i, 0, i as f64 * 2.0, 1.0, 0));
        }
        t.insert(ts(99, 1, 5.0, 1.0, 0)); // other floor
        let hits = t.range_query(
            RunScope::All,
            FloorId(0),
            &Aabb::new(Point::new(3.0, 0.0), Point::new(9.0, 2.0)),
        );
        assert_eq!(hits.len(), 3); // x = 4, 6, 8
        let none = t.range_query(
            RunScope::All,
            FloorId(3),
            &Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn knn_returns_sorted_neighbours() {
        let mut t = TrajectoryTable::new();
        for i in 0..20 {
            t.insert(ts(i, 0, i as f64, 0.0, 0));
        }
        let got = t.knn(RunScope::All, FloorId(0), Point::new(7.2, 0.0), 3);
        assert_eq!(got.len(), 3);
        let xs: Vec<f64> = got.iter().map(|(s, _)| s.point().x).collect();
        assert_eq!(xs, vec![7.0, 8.0, 6.0]);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn checked_row_id_round_trips_in_range() {
        assert_eq!(checked_row_id(0), 0);
        assert_eq!(checked_row_id(5), 5);
        assert_eq!(checked_row_id(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds RowId capacity")]
    fn checked_row_id_panics_instead_of_wrapping() {
        let _ = checked_row_id(u32::MAX as usize + 1);
    }

    #[test]
    fn spatial_queries_work_on_shared_reference() {
        // The whole point of the interior-mutability fix: range_query/knn
        // must be callable through &TrajectoryTable (a repository read
        // lock), including the first query that builds the index.
        let mut t = TrajectoryTable::new();
        for i in 0..10 {
            t.insert(ts(i, 0, i as f64, 0.0, 0));
        }
        let shared: &TrajectoryTable = &t;
        let hits = shared.range_query(
            RunScope::All,
            FloorId(0),
            &Aabb::new(Point::new(-0.5, -0.5), Point::new(3.5, 0.5)),
        );
        assert_eq!(hits.len(), 4);
        let near = shared.knn(RunScope::All, FloorId(0), Point::new(2.2, 0.0), 2);
        assert_eq!(near.len(), 2);
        assert_eq!(near[0].0.object, ObjectId(2));
        // A clone carries the cached index (or lack of one) along.
        let cloned = t.clone();
        assert_eq!(
            cloned
                .knn(RunScope::All, FloorId(0), Point::new(2.2, 0.0), 2)
                .len(),
            near.len()
        );
    }

    #[test]
    fn time_window_boundaries_are_half_open() {
        // `from` is included, `to` is excluded — on every time-indexed
        // table, so window edges agree across products and backends.
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 0.0, 0.0, 100));
        t.insert(ts(0, 0, 1.0, 0.0, 200));
        let w = t.time_window(RunScope::All, Timestamp(100), Timestamp(200));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].t, Timestamp(100));

        let mut r = RssiTable::new();
        for tstamp in [100u64, 200] {
            r.insert(RssiMeasurement {
                object: ObjectId(0),
                device: DeviceId(0),
                rssi: -50.0,
                t: Timestamp(tstamp),
            });
        }
        assert_eq!(
            r.time_window(RunScope::All, Timestamp(100), Timestamp(200))
                .len(),
            1
        );

        use vita_indoor::Loc;
        let mut f = FixTable::new();
        for tstamp in [100u64, 200] {
            f.insert(Fix {
                object: ObjectId(0),
                loc: Loc::point(BuildingId(0), FloorId(0), Point::new(0.0, 0.0)),
                t: Timestamp(tstamp),
            });
        }
        assert_eq!(
            f.time_window(RunScope::All, Timestamp(100), Timestamp(200))
                .len(),
            1
        );
    }

    #[test]
    fn snapshot_at_bound_is_inclusive() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 1.0, 0.0, 500));
        let snap = t.snapshot_at(RunScope::All, Timestamp(500));
        assert_eq!(snap.len(), 1);
        assert!(t.snapshot_at(RunScope::All, Timestamp(499)).is_empty());
    }

    #[test]
    fn overlapping_boundaries_match_half_open_window() {
        let mut t = ProximityTable::new();
        t.insert(ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(100),
            te: Timestamp(300),
        });
        // Detection ending exactly at `from`: instant 300 is in [300, 400).
        assert_eq!(
            t.overlapping(RunScope::All, Timestamp(300), Timestamp(400))
                .len(),
            1
        );
        // Detection starting exactly at `to`: instant 100 is not in [0, 100).
        assert_eq!(
            t.overlapping(RunScope::All, Timestamp(0), Timestamp(100))
                .len(),
            0
        );
    }

    #[test]
    fn spatial_index_invalidated_on_insert() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 0.0, 0.0, 0));
        let _ = t.knn(RunScope::All, FloorId(0), Point::new(0.0, 0.0), 1);
        t.insert(ts(1, 0, 10.0, 0.0, 0));
        let got = t.knn(RunScope::All, FloorId(0), Point::new(10.0, 0.0), 1);
        assert_eq!(got[0].0.object, ObjectId(1));
    }

    #[test]
    fn spatial_invalidation_is_scoped_to_touched_floors() {
        let mut t = TrajectoryTable::new();
        t.insert(ts(0, 0, 1.0, 1.0, 0));
        t.insert(ts(1, 1, 5.0, 5.0, 0));
        // Build both floors' grids.
        let _ = t.knn(RunScope::All, FloorId(0), Point::new(0.0, 0.0), 1);
        let _ = t.knn(RunScope::All, FloorId(1), Point::new(0.0, 0.0), 1);
        assert!(t.spatial.read().contains_key(&FloorId(0)));
        assert!(t.spatial.read().contains_key(&FloorId(1)));
        // An append that only touches floor 1 must leave floor 0's grid
        // cached — and evict floor 1's.
        t.append_batch(vec![ts(2, 1, 9.0, 9.0, 10)]);
        assert!(t.spatial.read().contains_key(&FloorId(0)));
        assert!(!t.spatial.read().contains_key(&FloorId(1)));
        // Both floors still answer correctly (floor 1 rebuilds on demand,
        // seeing the new row).
        let f1 = t.knn(RunScope::All, FloorId(1), Point::new(9.0, 9.0), 1);
        assert_eq!(f1[0].0.object, ObjectId(2));
        let f0 = t.knn(RunScope::All, FloorId(0), Point::new(0.0, 0.0), 1);
        assert_eq!(f0[0].0.object, ObjectId(0));
        // A floor never seen before: missing key builds on demand too.
        t.append_batch(vec![ts(3, 2, 4.0, 4.0, 20)]);
        let f2 = t.range_query(
            RunScope::All,
            FloorId(2),
            &Aabb::new(Point::new(0.0, 0.0), Point::new(8.0, 8.0)),
        );
        assert_eq!(f2.len(), 1);
        // Queries against a floor with no point rows cache the negative
        // answer instead of rescanning.
        assert!(t
            .knn(RunScope::All, FloorId(9), Point::new(0.0, 0.0), 3)
            .is_empty());
        assert!(matches!(t.spatial.read().get(&FloorId(9)), Some(None)));
    }

    #[test]
    fn append_batch_matches_per_row_insert() {
        // Same rows via the bulk and per-row paths — queries must agree,
        // including order among duplicate timestamps.
        let rows: Vec<TrajectorySample> = (0..200)
            .map(|i| ts(i % 7, 0, i as f64, 0.0, (i % 40) as u64 * 50))
            .collect();
        let mut bulk = TrajectoryTable::new();
        bulk.append_batch(rows.clone());
        // Second batch exercises the non-empty merge path.
        let extra: Vec<TrajectorySample> =
            (0..60).map(|i| ts(i % 5, 0, i as f64, 1.0, 975)).collect();
        bulk.append_batch(extra.clone());

        let mut single = TrajectoryTable::new();
        for s in rows.iter().chain(&extra) {
            single.insert(*s);
        }
        assert_eq!(bulk.len(), single.len());
        let wa = bulk.time_window(RunScope::All, Timestamp(0), Timestamp(2001));
        let wb = single.time_window(RunScope::All, Timestamp(0), Timestamp(2001));
        assert_eq!(wa.len(), wb.len());
        for (a, b) in wa.iter().zip(&wb) {
            assert_eq!(a.t, b.t);
            assert_eq!(a.object, b.object);
            assert!((a.point().x - b.point().x).abs() < 1e-12);
        }
        for o in 0..7 {
            assert_eq!(
                bulk.object_trace(RunScope::All, ObjectId(o)).len(),
                single.object_trace(RunScope::All, ObjectId(o)).len()
            );
        }
        let sa = bulk.snapshot_at(RunScope::All, Timestamp(980));
        let sb = single.snapshot_at(RunScope::All, Timestamp(980));
        assert_eq!(sa.len(), sb.len());
        for (a, b) in sa.iter().zip(&sb) {
            assert!((a.point().x - b.point().x).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut t = TrajectoryTable::new();
        t.append_batch(Vec::new());
        assert!(t.is_empty());
        let mut r = RssiTable::new();
        r.append_batch(Vec::new());
        assert!(r.is_empty());
    }

    #[test]
    fn rssi_table_indexes() {
        let mut t = RssiTable::new();
        for i in 0..10u64 {
            t.insert(RssiMeasurement {
                object: ObjectId((i % 2) as u32),
                device: DeviceId((i % 3) as u32),
                rssi: -40.0 - i as f64,
                t: Timestamp(i * 10),
            });
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.of_object(RunScope::All, ObjectId(0)).len(), 5);
        assert_eq!(t.of_device(RunScope::All, DeviceId(0)).len(), 4);
        assert_eq!(
            t.time_window(RunScope::All, Timestamp(0), Timestamp(50))
                .len(),
            5
        );
        // Per-object rows are time ordered.
        let rows = t.of_object(RunScope::All, ObjectId(1));
        assert!(rows.windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn fix_table_roundtrip() {
        use vita_indoor::Loc;
        let mut t = FixTable::new();
        t.insert(Fix {
            object: ObjectId(0),
            loc: Loc::point(BuildingId(0), FloorId(0), Point::new(1.0, 2.0)),
            t: Timestamp(100),
        });
        assert_eq!(t.len(), 1);
        assert_eq!(t.of_object(RunScope::All, ObjectId(0)).len(), 1);
        assert_eq!(
            t.time_window(RunScope::All, Timestamp(0), Timestamp(200))
                .len(),
            1
        );
        assert_eq!(
            t.time_window(RunScope::All, Timestamp(200), Timestamp(300))
                .len(),
            0
        );
    }

    #[test]
    fn proximity_overlap_query() {
        let mut t = ProximityTable::new();
        t.insert(ProximityRecord {
            object: ObjectId(0),
            device: DeviceId(0),
            ts: Timestamp(100),
            te: Timestamp(500),
        });
        t.insert(ProximityRecord {
            object: ObjectId(1),
            device: DeviceId(1),
            ts: Timestamp(800),
            te: Timestamp(900),
        });
        assert_eq!(
            t.overlapping(RunScope::All, Timestamp(0), Timestamp(600))
                .len(),
            1
        );
        assert_eq!(
            t.overlapping(RunScope::All, Timestamp(450), Timestamp(850))
                .len(),
            2
        );
        assert_eq!(
            t.overlapping(RunScope::All, Timestamp(901), Timestamp(1000))
                .len(),
            0
        );
        assert_eq!(t.of_device(RunScope::All, DeviceId(1)).len(), 1);
        assert_eq!(t.of_object(RunScope::All, ObjectId(0)).len(), 1);
    }
}
