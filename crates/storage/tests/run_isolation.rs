//! Run isolation, table level: when two runs' batches are ingested
//! **interleaved** into one repository through
//! [`ProductSink::accept_run`], every run-scoped query must return row
//! sets **bit-identical** to a repository that only ever saw that run —
//! on both the single and the sharded backend. This is the storage half
//! of the multi-scenario concurrency contract (the pipeline half lives in
//! `tests/run_many_parity.rs` at the repo root).
//!
//! Comparisons sort on a full key where an order is not part of the
//! query's contract (scans across shards), and compare exactly where it
//! is (object-keyed queries, time windows within one backend).

use proptest::prelude::*;

use vita_geometry::{Aabb, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{ProductBatch, ProductSink, Repository, RunScope, ShardedRepository};

const OBJECTS: u32 = 16;
const DEVICES: u32 = 4;
const T_MAX: u64 = 8_000;

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (
        0u32..OBJECTS,
        0u32..2,
        -30.0f64..30.0,
        -30.0f64..30.0,
        0u64..T_MAX,
    )
        .prop_map(|(o, f, x, y, t)| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(f),
                Point::new(x, y),
                Timestamp(t),
            )
        })
}

fn rssi_strategy() -> impl Strategy<Value = RssiMeasurement> {
    (0u32..OBJECTS, 0u32..DEVICES, -100.0f64..-20.0, 0u64..T_MAX).prop_map(|(o, d, r, t)| {
        RssiMeasurement {
            object: ObjectId(o),
            device: DeviceId(d),
            rssi: r,
            t: Timestamp(t),
        }
    })
}

fn fix_strategy() -> impl Strategy<Value = Fix> {
    (0u32..OBJECTS, -30.0f64..30.0, -30.0f64..30.0, 0u64..T_MAX).prop_map(|(o, x, y, t)| Fix {
        object: ObjectId(o),
        loc: Loc::point(BuildingId(0), FloorId(0), Point::new(x, y)),
        t: Timestamp(t),
    })
}

fn proximity_strategy() -> impl Strategy<Value = ProximityRecord> {
    (0u32..OBJECTS, 0u32..DEVICES, 0u64..T_MAX, 0u64..1_500).prop_map(|(o, d, ts, dur)| {
        ProximityRecord {
            object: ObjectId(o),
            device: DeviceId(d),
            ts: Timestamp(ts),
            te: Timestamp(ts + dur),
        }
    })
}

/// Interleave two runs' batch queues into `interleaved` (tagged by run)
/// while feeding each solo repository only its own run's batches (under
/// the default run). `order[i] % 2` picks which queue to pop next;
/// leftovers drain in queue order.
fn ingest_interleaved(
    run_batches: [Vec<ProductBatch>; 2],
    order: &[u32],
    interleaved: &[&dyn ProductSink],
    solo: [&Repository; 2],
) {
    let [q0, q1] = run_batches;
    let mut queues = [q0.into_iter(), q1.into_iter()];
    let feed = |which: usize, batch: ProductBatch| {
        for sink in interleaved {
            sink.accept_run(RunId(which as u32), batch.clone());
        }
        solo[which].accept(batch);
    };
    for &pick in order {
        let which = (pick % 2) as usize;
        match queues[which].next() {
            Some(batch) => feed(which, batch),
            None => break,
        }
    }
    for (which, queue) in queues.into_iter().enumerate() {
        for batch in queue {
            feed(which, batch);
        }
    }
}

/// Split rows into single-product batches of `batch` rows.
fn batches<T: Clone>(
    rows: &[T],
    batch: usize,
    wrap: impl Fn(Vec<T>) -> ProductBatch,
) -> Vec<ProductBatch> {
    rows.chunks(batch.max(1))
        .map(|c| wrap(c.to_vec()))
        .collect()
}

fn sample_key(s: &TrajectorySample) -> (u64, u32, u32, u64, u64) {
    let p = s.point();
    (
        s.t.0,
        s.object.0,
        s.loc.floor.0,
        p.x.to_bits(),
        p.y.to_bits(),
    )
}

fn rssi_key(m: &RssiMeasurement) -> (u64, u32, u32, u64) {
    (m.t.0, m.object.0, m.device.0, m.rssi.to_bits())
}

fn fix_key(f: &Fix) -> (u64, u32, u64, u64) {
    let p = f.loc.as_point().unwrap();
    (f.t.0, f.object.0, p.x.to_bits(), p.y.to_bits())
}

fn prox_key(r: &ProximityRecord) -> (u64, u64, u32, u32) {
    (r.ts.0, r.te.0, r.object.0, r.device.0)
}

fn sorted_by<T, K: Ord>(mut rows: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
    rows.sort_by_key(key);
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved two-run trajectory ingestion: every run-scoped query on
    /// both backends equals the solo repository's unscoped answer.
    #[test]
    fn trajectory_runs_stay_isolated(
        rows_a in proptest::collection::vec(sample_strategy(), 1..150),
        rows_b in proptest::collection::vec(sample_strategy(), 1..150),
        order in proptest::collection::vec(0u32..2, 0..40),
        shards in 1usize..5,
        batch in 1usize..30,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
        at in 0u64..T_MAX,
        k in 1usize..8,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        let solo = [Repository::new(), Repository::new()];
        ingest_interleaved(
            [
                batches(&rows_a, batch, ProductBatch::Trajectories),
                batches(&rows_b, batch, ProductBatch::Trajectories),
            ],
            &order,
            &[&single, &sharded],
            [&solo[0], &solo[1]],
        );
        prop_assert_eq!(single.run_ids(), vec![RunId(0), RunId(1)]);
        prop_assert_eq!(sharded.run_ids(), vec![RunId(0), RunId(1)]);

        for (which, solo) in solo.iter().enumerate() {
            let run = RunId(which as u32);
            let want_rows: Vec<TrajectorySample> =
                solo.trajectories.read().scan().copied().collect();
            prop_assert_eq!(single.counts(run.into()), solo.counts(RunScope::All));
            prop_assert_eq!(sharded.counts(run.into()), solo.counts(RunScope::All));

            // Scan: same row set (single preserves arrival order exactly;
            // the shard merge is order-free, so sort on a full key).
            let got: Vec<TrajectorySample> =
                single.trajectories.read().scan_run(run).into_iter().copied().collect();
            prop_assert_eq!(&got, &want_rows);
            prop_assert_eq!(
                sorted_by(sharded.trajectories_scan(run.into()), sample_key),
                sorted_by(want_rows.clone(), sample_key)
            );

            // Half-open time window (arrival order among equal timestamps
            // is preserved by run-scoped filtering on the single backend).
            let (lo, hi) = (Timestamp(from), Timestamp(from + width));
            let want: Vec<TrajectorySample> =
                solo.trajectories.read().time_window(RunScope::All, lo, hi).into_iter().copied().collect();
            let got: Vec<TrajectorySample> =
                single.trajectories.read().time_window(run.into(), lo, hi)
                    .into_iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(
                sorted_by(sharded.trajectories_time_window(run.into(), lo, hi), sample_key),
                sorted_by(want, sample_key)
            );

            // Snapshot (inclusive bound) — exact on both backends.
            let want: Vec<TrajectorySample> =
                solo.trajectories.read().snapshot_at(RunScope::All, Timestamp(at)).into_iter().copied().collect();
            let got: Vec<TrajectorySample> =
                single.trajectories.read().snapshot_at(run.into(), Timestamp(at))
                    .into_iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(sharded.trajectories_snapshot_at(run.into(), Timestamp(at)), want);

            // Per-object traces — exact.
            for o in 0..OBJECTS {
                let want: Vec<TrajectorySample> =
                    solo.trajectories.read().object_trace(RunScope::All, ObjectId(o))
                        .into_iter().copied().collect();
                let got: Vec<TrajectorySample> =
                    single.trajectories.read().object_trace(run.into(), ObjectId(o))
                        .into_iter().copied().collect();
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(sharded.object_trace(run.into(), ObjectId(o)), want);
            }

            // Spatial: range query + kNN distance multiset.
            let q = Aabb::new(Point::new(-10.0, -10.0), Point::new(15.0, 15.0));
            let want = sorted_by(
                solo.trajectories.read().range_query(RunScope::All, FloorId(0), &q)
                    .into_iter().copied().collect(),
                sample_key,
            );
            let got = sorted_by(
                single.trajectories.read().range_query(run.into(), FloorId(0), &q)
                    .into_iter().copied().collect(),
                sample_key,
            );
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(
                sorted_by(sharded.trajectories_range_query(run.into(), FloorId(0), &q), sample_key),
                want
            );

            let p = Point::new(5.0, -5.0);
            let want: Vec<u64> = solo.trajectories.read().knn(RunScope::All, FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            let got: Vec<u64> = single.trajectories.read().knn(run.into(), FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            prop_assert_eq!(&got, &want);
            let got: Vec<u64> = sharded.trajectories_knn(run.into(), FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Interleaved two-run ingestion of the other three products: RSSI,
    /// fixes and proximity records stay isolated per run on both backends.
    #[test]
    fn rssi_fix_proximity_runs_stay_isolated(
        rssi_a in proptest::collection::vec(rssi_strategy(), 1..120),
        rssi_b in proptest::collection::vec(rssi_strategy(), 1..120),
        fixes_a in proptest::collection::vec(fix_strategy(), 1..120),
        fixes_b in proptest::collection::vec(fix_strategy(), 1..120),
        prox_a in proptest::collection::vec(proximity_strategy(), 1..80),
        prox_b in proptest::collection::vec(proximity_strategy(), 1..80),
        order in proptest::collection::vec(0u32..2, 0..60),
        shards in 1usize..5,
        batch in 1usize..30,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        let solo = [Repository::new(), Repository::new()];
        let mix = |r: &[RssiMeasurement], f: &[Fix], p: &[ProximityRecord]| {
            let mut v = batches(r, batch, ProductBatch::Rssi);
            v.extend(batches(f, batch, ProductBatch::Fixes));
            v.extend(batches(p, batch, ProductBatch::Proximity));
            v
        };
        ingest_interleaved(
            [mix(&rssi_a, &fixes_a, &prox_a), mix(&rssi_b, &fixes_b, &prox_b)],
            &order,
            &[&single, &sharded],
            [&solo[0], &solo[1]],
        );

        let (lo, hi) = (Timestamp(from), Timestamp(from + width));
        for (which, solo) in solo.iter().enumerate() {
            let run = RunId(which as u32);
            prop_assert_eq!(single.counts(run.into()), solo.counts(RunScope::All));
            prop_assert_eq!(sharded.counts(run.into()), solo.counts(RunScope::All));

            // RSSI: time window + per-object + per-device.
            let want: Vec<RssiMeasurement> =
                solo.rssi.read().time_window(RunScope::All, lo, hi).into_iter().copied().collect();
            let got: Vec<RssiMeasurement> =
                single.rssi.read().time_window(run.into(), lo, hi).into_iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(
                sorted_by(sharded.rssi_time_window(run.into(), lo, hi), rssi_key),
                sorted_by(want, rssi_key)
            );
            for o in 0..OBJECTS {
                let want: Vec<RssiMeasurement> =
                    solo.rssi.read().of_object(RunScope::All, ObjectId(o)).into_iter().copied().collect();
                let got: Vec<RssiMeasurement> =
                    single.rssi.read().of_object(run.into(), ObjectId(o))
                        .into_iter().copied().collect();
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(sharded.rssi_of_object(run.into(), ObjectId(o)), want);
            }
            for d in 0..DEVICES {
                let want = sorted_by(
                    solo.rssi.read().of_device(RunScope::All, DeviceId(d)).into_iter().copied().collect(),
                    rssi_key,
                );
                let got = sorted_by(
                    single.rssi.read().of_device(run.into(), DeviceId(d))
                        .into_iter().copied().collect(),
                    rssi_key,
                );
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(
                    sorted_by(sharded.rssi_of_device(run.into(), DeviceId(d)), rssi_key),
                    want
                );
            }

            // Fixes: scan + time window + per-object.
            let want: Vec<Fix> = solo.fixes.read().scan().copied().collect();
            let got: Vec<Fix> =
                single.fixes.read().scan_run(run).into_iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(
                sorted_by(sharded.fixes_scan(run.into()), fix_key),
                sorted_by(want, fix_key)
            );
            let want: Vec<Fix> =
                solo.fixes.read().time_window(RunScope::All, lo, hi).into_iter().copied().collect();
            let got: Vec<Fix> =
                single.fixes.read().time_window(run.into(), lo, hi).into_iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(
                sorted_by(sharded.fixes_time_window(run.into(), lo, hi), fix_key),
                sorted_by(want, fix_key)
            );
            for o in 0..OBJECTS {
                let want: Vec<Fix> =
                    solo.fixes.read().of_object(RunScope::All, ObjectId(o)).into_iter().copied().collect();
                let got: Vec<Fix> =
                    single.fixes.read().of_object(run.into(), ObjectId(o))
                        .into_iter().copied().collect();
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(sharded.fixes_of_object(run.into(), ObjectId(o)), want);
            }

            // Proximity: overlap + per-object + per-device.
            let want: Vec<ProximityRecord> =
                solo.proximity.read().overlapping(RunScope::All, lo, hi).into_iter().copied().collect();
            let got: Vec<ProximityRecord> =
                single.proximity.read().overlapping(run.into(), lo, hi)
                    .into_iter().copied().collect();
            prop_assert_eq!(&got, &want);
            prop_assert_eq!(
                sorted_by(sharded.proximity_overlapping(run.into(), lo, hi), prox_key),
                sorted_by(want, prox_key)
            );
            for o in 0..OBJECTS {
                let want: Vec<ProximityRecord> =
                    solo.proximity.read().of_object(RunScope::All, ObjectId(o)).into_iter().copied().collect();
                let got: Vec<ProximityRecord> =
                    single.proximity.read().of_object(run.into(), ObjectId(o))
                        .into_iter().copied().collect();
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(sharded.proximity_of_object(run.into(), ObjectId(o)), want);
            }
            for d in 0..DEVICES {
                let want = sorted_by(
                    solo.proximity.read().of_device(RunScope::All, DeviceId(d))
                        .into_iter().copied().collect(),
                    prox_key,
                );
                let got = sorted_by(
                    single.proximity.read().of_device(run.into(), DeviceId(d))
                        .into_iter().copied().collect(),
                    prox_key,
                );
                prop_assert_eq!(&got, &want);
                prop_assert_eq!(
                    sorted_by(sharded.proximity_of_device(run.into(), DeviceId(d)), prox_key),
                    want
                );
            }
        }
    }
}
