//! Cross-backend parity, table level: a [`ShardedRepository`] fed the same
//! batches as a single [`Repository`] must return **bit-identical row
//! sets** on every query path of all four tables — scans, half-open time
//! windows (including boundary windows), snapshots, per-object traces,
//! per-device lookups, proximity overlaps, and spatial range/kNN.
//!
//! Rows sharing a sort key may interleave differently across backends
//! (arrival order vs shard order — see the `ProductSink` contract), so
//! set-valued comparisons sort both sides on a full key first;
//! object-keyed queries are compared exactly, because an object's rows
//! live in one shard in original arrival order.

use proptest::prelude::*;

use vita_geometry::{Aabb, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{ProductBatch, ProductSink, Repository, RunScope, ShardedRepository};

const OBJECTS: u32 = 24;
const DEVICES: u32 = 5;
const T_MAX: u64 = 10_000;

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (
        0u32..OBJECTS,
        0u32..2,
        -40.0f64..40.0,
        -40.0f64..40.0,
        0u64..T_MAX,
    )
        .prop_map(|(o, f, x, y, t)| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(f),
                Point::new(x, y),
                Timestamp(t),
            )
        })
}

fn rssi_strategy() -> impl Strategy<Value = RssiMeasurement> {
    (0u32..OBJECTS, 0u32..DEVICES, -100.0f64..-20.0, 0u64..T_MAX).prop_map(|(o, d, r, t)| {
        RssiMeasurement {
            object: ObjectId(o),
            device: DeviceId(d),
            rssi: r,
            t: Timestamp(t),
        }
    })
}

fn fix_strategy() -> impl Strategy<Value = Fix> {
    (0u32..OBJECTS, -40.0f64..40.0, -40.0f64..40.0, 0u64..T_MAX).prop_map(|(o, x, y, t)| Fix {
        object: ObjectId(o),
        loc: Loc::point(BuildingId(0), FloorId(0), Point::new(x, y)),
        t: Timestamp(t),
    })
}

fn proximity_strategy() -> impl Strategy<Value = ProximityRecord> {
    (0u32..OBJECTS, 0u32..DEVICES, 0u64..T_MAX, 0u64..2_000).prop_map(|(o, d, ts, dur)| {
        ProximityRecord {
            object: ObjectId(o),
            device: DeviceId(d),
            ts: Timestamp(ts),
            te: Timestamp(ts + dur),
        }
    })
}

/// Feed identical batches (chunks of `batch` rows) to both backends.
fn fill<T: Clone>(
    rows: &[T],
    batch: usize,
    wrap: impl Fn(Vec<T>) -> ProductBatch,
    single: &Repository,
    sharded: &ShardedRepository,
) {
    for chunk in rows.chunks(batch.max(1)) {
        single.accept(wrap(chunk.to_vec()));
        sharded.accept(wrap(chunk.to_vec()));
    }
}

/// Full sort key covering every field, so equal keys mean equal rows.
fn sample_key(s: &TrajectorySample) -> (u64, u32, u32, u64, u64) {
    let p = s.point();
    (
        s.t.0,
        s.object.0,
        s.loc.floor.0,
        p.x.to_bits(),
        p.y.to_bits(),
    )
}

fn rssi_key(m: &RssiMeasurement) -> (u64, u32, u32, u64) {
    (m.t.0, m.object.0, m.device.0, m.rssi.to_bits())
}

fn fix_key(f: &Fix) -> (u64, u32, u64, u64) {
    let p = f.loc.as_point().unwrap();
    (f.t.0, f.object.0, p.x.to_bits(), p.y.to_bits())
}

fn prox_key(r: &ProximityRecord) -> (u64, u64, u32, u32) {
    (r.ts.0, r.te.0, r.object.0, r.device.0)
}

fn sorted_by<T: Copy, K: Ord>(rows: Vec<T>, key: impl Fn(&T) -> K) -> Vec<T> {
    let mut rows = rows;
    rows.sort_by_key(key);
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trajectory_paths_agree(
        rows in proptest::collection::vec(sample_strategy(), 1..250),
        shards in 1usize..5,
        batch in 1usize..40,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
        at in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        fill(&rows, batch, ProductBatch::Trajectories, &single, &sharded);
        prop_assert_eq!(single.counts(RunScope::All), sharded.counts(RunScope::All));

        // Scan: same row set.
        let a = sorted_by(single.trajectories.read().scan().copied().collect(), sample_key);
        let b = sorted_by(sharded.trajectories_scan(RunScope::All), sample_key);
        prop_assert_eq!(a, b);

        // Half-open time window, including the boundary-heavy zero-width
        // and exact-hit windows.
        for (lo, hi) in [(from, from + width), (from, from), (0, T_MAX + 1)] {
            let a = sorted_by(
                single.trajectories.read()
                    .time_window(RunScope::All, Timestamp(lo), Timestamp(hi))
                    .into_iter().copied().collect(),
                sample_key,
            );
            let b = sorted_by(
                sharded.trajectories_time_window(RunScope::All, Timestamp(lo), Timestamp(hi)),
                sample_key,
            );
            prop_assert_eq!(a, b);
        }

        // Snapshot: objects are disjoint across shards, so the merged
        // answer must be *exactly* the single-table answer.
        let a: Vec<TrajectorySample> =
            single.trajectories.read().snapshot_at(RunScope::All, Timestamp(at)).into_iter().copied().collect();
        prop_assert_eq!(a, sharded.trajectories_snapshot_at(RunScope::All, Timestamp(at)));

        // Per-object traces: exact (owning shard preserves arrival order).
        for o in 0..OBJECTS {
            let a: Vec<TrajectorySample> =
                single.trajectories.read().object_trace(RunScope::All, ObjectId(o)).into_iter().copied().collect();
            prop_assert_eq!(a, sharded.object_trace(RunScope::All, ObjectId(o)));
        }
    }

    #[test]
    fn spatial_paths_agree(
        rows in proptest::collection::vec(sample_strategy(), 1..150),
        shards in 1usize..5,
        x0 in -40.0f64..40.0, y0 in -40.0f64..40.0,
        w in 1.0f64..50.0, h in 1.0f64..50.0,
        k in 1usize..12,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        fill(&rows, 16, ProductBatch::Trajectories, &single, &sharded);

        // Range query through a *read* lock on the single backend — the
        // locking bugfix this PR verifies — against the shard merge.
        let q = Aabb::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let a = sorted_by(
            single.trajectories.read().range_query(RunScope::All, FloorId(0), &q)
                .into_iter().copied().collect(),
            sample_key,
        );
        let b = sorted_by(sharded.trajectories_range_query(RunScope::All, FloorId(0), &q), sample_key);
        prop_assert_eq!(a, b);

        // kNN: the distance multiset must match bit-for-bit (row identity
        // can differ only among exactly tied distances).
        let p = Point::new(x0, y0);
        let a: Vec<u64> = single.trajectories.read().knn(RunScope::All, FloorId(0), p, k)
            .iter().map(|(_, d)| d.to_bits()).collect();
        let b: Vec<u64> = sharded.trajectories_knn(RunScope::All, FloorId(0), p, k)
            .iter().map(|(_, d)| d.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rssi_and_fix_paths_agree(
        rssi in proptest::collection::vec(rssi_strategy(), 1..250),
        fixes in proptest::collection::vec(fix_strategy(), 1..250),
        shards in 1usize..5,
        batch in 1usize..40,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        fill(&rssi, batch, ProductBatch::Rssi, &single, &sharded);
        fill(&fixes, batch, ProductBatch::Fixes, &single, &sharded);
        prop_assert_eq!(single.counts(RunScope::All), sharded.counts(RunScope::All));

        let (lo, hi) = (Timestamp(from), Timestamp(from + width));
        let a = sorted_by(
            single.rssi.read().time_window(RunScope::All, lo, hi).into_iter().copied().collect(),
            rssi_key,
        );
        prop_assert_eq!(a, sorted_by(sharded.rssi_time_window(RunScope::All, lo, hi), rssi_key));

        for o in 0..OBJECTS {
            let a: Vec<RssiMeasurement> =
                single.rssi.read().of_object(RunScope::All, ObjectId(o)).into_iter().copied().collect();
            prop_assert_eq!(a, sharded.rssi_of_object(RunScope::All, ObjectId(o)));
            let af: Vec<Fix> =
                single.fixes.read().of_object(RunScope::All, ObjectId(o)).into_iter().copied().collect();
            prop_assert_eq!(af, sharded.fixes_of_object(RunScope::All, ObjectId(o)));
        }
        for d in 0..DEVICES {
            let a = sorted_by(
                single.rssi.read().of_device(RunScope::All, DeviceId(d)).into_iter().copied().collect(),
                rssi_key,
            );
            prop_assert_eq!(a, sorted_by(sharded.rssi_of_device(RunScope::All, DeviceId(d)), rssi_key));
        }

        let a = sorted_by(
            single.fixes.read().time_window(RunScope::All, lo, hi).into_iter().copied().collect(),
            fix_key,
        );
        prop_assert_eq!(a, sorted_by(sharded.fixes_time_window(RunScope::All, lo, hi), fix_key));
    }

    #[test]
    fn proximity_paths_agree(
        rows in proptest::collection::vec(proximity_strategy(), 1..250),
        shards in 1usize..5,
        batch in 1usize..40,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        fill(&rows, batch, ProductBatch::Proximity, &single, &sharded);
        prop_assert_eq!(single.counts(RunScope::All), sharded.counts(RunScope::All));

        let (lo, hi) = (Timestamp(from), Timestamp(from + width));
        let a = sorted_by(
            single.proximity.read().overlapping(RunScope::All, lo, hi).into_iter().copied().collect(),
            prox_key,
        );
        prop_assert_eq!(a, sorted_by(sharded.proximity_overlapping(RunScope::All, lo, hi), prox_key));

        for o in 0..OBJECTS {
            let a: Vec<ProximityRecord> =
                single.proximity.read().of_object(RunScope::All, ObjectId(o)).into_iter().copied().collect();
            prop_assert_eq!(a, sharded.proximity_of_object(RunScope::All, ObjectId(o)));
        }
        for d in 0..DEVICES {
            let a = sorted_by(
                single.proximity.read().of_device(RunScope::All, DeviceId(d)).into_iter().copied().collect(),
                prox_key,
            );
            prop_assert_eq!(a, sorted_by(sharded.proximity_of_device(RunScope::All, DeviceId(d)), prox_key));
        }
    }
}
