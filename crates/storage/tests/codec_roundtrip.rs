//! Wire-format robustness suite (the PR-5 codec acceptance tests):
//!
//! * arbitrary multi-run row sets round-trip bit-identically through the
//!   v2 encoder/decoder, and re-encoding the decode reproduces the exact
//!   input bytes (the format is canonical);
//! * v1 files — hand-encoded here byte-for-byte, plus checked-in golden
//!   fixtures under `tests/fixtures/` — decode through the same readers
//!   with every row in run 0, pinning backward compatibility in CI;
//! * random truncation and byte corruption of valid files return a
//!   [`CodecError`] — never a panic, never silently wrong data (v2 files
//!   carry a trailing checksum, so payload corruption cannot slip
//!   through).

use proptest::prelude::*;

use bytes::Bytes;
use vita_geometry::Point;
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, PartitionId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{
    decode_fixes_runs, decode_proximity_runs, decode_rssi_runs, decode_trajectories,
    decode_trajectories_runs, encode_fixes_runs, encode_proximity_runs, encode_rssi_runs,
    encode_trajectories_runs, CodecError,
};

// ---------------------------------------------------------------- strategies

fn loc_strategy() -> impl Strategy<Value = Loc> {
    (
        0u32..3,
        0u32..4,
        0u32..2,
        0u32..50,
        -100.0f64..100.0,
        -100.0f64..100.0,
    )
        .prop_map(|(b, f, kind, pid, x, y)| {
            if kind == 0 {
                Loc::point(BuildingId(b), FloorId(f), Point::new(x, y))
            } else {
                Loc::partition(BuildingId(b), FloorId(f), PartitionId(pid))
            }
        })
}

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (0u32..64, loc_strategy(), 0u64..1 << 40).prop_map(|(o, loc, t)| TrajectorySample {
        object: ObjectId(o),
        loc,
        t: Timestamp(t),
    })
}

fn rssi_strategy() -> impl Strategy<Value = RssiMeasurement> {
    (0u32..64, 0u32..16, -120.0f64..0.0, 0u64..1 << 40).prop_map(|(o, d, r, t)| RssiMeasurement {
        object: ObjectId(o),
        device: DeviceId(d),
        rssi: r,
        t: Timestamp(t),
    })
}

fn fix_strategy() -> impl Strategy<Value = Fix> {
    (0u32..64, loc_strategy(), 0u64..1 << 40).prop_map(|(o, loc, t)| Fix {
        object: ObjectId(o),
        loc,
        t: Timestamp(t),
    })
}

fn prox_strategy() -> impl Strategy<Value = ProximityRecord> {
    (0u32..64, 0u32..16, 0u64..1 << 40, 0u64..10_000).prop_map(|(o, d, ts, dur)| ProximityRecord {
        object: ObjectId(o),
        device: DeviceId(d),
        ts: Timestamp(ts),
        te: Timestamp(ts + dur),
    })
}

/// Strictly ascending run ids from per-section gaps.
fn section_runs(gaps: &[u32]) -> Vec<RunId> {
    let mut next = 0u32;
    gaps.iter()
        .map(|&g| {
            let run = next + g;
            next = run + 1;
            RunId(run)
        })
        .collect()
}

fn borrow<T>(sections: &[(RunId, Vec<T>)]) -> Vec<(RunId, &[T])> {
    sections.iter().map(|(r, v)| (*r, v.as_slice())).collect()
}

fn nonempty<T: Clone>(sections: &[(RunId, Vec<T>)]) -> Vec<(RunId, Vec<T>)> {
    sections
        .iter()
        .filter(|(_, rows)| !rows.is_empty())
        .cloned()
        .collect()
}

// ------------------------------------------------------------ v1 hand-encoder

/// The v1 writer, byte-for-byte (it no longer exists in the codec): magic,
/// version 1, tag, row count, rows — no sections, no checksum.
fn encode_v1(tag: u8, rows: &[Vec<u8>]) -> Bytes {
    let mut out = Vec::new();
    out.extend_from_slice(b"VITA");
    out.push(1);
    out.push(tag);
    out.extend_from_slice(&(rows.len() as u64).to_le_bytes());
    for r in rows {
        out.extend_from_slice(r);
    }
    Bytes::from(out)
}

fn loc_bytes(loc: &Loc) -> Vec<u8> {
    let mut out = Vec::with_capacity(25);
    out.extend_from_slice(&loc.building.0.to_le_bytes());
    out.extend_from_slice(&loc.floor.0.to_le_bytes());
    match loc.kind {
        vita_indoor::LocKind::Point(p) => {
            out.push(0);
            out.extend_from_slice(&p.x.to_le_bytes());
            out.extend_from_slice(&p.y.to_le_bytes());
        }
        vita_indoor::LocKind::Partition(pid) => {
            out.push(1);
            out.extend_from_slice(&pid.0.to_le_bytes());
            out.extend_from_slice(&[0u8; 12]);
        }
    }
    out
}

fn sample_bytes(s: &TrajectorySample) -> Vec<u8> {
    let mut out = s.object.0.to_le_bytes().to_vec();
    out.extend_from_slice(&loc_bytes(&s.loc));
    out.extend_from_slice(&s.t.0.to_le_bytes());
    out
}

fn rssi_bytes(m: &RssiMeasurement) -> Vec<u8> {
    let mut out = m.object.0.to_le_bytes().to_vec();
    out.extend_from_slice(&m.device.0.to_le_bytes());
    out.extend_from_slice(&m.rssi.to_le_bytes());
    out.extend_from_slice(&m.t.0.to_le_bytes());
    out
}

// ------------------------------------------------------------------- proptest

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// v2 multi-run sections round-trip bit-identically, for all four
    /// record types, and re-encoding the decode reproduces the input
    /// bytes exactly (canonical format).
    #[test]
    fn multi_run_round_trip_is_bit_identical(
        gaps in proptest::collection::vec(0u32..5, 1..5),
        t_rows in proptest::collection::vec(proptest::collection::vec(sample_strategy(), 0..40), 4..5),
        r_rows in proptest::collection::vec(proptest::collection::vec(rssi_strategy(), 0..40), 4..5),
        f_rows in proptest::collection::vec(proptest::collection::vec(fix_strategy(), 0..40), 4..5),
        p_rows in proptest::collection::vec(proptest::collection::vec(prox_strategy(), 0..40), 4..5),
    ) {
        let runs = section_runs(&gaps);

        let sections: Vec<(RunId, Vec<TrajectorySample>)> =
            runs.iter().zip(t_rows).map(|(&r, v)| (r, v)).collect();
        let encoded = encode_trajectories_runs(&borrow(&sections));
        let decoded = decode_trajectories_runs(encoded.clone()).unwrap();
        prop_assert_eq!(&decoded, &nonempty(&sections));
        prop_assert_eq!(encode_trajectories_runs(&borrow(&decoded)), encoded);

        let sections: Vec<(RunId, Vec<RssiMeasurement>)> =
            runs.iter().zip(r_rows).map(|(&r, v)| (r, v)).collect();
        let encoded = encode_rssi_runs(&borrow(&sections));
        let decoded = decode_rssi_runs(encoded.clone()).unwrap();
        prop_assert_eq!(&decoded, &nonempty(&sections));
        prop_assert_eq!(encode_rssi_runs(&borrow(&decoded)), encoded);

        let sections: Vec<(RunId, Vec<Fix>)> =
            runs.iter().zip(f_rows).map(|(&r, v)| (r, v)).collect();
        let encoded = encode_fixes_runs(&borrow(&sections));
        let decoded = decode_fixes_runs(encoded.clone()).unwrap();
        prop_assert_eq!(&decoded, &nonempty(&sections));
        prop_assert_eq!(encode_fixes_runs(&borrow(&decoded)), encoded);

        let sections: Vec<(RunId, Vec<ProximityRecord>)> =
            runs.iter().zip(p_rows).map(|(&r, v)| (r, v)).collect();
        let encoded = encode_proximity_runs(&borrow(&sections));
        let decoded = decode_proximity_runs(encoded.clone()).unwrap();
        prop_assert_eq!(&decoded, &nonempty(&sections));
        prop_assert_eq!(encode_proximity_runs(&borrow(&decoded)), encoded);
    }

    /// Arbitrary v1 files (hand-encoded byte-for-byte) decode through the
    /// current reader with every row in run 0.
    #[test]
    fn v1_reader_decodes_arbitrary_rows_into_run_zero(
        samples in proptest::collection::vec(sample_strategy(), 0..60),
        ms in proptest::collection::vec(rssi_strategy(), 0..60),
    ) {
        let rows: Vec<Vec<u8>> = samples.iter().map(sample_bytes).collect();
        let decoded = decode_trajectories_runs(encode_v1(1, &rows)).unwrap();
        if samples.is_empty() {
            prop_assert!(decoded.is_empty());
        } else {
            prop_assert_eq!(decoded, vec![(RunId::DEFAULT, samples)]);
        }

        let rows: Vec<Vec<u8>> = ms.iter().map(rssi_bytes).collect();
        let decoded = decode_rssi_runs(encode_v1(2, &rows)).unwrap();
        if ms.is_empty() {
            prop_assert!(decoded.is_empty());
        } else {
            prop_assert_eq!(decoded, vec![(RunId::DEFAULT, ms)]);
        }
    }

    /// Any truncation of a valid file decodes to an error — never a panic,
    /// never a partial row set.
    #[test]
    fn truncation_always_errors(
        gaps in proptest::collection::vec(0u32..3, 1..4),
        t_rows in proptest::collection::vec(proptest::collection::vec(sample_strategy(), 0..20), 3..4),
        cut in 0.0f64..1.0,
    ) {
        let runs = section_runs(&gaps);
        let sections: Vec<(RunId, Vec<TrajectorySample>)> =
            runs.iter().zip(t_rows).map(|(&r, v)| (r, v)).collect();
        let encoded = encode_trajectories_runs(&borrow(&sections));
        let keep = ((encoded.len() as f64) * cut) as usize; // < len
        let truncated = encoded.slice(0..keep);
        prop_assert!(decode_trajectories_runs(truncated).is_err());
    }

    /// Any single-byte corruption of a valid v2 file decodes to an error —
    /// the checksum catches payload damage that still parses structurally.
    #[test]
    fn byte_corruption_always_errors(
        gaps in proptest::collection::vec(0u32..3, 1..4),
        t_rows in proptest::collection::vec(proptest::collection::vec(sample_strategy(), 0..20), 3..4),
        pos in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let runs = section_runs(&gaps);
        let sections: Vec<(RunId, Vec<TrajectorySample>)> =
            runs.iter().zip(t_rows).map(|(&r, v)| (r, v)).collect();
        let encoded = encode_trajectories_runs(&borrow(&sections));
        let mut bytes = encoded.as_ref().to_vec();
        let idx = ((bytes.len() as f64) * pos) as usize % bytes.len();
        bytes[idx] ^= flip;
        let corrupt = Bytes::from(bytes);
        match decode_trajectories_runs(corrupt.clone()) {
            Err(_) => {}
            Ok(rows) => prop_assert!(false, "corruption at byte {idx} decoded to {rows:?}"),
        }
        // The flattening reader must agree.
        prop_assert!(decode_trajectories(corrupt).is_err());
    }
}

// ------------------------------------------------------------ golden fixtures

/// The checked-in v1 fixtures (written by the legacy exporter's format,
/// byte-for-byte) must decode on the current reader, forever: this is the
/// CI tripwire for wire-format compatibility. Expected contents are
/// spelled out literally — regenerating the fixtures with different data
/// fails loudly.
#[test]
fn v1_golden_fixtures_decode_into_run_zero() {
    let sections = decode_trajectories_runs(Bytes::from_static(include_bytes!(
        "fixtures/v1_trajectories.bin"
    )))
    .unwrap();
    assert_eq!(
        sections,
        vec![(
            RunId::DEFAULT,
            vec![
                TrajectorySample {
                    object: ObjectId(1),
                    loc: Loc::point(BuildingId(0), FloorId(0), Point::new(1.5, 2.5)),
                    t: Timestamp(1000),
                },
                TrajectorySample {
                    object: ObjectId(2),
                    loc: Loc::partition(BuildingId(0), FloorId(1), PartitionId(7)),
                    t: Timestamp(2000),
                },
                TrajectorySample {
                    object: ObjectId(3),
                    loc: Loc::point(BuildingId(1), FloorId(2), Point::new(-4.25, 9.75)),
                    t: Timestamp(3000),
                },
            ]
        )]
    );

    let sections =
        decode_rssi_runs(Bytes::from_static(include_bytes!("fixtures/v1_rssi.bin"))).unwrap();
    assert_eq!(
        sections,
        vec![(
            RunId::DEFAULT,
            vec![
                RssiMeasurement {
                    object: ObjectId(0),
                    device: DeviceId(3),
                    rssi: -62.25,
                    t: Timestamp(500),
                },
                RssiMeasurement {
                    object: ObjectId(9),
                    device: DeviceId(0),
                    rssi: -40.0,
                    t: Timestamp(999),
                },
            ]
        )]
    );

    let sections =
        decode_fixes_runs(Bytes::from_static(include_bytes!("fixtures/v1_fixes.bin"))).unwrap();
    assert_eq!(
        sections,
        vec![(
            RunId::DEFAULT,
            vec![
                Fix {
                    object: ObjectId(4),
                    loc: Loc::point(BuildingId(0), FloorId(2), Point::new(-3.25, 8.0)),
                    t: Timestamp(12345),
                },
                Fix {
                    object: ObjectId(5),
                    loc: Loc::partition(BuildingId(1), FloorId(0), PartitionId(2)),
                    t: Timestamp(777),
                },
            ]
        )]
    );

    let sections = decode_proximity_runs(Bytes::from_static(include_bytes!(
        "fixtures/v1_proximity.bin"
    )))
    .unwrap();
    assert_eq!(
        sections,
        vec![(
            RunId::DEFAULT,
            vec![
                ProximityRecord {
                    object: ObjectId(5),
                    device: DeviceId(6),
                    ts: Timestamp(100),
                    te: Timestamp(5000),
                },
                ProximityRecord {
                    object: ObjectId(8),
                    device: DeviceId(1),
                    ts: Timestamp(0),
                    te: Timestamp(42),
                },
            ]
        )]
    );
}

/// Corrupting a golden fixture's loc-kind byte trips `BadLocKind` — the
/// v1 path has no checksum, so the typed per-row validation is what
/// stands between a corrupt file and garbage data.
#[test]
fn v1_fixture_with_corrupt_loc_kind_fails_loudly() {
    let mut bytes = include_bytes!("fixtures/v1_trajectories.bin").to_vec();
    // First row's kind byte: header (14) + object (4) + building (4) + floor (4).
    bytes[26] = 7;
    assert_eq!(
        decode_trajectories_runs(Bytes::from(bytes)).unwrap_err(),
        CodecError::BadLocKind(7)
    );
}
