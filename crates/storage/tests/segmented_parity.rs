//! Cross-backend parity, all three backends: a [`SegmentedRepository`] fed
//! the same batches as a single [`Repository`] and a [`ShardedRepository`]
//! must agree on every query path of all four tables — with `seal_now()`
//! forced at proptest-chosen points, so answers are checked across the
//! whole segment lifecycle (unsealed minis, sealed segments, compacted
//! segments, and mixtures).
//!
//! Under deterministic sequential ingestion the segmented backend's
//! per-row sequence numbers reconstruct the single repository's arrival
//! order exactly, so — unlike the sharded comparisons, which must sort on
//! a full key — almost every segmented comparison here is **exact**,
//! including tie order inside time windows and scans. The one exception is
//! kNN, where the locked backend breaks distance ties in grid-candidate
//! order: there the distance multiset is compared bit-for-bit.

use proptest::prelude::*;

use vita_geometry::{Aabb, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{
    ProductBatch, ProductSink, Repository, RunScope, SegmentedRepository, ShardedRepository,
};

const OBJECTS: u32 = 24;
const DEVICES: u32 = 5;
const RUNS: u32 = 3;
const T_MAX: u64 = 10_000;

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (
        0u32..OBJECTS,
        0u32..2,
        -40.0f64..40.0,
        -40.0f64..40.0,
        0u64..T_MAX,
    )
        .prop_map(|(o, f, x, y, t)| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(f),
                Point::new(x, y),
                Timestamp(t),
            )
        })
}

fn rssi_strategy() -> impl Strategy<Value = RssiMeasurement> {
    (0u32..OBJECTS, 0u32..DEVICES, -100.0f64..-20.0, 0u64..T_MAX).prop_map(|(o, d, r, t)| {
        RssiMeasurement {
            object: ObjectId(o),
            device: DeviceId(d),
            rssi: r,
            t: Timestamp(t),
        }
    })
}

fn fix_strategy() -> impl Strategy<Value = Fix> {
    (0u32..OBJECTS, -40.0f64..40.0, -40.0f64..40.0, 0u64..T_MAX).prop_map(|(o, x, y, t)| Fix {
        object: ObjectId(o),
        loc: Loc::point(BuildingId(0), FloorId(0), Point::new(x, y)),
        t: Timestamp(t),
    })
}

fn proximity_strategy() -> impl Strategy<Value = ProximityRecord> {
    (0u32..OBJECTS, 0u32..DEVICES, 0u64..T_MAX, 0u64..2_000).prop_map(|(o, d, ts, dur)| {
        ProximityRecord {
            object: ObjectId(o),
            device: DeviceId(d),
            ts: Timestamp(ts),
            te: Timestamp(ts + dur),
        }
    })
}

/// Feed identical batches to all three backends, rotating the run tag per
/// chunk and forcing a segmented seal/compaction round every `seal_every`
/// chunks so the query checks hit every segment-lifecycle state.
fn fill3<T: Clone>(
    rows: &[T],
    batch: usize,
    seal_every: usize,
    wrap: impl Fn(Vec<T>) -> ProductBatch,
    single: &Repository,
    sharded: &ShardedRepository,
    segmented: &SegmentedRepository,
) {
    for (i, chunk) in rows.chunks(batch.max(1)).enumerate() {
        let run = RunId((i as u32) % RUNS);
        single.accept_run(run, wrap(chunk.to_vec()));
        sharded.accept_run(run, wrap(chunk.to_vec()));
        segmented.accept_run(run, wrap(chunk.to_vec()));
        if (i + 1) % seal_every.max(1) == 0 {
            segmented.seal_now();
        }
    }
}

/// Scopes every parity check runs under: all runs merged plus each run in
/// isolation.
fn scopes() -> Vec<RunScope> {
    let mut v = vec![RunScope::All];
    v.extend((0..RUNS).map(|r| RunScope::from(RunId(r))));
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trajectory_paths_agree_exactly(
        rows in proptest::collection::vec(sample_strategy(), 1..250),
        shards in 1usize..5,
        batch in 1usize..40,
        seal_every in 1usize..6,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
        at in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        let segmented = SegmentedRepository::new();
        fill3(&rows, batch, seal_every, ProductBatch::Trajectories, &single, &sharded, &segmented);

        for scope in scopes() {
            prop_assert_eq!(single.counts(scope), segmented.counts(scope));
            prop_assert_eq!(sharded.counts(scope), segmented.counts(scope));

            // Scan: exact, including arrival order, on every scope.
            let a: Vec<TrajectorySample> = match scope.run() {
                None => single.trajectories.read().scan().copied().collect(),
                Some(r) => single.trajectories.read().scan_run(r).into_iter().copied().collect(),
            };
            prop_assert_eq!(a, segmented.trajectories_scan(scope));

            // Half-open time window: exact, tie order included.
            for (lo, hi) in [(from, from + width), (from, from), (0, T_MAX + 1)] {
                let a: Vec<TrajectorySample> = single.trajectories.read()
                    .time_window(scope, Timestamp(lo), Timestamp(hi))
                    .into_iter().copied().collect();
                prop_assert_eq!(
                    a,
                    segmented.trajectories_time_window(scope, Timestamp(lo), Timestamp(hi))
                );
            }

            // Snapshot and traces: exact.
            let a: Vec<TrajectorySample> = single.trajectories.read()
                .snapshot_at(scope, Timestamp(at)).into_iter().copied().collect();
            prop_assert_eq!(a, segmented.trajectories_snapshot_at(scope, Timestamp(at)));
            for o in 0..OBJECTS {
                let a: Vec<TrajectorySample> = single.trajectories.read()
                    .object_trace(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(a, segmented.object_trace(scope, ObjectId(o)));
            }
        }
        prop_assert_eq!(single.run_ids(), segmented.run_ids());

        // A full maintenance round after the checks must change nothing.
        let before = segmented.trajectories_scan(RunScope::All);
        segmented.seal_now();
        segmented.seal_now();
        prop_assert_eq!(before, segmented.trajectories_scan(RunScope::All));
        prop_assert_eq!(segmented.stats().unsealed_segments, 0);
    }

    #[test]
    fn spatial_paths_agree(
        rows in proptest::collection::vec(sample_strategy(), 1..150),
        shards in 1usize..5,
        seal_every in 1usize..6,
        x0 in -40.0f64..40.0, y0 in -40.0f64..40.0,
        w in 1.0f64..50.0, h in 1.0f64..50.0,
        k in 1usize..12,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        let segmented = SegmentedRepository::new();
        fill3(&rows, 16, seal_every, ProductBatch::Trajectories, &single, &sharded, &segmented);

        let q = Aabb::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let p = Point::new(x0, y0);
        for scope in scopes() {
            // Range query: exact, insertion order, on every scope and floor.
            for floor in [FloorId(0), FloorId(1), FloorId(7)] {
                let a: Vec<TrajectorySample> = single.trajectories.read()
                    .range_query(scope, floor, &q).into_iter().copied().collect();
                prop_assert_eq!(a, segmented.trajectories_range_query(scope, floor, &q));
            }

            // kNN: distance multiset bit-identical across all three.
            let a: Vec<u64> = single.trajectories.read().knn(scope, FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            let b: Vec<u64> = sharded.trajectories_knn(scope, FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            let c: Vec<u64> = segmented.trajectories_knn(scope, FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(&a, &c);
        }
    }

    #[test]
    fn rssi_and_fix_paths_agree_exactly(
        rssi in proptest::collection::vec(rssi_strategy(), 1..250),
        fixes in proptest::collection::vec(fix_strategy(), 1..250),
        shards in 1usize..5,
        batch in 1usize..40,
        seal_every in 1usize..6,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        let segmented = SegmentedRepository::new();
        fill3(&rssi, batch, seal_every, ProductBatch::Rssi, &single, &sharded, &segmented);
        fill3(&fixes, batch, seal_every, ProductBatch::Fixes, &single, &sharded, &segmented);

        let (lo, hi) = (Timestamp(from), Timestamp(from + width));
        for scope in scopes() {
            prop_assert_eq!(single.counts(scope), segmented.counts(scope));

            let a: Vec<RssiMeasurement> = single.rssi.read()
                .time_window(scope, lo, hi).into_iter().copied().collect();
            prop_assert_eq!(a, segmented.rssi_time_window(scope, lo, hi));
            let a: Vec<Fix> = single.fixes.read()
                .time_window(scope, lo, hi).into_iter().copied().collect();
            prop_assert_eq!(a, segmented.fixes_time_window(scope, lo, hi));

            for o in 0..OBJECTS {
                let a: Vec<RssiMeasurement> = single.rssi.read()
                    .of_object(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(a, segmented.rssi_of_object(scope, ObjectId(o)));
                let af: Vec<Fix> = single.fixes.read()
                    .of_object(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(af, segmented.fixes_of_object(scope, ObjectId(o)));
            }
            for d in 0..DEVICES {
                let a: Vec<RssiMeasurement> = single.rssi.read()
                    .of_device(scope, DeviceId(d)).into_iter().copied().collect();
                prop_assert_eq!(a, segmented.rssi_of_device(scope, DeviceId(d)));
            }
        }
    }

    #[test]
    fn proximity_paths_agree_exactly(
        rows in proptest::collection::vec(proximity_strategy(), 1..250),
        shards in 1usize..5,
        batch in 1usize..40,
        seal_every in 1usize..6,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(shards);
        let segmented = SegmentedRepository::new();
        fill3(&rows, batch, seal_every, ProductBatch::Proximity, &single, &sharded, &segmented);

        let (lo, hi) = (Timestamp(from), Timestamp(from + width));
        for scope in scopes() {
            prop_assert_eq!(single.counts(scope), segmented.counts(scope));
            prop_assert_eq!(sharded.counts(scope), segmented.counts(scope));

            let a: Vec<ProximityRecord> = single.proximity.read()
                .overlapping(scope, lo, hi).into_iter().copied().collect();
            prop_assert_eq!(a, segmented.proximity_overlapping(scope, lo, hi));

            for o in 0..OBJECTS {
                let a: Vec<ProximityRecord> = single.proximity.read()
                    .of_object(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(a, segmented.proximity_of_object(scope, ObjectId(o)));
            }
            for d in 0..DEVICES {
                let a: Vec<ProximityRecord> = single.proximity.read()
                    .of_device(scope, DeviceId(d)).into_iter().copied().collect();
                prop_assert_eq!(a, segmented.proximity_of_device(scope, DeviceId(d)));
            }
        }
    }

    #[test]
    fn export_import_round_trips_across_backends(
        rows in proptest::collection::vec(sample_strategy(), 1..120),
        batch in 1usize..30,
        seal_every in 1usize..6,
    ) {
        let single = Repository::new();
        let sharded = ShardedRepository::new(4);
        let segmented = SegmentedRepository::new();
        fill3(&rows, batch, seal_every, ProductBatch::Trajectories, &single, &sharded, &segmented);

        // Segmented export decodes into an identical single repository, and
        // a single export rebuilds an identical segmented repository. Exports
        // are per-run sections, so import replays rows grouped by run: each
        // run scope round-trips exactly, and the merged scan comes back as
        // the run-grouped concatenation (in run-id order) on every backend.
        let from_seg = Repository::import(&segmented.export()).unwrap();
        let from_single = SegmentedRepository::import(&single.export()).unwrap();
        for scope in scopes() {
            let want = match scope.run() {
                Some(_) => segmented.trajectories_scan(scope),
                None => segmented
                    .run_ids()
                    .into_iter()
                    .flat_map(|r| segmented.trajectories_scan(r.into()))
                    .collect(),
            };
            let a: Vec<TrajectorySample> = match scope.run() {
                None => from_seg.trajectories.read().scan().copied().collect(),
                Some(r) => from_seg.trajectories.read().scan_run(r).into_iter().copied().collect(),
            };
            prop_assert_eq!(a, want.clone());
            prop_assert_eq!(from_single.trajectories_scan(scope), want);
        }
    }
}
