//! Concurrent-ingestion stress: many producer threads drive identical
//! batch streams into a single [`Repository`], a [`ShardedRepository`]
//! and a [`SegmentedRepository`] while reader threads hammer the read
//! paths. Afterwards all three backends must hold bit-identical row sets,
//! and every object's trace must be in time order on each.
//!
//! This also exercises the read-path locking fix end to end (the readers
//! run `range_query` / `knn` through a table **read** lock, concurrently
//! with ingestion) and the segmented backend's lock-free snapshot path:
//! its readers pin snapshots while producers publish and the background
//! sealer seals and compacts underneath them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vita_geometry::{Aabb, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{
    ProductBatch, ProductSink, Repository, RunScope, SegmentConfig, SegmentedRepository,
    ShardedRepository,
};

const PRODUCERS: u32 = 8;
const OBJECTS_PER_PRODUCER: u32 = 3;
const BATCHES_PER_OBJECT: u64 = 15;
const ROWS_PER_BATCH: u64 = 20;

fn sample(o: u32, t: u64) -> TrajectorySample {
    TrajectorySample::new(
        ObjectId(o),
        BuildingId(0),
        FloorId(0),
        Point::new((t % 97) as f64, (o % 13) as f64),
        Timestamp(t),
    )
}

/// The deterministic batch stream of one object: time-ordered within and
/// across batches, as the pipeline contract requires of each producer.
fn object_batches(
    o: u32,
) -> Vec<(
    Vec<TrajectorySample>,
    Vec<RssiMeasurement>,
    Fix,
    ProximityRecord,
)> {
    (0..BATCHES_PER_OBJECT)
        .map(|b| {
            let t0 = b * ROWS_PER_BATCH * 10;
            let samples: Vec<TrajectorySample> = (0..ROWS_PER_BATCH)
                .map(|i| sample(o, t0 + i * 10))
                .collect();
            let rssi: Vec<RssiMeasurement> = (0..ROWS_PER_BATCH)
                .map(|i| RssiMeasurement {
                    object: ObjectId(o),
                    device: DeviceId(o % 4),
                    rssi: -40.0 - (t0 + i) as f64 / 1000.0,
                    t: Timestamp(t0 + i * 10),
                })
                .collect();
            let fix = Fix {
                object: ObjectId(o),
                loc: Loc::point(BuildingId(0), FloorId(0), Point::new(b as f64, o as f64)),
                t: Timestamp(t0),
            };
            let prox = ProximityRecord {
                object: ObjectId(o),
                device: DeviceId(o % 4),
                ts: Timestamp(t0),
                te: Timestamp(t0 + 40),
            };
            (samples, rssi, fix, prox)
        })
        .collect()
}

#[test]
fn concurrent_producers_yield_identical_backends() {
    let single = Arc::new(Repository::new());
    let sharded = Arc::new(ShardedRepository::new(4));
    // Aggressive seal/compaction thresholds so the stress run churns
    // through many seal and compaction rounds while readers hold pins.
    let segmented = Arc::new(SegmentedRepository::with_config(SegmentConfig {
        seal_rows: 64,
        seal_segments: 4,
        compact_segments: 3,
        ..SegmentConfig::default()
    }));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Readers: spatial + window queries under read locks, concurrent
        // with ingestion. Results vary with timing; the point is that they
        // are *possible* through `&Repository` reads and never deadlock.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let single = Arc::clone(&single);
            let sharded = Arc::clone(&sharded);
            let segmented = Arc::clone(&segmented);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let q = Aabb::new(Point::new(0.0, 0.0), Point::new(50.0, 8.0));
                let mut seen = 0usize;
                while !done.load(Ordering::Relaxed) {
                    seen += single
                        .trajectories
                        .read()
                        .range_query(RunScope::All, FloorId(0), &q)
                        .len();
                    seen += single
                        .trajectories
                        .read()
                        .knn(RunScope::All, FloorId(0), Point::new(10.0, 3.0), 5)
                        .len();
                    seen += sharded
                        .trajectories_range_query(RunScope::All, FloorId(0), &q)
                        .len();
                    seen += single
                        .rssi
                        .read()
                        .time_window(RunScope::All, Timestamp(0), Timestamp(1_000))
                        .len();
                    seen += segmented
                        .trajectories_range_query(RunScope::All, FloorId(0), &q)
                        .len();
                    seen += segmented
                        .trajectories_knn(RunScope::All, FloorId(0), Point::new(10.0, 3.0), 5)
                        .len();
                    seen += segmented
                        .rssi_time_window(RunScope::All, Timestamp(0), Timestamp(1_000))
                        .len();
                }
                seen
            }));
        }

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let single = Arc::clone(&single);
                let sharded = Arc::clone(&sharded);
                let segmented = Arc::clone(&segmented);
                scope.spawn(move || {
                    for k in 0..OBJECTS_PER_PRODUCER {
                        let o = p * OBJECTS_PER_PRODUCER + k;
                        for (samples, rssi, fix, prox) in object_batches(o) {
                            single.accept(ProductBatch::Trajectories(samples.clone()));
                            sharded.accept(ProductBatch::Trajectories(samples.clone()));
                            segmented.accept(ProductBatch::Trajectories(samples));
                            single.accept(ProductBatch::Rssi(rssi.clone()));
                            sharded.accept(ProductBatch::Rssi(rssi.clone()));
                            segmented.accept(ProductBatch::Rssi(rssi));
                            single.accept(ProductBatch::Fixes(vec![fix]));
                            sharded.accept(ProductBatch::Fixes(vec![fix]));
                            segmented.accept(ProductBatch::Fixes(vec![fix]));
                            single.accept(ProductBatch::Proximity(vec![prox]));
                            sharded.accept(ProductBatch::Proximity(vec![prox]));
                            segmented.accept(ProductBatch::Proximity(vec![prox]));
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().is_ok());
        }
    });

    // Totals match on all three backends.
    let objects = PRODUCERS * OBJECTS_PER_PRODUCER;
    let rows = (objects as usize) * (BATCHES_PER_OBJECT * ROWS_PER_BATCH) as usize;
    assert_eq!(single.counts(RunScope::All).trajectories, rows);
    assert_eq!(single.counts(RunScope::All), sharded.counts(RunScope::All));
    assert_eq!(
        single.counts(RunScope::All),
        segmented.counts(RunScope::All)
    );
    // The aggressive thresholds must have exercised the sealer for real.
    let stats = segmented.stats();
    assert!(stats.seals > 0, "sealer never sealed: {stats:?}");
    let per_shard = sharded.per_shard_counts();
    assert_eq!(per_shard.len(), 4);
    assert_eq!(
        per_shard.iter().map(|c| c.trajectories).sum::<usize>(),
        rows
    );

    // Per-object time order is preserved on both backends, and each
    // object's rows match bit-identically (one producer per object ⇒
    // arrival order is deterministic per object even under concurrency).
    for o in 0..objects {
        let a: Vec<TrajectorySample> = single
            .trajectories
            .read()
            .object_trace(RunScope::All, ObjectId(o))
            .into_iter()
            .copied()
            .collect();
        let b = sharded.object_trace(RunScope::All, ObjectId(o));
        assert!(!a.is_empty());
        assert!(
            a.windows(2).all(|w| w[0].t <= w[1].t),
            "object {o} trace out of order"
        );
        assert_eq!(a, b, "object {o} trace differs across backends");
        let c = segmented.object_trace(RunScope::All, ObjectId(o));
        assert_eq!(a, c, "object {o} trace differs on segmented backend");

        let ra: Vec<RssiMeasurement> = single
            .rssi
            .read()
            .of_object(RunScope::All, ObjectId(o))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(ra, sharded.rssi_of_object(RunScope::All, ObjectId(o)));
        assert_eq!(ra, segmented.rssi_of_object(RunScope::All, ObjectId(o)));
        let fa: Vec<Fix> = single
            .fixes
            .read()
            .of_object(RunScope::All, ObjectId(o))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(fa, sharded.fixes_of_object(RunScope::All, ObjectId(o)));
        assert_eq!(fa, segmented.fixes_of_object(RunScope::All, ObjectId(o)));
        let pa: Vec<ProximityRecord> = single
            .proximity
            .read()
            .of_object(RunScope::All, ObjectId(o))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(pa, sharded.proximity_of_object(RunScope::All, ObjectId(o)));
        assert_eq!(
            pa,
            segmented.proximity_of_object(RunScope::All, ObjectId(o))
        );
    }

    // Full row sets match bit-identically for all four tables (sorted on a
    // full key — global arrival order is scheduler-dependent by contract).
    let key = |s: &TrajectorySample| {
        let p = s.point();
        (s.t.0, s.object.0, p.x.to_bits(), p.y.to_bits())
    };
    let mut a: Vec<TrajectorySample> = single.trajectories.read().scan().copied().collect();
    let mut b = sharded.trajectories_scan(RunScope::All);
    let mut c = segmented.trajectories_scan(RunScope::All);
    a.sort_by_key(key);
    b.sort_by_key(key);
    c.sort_by_key(key);
    assert_eq!(a, b);
    assert_eq!(a, c);

    let mut ra: Vec<RssiMeasurement> = single.rssi.read().scan().copied().collect();
    let mut rb = sharded.rssi_scan(RunScope::All);
    let rkey = |m: &RssiMeasurement| (m.t.0, m.object.0, m.device.0, m.rssi.to_bits());
    let mut rc = segmented.rssi_scan(RunScope::All);
    ra.sort_by_key(rkey);
    rb.sort_by_key(rkey);
    rc.sort_by_key(rkey);
    assert_eq!(ra, rb);
    assert_eq!(ra, rc);

    let mut fa: Vec<Fix> = single.fixes.read().scan().copied().collect();
    let mut fb = sharded.fixes_scan(RunScope::All);
    let fkey = |f: &Fix| (f.t.0, f.object.0);
    let mut fc = segmented.fixes_scan(RunScope::All);
    fa.sort_by_key(fkey);
    fb.sort_by_key(fkey);
    fc.sort_by_key(fkey);
    assert_eq!(fa, fb);
    assert_eq!(fa, fc);

    let mut pa: Vec<ProximityRecord> = single.proximity.read().scan().copied().collect();
    let mut pb = sharded.proximity_scan(RunScope::All);
    let pkey = |r: &ProximityRecord| (r.ts.0, r.te.0, r.object.0, r.device.0);
    let mut pc = segmented.proximity_scan(RunScope::All);
    pa.sort_by_key(pkey);
    pb.sort_by_key(pkey);
    pc.sort_by_key(pkey);
    assert_eq!(pa, pb);
    assert_eq!(pa, pc);
    // A final forced maintenance round must not change any answer.
    segmented.seal_now();
    segmented.seal_now();
    let mut pd = segmented.proximity_scan(RunScope::All);
    pd.sort_by_key(pkey);
    assert_eq!(pa, pd);
    assert_eq!(segmented.stats().unsealed_segments, 0);
}
