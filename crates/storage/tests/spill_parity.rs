//! Tiered-storage acceptance suite (the PR-8 spill contract):
//!
//! * a budget-constrained [`SegmentedRepository`] — sealed segments
//!   spilled to disk, paged back through a bounded cache — answers every
//!   scoped query path **bit-identically** to a single [`Repository`] fed
//!   the same batches, with `seal_now()` forced at proptest-chosen points;
//! * after a maintenance round the decoded sealed-row gauge sits at or
//!   under `memory_budget_rows`, and anything past the budget really went
//!   to disk (`spills >= 1`);
//! * the raw-splice export (spilled bytes re-framed without a typed
//!   decode) equals the typed re-encode path byte-for-byte and imports
//!   into an identical repository;
//! * truncating, bit-flipping, or deleting a spilled segment file makes
//!   the `try_*` query twins return a [`SpillError`] — never a panic,
//!   never silently wrong rows — while metadata-only paths (`counts`,
//!   `run_ids`) keep answering without touching disk;
//! * the segment spill framing itself is pinned by a checked-in golden
//!   fixture, so on-disk spill files stay readable across releases.

use proptest::prelude::*;

use std::path::PathBuf;

use vita_geometry::{Aabb, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, Loc, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_positioning::{Fix, ProximityRecord};
use vita_rssi::RssiMeasurement;
use vita_storage::{
    decode_segment, encode_segment, ProductBatch, ProductSink, Repository, RunScope, SegmentConfig,
    SegmentSection, SegmentedRepository, SpillConfig, SpillError,
};

const OBJECTS: u32 = 24;
const DEVICES: u32 = 5;
const RUNS: u32 = 3;
const T_MAX: u64 = 10_000;

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (
        0u32..OBJECTS,
        0u32..2,
        -40.0f64..40.0,
        -40.0f64..40.0,
        0u64..T_MAX,
    )
        .prop_map(|(o, f, x, y, t)| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(f),
                Point::new(x, y),
                Timestamp(t),
            )
        })
}

fn rssi_strategy() -> impl Strategy<Value = RssiMeasurement> {
    (0u32..OBJECTS, 0u32..DEVICES, -100.0f64..-20.0, 0u64..T_MAX).prop_map(|(o, d, r, t)| {
        RssiMeasurement {
            object: ObjectId(o),
            device: DeviceId(d),
            rssi: r,
            t: Timestamp(t),
        }
    })
}

fn fix_strategy() -> impl Strategy<Value = Fix> {
    (0u32..OBJECTS, -40.0f64..40.0, -40.0f64..40.0, 0u64..T_MAX).prop_map(|(o, x, y, t)| Fix {
        object: ObjectId(o),
        loc: Loc::point(BuildingId(0), FloorId(0), Point::new(x, y)),
        t: Timestamp(t),
    })
}

fn proximity_strategy() -> impl Strategy<Value = ProximityRecord> {
    (0u32..OBJECTS, 0u32..DEVICES, 0u64..T_MAX, 0u64..2_000).prop_map(|(o, d, ts, dur)| {
        ProximityRecord {
            object: ObjectId(o),
            device: DeviceId(d),
            ts: Timestamp(ts),
            te: Timestamp(ts + dur),
        }
    })
}

/// A unique spill parent dir per test; each repository instance adds its
/// own `vita-{pid}-{n}` subdir underneath, removed on drop.
fn spill_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vita-spill-suite-{tag}-{}", std::process::id()))
}

/// A deliberately tiny memory budget so modest proptest corpora overflow
/// it, with a two-slot page-in cache to force eviction churn.
fn tiny_spill(tag: &str, budget: usize) -> SpillConfig {
    SpillConfig {
        dir: spill_dir(tag),
        memory_budget_rows: budget,
        cache_segments: 2,
    }
}

/// Feed identical batches to the all-resident single repository and the
/// budget-constrained spilled one, rotating the run tag per chunk and
/// forcing a seal/spill round every `seal_every` chunks.
fn fill2<T: Clone>(
    rows: &[T],
    batch: usize,
    seal_every: usize,
    wrap: impl Fn(Vec<T>) -> ProductBatch,
    single: &Repository,
    spilled: &SegmentedRepository,
) {
    for (i, chunk) in rows.chunks(batch.max(1)).enumerate() {
        let run = RunId((i as u32) % RUNS);
        single.accept_run(run, wrap(chunk.to_vec()));
        spilled.accept_run(run, wrap(chunk.to_vec()));
        if (i + 1) % seal_every.max(1) == 0 {
            spilled.seal_now();
        }
    }
    spilled.seal_now();
}

/// Scopes every parity check runs under: all runs merged plus each run in
/// isolation.
fn scopes() -> Vec<RunScope> {
    let mut v = vec![RunScope::All];
    v.extend((0..RUNS).map(|r| RunScope::from(RunId(r))));
    v
}

/// After a maintenance round the decoded sealed-row gauge must fit the
/// budget, and a corpus larger than the budget must really have spilled.
fn assert_budget_held(spilled: &SegmentedRepository, budget: usize, total_rows: usize) {
    let stats = spilled.stats();
    assert!(
        stats.resident_rows <= budget,
        "decoded sealed rows {} exceed budget {budget}: {stats:?}",
        stats.resident_rows
    );
    if total_rows > budget {
        assert!(
            stats.spills >= 1 && stats.spilled_rows > 0,
            "corpus of {total_rows} rows never spilled past budget {budget}: {stats:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every trajectory query path — scan, time window, snapshot, trace —
    /// is bit-identical to the all-resident single repository, across all
    /// scopes, while segments spill and page back in under a tiny budget.
    #[test]
    fn trajectory_paths_agree_exactly_under_spill(
        rows in proptest::collection::vec(sample_strategy(), 1..250),
        batch in 1usize..40,
        seal_every in 1usize..6,
        budget in 8usize..64,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
        at in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let spilled = SegmentedRepository::with_spill(
            SegmentConfig { seal_rows: 16, ..SegmentConfig::default() },
            tiny_spill("traj", budget),
        );
        fill2(&rows, batch, seal_every, ProductBatch::Trajectories, &single, &spilled);
        assert_budget_held(&spilled, budget, rows.len());

        for scope in scopes() {
            prop_assert_eq!(single.counts(scope), spilled.counts(scope));

            let a: Vec<TrajectorySample> = match scope.run() {
                None => single.trajectories.read().scan().copied().collect(),
                Some(r) => single.trajectories.read().scan_run(r).into_iter().copied().collect(),
            };
            prop_assert_eq!(a, spilled.trajectories_scan(scope));

            for (lo, hi) in [(from, from + width), (from, from), (0, T_MAX + 1)] {
                let a: Vec<TrajectorySample> = single.trajectories.read()
                    .time_window(scope, Timestamp(lo), Timestamp(hi))
                    .into_iter().copied().collect();
                prop_assert_eq!(
                    a,
                    spilled.trajectories_time_window(scope, Timestamp(lo), Timestamp(hi))
                );
            }

            let a: Vec<TrajectorySample> = single.trajectories.read()
                .snapshot_at(scope, Timestamp(at)).into_iter().copied().collect();
            prop_assert_eq!(a, spilled.trajectories_snapshot_at(scope, Timestamp(at)));
            for o in 0..OBJECTS {
                let a: Vec<TrajectorySample> = single.trajectories.read()
                    .object_trace(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(a, spilled.object_trace(scope, ObjectId(o)));
            }
        }
        prop_assert_eq!(single.run_ids(), spilled.run_ids());
        if rows.len() > budget {
            prop_assert!(spilled.stats().page_ins >= 1, "{:?}", spilled.stats());
        }

        // Queries paged segments back in; the next maintenance round must
        // bring the gauge back under the budget without changing answers.
        let before = spilled.trajectories_scan(RunScope::All);
        spilled.seal_now();
        assert_budget_held(&spilled, budget, rows.len());
        prop_assert_eq!(before, spilled.trajectories_scan(RunScope::All));
    }

    /// Spatial paths page spilled segments in through the floor-pruned
    /// keep-predicate: range queries exact, kNN distance multisets
    /// bit-identical.
    #[test]
    fn spatial_paths_agree_under_spill(
        rows in proptest::collection::vec(sample_strategy(), 1..150),
        seal_every in 1usize..6,
        budget in 8usize..48,
        x0 in -40.0f64..40.0, y0 in -40.0f64..40.0,
        w in 1.0f64..50.0, h in 1.0f64..50.0,
        k in 1usize..12,
    ) {
        let single = Repository::new();
        let spilled = SegmentedRepository::with_spill(
            SegmentConfig { seal_rows: 16, ..SegmentConfig::default() },
            tiny_spill("spatial", budget),
        );
        fill2(&rows, 16, seal_every, ProductBatch::Trajectories, &single, &spilled);
        assert_budget_held(&spilled, budget, rows.len());

        let q = Aabb::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let p = Point::new(x0, y0);
        for scope in scopes() {
            for floor in [FloorId(0), FloorId(1), FloorId(7)] {
                let a: Vec<TrajectorySample> = single.trajectories.read()
                    .range_query(scope, floor, &q).into_iter().copied().collect();
                prop_assert_eq!(a, spilled.trajectories_range_query(scope, floor, &q));
            }

            let a: Vec<u64> = single.trajectories.read().knn(scope, FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            let b: Vec<u64> = spilled.trajectories_knn(scope, FloorId(0), p, k)
                .iter().map(|(_, d)| d.to_bits()).collect();
            prop_assert_eq!(a, b);
        }
    }

    /// RSSI, fix, and proximity paths under spill: exact on every scope,
    /// object, and device.
    #[test]
    fn measurement_paths_agree_exactly_under_spill(
        rssi in proptest::collection::vec(rssi_strategy(), 1..150),
        fixes in proptest::collection::vec(fix_strategy(), 1..150),
        prox in proptest::collection::vec(proximity_strategy(), 1..150),
        batch in 1usize..40,
        seal_every in 1usize..6,
        budget in 8usize..64,
        from in 0u64..T_MAX,
        width in 0u64..T_MAX,
    ) {
        let single = Repository::new();
        let spilled = SegmentedRepository::with_spill(
            SegmentConfig { seal_rows: 16, ..SegmentConfig::default() },
            tiny_spill("meas", budget),
        );
        fill2(&rssi, batch, seal_every, ProductBatch::Rssi, &single, &spilled);
        fill2(&fixes, batch, seal_every, ProductBatch::Fixes, &single, &spilled);
        fill2(&prox, batch, seal_every, ProductBatch::Proximity, &single, &spilled);
        assert_budget_held(&spilled, budget, rssi.len() + fixes.len() + prox.len());

        let (lo, hi) = (Timestamp(from), Timestamp(from + width));
        for scope in scopes() {
            prop_assert_eq!(single.counts(scope), spilled.counts(scope));

            let a: Vec<RssiMeasurement> = match scope.run() {
                None => single.rssi.read().scan().copied().collect(),
                Some(r) => single.rssi.read().scan_run(r).into_iter().copied().collect(),
            };
            prop_assert_eq!(a, spilled.rssi_scan(scope));
            let a: Vec<RssiMeasurement> = single.rssi.read()
                .time_window(scope, lo, hi).into_iter().copied().collect();
            prop_assert_eq!(a, spilled.rssi_time_window(scope, lo, hi));
            let a: Vec<Fix> = single.fixes.read()
                .time_window(scope, lo, hi).into_iter().copied().collect();
            prop_assert_eq!(a, spilled.fixes_time_window(scope, lo, hi));
            let a: Vec<ProximityRecord> = single.proximity.read()
                .overlapping(scope, lo, hi).into_iter().copied().collect();
            prop_assert_eq!(a, spilled.proximity_overlapping(scope, lo, hi));

            for o in 0..OBJECTS {
                let a: Vec<RssiMeasurement> = single.rssi.read()
                    .of_object(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(a, spilled.rssi_of_object(scope, ObjectId(o)));
                let af: Vec<Fix> = single.fixes.read()
                    .of_object(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(af, spilled.fixes_of_object(scope, ObjectId(o)));
                let ap: Vec<ProximityRecord> = single.proximity.read()
                    .of_object(scope, ObjectId(o)).into_iter().copied().collect();
                prop_assert_eq!(ap, spilled.proximity_of_object(scope, ObjectId(o)));
            }
            for d in 0..DEVICES {
                let a: Vec<RssiMeasurement> = single.rssi.read()
                    .of_device(scope, DeviceId(d)).into_iter().copied().collect();
                prop_assert_eq!(a, spilled.rssi_of_device(scope, DeviceId(d)));
                let ap: Vec<ProximityRecord> = single.proximity.read()
                    .of_device(scope, DeviceId(d)).into_iter().copied().collect();
                prop_assert_eq!(ap, spilled.proximity_of_device(scope, DeviceId(d)));
            }
        }
    }

    /// Export out of a spilled repository splices raw bytes from the spill
    /// files: it must equal the typed re-encode path byte-for-byte and
    /// import into a repository that scans identically per run.
    #[test]
    fn spilled_export_splices_raw_bytes_identically(
        rows in proptest::collection::vec(sample_strategy(), 1..120),
        batch in 1usize..30,
        seal_every in 1usize..6,
        budget in 8usize..48,
    ) {
        let single = Repository::new();
        let spilled = SegmentedRepository::with_spill(
            SegmentConfig { seal_rows: 16, ..SegmentConfig::default() },
            tiny_spill("export", budget),
        );
        fill2(&rows, batch, seal_every, ProductBatch::Trajectories, &single, &spilled);

        let spliced = spilled.export();
        let reencoded = spilled.export_reencode();
        prop_assert_eq!(&spliced.trajectories, &reencoded.trajectories);
        prop_assert_eq!(&spliced.rssi, &reencoded.rssi);
        prop_assert_eq!(&spliced.fixes, &reencoded.fixes);
        prop_assert_eq!(&spliced.proximity, &reencoded.proximity);

        let from_spilled = Repository::import(&spliced).unwrap();
        for r in 0..RUNS {
            let a: Vec<TrajectorySample> = from_spilled.trajectories.read()
                .scan_run(RunId(r)).into_iter().copied().collect();
            let b: Vec<TrajectorySample> = single.trajectories.read()
                .scan_run(RunId(r)).into_iter().copied().collect();
            prop_assert_eq!(a, b);
        }
    }
}

// ----------------------------------------------------------- corruption fuzz

/// Build a repository holding exactly one sealed, spilled trajectory
/// segment (budget 0 spills everything; a lone segment cannot be
/// compacted away), and return it with the on-disk path of its spill
/// file.
fn one_spilled_segment(tag: &str) -> (SegmentedRepository, PathBuf, Vec<TrajectorySample>) {
    let parent = spill_dir(tag);
    let _ = std::fs::remove_dir_all(&parent);
    let repo = SegmentedRepository::with_spill(
        SegmentConfig {
            seal_rows: 64,
            ..SegmentConfig::default()
        },
        SpillConfig {
            dir: parent.clone(),
            memory_budget_rows: 0,
            cache_segments: 2,
        },
    );
    let rows: Vec<TrajectorySample> = (0..32)
        .map(|i| {
            TrajectorySample::new(
                ObjectId(i % 4),
                BuildingId(0),
                FloorId(0),
                Point::new(i as f64, 1.0),
                Timestamp(i as u64 * 10),
            )
        })
        .collect();
    repo.accept_run(RunId(0), ProductBatch::Trajectories(rows.clone()));
    repo.seal_now();
    let stats = repo.stats();
    assert_eq!(stats.spilled_segments, 1, "{stats:?}");
    assert_eq!(stats.spilled_rows, 32, "{stats:?}");

    let mut files = Vec::new();
    for entry in std::fs::read_dir(&parent).unwrap() {
        let sub = entry.unwrap().path();
        for f in std::fs::read_dir(&sub).unwrap() {
            let p = f.unwrap().path();
            if p.extension().is_some_and(|e| e == "vita") {
                files.push(p);
            }
        }
    }
    assert_eq!(files.len(), 1, "expected one spill file, got {files:?}");
    (repo, files.remove(0), rows)
}

/// Metadata-only paths never touch disk: they must keep answering even
/// when every spilled byte is gone or corrupt.
fn assert_planning_survives(repo: &SegmentedRepository) {
    let c = repo.counts(RunScope::All);
    assert_eq!(c.trajectories, 32);
    assert_eq!(repo.run_ids(), vec![RunId(0)]);
    assert_eq!(repo.stats().spilled_rows, 32);
}

/// Every row-materialising `try_*` path over the corrupted segment must
/// surface an error — never panic, never fabricate rows.
fn assert_queries_error(repo: &SegmentedRepository, expect_io: bool) {
    let window = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 2.0));
    let results: Vec<Result<usize, SpillError>> = vec![
        repo.try_trajectories_scan(RunScope::All).map(|v| v.len()),
        repo.try_trajectories_time_window(RunScope::All, Timestamp(0), Timestamp(1_000))
            .map(|v| v.len()),
        repo.try_trajectories_snapshot_at(RunScope::All, Timestamp(500))
            .map(|v| v.len()),
        repo.try_object_trace(RunScope::All, ObjectId(1))
            .map(|v| v.len()),
        repo.try_trajectories_range_query(RunScope::All, FloorId(0), &window)
            .map(|v| v.len()),
        repo.try_trajectories_knn(RunScope::All, FloorId(0), Point::new(3.0, 1.0), 4)
            .map(|v| v.len()),
        repo.try_export().map(|e| e.trajectories.len()),
    ];
    for (i, r) in results.into_iter().enumerate() {
        match r {
            Err(SpillError::Io(_)) if expect_io => {}
            Err(SpillError::Codec(_)) if !expect_io => {}
            other => panic!(
                "path {i}: expected {} error, got {other:?}",
                if expect_io { "io" } else { "codec" }
            ),
        }
    }
}

#[test]
fn truncated_spill_file_errors_and_never_panics() {
    let (repo, file, _) = one_spilled_segment("trunc");
    let bytes = std::fs::read(&file).unwrap();
    std::fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
    assert_queries_error(&repo, false);
    assert_planning_survives(&repo);
}

#[test]
fn bit_flipped_spill_file_errors_and_never_panics() {
    let (repo, file, _) = one_spilled_segment("flip");
    let mut bytes = std::fs::read(&file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&file, &bytes).unwrap();
    assert_queries_error(&repo, false);
    assert_planning_survives(&repo);
}

#[test]
fn missing_spill_file_errors_and_never_panics() {
    let (repo, file, _) = one_spilled_segment("gone");
    std::fs::remove_file(&file).unwrap();
    assert_queries_error(&repo, true);
    assert_planning_survives(&repo);
}

/// An intact spill file pages back to exactly the ingested rows — the
/// positive control for the corruption tests above, driven through the
/// same `try_*` twins.
#[test]
fn intact_spill_file_pages_back_exactly() {
    let (repo, _, rows) = one_spilled_segment("intact");
    assert_eq!(repo.try_trajectories_scan(RunScope::All).unwrap(), rows);
    assert!(repo.stats().page_ins >= 1);
}

// ----------------------------------------------------------- golden fixture

/// The segment rows the golden fixture encodes, spelled out literally.
fn golden_sections() -> Vec<SegmentSection<TrajectorySample>> {
    let s = |o: u32, f: u32, x: f64, y: f64, t: u64| {
        TrajectorySample::new(
            ObjectId(o),
            BuildingId(0),
            FloorId(f),
            Point::new(x, y),
            Timestamp(t),
        )
    };
    vec![
        SegmentSection {
            run: RunId(0),
            rows: vec![
                s(1, 0, 1.5, 2.5, 100),
                s(2, 0, -4.25, 9.75, 250),
                s(1, 1, 0.0, 0.5, 300),
            ],
            seqs: vec![0, 2, 4],
        },
        SegmentSection {
            run: RunId(3),
            rows: vec![s(7, 1, 12.0, -3.5, 50), s(9, 0, 6.25, 6.25, 975)],
            seqs: vec![1, 3],
        },
    ]
}

/// The spill framing is pinned by a checked-in fixture: today's encoder
/// must reproduce the golden bytes exactly (the format is canonical), and
/// the golden bytes must decode to the literal rows, forever. This is the
/// CI tripwire that keeps old spill files on disk readable.
#[test]
fn segment_framing_matches_golden_fixture() {
    let golden = bytes::Bytes::from_static(include_bytes!("fixtures/segment_v2_trajectories.bin"));
    let sections = golden_sections();
    let borrowed: Vec<(RunId, &[TrajectorySample], &[u64])> = sections
        .iter()
        .map(|s| (s.run, s.rows.as_slice(), s.seqs.as_slice()))
        .collect();
    assert_eq!(
        encode_segment(&borrowed),
        golden,
        "segment framing drifted from the checked-in fixture"
    );
    assert_eq!(
        decode_segment::<TrajectorySample>(golden).unwrap(),
        sections
    );
}
