//! Property-based tests for storage: index queries must agree with brute
//! force, stream utilities must preserve structural invariants, and codecs
//! must round-trip anything.

use proptest::prelude::*;

use vita_geometry::{Aabb, Point};
use vita_indoor::{BuildingId, DeviceId, FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_rssi::RssiMeasurement;
use vita_storage::{
    decode_proximity, decode_rssi, downsample, encode_proximity, encode_rssi, merge_by_time,
    record_rate, RssiTable, RunScope, Timed, TrajectoryTable, TumblingWindow,
};

fn sample_strategy() -> impl Strategy<Value = TrajectorySample> {
    (
        0u32..20,
        0u32..3,
        -50.0f64..50.0,
        -50.0f64..50.0,
        0u64..1_000_000,
    )
        .prop_map(|(o, f, x, y, t)| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(f),
                Point::new(x, y),
                Timestamp(t),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn time_window_matches_brute_force(
        samples in proptest::collection::vec(sample_strategy(), 0..200),
        from in 0u64..1_000_000,
        width in 1u64..500_000,
    ) {
        let mut table = TrajectoryTable::new();
        table.insert_bulk(samples.iter().copied());
        let to = from + width;
        let got = table.time_window(RunScope::All, Timestamp(from), Timestamp(to)).len();
        let want = samples.iter().filter(|s| s.t.0 >= from && s.t.0 < to).count();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn object_trace_matches_brute_force(
        samples in proptest::collection::vec(sample_strategy(), 0..200),
        o in 0u32..20,
    ) {
        let mut table = TrajectoryTable::new();
        table.insert_bulk(samples.iter().copied());
        let got = table.object_trace(RunScope::All, ObjectId(o));
        let want = samples.iter().filter(|s| s.object == ObjectId(o)).count();
        prop_assert_eq!(got.len(), want);
        // Trace time-ordered.
        for w in got.windows(2) {
            prop_assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn range_query_matches_brute_force(
        samples in proptest::collection::vec(sample_strategy(), 0..150),
        x0 in -50.0f64..50.0, y0 in -50.0f64..50.0,
        w in 1.0f64..60.0, h in 1.0f64..60.0,
    ) {
        let mut table = TrajectoryTable::new();
        table.insert_bulk(samples.iter().copied());
        let q = Aabb::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let got = table.range_query(RunScope::All, FloorId(0), &q).len();
        let want = samples
            .iter()
            .filter(|s| {
                s.loc.floor == FloorId(0)
                    && s.loc.as_point().map(|p| q.contains_point(p)).unwrap_or(false)
            })
            .count();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn snapshot_has_at_most_one_row_per_object(
        samples in proptest::collection::vec(sample_strategy(), 0..200),
        at in 0u64..1_000_000,
    ) {
        let mut table = TrajectoryTable::new();
        table.insert_bulk(samples.iter().copied());
        let snap = table.snapshot_at(RunScope::All, Timestamp(at));
        let mut objs: Vec<ObjectId> = snap.iter().map(|s| s.object).collect();
        objs.sort_unstable();
        let before_dedup = objs.len();
        objs.dedup();
        prop_assert_eq!(objs.len(), before_dedup);
        for s in &snap {
            prop_assert!(s.t.0 <= at);
        }
    }

    #[test]
    fn tumbling_windows_cover_all_records_in_order(
        mut samples in proptest::collection::vec(sample_strategy(), 1..150),
        width in 1u64..100_000,
    ) {
        samples.sort_by_key(|s| s.t);
        let windows = TumblingWindow::new(width).split(&samples);
        let total: usize = windows.iter().map(|(_, w)| w.len()).sum();
        prop_assert_eq!(total, samples.len());
        for (start, w) in &windows {
            for s in *w {
                prop_assert!(s.time().0 >= start.0);
                prop_assert!(s.time().0 < start.0 + width.max(1));
            }
        }
        // Window starts strictly increasing.
        for pair in windows.windows(2) {
            prop_assert!(pair[0].0 < pair[1].0);
        }
    }

    #[test]
    fn downsample_spacing_respected(
        mut samples in proptest::collection::vec(sample_strategy(), 0..150),
        period in 1u64..50_000,
    ) {
        samples.sort_by_key(|s| s.t);
        let down = downsample(&samples, period);
        prop_assert!(down.len() <= samples.len());
        for w in down.windows(2) {
            // Consecutive kept records fall in different periods.
            prop_assert!(w[1].t.0 / period.max(1) > w[0].t.0 / period.max(1));
        }
        // Rate never increases.
        prop_assert!(record_rate(&down) <= record_rate(&samples) + 1e-9);
    }

    #[test]
    fn merge_preserves_order_and_count(
        mut a in proptest::collection::vec(sample_strategy(), 0..80),
        mut b in proptest::collection::vec(sample_strategy(), 0..80),
    ) {
        a.sort_by_key(|s| s.t);
        b.sort_by_key(|s| s.t);
        let merged = merge_by_time(&[&a, &b]);
        prop_assert_eq!(merged.len(), a.len() + b.len());
        for w in merged.windows(2) {
            prop_assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn rssi_codec_round_trips(
        rows in proptest::collection::vec(
            (0u32..100, 0u32..20, -120.0f64..0.0, 0u64..10_000_000),
            0..80,
        ),
    ) {
        let ms: Vec<RssiMeasurement> = rows
            .iter()
            .map(|(o, d, r, t)| RssiMeasurement {
                object: ObjectId(*o),
                device: DeviceId(*d),
                rssi: *r,
                t: Timestamp(*t),
            })
            .collect();
        let decoded = decode_rssi(encode_rssi(&ms)).unwrap();
        prop_assert_eq!(decoded, ms);
    }

    #[test]
    fn proximity_codec_round_trips(
        rows in proptest::collection::vec(
            (0u32..100, 0u32..20, 0u64..1_000_000, 0u64..1_000_000),
            0..80,
        ),
    ) {
        let rs: Vec<vita_positioning::ProximityRecord> = rows
            .iter()
            .map(|(o, d, t1, t2)| vita_positioning::ProximityRecord {
                object: ObjectId(*o),
                device: DeviceId(*d),
                ts: Timestamp(*t1.min(t2)),
                te: Timestamp(*t1.max(t2)),
            })
            .collect();
        let decoded = decode_proximity(encode_proximity(&rs)).unwrap();
        prop_assert_eq!(decoded, rs);
    }

    #[test]
    fn rssi_table_device_and_object_indexes_consistent(
        rows in proptest::collection::vec(
            (0u32..10, 0u32..5, 0u64..100_000),
            0..120,
        ),
    ) {
        let mut table = RssiTable::new();
        for (o, d, t) in &rows {
            table.insert(RssiMeasurement {
                object: ObjectId(*o),
                device: DeviceId(*d),
                rssi: -50.0,
                t: Timestamp(*t),
            });
        }
        let by_obj: usize = (0..10).map(|o| table.of_object(RunScope::All, ObjectId(o)).len()).sum();
        let by_dev: usize = (0..5).map(|d| table.of_device(RunScope::All, DeviceId(d)).len()).sum();
        prop_assert_eq!(by_obj, rows.len());
        prop_assert_eq!(by_dev, rows.len());
    }
}
