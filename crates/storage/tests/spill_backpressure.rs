//! Spill writer backpressure regression (ISSUE 9 satellite): ingesting a
//! corpus far past a tiny memory budget must stall the writer at least
//! once (`writer_stalls > 0` — appends wait for the spiller instead of
//! letting decoded sealed rows grow unboundedly), must actually evict to
//! disk, and must lose nothing: post-run counts match an all-resident
//! control fed the identical batches.

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{
    ProductBatch, ProductSink, RunScope, SegmentConfig, SegmentedRepository, SpillConfig,
};

const TOTAL_ROWS: usize = 16_384;
/// Batches must be smaller than the seal threshold: an append that
/// seals inline wakes the background sealer, whose enforcement pass
/// races ahead of the writer's own high-water check and clears the
/// backlog first — the small appends in between are where the stall
/// path is observable (same geometry as E17).
const BATCH: usize = 128;
const SEAL_ROWS: usize = 512;
const BUDGET: usize = 512;
const RUNS: u32 = 3;
/// Every few batches, page the newest *sealed* segment back in. Past
/// the first seal the budget is full, so every later seal output is
/// spilled directly — never published resident — which means pure
/// ingest never stalls; only a page-in can push the decoded gauge a
/// full seal past the budget, which is exactly the high-water mark the
/// next append stalls on.
const QUERY_EVERY: usize = 2;

fn spill_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("vita-backpressure-{tag}-{}", std::process::id()))
}

fn batch_at(b: usize) -> Vec<TrajectorySample> {
    (0..BATCH)
        .map(|i| {
            let row = b * BATCH + i;
            TrajectorySample::new(
                ObjectId((row % 100) as u32),
                BuildingId(0),
                FloorId((row % 2) as u32),
                Point::new((row % 420) as f64 / 10.0, (row % 160) as f64 / 10.0),
                Timestamp(row as u64),
            )
        })
        .collect()
}

fn ingest(repo: &SegmentedRepository) {
    for b in 0..TOTAL_ROWS / BATCH {
        repo.accept_run(
            RunId((b as u32) % RUNS),
            ProductBatch::Trajectories(batch_at(b)),
        );
        let sealed_hi = ((b + 1) * BATCH / SEAL_ROWS * SEAL_ROWS) as u64;
        if (b + 1) % QUERY_EVERY == 0 && sealed_hi >= 2 * SEAL_ROWS as u64 {
            let _ = repo
                .trajectories_time_window(
                    RunScope::All,
                    Timestamp(sealed_hi - SEAL_ROWS as u64),
                    Timestamp(sealed_hi),
                )
                .len();
        }
    }
    repo.seal_now();
}

#[test]
fn tiny_budget_ingest_stalls_writer_and_loses_nothing() {
    let config = SegmentConfig {
        seal_rows: SEAL_ROWS,
        ..SegmentConfig::default()
    };
    // Control: same segment geometry, but a budget the whole corpus fits
    // under — the spiller never runs, so this is the all-resident row set.
    // (Built via `with_spill` so a VITA_SPILL_DIR in the environment
    // can't silently attach a real spill tier to the control.)
    let control = SegmentedRepository::with_spill(
        config,
        SpillConfig {
            dir: spill_dir("control"),
            memory_budget_rows: TOTAL_ROWS * 2,
            cache_segments: 2,
        },
    );
    ingest(&control);
    let control_stats = control.stats();
    assert_eq!(control_stats.spills, 0, "control must stay resident");
    assert_eq!(control_stats.writer_stalls, 0, "{control_stats:?}");

    let spilled = SegmentedRepository::with_spill(
        config,
        SpillConfig {
            dir: spill_dir("tiny"),
            memory_budget_rows: BUDGET,
            cache_segments: 2,
        },
    );
    ingest(&spilled);
    let stats = spilled.stats();

    // The regression under test: a 32× budget corpus must hit the
    // backpressure path, not just the spiller.
    assert!(stats.writer_stalls > 0, "writer never stalled: {stats:?}");
    assert!(stats.spills > 0 && stats.spilled_rows > 0, "{stats:?}");
    assert!(
        stats.resident_rows <= BUDGET,
        "post-maintenance gauge over budget: {stats:?}"
    );

    // Nothing lost crossing the spill tier: per-run and total counts
    // match the all-resident control exactly.
    assert_eq!(spilled.run_ids(), control.run_ids());
    for run in control.run_ids() {
        assert_eq!(
            spilled.counts(run.into()),
            control.counts(run.into()),
            "per-run counts diverge at {run:?}"
        );
    }
    assert_eq!(spilled.counts(RunScope::All), control.counts(RunScope::All));
    assert_eq!(spilled.counts(RunScope::All).trajectories, TOTAL_ROWS);

    // Paged-back rows are the control's rows, not just the same counts.
    assert_eq!(
        spilled.trajectories_scan(RunScope::All),
        control.trajectories_scan(RunScope::All)
    );

    drop(spilled);
    drop(control);
    for tag in ["control", "tiny"] {
        let _ = std::fs::remove_dir_all(spill_dir(tag));
    }
}
