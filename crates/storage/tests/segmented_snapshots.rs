//! Snapshot semantics of the segmented backend under racing writers:
//! every query a reader issues answers from one pinned snapshot, so while
//! producers append and the background sealer seals and compacts, each
//! reader must observe
//!
//! * **prefix consistency** — an object's trace is always exactly a
//!   prefix of the deterministic stream its producer appends (whole
//!   batches only: publication is per-accept, never mid-batch), and
//! * **per-thread monotonicity** — successive pins never go back in time:
//!   row counts and trace lengths never shrink within one thread.
//!
//! The sealer is tuned aggressively so seals and compactions land *during*
//! the assertions, not after them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{ProductBatch, ProductSink, RunScope, SegmentConfig, SegmentedRepository};

const PRODUCERS: u32 = 4;
const OBJECTS_PER_PRODUCER: u32 = 2;
const BATCHES_PER_OBJECT: u64 = 40;
const ROWS_PER_BATCH: u64 = 25;

fn sample(o: u32, t: u64) -> TrajectorySample {
    TrajectorySample::new(
        ObjectId(o),
        BuildingId(0),
        FloorId(0),
        Point::new((t % 89) as f64, (o % 11) as f64),
        Timestamp(t),
    )
}

/// The full deterministic stream of one object, in the order its producer
/// appends it (time-ordered within and across batches).
fn full_stream(o: u32) -> Vec<TrajectorySample> {
    (0..BATCHES_PER_OBJECT * ROWS_PER_BATCH)
        .map(|i| sample(o, i * 10))
        .collect()
}

#[test]
fn pinned_snapshots_are_prefix_consistent_and_monotone() {
    let repo = Arc::new(SegmentedRepository::with_config(SegmentConfig {
        seal_rows: 128,
        seal_segments: 4,
        compact_segments: 3,
        ..SegmentConfig::default()
    }));
    let done = Arc::new(AtomicBool::new(false));
    let objects = PRODUCERS * OBJECTS_PER_PRODUCER;

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..3 {
            let repo = Arc::clone(&repo);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let expected: Vec<Vec<TrajectorySample>> = (0..objects).map(full_stream).collect();
                let mut last_count = 0usize;
                let mut last_trace_len = vec![0usize; objects as usize];
                let mut rounds = 0usize;
                while !done.load(Ordering::Relaxed) || rounds == 0 {
                    // Counts never go backwards within a thread.
                    let count = repo.counts(RunScope::All).trajectories;
                    assert!(
                        count >= last_count,
                        "count regressed: {count} < {last_count}"
                    );
                    last_count = count;

                    for o in 0..objects {
                        let trace = repo.object_trace(RunScope::All, ObjectId(o));
                        let want = &expected[o as usize];
                        // Whole batches only, never a torn one.
                        assert_eq!(
                            trace.len() % ROWS_PER_BATCH as usize,
                            0,
                            "object {o}: torn batch visible ({} rows)",
                            trace.len()
                        );
                        // Exactly a prefix of the deterministic stream —
                        // time-ordered for free.
                        assert_eq!(
                            trace,
                            want[..trace.len()],
                            "object {o}: trace is not a prefix"
                        );
                        // Trace lengths never go backwards either.
                        assert!(
                            trace.len() >= last_trace_len[o as usize],
                            "object {o}: trace shrank"
                        );
                        last_trace_len[o as usize] = trace.len();
                    }

                    // Run-scoped counts partition the total on one pin...
                    // modulo racing appends between the two queries, scoped
                    // counts can only lag the merged one, never exceed it.
                    let all = repo.counts(RunScope::All).trajectories;
                    let scoped: usize = (0..PRODUCERS)
                        .map(|r| repo.counts(RunId(r).into()).trajectories)
                        .sum();
                    assert!(scoped >= all, "scoped sum {scoped} lost rows vs {all}");
                    rounds += 1;
                }
                rounds
            }));
        }

        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let repo = Arc::clone(&repo);
                scope.spawn(move || {
                    for b in 0..BATCHES_PER_OBJECT {
                        for k in 0..OBJECTS_PER_PRODUCER {
                            let o = p * OBJECTS_PER_PRODUCER + k;
                            let t0 = b * ROWS_PER_BATCH * 10;
                            let batch: Vec<TrajectorySample> = (0..ROWS_PER_BATCH)
                                .map(|i| sample(o, t0 + i * 10))
                                .collect();
                            repo.accept_run(RunId(p), ProductBatch::Trajectories(batch));
                        }
                        // Pace the ingest across several sealer ticks so the
                        // readers actually observe seals and compactions in
                        // flight, not just the unsealed tail.
                        std::thread::sleep(std::time::Duration::from_micros(300));
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        done.store(true, Ordering::Relaxed);
        for r in readers {
            let rounds = r.join().unwrap();
            assert!(rounds > 0);
        }
    });

    // Final state: complete streams, sealer actually ran.
    let rows = (objects as u64 * BATCHES_PER_OBJECT * ROWS_PER_BATCH) as usize;
    assert_eq!(repo.counts(RunScope::All).trajectories, rows);
    for o in 0..objects {
        assert_eq!(
            repo.object_trace(RunScope::All, ObjectId(o)),
            full_stream(o)
        );
    }
    // The background sealer runs on its own clock; give it a moment to
    // drain the backlog before insisting it did.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while repo.stats().seals == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let stats = repo.stats();
    assert!(stats.seals > 0, "sealer never sealed: {stats:?}");
    repo.seal_now();
    repo.seal_now();
    assert_eq!(repo.stats().unsealed_segments, 0);
    assert_eq!(repo.counts(RunScope::All).trajectories, rows);
}
