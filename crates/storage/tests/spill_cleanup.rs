//! `SegmentedRepository` Drop must remove its per-instance spill
//! subdirectory (ISSUE 9 satellite) — including after queries paged
//! spilled segments back in, which re-reads files the compactor may
//! have already consumed and re-populates the page-in cache. Until now
//! this was only asserted implicitly (parity suites removing the parent
//! themselves); this pins it: the parent directory two repositories
//! share is empty once both drop, and each instance only ever touched
//! its own `vita-{pid}-{n}` subdir.

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{
    ProductBatch, ProductSink, RunScope, SegmentConfig, SegmentedRepository, SpillConfig,
};

const TOTAL_ROWS: usize = 4_096;
const BATCH: usize = 128;
const BUDGET: usize = 512;

fn subdirs(parent: &std::path::Path) -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(parent)
        .expect("read spill parent dir")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    names.sort();
    names
}

#[test]
fn drop_removes_per_instance_spill_subdir_after_page_ins() {
    let parent = std::env::temp_dir().join(format!("vita-cleanup-{}", std::process::id()));
    std::fs::create_dir_all(&parent).expect("create parent dir");

    let build = || {
        SegmentedRepository::with_spill(
            SegmentConfig {
                seal_rows: BUDGET,
                ..SegmentConfig::default()
            },
            SpillConfig {
                dir: parent.clone(),
                memory_budget_rows: BUDGET,
                cache_segments: 2,
            },
        )
    };
    // Two instances sharing the configured dir: each must spill into its
    // own subdir and remove exactly that on drop.
    let repo = build();
    let other = build();
    assert_eq!(subdirs(&parent).len(), 2, "one subdir per live instance");
    let prefix = format!("vita-{}-", std::process::id());
    assert!(
        subdirs(&parent).iter().all(|d| d.starts_with(&prefix)),
        "{:?}",
        subdirs(&parent)
    );

    for b in 0..TOTAL_ROWS / BATCH {
        let rows: Vec<TrajectorySample> = (0..BATCH)
            .map(|i| {
                let row = b * BATCH + i;
                TrajectorySample::new(
                    ObjectId((row % 50) as u32),
                    BuildingId(0),
                    FloorId(0),
                    Point::new((row % 300) as f64 / 10.0, (row % 120) as f64 / 10.0),
                    Timestamp(row as u64),
                )
            })
            .collect();
        repo.accept_run(RunId(0), ProductBatch::Trajectories(rows));
    }
    repo.seal_now();
    assert!(repo.stats().spills > 0, "{:?}", repo.stats());

    // Page spilled segments back in: a full scan touches every sealed
    // segment, and cold time windows walk the spilled prefix through the
    // clock cache.
    assert_eq!(repo.trajectories_scan(RunScope::All).len(), TOTAL_ROWS);
    for seg in 0..TOTAL_ROWS / BUDGET {
        let from = (seg * BUDGET) as u64;
        let n = repo
            .trajectories_time_window(RunScope::All, Timestamp(from), Timestamp(from + 64))
            .len();
        assert_eq!(n, 64);
    }
    let stats = repo.stats();
    assert!(
        stats.page_ins > 0,
        "queries never paged anything in: {stats:?}"
    );

    // Drop with pages still cached and spill files live on disk: the
    // instance's subdir goes away; the sibling's stays untouched.
    drop(repo);
    assert_eq!(subdirs(&parent).len(), 1, "dropped instance must clean up");
    drop(other);
    assert_eq!(
        subdirs(&parent),
        Vec::<String>::new(),
        "shared parent must be empty after both drop"
    );

    std::fs::remove_dir_all(&parent).expect("remove parent dir");
}
