// Markdown tables on stdout are this binary's entire output contract
// (audit.toml's R6 carves out the same exemption for vita-bench).
#![allow(clippy::print_stdout, clippy::print_stderr)]
//! The experiment harness: regenerates every measured table in
//! EXPERIMENTS.md (E3–E11 plus the F3 deployment/crowd statistics) as
//! markdown on stdout.
//!
//! Run with: `cargo run --release -p vita-bench --bin experiments`
//! (Pass experiment ids, e.g. `e3 e5`, to run a subset. Pass
//! `--json PATH` to additionally wrap the report in a
//! `BENCH_seed.json`-style document written to PATH.)
//!
//! `lab SPEC [--trials PATH] [--schema GOLDEN]` runs an arbitrary
//! vita-lab scenario-matrix spec instead: analysis tables on stdout, one
//! JSONL trial record per trial to PATH, and optional validation of every
//! record's shape against a golden JSONL fixture. E11s/E13/E14 are thin
//! front-ends over checked-in specs in `crates/bench/specs/`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use vita_bench::*;
use vita_devices::{
    coverage_fraction, deploy, DeploymentModel, DeviceRegistry, DeviceSpec, DeviceType,
};
use vita_geometry::Point;
use vita_indoor::{FloorId, Hz, RoutePlanner, RoutingSchema, Timestamp};
use vita_mobility::{initial_positions, InitialDistribution};
use vita_positioning::{
    build_radio_map, default_conversion, evaluate_fixes, evaluate_prob_fixes, evaluate_proximity,
    knn_fingerprint, naive_bayes_fingerprint, proximity_records, trilaterate, ErrorStats,
    FingerprintConfig, ProximityConfig, SurveyConfig, TrilaterationConfig,
};
use vita_rssi::PathLossModel;
use vita_storage::{RunScope, TrajectoryTable};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args
            .get(i + 1)
            .cloned()
            .expect("--json requires an output path");
        args.drain(i..=i + 1);
        write_json_report(&path, &args);
        return;
    }
    if args.first().map(String::as_str) == Some("lab") {
        run_lab_command(&args[1..]);
        return;
    }
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    println!("# Vita experiment harness — measured results\n");
    if want("f3") {
        f3_deployment_and_crowds();
    }
    if want("e3") {
        e3_method_accuracy();
    }
    if want("e4") {
        e4_accuracy_vs_density();
    }
    if want("e5") {
        e5_accuracy_vs_noise();
    }
    if want("e6") {
        e6_sampling_frequencies();
    }
    if want("e7") {
        e7_routing_comparison();
    }
    if want("e8") {
        e8_deployment_models();
    }
    if want("e9") {
        e9_dbi_processing();
    }
    if want("e10") {
        e10_storage();
    }
    if want("e11") {
        e11_streaming_pipeline();
    }
    if want("e11s") {
        e11_at_scale();
    }
    if want("e13") {
        e13_concurrent_scenarios();
    }
    if want("e14") {
        e14_persistence();
    }
    if want("e15") {
        e15_query_serving();
    }
    if want("e16") {
        e16_read_under_ingest();
    }
    if want("e17") {
        e17_out_of_core();
    }
    if want("a1") {
        a1_trilateration_ablation();
    }
}

/// Re-run this binary with the remaining args, capture its markdown report,
/// and wrap it in a `BENCH_seed.json`-style document (description, command,
/// rustc, wall clock, report) at `path`. The report is also echoed to
/// stdout.
fn write_json_report(path: &str, args: &[String]) {
    let t0 = Instant::now();
    let exe = std::env::current_exe().expect("current_exe");
    let out = std::process::Command::new(exe)
        .args(args)
        .output()
        .expect("re-exec experiments");
    assert!(out.status.success(), "experiments run failed");
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    print!("{report}");
    let rustc = std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    // Label the document after its output file (BENCH_pr2.json → "pr2"),
    // so rerunning the same command for a later baseline self-describes.
    let label = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string());
    let json = format!(
        "{{\n  \"description\": {},\n  \"command\": {},\n  \"rustc\": {},\n  \"wall_clock_s\": {},\n  \"notes\": {},\n  \"report_markdown\": {}\n}}\n",
        json_string(&format!(
            "Perf baseline '{label}' for the VITA reproduction, written by the experiments harness. Compare section-by-section against earlier BENCH_*.json baselines; future PRs should append new entries rather than overwrite."
        )),
        json_string(&format!(
            "cargo run --release -p vita-bench --bin experiments -- --json {path}{}{}",
            if args.is_empty() { "" } else { " " },
            args.join(" ")
        )),
        json_string(&rustc),
        (t0.elapsed().as_secs_f64() * 10.0).round() / 10.0,
        json_string("criterion micro-benches: `cargo bench` (vendored shim reports median wall time per iteration); E11 compares Vita::run_streaming vs the step path"),
        json_string(&report),
    );
    std::fs::write(path, json).expect("write json report");
    eprintln!("wrote {path}");
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `lab SPEC [--trials PATH] [--schema GOLDEN]` — run a scenario-matrix
/// spec file through vita-lab: analysis tables on stdout, one JSONL
/// record per trial to PATH, and (with `--schema`) validation that every
/// emitted record's shape (key set + value types) matches one of the
/// golden fixture's lines.
fn run_lab_command(args: &[String]) {
    let mut spec_path = None;
    let mut trials_path = None;
    let mut schema_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trials" => trials_path = Some(it.next().expect("--trials needs a path").clone()),
            "--schema" => schema_path = Some(it.next().expect("--schema needs a path").clone()),
            other => spec_path = Some(other.to_string()),
        }
    }
    let spec_path = spec_path.expect("usage: lab SPEC [--trials PATH] [--schema GOLDEN]");
    let text = std::fs::read_to_string(&spec_path).expect("read spec");
    let report = run_lab_text(&text, &spec_path);
    let jsonl = report.trials_jsonl(true);
    if let Some(path) = trials_path {
        std::fs::write(&path, &jsonl).expect("write trials");
        eprintln!("wrote {path}");
    }
    if let Some(path) = schema_path {
        let golden = std::fs::read_to_string(&path).expect("read golden schema");
        // Canonical signatures: `bindings` keys are the spec's axis
        // names, so they are blanked (values checked to be strings) and
        // the rest of the shape must match a golden line exactly.
        let allowed: std::collections::BTreeSet<String> = golden
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| {
                vita_lab::trial_schema_signature(&vita_lab::Json::parse(l).expect("golden json"))
                    .expect("golden record shape")
            })
            .collect();
        for (i, line) in jsonl.lines().enumerate() {
            let record = vita_lab::Json::parse(line).expect("emitted record must be valid JSON");
            let sig = vita_lab::trial_schema_signature(&record)
                .unwrap_or_else(|e| panic!("trial record {i}: {e}"));
            assert!(
                allowed.contains(&sig),
                "trial record {i} has shape {sig}, not found in {path}"
            );
        }
        eprintln!(
            "schema ok: {} trial records match {path}",
            jsonl.lines().count()
        );
    }
}

/// Parse + execute a lab spec and print its report (header, per-axis
/// analysis tables, per-trial wall clocks).
fn run_lab_text(text: &str, origin: &str) -> vita_lab::LabReport {
    let spec = vita_lab::parse_spec(text).unwrap_or_else(|e| panic!("{origin}: {e}"));
    let report = vita_lab::run_spec(&spec).unwrap_or_else(|e| panic!("{origin}: {e}"));
    print!("{}", report.analysis_markdown());
    report
}

/// E11 — the streaming batched dataflow vs the materialize-and-copy step
/// path, end to end (office, Wi-Fi coverage, trilateration). "Peak
/// products" is the largest number of trajectory samples held outside the
/// repository at once: the step path materializes the whole run, the
/// streaming path holds at most `channel capacity` chunks.
fn e11_streaming_pipeline() {
    use vita_bench::e11;

    println!("## E11 — streamed vs batch end-to-end (office 2F, 10 APs, trilateration)\n");
    println!("| objects | secs | path | wall ms | trajectories | rssi | fixes | peak products |");
    println!("|---|---|---|---|---|---|---|---|");
    let text = e11::office_text();
    for &(objects, secs) in &[(40usize, 60u64), (120, 120)] {
        // Best of three runs per path damps scheduler noise; products are
        // deterministic, so counts are asserted identical every run.
        let mut batch_ms = f64::INFINITY;
        let mut counts = (0, 0, 0);
        for _ in 0..3 {
            // Step path: each stage materializes, then copies into storage.
            let mut vita = e11::toolkit(&text);
            let t0 = Instant::now();
            vita.generate_objects(&e11::mobility(objects, secs))
                .unwrap();
            vita.generate_rssi(&e11::rssi(secs)).unwrap();
            vita.run_positioning(&e11::method()).unwrap();
            batch_ms = batch_ms.min(t0.elapsed().as_secs_f64() * 1000.0);
            let c = vita.repository().counts(RunScope::All);
            let (t, r, f) = (c.trajectories, c.rssi, c.fixes);
            counts = (t, r, f);
        }
        let (t, r, f) = counts;
        println!("| {objects} | {secs} | step | {batch_ms:.0} | {t} | {r} | {f} | {t} |");

        // Streaming path: same seed, same products, bounded in-flight data.
        let mut stream_ms = f64::INFINITY;
        let mut peak = 0;
        for _ in 0..3 {
            let mut vita = e11::toolkit(&text);
            let report = vita.run_streaming(&e11::scenario(objects, secs)).unwrap();
            stream_ms = stream_ms.min(report.elapsed.as_secs_f64() * 1000.0);
            peak = report.peak_in_flight_samples;
            let c = vita.repository().counts(RunScope::All);
            let (ts, rs, fs) = (c.trajectories, c.rssi, c.fixes);
            assert_eq!(
                (ts, rs, fs),
                (t, r, f),
                "streamed products diverge from batch"
            );
        }
        println!("| {objects} | {secs} | streamed | {stream_ms:.0} | {t} | {r} | {f} | {peak} |");
    }
    println!();
}

/// E11s — E11 at ROADMAP scale, now a vita-lab matrix (`specs/e11s.lab`):
/// the streaming pipeline ingesting 1k/5k/10k objects into the sharded vs
/// single repository with 4 stage workers. The spec pins the historical
/// E11 seed and carries the experiment's core guarantee as
/// `assert.cross_axis_rows = backend` — the run aborts if the backends'
/// products diverge. On few-core machines the backends measure at parity
/// (storage appends are a small slice of pipeline wall-clock); the
/// sharded win is lock contention under true parallelism — see the
/// `e12_sharded_ingest` criterion bench on multicore hardware.
fn e11_at_scale() {
    println!("## E11s — E11 at scale: sharded vs single repository (lab matrix)\n");
    run_lab_text(include_str!("../../specs/e11s.lab"), "specs/e11s.lab");
    println!();
}

/// E13 — multi-scenario concurrency, now a vita-lab matrix
/// (`specs/e13.lab`): four repeats per cell ingest as `RunId` 0..3,
/// scheduled either as one `run_many` batch (`exec = batched`, one shared
/// stage-worker pool, runs interleaved) or sequentially through
/// `run_streaming_as` (`exec = solo`, same run ids, so identical derived
/// seeds). The spec's `assert.cross_axis_rows = exec` is the experiment's
/// core claim — the schedules must agree run by run; the registered
/// `run_many_parity` test pins the row sets bit-identical. On few-core
/// containers the schedules measure near parity — the concurrent win is
/// pipeline overlap, which needs true parallelism.
fn e13_concurrent_scenarios() {
    println!("## E13 — multi-scenario concurrency: run_many vs sequential (lab matrix)\n");
    run_lab_text(include_str!("../../specs/e13.lab"), "specs/e13.lab");
    println!();
}

/// E14 — run-aware persistence, now a vita-lab matrix (`specs/e14.lab`):
/// each cell builds a four-run repository with one `run_many` batch, and
/// the `measure.persistence` probe exports it, times the re-import into
/// the same backend, records the serialized size, and asserts every run's
/// counts survive the round trip. All backends write the identical
/// backend-agnostic v2 wire format, so the timing deltas isolate the
/// backends' scan/ingest costs, not the codec. (The spilled backend's
/// raw-splice vs typed re-encode comparison lives in the `e17_spill`
/// criterion bench and the `spill_parity` test.)
fn e14_persistence() {
    println!("## E14 — run-aware persistence: export/import round trip (lab matrix)\n");
    run_lab_text(include_str!("../../specs/e14.lab"), "specs/e14.lab");
    println!();
}

/// E15 — online query serving over live ingestion: a closed-feedback load
/// generator ramps a mixed query workload (counts / snapshot / window /
/// trace / range / kNN over `All` and per-run scopes) against
/// `Vita::serve` while a writer thread keeps `run_many` ingesting new
/// runs into the same repository. The ramp steps the offered rate until a
/// step achieves less than 90% of its target; the last sustained step is
/// the backend's max sustainable RPS. Single vs sharded(8) isolates how
/// much the per-shard locks buy the read path under write contention.
/// Absolute rates are container-sensitive; compare backends within one
/// run, not across BENCH files.
fn e15_query_serving() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;
    use vita_bench::e11;
    use vita_core::{RunId, StorageBackend};
    use vita_serve::{run_ramp, LoadProfile, WorkloadSpec};

    // Sized for small CI containers (often 1–2 cores): few enough threads
    // that pacing wakeups don't drown the service, coarse enough steps
    // that a knee is a knee and not scheduler noise.
    const STAGE_WORKERS: usize = 1;
    const QUERY_WORKERS: usize = 2;
    const SECS: u64 = 30;
    const OBJECTS: usize = 100;

    println!(
        "## E15 — online query serving under live ingestion \
         (ramped load, {QUERY_WORKERS} query workers vs continuous run_many, \
         office 2F, 10 APs, trilateration)\n"
    );
    println!("| backend | target RPS | achieved RPS | issued | p50 µs | p99 µs | p999 µs |");
    println!("|---|---|---|---|---|---|---|");
    let text = e11::office_text();
    let backends = [
        ("single", StorageBackend::Single),
        ("sharded(8)", StorageBackend::Sharded { shards: 8 }),
        ("segmented", StorageBackend::segmented()),
    ];
    let mut summary = Vec::new();
    for (name, backend) in &backends {
        let mut vita = e11::toolkit(&text).with_backend(backend.clone());
        // Pre-ingest one run so the first ramp steps query real rows
        // rather than empty tables.
        vita.run_streaming(&e11::scenario_with(
            OBJECTS,
            SECS,
            STAGE_WORKERS,
            backend.clone(),
        ))
        .unwrap();
        let service = vita.serve();
        let workload = WorkloadSpec {
            scopes: vec![RunScope::All, RunId(0).into(), RunId(1).into()],
            objects: OBJECTS as u32,
            floors: 2,
            t_max: SECS * 1000,
            window: 2_000,
            ..Default::default()
        };
        let profile = LoadProfile {
            initial_rps: 1_000.0,
            increment_rps: 1_000.0,
            max_rps: 8_000.0,
            step_duration: Duration::from_millis(400),
            workers: QUERY_WORKERS,
            satisfaction: 0.85,
        };

        let done = AtomicBool::new(false);
        let report = std::thread::scope(|scope| {
            let done = &done;
            let writer = scope.spawn(move || {
                // Keep ingestion live for the whole ramp: schedule pairs of
                // small runs back to back until the ramp finishes. Same
                // backend as the toolkit, so the serve handle stays
                // attached to the live repository.
                let mut runs = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let reports = vita
                        .run_many(&[
                            e11::scenario_with(OBJECTS / 4, 5, STAGE_WORKERS, backend.clone()),
                            e11::scenario_with(OBJECTS / 4, 5, STAGE_WORKERS, backend.clone()),
                        ])
                        .unwrap();
                    runs += reports.len();
                }
                runs
            });
            let report = run_ramp(&service, &workload, &profile);
            done.store(true, Ordering::Relaxed);
            let runs = writer.join().expect("ingestion thread");
            assert!(runs > 0, "ingestion never completed a run during the ramp");
            report
        });

        for s in &report.steps {
            println!(
                "| {name} | {:.0} | {:.0} | {} | {} | {} | {} |",
                s.target_rps, s.achieved_rps, s.issued, s.p50_us, s.p99_us, s.p999_us
            );
        }
        summary.push((name, report.max_sustainable_rps));
    }
    println!();
    for (name, rps) in summary {
        println!("- max sustainable RPS, {name}: **{rps:.0}**");
    }
    println!();
}

/// E16 — fixed-rate read latency under live ingestion: the same mixed
/// query workload as E15, but pinned at one offered rate (around where
/// the locked backends saturate in E15's ramp) while a writer thread
/// keeps `run_many` ingesting — across all three backends. The segmented
/// backend answers every query from an epoch-pinned immutable snapshot,
/// so its read tail should stay flat where the locked backends queue
/// behind the writer; the seal / compaction columns count the sealer's
/// in-step work, confirming it was actually churning during the
/// measurement, not idle. Each backend's row is the median-p99 rep of
/// three independent reps, each over a freshly built repository. Absolute
/// numbers are container-sensitive; compare backends within one run.
fn e16_read_under_ingest() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;
    use vita_bench::e11;
    use vita_core::{RunId, StorageBackend};
    use vita_serve::{run_ramp, LoadProfile, WorkloadSpec};

    // The fixed rate sits at E15's saturation knee (the last step the
    // locked backends sustain): high enough that the writer's locks are
    // contended, low enough that the step is not in open-loop overload —
    // in overload the percentiles measure queue depth, not the backend.
    const STAGE_WORKERS: usize = 1;
    const QUERY_WORKERS: usize = 2;
    const SECS: u64 = 30;
    const OBJECTS: usize = 100;
    const FIXED_RPS: f64 = 2_000.0;
    /// The pre-ingested corpus samples trajectories at this rate (the live
    /// trickle stays at the 1 Hz default, so offered write load during the
    /// step is unchanged). A corpus of ~60k point rows is what makes the
    /// locked backends' structural cost visible: any append evicts the
    /// touched floor's cached grid, so every spatial query mid-ingest
    /// rebuilds an O(corpus) index, while the segmented backend's sealed
    /// per-segment grids are immutable and never rebuilt.
    const PRELOAD_HZ: f64 = 20.0;
    /// Every backend ingests one `run_many` scenario pair per period, on
    /// an absolute schedule — identical offered write load across rows.
    const INGEST_PERIOD: Duration = Duration::from_millis(20);
    /// One 4 s step is a noisy sample on a small shared host; the median
    /// of three independent reps (fresh repository each) is stable enough
    /// to compare backends a few hundred µs apart at p99.
    const STEP_REPS: usize = 3;

    println!(
        "## E16 — fixed-rate read latency under live ingestion \
         ({FIXED_RPS:.0} RPS × {QUERY_WORKERS} query workers vs paced \
         run_many, one scenario pair / {} ms, median of {STEP_REPS} reps, \
         office 2F, 10 APs, trilateration)\n",
        INGEST_PERIOD.as_millis()
    );
    println!(
        "| backend | target RPS | achieved RPS | issued | p50 µs | p99 µs | p999 µs \
         | seals | compactions |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    let text = e11::office_text();
    let backends = [
        ("single", StorageBackend::Single),
        ("sharded(8)", StorageBackend::Sharded { shards: 8 }),
        ("segmented", StorageBackend::segmented()),
    ];
    let mut summary = Vec::new();
    for (name, backend) in &backends {
        // Each rep rebuilds the toolkit from scratch so every sample sees
        // the same repository size — reusing one repository across reps
        // would let the continuing ingestion grow the data set until the
        // later steps saturate and measure queue depth instead.
        let mut samples = Vec::new();
        for _ in 0..STEP_REPS {
            let mut vita = e11::toolkit(&text).with_backend(backend.clone());
            // Pre-ingest one run so the fixed-rate step queries real rows.
            let mut preload = e11::scenario_with(OBJECTS, SECS, STAGE_WORKERS, backend.clone());
            preload.mobility.trajectory_hz = Hz(PRELOAD_HZ);
            vita.run_streaming(&preload).unwrap();
            let repo = vita.repository_handle();
            let service = vita.serve();
            let workload = WorkloadSpec {
                scopes: vec![RunScope::All, RunId(0).into(), RunId(1).into()],
                objects: OBJECTS as u32,
                floors: 2,
                t_max: SECS * 1000,
                window: 2_000,
                ..Default::default()
            };
            // increment 0 → exactly one step; satisfaction 0 → it always
            // counts.
            let profile = LoadProfile {
                initial_rps: FIXED_RPS,
                increment_rps: 0.0,
                max_rps: FIXED_RPS,
                step_duration: Duration::from_millis(4_000),
                workers: QUERY_WORKERS,
                satisfaction: 0.0,
            };

            let done = AtomicBool::new(false);
            // Stats before the measured step, so the table reports in-step
            // maintenance work rather than preload churn.
            let base = repo.as_segmented().map_or((0, 0), |s| {
                let st = s.stats();
                (st.seals, st.compactions)
            });
            let report = std::thread::scope(|scope| {
                let done = &done;
                let writer = scope.spawn(move || {
                    // Paced ingestion: one scenario pair per fixed slot, on
                    // an absolute schedule. A free-running loop would let
                    // the backend with the cheapest appends ingest the most
                    // data during the step, so the comparison would measure
                    // generation CPU, not the read path under equal write
                    // load.
                    let t0 = std::time::Instant::now();
                    let mut runs = 0usize;
                    let mut slot = 0u32;
                    while !done.load(Ordering::Relaxed) {
                        let reports = vita
                            .run_many(&[
                                e11::scenario_with(OBJECTS / 4, 5, STAGE_WORKERS, backend.clone()),
                                e11::scenario_with(OBJECTS / 4, 5, STAGE_WORKERS, backend.clone()),
                            ])
                            .unwrap();
                        runs += reports.len();
                        slot += 1;
                        while !done.load(Ordering::Relaxed) {
                            let next = INGEST_PERIOD * slot;
                            let elapsed = t0.elapsed();
                            if elapsed >= next {
                                break;
                            }
                            std::thread::sleep((next - elapsed).min(Duration::from_millis(5)));
                        }
                    }
                    runs
                });
                let report = run_ramp(&service, &workload, &profile);
                done.store(true, Ordering::Relaxed);
                let runs = writer.join().expect("ingestion thread");
                assert!(runs > 0, "ingestion never completed a run during the step");
                report
            });

            let (seals, compactions) = repo.as_segmented().map_or((0, 0), |s| {
                let st = s.stats();
                (st.seals - base.0, st.compactions - base.1)
            });
            samples.push((report, seals, compactions));
        }
        samples.sort_by_key(|(r, _, _)| r.steps[0].p99_us);
        let (report, seals, compactions) = &samples[samples.len() / 2];
        let s = &report.steps[0];
        println!(
            "| {name} | {:.0} | {:.0} | {} | {} | {} | {} | {seals} | {compactions} |",
            s.target_rps, s.achieved_rps, s.issued, s.p50_us, s.p99_us, s.p999_us
        );
        summary.push((name, s.p99_us, s.p999_us));
    }
    println!();
    for (name, p99, p999) in summary {
        println!("- read latency under ingest, {name}: p99 **{p99} µs**, p999 **{p999} µs**");
    }
    println!();
}

/// E17 — out-of-core ingest under a memory budget: a trajectory corpus
/// 4× `memory_budget_rows` streams into the spilled segmented backend
/// while a mixed query workload (counts / window / snapshot / trace /
/// range / kNN, all scopes reaching back into cold data) interleaves with
/// ingestion. The table reports the query percentiles, the sampled
/// resident-row ceiling, and the spiller/backpressure counters; the same
/// corpus and workload run all-resident (`spill: None`) as the baseline,
/// so the delta is the page-in cost of bounding memory at ¼ of the
/// corpus. Asserted invariants: the sampled ceiling never exceeds the
/// budget plus one unsealed head per table, the post-maintenance gauge
/// fits the budget exactly, and every row survives to the final counts.
fn e17_out_of_core() {
    use rand::Rng;
    use vita_geometry::Aabb;
    use vita_indoor::{BuildingId, ObjectId, RunId};
    use vita_mobility::TrajectorySample;
    use vita_storage::{
        ProductBatch, ProductSink, SegmentConfig, SegmentedRepository, SpillConfig,
    };

    const TOTAL_ROWS: usize = 128_000;
    const BUDGET: usize = TOTAL_ROWS / 4;
    const SEAL_ROWS: usize = BUDGET / 4;
    const BATCH: usize = 1_000;
    const QUERY_EVERY: usize = 8;
    const RUNS: u32 = 3;
    const OBJECTS: u32 = 200;

    println!(
        "## E17 — out-of-core ingest under a memory budget \
         ({TOTAL_ROWS} trajectory rows vs a {BUDGET}-row budget (¼ corpus), \
         seal every {SEAL_ROWS}, mixed queries every {QUERY_EVERY} batches)\n"
    );
    println!(
        "| mode | budget rows | max resident | final resident | spilled rows \
         | spills | page-ins | stalls | queries | p50 µs | p99 µs |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|");

    let batch_at = |b: usize| -> Vec<TrajectorySample> {
        (0..BATCH)
            .map(|i| {
                let row = b * BATCH + i;
                TrajectorySample::new(
                    ObjectId((row % OBJECTS as usize) as u32),
                    BuildingId(0),
                    FloorId((row % 2) as u32),
                    Point::new((row % 420) as f64 / 10.0, (row % 160) as f64 / 10.0),
                    Timestamp(row as u64),
                )
            })
            .collect()
    };

    for spilled in [true, false] {
        let config = SegmentConfig {
            seal_rows: SEAL_ROWS,
            ..SegmentConfig::default()
        };
        let repo = if spilled {
            SegmentedRepository::with_spill(
                config,
                SpillConfig {
                    dir: std::env::temp_dir()
                        .join(format!("vita-e17-spill-{}", std::process::id())),
                    memory_budget_rows: BUDGET,
                    cache_segments: 4,
                },
            )
        } else {
            SegmentedRepository::with_config(config)
        };

        let mut rng = StdRng::seed_from_u64(0xE17);
        let mut latencies_us: Vec<u64> = Vec::new();
        let mut max_resident = 0usize;
        for b in 0..TOTAL_ROWS / BATCH {
            repo.accept_run(
                RunId((b as u32) % RUNS),
                ProductBatch::Trajectories(batch_at(b)),
            );
            max_resident = max_resident.max(repo.stats().resident_rows);
            if (b + 1) % QUERY_EVERY != 0 {
                continue;
            }
            // Mixed reads reaching back across the whole ingested prefix —
            // cold windows page spilled segments in through the clock
            // cache; counts and pruning stay metadata-only.
            let t_hi = ((b + 1) * BATCH) as u64;
            let from = rng.gen_range(0..t_hi);
            let width = rng.gen_range(1..=t_hi / 4 + 1);
            let scope = match b % 4 {
                0 => RunScope::All,
                r => RunScope::from(RunId((r as u32) % RUNS)),
            };
            let object = ObjectId(rng.gen_range(0..OBJECTS));
            let window = Aabb::new(Point::new(5.0, 2.0), Point::new(25.0, 12.0));
            let mut timed = |f: &mut dyn FnMut() -> usize| {
                let t0 = Instant::now();
                let n = f();
                latencies_us.push(t0.elapsed().as_micros() as u64);
                n
            };
            timed(&mut || repo.counts(scope).trajectories);
            timed(&mut || {
                repo.trajectories_time_window(scope, Timestamp(from), Timestamp(from + width))
                    .len()
            });
            timed(&mut || {
                repo.trajectories_snapshot_at(scope, Timestamp(t_hi / 2))
                    .len()
            });
            timed(&mut || repo.object_trace(scope, object).len());
            timed(&mut || {
                repo.trajectories_range_query(scope, FloorId(0), &window)
                    .len()
            });
            timed(&mut || {
                repo.trajectories_knn(scope, FloorId(0), Point::new(20.0, 8.0), 8)
                    .len()
            });

            if spilled {
                // The acceptance bound: the decoded sealed gauge may
                // transiently carry at most one unsealed head per table
                // past the budget before the next enforcement pass lands.
                assert!(
                    max_resident <= BUDGET + 4 * SEAL_ROWS,
                    "resident ceiling {max_resident} broke budget {BUDGET} + 4 heads"
                );
            }
        }

        // Quiesce: a forced maintenance round must bring the gauge back
        // under the budget with every row still accounted for.
        repo.seal_now();
        let stats = repo.stats();
        let final_resident = stats.resident_rows;
        if spilled {
            assert!(
                final_resident <= BUDGET,
                "post-maintenance resident {final_resident} over budget: {stats:?}"
            );
            assert!(stats.spills >= 1 && stats.spilled_rows > 0, "{stats:?}");
            assert!(
                stats.writer_stalls >= 1,
                "4× budget never stalled: {stats:?}"
            );
        }
        assert_eq!(
            repo.counts(RunScope::All).trajectories,
            TOTAL_ROWS,
            "rows lost crossing the spill tier"
        );

        latencies_us.sort_unstable();
        let pct = |q: f64| latencies_us[((latencies_us.len() - 1) as f64 * q) as usize];
        let (mode, budget_col) = if spilled {
            ("spill (¼ corpus)", format!("{BUDGET}"))
        } else {
            ("all-resident", "—".into())
        };
        println!(
            "| {mode} | {budget_col} | {max_resident} | {final_resident} | {} | {} | {} | {} \
             | {} | {} | {} |",
            stats.spilled_rows,
            stats.spills,
            stats.page_ins,
            stats.writer_stalls,
            latencies_us.len(),
            pct(0.50),
            pct(0.99),
        );
    }
    println!();
}

/// A1 — ablation of the trilateration estimator's design choices
/// (DESIGN.md: strongest-k anchor selection, range clamping, hull clamp).
fn a1_trilateration_ablation() {
    println!("## A1 — trilateration estimator ablation (office, 14 APs, σ=2 dBm)\n");
    let w = standard_workload(20, 14, 120, 2.0);
    let truth = &w.generation.trajectories;
    let conv = default_conversion(PathLossModel::default());

    println!("| variant | mean m | median m | p90 m |");
    println!("|---|---|---|---|");
    let variants: [(&str, TrilaterationConfig); 4] = [
        (
            "full estimator (all anchors + range clamp, default)",
            TrilaterationConfig::default(),
        ),
        (
            "strongest-5 anchors only",
            TrilaterationConfig {
                max_devices: 5,
                ..Default::default()
            },
        ),
        (
            "strongest-5, no range clamp",
            TrilaterationConfig {
                max_devices: 5,
                clamp_to_detection_range: false,
                ..Default::default()
            },
        ),
        (
            "naive (no clamp, all anchors)",
            TrilaterationConfig {
                clamp_to_detection_range: false,
                ..Default::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let st = evaluate_fixes(&trilaterate(&w.devices, &w.rssi, &cfg, &conv), truth);
        println!(
            "| {name} | {:.2} | {:.2} | {:.2} |",
            st.mean, st.median, st.p90
        );
    }
    println!();
}

fn stats_row(name: &str, s: &ErrorStats) -> String {
    format!(
        "| {name} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {} |",
        s.count, s.mean, s.median, s.p90, s.max, s.wrong_floor
    )
}

/// F3 — Fig. 3 content: coverage model on the ground floor, check-point on
/// the first floor; crowd-outliers initial distribution.
fn f3_deployment_and_crowds() {
    println!("## F3 — Fig. 3: deployment models + crowd-outliers distribution\n");
    let env = office_env(2);
    // Short-range radios make the model differences visible (default Wi-Fi
    // covers the whole floor from anywhere).
    let spec = DeviceSpec {
        detection_range: 8.0,
        ..DeviceSpec::default_for(DeviceType::WiFi)
    };
    let mut reg = DeviceRegistry::new();
    deploy(
        &env,
        &mut reg,
        spec,
        FloorId(0),
        DeploymentModel::Coverage,
        10,
    );
    deploy(
        &env,
        &mut reg,
        spec,
        FloorId(1),
        DeploymentModel::CheckPoint,
        10,
    );

    println!("| floor | model | devices | covered % | mean devs in range | ≥3 devs % |");
    println!("|---|---|---|---|---|---|");
    for (floor, name) in [(FloorId(0), "coverage"), (FloorId(1), "check-point")] {
        let mut rng = StdRng::seed_from_u64(3);
        let st = coverage_fraction(&env, &reg, floor, 4000, &mut rng);
        println!(
            "| {} | {} | {} | {:.1} | {:.2} | {:.1} |",
            floor.0,
            name,
            reg.on_floor(floor).count(),
            st.covered_fraction * 100.0,
            st.mean_devices_in_range,
            st.trilateration_ready_fraction * 100.0
        );
    }

    let mut rng = StdRng::seed_from_u64(1453);
    let placed = initial_positions(
        &env,
        InitialDistribution::CrowdOutliers {
            crowds: 3,
            crowd_fraction: 0.8,
            crowd_radius: 4.0,
        },
        200,
        &mut rng,
    );
    let members = placed
        .placements
        .iter()
        .filter(|p| p.crowd.is_some())
        .count();
    let mean_dist_to_center: f64 = placed
        .placements
        .iter()
        .filter_map(|p| p.crowd.map(|k| p.point.dist(placed.crowd_centers[k].1)))
        .sum::<f64>()
        / members.max(1) as f64;
    println!(
        "\ncrowd-outliers: 200 objects → {} crowd members in 3 crowds (mean dist to center {:.2} m), {} outliers\n",
        members,
        mean_dist_to_center,
        200 - members
    );
}

/// E3 — accuracy of the four positioning pipelines on one shared workload.
fn e3_method_accuracy() {
    println!("## E3 — positioning accuracy by method (office, 14 APs, σ=2 dBm)\n");
    let w = standard_workload(20, 14, 180, 2.0);
    let truth = &w.generation.trajectories;

    println!("| method | fixes | mean m | median m | p90 m | max m | wrong floor |");
    println!("|---|---|---|---|---|---|---|");

    let conv = default_conversion(PathLossModel::default());
    let fixes = trilaterate(&w.devices, &w.rssi, &TrilaterationConfig::default(), &conv);
    println!(
        "{}",
        stats_row("trilateration", &evaluate_fixes(&fixes, truth))
    );

    let map = build_radio_map(&w.env, &w.devices, FloorId(0), &SurveyConfig::default());
    let fixes = knn_fingerprint(&map, &w.rssi, &FingerprintConfig::default());
    println!(
        "{}",
        stats_row("fingerprint-knn", &evaluate_fixes(&fixes, truth))
    );

    let pfs = naive_bayes_fingerprint(&map, &w.rssi, &FingerprintConfig::default());
    println!(
        "{}",
        stats_row("fingerprint-bayes", &evaluate_prob_fixes(&pfs, truth))
    );

    let recs = proximity_records(&w.devices, &w.rssi, &ProximityConfig::default());
    println!(
        "{}",
        stats_row("proximity", &evaluate_proximity(&recs, &w.devices, truth))
    );
    println!();
}

/// E4 — accuracy vs device density.
fn e4_accuracy_vs_density() {
    println!("## E4 — accuracy vs device density (coverage model)\n");
    println!("| devices | trilateration mean m | fingerprint-knn mean m |");
    println!("|---|---|---|");
    let env = office_env(1);
    let generation = gen_trajectories(&env, 20, 120, 2.0, 0xE4);
    let truth = &generation.trajectories;
    for &n in &[4usize, 8, 16, 32, 64] {
        let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, n, None);
        let rssi = gen_rssi(&env, &reg, &generation, 120, 2.0);
        let conv = default_conversion(PathLossModel::default());
        let tri = evaluate_fixes(
            &trilaterate(&reg, &rssi, &TrilaterationConfig::default(), &conv),
            truth,
        );
        let map = build_radio_map(&env, &reg, FloorId(0), &SurveyConfig::default());
        let knn = evaluate_fixes(
            &knn_fingerprint(&map, &rssi, &FingerprintConfig::default()),
            truth,
        );
        println!("| {n} | {:.2} | {:.2} |", tri.mean, knn.mean);
    }
    println!();
}

/// E5 — accuracy vs fluctuation noise σ and wall attenuation.
fn e5_accuracy_vs_noise() {
    println!("## E5 — accuracy vs noise\n");
    let env = office_env(1);
    let generation = gen_trajectories(&env, 20, 120, 2.0, 0xE5);
    let truth = &generation.trajectories;
    let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, 14, None);

    println!("### σ sweep (wall attenuation fixed at 4 dBm/wall)\n");
    println!(
        "| σ dBm | trilateration mean m | fingerprint-knn mean m | fingerprint-bayes mean m |"
    );
    println!("|---|---|---|---|");
    for &sigma in &[0.0f64, 1.0, 2.0, 4.0, 8.0] {
        let rssi = gen_rssi(&env, &reg, &generation, 120, sigma);
        let conv = default_conversion(PathLossModel::default());
        let tri = evaluate_fixes(
            &trilaterate(&reg, &rssi, &TrilaterationConfig::default(), &conv),
            truth,
        );
        let map = build_radio_map(&env, &reg, FloorId(0), &SurveyConfig::default());
        let knn = evaluate_fixes(
            &knn_fingerprint(&map, &rssi, &FingerprintConfig::default()),
            truth,
        );
        let bayes = evaluate_prob_fixes(
            &naive_bayes_fingerprint(&map, &rssi, &FingerprintConfig::default()),
            truth,
        );
        println!(
            "| {sigma} | {:.2} | {:.2} | {:.2} |",
            tri.mean, knn.mean, bayes.mean
        );
    }

    println!("\n### wall-attenuation sweep (σ fixed at 2 dBm)\n");
    println!("| dBm/wall | trilateration mean m | fingerprint-knn mean m |");
    println!("|---|---|---|");
    for &wall in &[0.0f64, 2.0, 4.0, 8.0] {
        let cfg = vita_rssi::RssiConfig {
            path_loss: PathLossModel {
                wall_attenuation_dbm: wall,
                fluctuation: vita_rssi::NoiseModel::Gaussian { sigma: 2.0 },
                ..Default::default()
            },
            duration: Timestamp(120_000),
            ..Default::default()
        };
        let rssi = vita_rssi::generate_rssi(&env, &reg, &generation.trajectories, &cfg);
        let conv = default_conversion(PathLossModel::default());
        let tri = evaluate_fixes(
            &trilaterate(&reg, &rssi, &TrilaterationConfig::default(), &conv),
            truth,
        );
        let survey = SurveyConfig {
            path_loss: cfg.path_loss,
            ..Default::default()
        };
        let map = build_radio_map(&env, &reg, FloorId(0), &survey);
        let knn = evaluate_fixes(
            &knn_fingerprint(&map, &rssi, &FingerprintConfig::default()),
            truth,
        );
        println!("| {wall} | {:.2} | {:.2} |", tri.mean, knn.mean);
    }
    println!();
}

/// E6 — the two sampling frequencies and their interplay.
fn e6_sampling_frequencies() {
    println!("## E6 — sampling frequencies (ground truth vs positioning)\n");
    let env = office_env(1);
    println!("| trajectory Hz | samples | path captured m |");
    println!("|---|---|---|");
    for &hz in &[0.2f64, 0.5, 1.0, 2.0, 5.0, 10.0] {
        let mut cfg = mobility_cfg(20, 120, hz, 0xE6);
        cfg.pattern.behavior = vita_mobility::Behavior::ContinuousWalk;
        let g = vita_mobility::generate(&env, &cfg).unwrap();
        println!(
            "| {hz} | {} | {:.0} |",
            g.stats.samples, g.stats.total_walked_m
        );
    }

    println!("\n| positioning Hz | fixes | trilateration mean m |");
    println!("|---|---|---|");
    let generation = gen_trajectories(&env, 20, 120, 4.0, 0xE6);
    let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, 14, None);
    let rssi = gen_rssi(&env, &reg, &generation, 120, 2.0);
    let conv = default_conversion(PathLossModel::default());
    for &hz in &[0.1f64, 0.25, 0.5, 1.0, 2.0] {
        let cfg = TrilaterationConfig {
            sampling_hz: Hz(hz),
            ..Default::default()
        };
        let fixes = trilaterate(&reg, &rssi, &cfg, &conv);
        let st = evaluate_fixes(&fixes, &generation.trajectories);
        println!("| {hz} | {} | {:.2} |", fixes.len(), st.mean);
    }
    println!();
}

/// E7 — routing schema comparison.
fn e7_routing_comparison() {
    println!("## E7 — routing: min walking distance vs min walking time\n");
    let env = office_env(3);
    let planner = RoutePlanner::new(&env);
    let cases = [
        (
            "same room",
            (FloorId(0), Point::new(2.0, 2.0)),
            (FloorId(0), Point::new(5.0, 4.0)),
        ),
        (
            "across floor 0",
            (FloorId(0), Point::new(2.0, 2.0)),
            (FloorId(0), Point::new(38.0, 14.0)),
        ),
        (
            "one floor up",
            (FloorId(0), Point::new(2.0, 2.0)),
            (FloorId(1), Point::new(2.0, 2.0)),
        ),
        (
            "two floors up",
            (FloorId(0), Point::new(2.0, 2.0)),
            (FloorId(2), Point::new(38.0, 14.0)),
        ),
    ];
    println!("| query | min-dist m | min-dist s | min-time m | min-time s |");
    println!("|---|---|---|---|---|");
    for (name, from, to) in cases {
        let rd = planner.route(from, to, RoutingSchema::MinDistance).unwrap();
        let rt = planner
            .route(from, to, RoutingSchema::min_time_default())
            .unwrap();
        println!(
            "| {name} | {:.1} | {:.1} | {:.1} | {:.1} |",
            rd.total_distance, rd.total_time, rt.total_distance, rt.total_time
        );
    }

    // Crossover scenario: a U-shaped corridor wraps a large, slow hall that
    // offers a geometric shortcut. Min-distance cuts through the hall;
    // min-time (hall walked at 0.4 m/s — a dense crowd) takes the longer,
    // faster corridor. This is where the two schemas diverge.
    let env = u_corridor_building();
    let planner = RoutePlanner::new(&env);
    let from = (FloorId(0), Point::new(1.5, 1.5));
    let to = (FloorId(0), Point::new(32.5, 1.5));
    let slow_hall = vita_indoor::SpeedProfile {
        room: 0.4,
        ..Default::default()
    };
    let rd = planner.route(from, to, RoutingSchema::MinDistance).unwrap();
    let rt = planner
        .route(from, to, RoutingSchema::MinTime(slow_hall))
        .unwrap();
    println!(
        "| U-corridor crossover | {:.1} | {:.1} | {:.1} | {:.1} |",
        rd.total_distance, rd.total_time, rt.total_distance, rt.total_time
    );
    println!(
        "\ncrossover check: min-time route is {:.0}% longer but {:.0}% faster than min-distance\n",
        (rt.total_distance / rd.total_distance - 1.0) * 100.0,
        (1.0 - rt.total_time / time_of(&planner, &rd, slow_hall)) * 100.0
    );
}

/// Walking time of an already planned route under a speed profile, by
/// re-planning its exact geometry with MinTime weights over the same legs —
/// approximated here by re-timing each leg with the profile speed of its
/// partition.
fn time_of(
    planner: &RoutePlanner<'_>,
    route: &vita_indoor::Route,
    profile: vita_indoor::SpeedProfile,
) -> f64 {
    let _ = planner;
    let mut t = 0.0;
    for pair in route.waypoints.windows(2) {
        let d = pair[1].cum_dist - pair[0].cum_dist;
        // Speed in the partition the leg runs through (tracked on the
        // leading waypoint).
        let _ = profile;
        let dt = pair[1].cum_time - pair[0].cum_time;
        // Re-scale default-profile leg times by slow-hall factor when the
        // leg was walked at room speed (0.9 → 0.4).
        let default_room = vita_indoor::SpeedProfile::default().room;
        let implied_speed = if dt > 1e-9 { d / dt } else { default_room };
        let speed = if (implied_speed - default_room).abs() < 0.05 {
            0.4
        } else {
            implied_speed
        };
        t += d / speed.max(0.05);
    }
    t
}

/// A single-floor building whose corridor forms a U around a large hall:
/// two routes exist between the corridor ends (through the hall, or around
/// it), so routing schemas can disagree.
fn u_corridor_building() -> vita_indoor::IndoorEnvironment {
    use vita_dbi::{DbiModel, DoorDirectionality, DoorRec, SpaceRec, StoreyRec};
    let rect = |x0: f64, y0: f64, x1: f64, y1: f64| -> Vec<Point> {
        vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ]
    };
    let model = DbiModel {
        building_name: "U-corridor".into(),
        storeys: vec![StoreyRec {
            id: 1,
            name: "G".into(),
            elevation: 0.0,
        }],
        spaces: vec![
            SpaceRec {
                id: 10,
                name: "West corridor".into(),
                usage: "corridor".into(),
                storey: 1,
                footprint: rect(0.0, 0.0, 3.0, 14.0),
            },
            SpaceRec {
                id: 11,
                name: "North corridor".into(),
                usage: "corridor".into(),
                storey: 1,
                footprint: rect(3.0, 11.0, 31.0, 14.0),
            },
            SpaceRec {
                id: 12,
                name: "East corridor".into(),
                usage: "corridor".into(),
                storey: 1,
                footprint: rect(31.0, 0.0, 34.0, 14.0),
            },
            SpaceRec {
                id: 13,
                name: "Exhibition space".into(),
                usage: "".into(),
                storey: 1,
                footprint: rect(3.0, 0.0, 31.0, 11.0),
            },
        ],
        doors: vec![
            DoorRec {
                id: 20,
                name: "west-hall".into(),
                storey: 1,
                position: Point::new(3.0, 1.5),
                width: 1.2,
                directionality: DoorDirectionality::Both,
            },
            DoorRec {
                id: 21,
                name: "east-hall".into(),
                storey: 1,
                position: Point::new(31.0, 1.5),
                width: 1.2,
                directionality: DoorDirectionality::Both,
            },
            DoorRec {
                id: 22,
                name: "west-north".into(),
                storey: 1,
                position: Point::new(3.0, 12.5),
                width: 2.0,
                directionality: DoorDirectionality::Both,
            },
            DoorRec {
                id: 23,
                name: "north-east".into(),
                storey: 1,
                position: Point::new(31.0, 12.5),
                width: 2.0,
                directionality: DoorDirectionality::Both,
            },
        ],
        stairs: vec![],
        walls: vec![],
    };
    vita_indoor::build_environment(&model, &vita_indoor::BuildParams::default())
        .unwrap()
        .env
}

/// E8 — deployment model comparison across buildings.
fn e8_deployment_models() {
    println!("## E8 — deployment models: area coverage vs transit detection\n");
    println!("| building | model | covered % | ≥3 devs % | detections per object |");
    println!("|---|---|---|---|---|");
    for (bname, env) in [("office", office_env(1)), ("mall", mall_env(1))] {
        for (mname, model) in [
            ("coverage", DeploymentModel::Coverage),
            ("check-point", DeploymentModel::CheckPoint),
        ] {
            let reg = deploy_floor0(&env, DeviceType::WiFi, model, 12, Some(10.0));
            let mut rng = StdRng::seed_from_u64(8);
            let st = coverage_fraction(&env, &reg, FloorId(0), 3000, &mut rng);
            let generation = gen_trajectories(&env, 15, 90, 2.0, 0xE8);
            let rssi = gen_rssi(&env, &reg, &generation, 90, 2.0);
            let recs = proximity_records(&reg, &rssi, &ProximityConfig::default());
            println!(
                "| {bname} | {mname} | {:.1} | {:.1} | {:.1} |",
                st.covered_fraction * 100.0,
                st.trilateration_ready_fraction * 100.0,
                recs.len() as f64 / 15.0
            );
        }
    }
    println!();
}

/// E9 — DBI processing scalability.
fn e9_dbi_processing() {
    println!("## E9 — DBI processing vs building size\n");
    println!("| floors | file KB | entities | parse+decode+repair ms | build ms | partitions | stairs resolved |");
    println!("|---|---|---|---|---|---|---|");
    for &floors in &[1usize, 2, 5, 10, 20] {
        let model = vita_dbi::office(&vita_dbi::SynthParams::with_floors(floors));
        let text = vita_dbi::write_step(&model);
        let t0 = Instant::now();
        let loaded = vita_dbi::load_dbi(&text).unwrap();
        let parse_ms = t0.elapsed().as_secs_f64() * 1000.0;
        let t1 = Instant::now();
        let built =
            vita_indoor::build_environment(&loaded.model, &vita_indoor::BuildParams::default())
                .unwrap();
        let build_ms = t1.elapsed().as_secs_f64() * 1000.0;
        let s = built.env.summary();
        println!(
            "| {floors} | {:.0} | {} | {:.1} | {:.1} | {} | {}/{} |",
            text.len() as f64 / 1024.0,
            loaded.model.entity_count(),
            parse_ms,
            build_ms,
            s.partitions,
            s.stairs,
            floors.saturating_sub(1)
        );
    }
    println!();
}

/// E10 — storage quick numbers.
fn e10_storage() {
    println!("## E10 — storage insert/query (trajectory table)\n");
    println!("| rows | insert ms | time-window(1%) µs | object trace µs | kNN(10) µs |");
    println!("|---|---|---|---|---|");
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let samples: Vec<vita_mobility::TrajectorySample> = (0..n)
            .map(|i| {
                vita_mobility::TrajectorySample::new(
                    vita_indoor::ObjectId((i % 100) as u32),
                    vita_indoor::BuildingId(0),
                    FloorId(0),
                    Point::new((i % 420) as f64 / 10.0, (i % 160) as f64 / 10.0),
                    Timestamp(i as u64 * 7),
                )
            })
            .collect();
        let t0 = Instant::now();
        let mut table = TrajectoryTable::new();
        table.append_batch(samples);
        let insert_ms = t0.elapsed().as_secs_f64() * 1000.0;

        let span = n as u64 * 7;
        let t1 = Instant::now();
        let w = table.time_window(
            RunScope::All,
            Timestamp(span / 2),
            Timestamp(span / 2 + span / 100),
        );
        let window_us = t1.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(w.len());

        let t2 = Instant::now();
        let tr = table.object_trace(RunScope::All, vita_indoor::ObjectId(42));
        let trace_us = t2.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(tr.len());

        // Build spatial index outside the timing, then measure the query.
        let _ = table.knn(RunScope::All, FloorId(0), Point::new(20.0, 8.0), 1);
        let t3 = Instant::now();
        let kn = table.knn(RunScope::All, FloorId(0), Point::new(20.0, 8.0), 10);
        let knn_us = t3.elapsed().as_secs_f64() * 1e6;
        std::hint::black_box(kn.len());

        println!("| {n} | {insert_ms:.1} | {window_us:.0} | {trace_us:.0} | {knn_us:.0} |");
    }
    println!();
}
