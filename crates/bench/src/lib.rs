#![forbid(unsafe_code)]
//! Shared workload builders for the Vita benchmark and experiment harness.
//!
//! Every experiment in DESIGN.md §4 (F1–F4, D5, E1–E10) builds its world
//! through these helpers so that benches (`benches/e*.rs`) and the
//! measurement binary (`src/bin/experiments.rs`) agree on the workload.

use vita_devices::{deploy, DeploymentModel, DeviceRegistry, DeviceSpec, DeviceType};
use vita_indoor::{build_environment, BuildParams, FloorId, Hz, IndoorEnvironment, Timestamp};
use vita_mobility::{generate, GenerationResult, LifespanConfig, MobilityConfig};
use vita_rssi::{generate_rssi, NoiseModel, PathLossModel, RssiConfig, RssiStore};

/// Build the standard office environment with `floors` floors.
pub fn office_env(floors: usize) -> IndoorEnvironment {
    let model = vita_dbi::office(&vita_dbi::SynthParams::with_floors(floors));
    build_environment(&model, &BuildParams::default())
        .expect("office build")
        .env
}

/// Build the standard mall environment.
pub fn mall_env(floors: usize) -> IndoorEnvironment {
    let model = vita_dbi::mall(&vita_dbi::SynthParams::with_floors(floors));
    build_environment(&model, &BuildParams::default())
        .expect("mall build")
        .env
}

/// Deploy `n` devices of `dtype` with `model` on floor 0, using a spec with
/// the given detection range override (None keeps the default).
pub fn deploy_floor0(
    env: &IndoorEnvironment,
    dtype: DeviceType,
    model: DeploymentModel,
    n: usize,
    range_override: Option<f64>,
) -> DeviceRegistry {
    let mut spec = DeviceSpec::default_for(dtype);
    if let Some(r) = range_override {
        spec.detection_range = r;
    }
    let mut reg = DeviceRegistry::new();
    deploy(env, &mut reg, spec, FloorId(0), model, n);
    reg
}

/// Standard mobility configuration: `objects` objects alive for the whole
/// `secs`-second run, sampling at `hz`.
pub fn mobility_cfg(objects: usize, secs: u64, hz: f64, seed: u64) -> MobilityConfig {
    MobilityConfig {
        object_count: objects,
        duration: Timestamp(secs * 1000),
        lifespan: LifespanConfig {
            min: Timestamp(secs * 1000),
            max: Timestamp(secs * 1000),
        },
        trajectory_hz: Hz(hz),
        seed,
        ..Default::default()
    }
}

/// Generate trajectories for the standard workload.
pub fn gen_trajectories(
    env: &IndoorEnvironment,
    objects: usize,
    secs: u64,
    hz: f64,
    seed: u64,
) -> GenerationResult {
    generate(env, &mobility_cfg(objects, secs, hz, seed)).expect("generation")
}

/// Standard RSSI configuration with Gaussian noise `sigma`.
pub fn rssi_cfg(secs: u64, sigma: f64) -> RssiConfig {
    RssiConfig {
        path_loss: PathLossModel {
            fluctuation: if sigma <= 0.0 {
                NoiseModel::None
            } else {
                NoiseModel::Gaussian { sigma }
            },
            ..Default::default()
        },
        duration: Timestamp(secs * 1000),
        ..Default::default()
    }
}

/// Generate the standard raw RSSI store.
pub fn gen_rssi(
    env: &IndoorEnvironment,
    reg: &DeviceRegistry,
    gen: &GenerationResult,
    secs: u64,
    sigma: f64,
) -> RssiStore {
    generate_rssi(env, reg, &gen.trajectories, &rssi_cfg(secs, sigma))
}

/// A complete Wi-Fi workload on the single-floor office: environment,
/// devices (coverage model), trajectories and raw RSSI.
pub struct Workload {
    pub env: IndoorEnvironment,
    pub devices: DeviceRegistry,
    pub generation: GenerationResult,
    pub rssi: RssiStore,
    pub secs: u64,
}

/// Build the canonical E3 workload.
pub fn standard_workload(objects: usize, device_count: usize, secs: u64, sigma: f64) -> Workload {
    let env = office_env(1);
    let devices = deploy_floor0(
        &env,
        DeviceType::WiFi,
        DeploymentModel::Coverage,
        device_count,
        None,
    );
    let generation = gen_trajectories(&env, objects, secs, 2.0, 0xE3);
    let rssi = gen_rssi(&env, &devices, &generation, secs, sigma);
    Workload {
        env,
        devices,
        generation,
        rssi,
        secs,
    }
}

/// The E11 end-to-end workload — office (2 floors), 10 Wi-Fi APs with the
/// coverage model on floor 0, trilateration — shared by the criterion
/// bench (`benches/e11_end_to_end.rs`) and the experiments bin so both
/// always measure the same scenario. Callers pick the scale
/// (objects × seconds); everything else, including the seed, is pinned
/// here.
pub mod e11 {
    use vita_core::{ScenarioConfig, StreamOptions, Vita};
    use vita_devices::{DeploymentModel, DeviceSpec, DeviceType};
    use vita_indoor::{BuildParams, FloorId, Timestamp};
    use vita_mobility::{LifespanConfig, MobilityConfig};
    use vita_positioning::{MethodConfig, TrilaterationConfig};
    use vita_rssi::{PathLossModel, RssiConfig};

    pub const SEED: u64 = 0xE11;

    pub fn office_text() -> String {
        vita_dbi::write_step(&vita_dbi::office(&vita_dbi::SynthParams::with_floors(2)))
    }

    pub fn toolkit(text: &str) -> Vita {
        let mut vita = Vita::from_dbi_text(text, &BuildParams::default()).expect("e11 office");
        vita.deploy_devices(
            DeviceSpec::default_for(DeviceType::WiFi),
            FloorId(0),
            DeploymentModel::Coverage,
            10,
        );
        vita
    }

    pub fn mobility(objects: usize, secs: u64) -> MobilityConfig {
        MobilityConfig {
            object_count: objects,
            duration: Timestamp(secs * 1000),
            lifespan: LifespanConfig {
                min: Timestamp(secs * 1000),
                max: Timestamp(secs * 1000),
            },
            seed: SEED,
            ..Default::default()
        }
    }

    pub fn rssi(secs: u64) -> RssiConfig {
        RssiConfig {
            duration: Timestamp(secs * 1000),
            ..Default::default()
        }
    }

    pub fn method() -> MethodConfig {
        MethodConfig::Trilateration {
            config: TrilaterationConfig::default(),
            conversion_model: PathLossModel::default(),
        }
    }

    pub fn scenario(objects: usize, secs: u64) -> ScenarioConfig {
        ScenarioConfig {
            mobility: mobility(objects, secs),
            rssi: rssi(secs),
            method: method(),
            options: StreamOptions::default(),
        }
    }

    /// The E11-at-scale variant: same workload, explicit stage-worker
    /// count and storage backend (sharded vs single is the experiment's
    /// independent variable).
    pub fn scenario_with(
        objects: usize,
        secs: u64,
        workers: usize,
        backend: vita_core::StorageBackend,
    ) -> ScenarioConfig {
        ScenarioConfig {
            options: StreamOptions {
                workers,
                backend,
                ..StreamOptions::default()
            },
            ..scenario(objects, secs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_workload_is_nonempty() {
        let w = standard_workload(5, 8, 30, 2.0);
        assert!(w.generation.stats.samples > 0);
        assert!(!w.rssi.is_empty());
        assert_eq!(w.devices.len(), 8);
    }

    #[test]
    fn helpers_are_deterministic() {
        let a = standard_workload(3, 6, 20, 2.0);
        let b = standard_workload(3, 6, 20, 2.0);
        assert_eq!(a.rssi.len(), b.rssi.len());
        assert_eq!(a.generation.stats.samples, b.generation.stats.samples);
    }
}
