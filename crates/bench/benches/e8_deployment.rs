//! E8 — Deployment model cost: coverage (greedy k-center over wall
//! candidates) vs check-point (door/hotspot ranking), plus coverage
//! estimation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vita_bench::{mall_env, office_env};
use vita_devices::{
    coverage_fraction, deploy, DeploymentModel, DeviceRegistry, DeviceSpec, DeviceType,
};
use vita_indoor::FloorId;

fn bench_deploy(c: &mut Criterion) {
    let office = office_env(1);
    let mall = mall_env(1);
    let spec = DeviceSpec::default_for(DeviceType::WiFi);
    let mut g = c.benchmark_group("e8/deploy");
    g.sample_size(20);
    for (name, env) in [("office", &office), ("mall", &mall)] {
        for (model_name, model) in [
            ("coverage", DeploymentModel::Coverage),
            ("checkpoint", DeploymentModel::CheckPoint),
        ] {
            g.bench_function(BenchmarkId::new(model_name, name), |b| {
                b.iter(|| {
                    let mut reg = DeviceRegistry::new();
                    deploy(env, &mut reg, spec, FloorId(0), model, 16)
                });
            });
        }
    }
    g.finish();
}

fn bench_coverage_estimate(c: &mut Criterion) {
    let env = office_env(1);
    let spec = DeviceSpec::default_for(DeviceType::WiFi);
    let mut reg = DeviceRegistry::new();
    deploy(
        &env,
        &mut reg,
        spec,
        FloorId(0),
        DeploymentModel::Coverage,
        16,
    );
    let mut g = c.benchmark_group("e8/coverage_estimate");
    g.sample_size(20);
    for &samples in &[500usize, 5_000] {
        g.bench_with_input(BenchmarkId::from_parameter(samples), &samples, |b, &n| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(8);
                coverage_fraction(&env, &reg, FloorId(0), n, &mut rng)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_deploy, bench_coverage_estimate);
criterion_main!(benches);
