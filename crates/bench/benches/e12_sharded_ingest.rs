//! E12 — concurrent batch ingestion: the single `Repository` (one lock per
//! table) vs the `ShardedRepository` (per-shard locks, object-id hash
//! routing) under four writer threads, the PR-3 contention scenario. Pure
//! storage: batches are pre-generated so the measurement isolates
//! `ProductSink::accept`.

use criterion::{criterion_group, criterion_main, Criterion};

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{ProductBatch, ProductSink, Repository, RunScope, ShardedRepository};

const WRITERS: usize = 4;
const OBJECTS: u32 = 64;
const BATCHES_PER_OBJECT: u64 = 8;
const ROWS_PER_BATCH: u64 = 256;

/// One batch per (object, step), time-ordered within the object — the
/// pipeline's batch shape.
fn batches() -> Vec<Vec<TrajectorySample>> {
    (0..OBJECTS)
        .flat_map(|o| {
            (0..BATCHES_PER_OBJECT).map(move |b| {
                let t0 = b * ROWS_PER_BATCH * 10;
                (0..ROWS_PER_BATCH)
                    .map(|i| {
                        TrajectorySample::new(
                            ObjectId(o),
                            BuildingId(0),
                            FloorId(0),
                            Point::new((i % 400) as f64 / 10.0, (o % 160) as f64 / 10.0),
                            Timestamp(t0 + i * 10),
                        )
                    })
                    .collect()
            })
        })
        .collect()
}

/// Drive all batches through `sink` from `WRITERS` threads (round-robin
/// partition, so every thread touches many objects).
fn ingest(sink: &impl ProductSink, batches: &[Vec<TrajectorySample>]) {
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                for batch in batches.iter().skip(w).step_by(WRITERS) {
                    sink.accept(ProductBatch::Trajectories(batch.clone()));
                }
            });
        }
    });
}

fn bench_ingest(c: &mut Criterion) {
    let batches = batches();
    let mut g = c.benchmark_group("e12/concurrent_ingest");
    g.sample_size(10);
    g.bench_function("single_repository", |b| {
        b.iter(|| {
            let repo = Repository::new();
            ingest(&repo, &batches);
            repo.counts(RunScope::All)
        });
    });
    g.bench_function("sharded_repository_8", |b| {
        b.iter(|| {
            let repo = ShardedRepository::new(8);
            ingest(&repo, &batches);
            repo.counts(RunScope::All)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
