//! E17 — tiered-storage micro-costs: query latency when segments must be
//! paged in from disk vs served resident, and whole-repository export via
//! raw byte splice vs typed re-encode. The spilled repository keeps a
//! two-segment clock cache against a corpus of many segments, so cold
//! windows miss the cache on nearly every iteration; the resident twin
//! holds the identical rows decoded. Compare the groups pairwise — the
//! gap is the page-in tax the memory budget buys.

use criterion::{criterion_group, criterion_main, Criterion};
use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, RunId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{
    ProductBatch, ProductSink, RunScope, SegmentConfig, SegmentedRepository, SpillConfig,
};

const TOTAL_ROWS: usize = 64_000;
const SEAL_ROWS: usize = 4_000;
const BATCH: usize = 1_000;

fn make_batch(b: usize) -> Vec<TrajectorySample> {
    (0..BATCH)
        .map(|i| {
            let row = b * BATCH + i;
            TrajectorySample::new(
                ObjectId((row % 100) as u32),
                BuildingId(0),
                FloorId((row % 2) as u32),
                Point::new((row % 420) as f64 / 10.0, (row % 160) as f64 / 10.0),
                Timestamp(row as u64),
            )
        })
        .collect()
}

fn fill(repo: &SegmentedRepository) {
    for b in 0..TOTAL_ROWS / BATCH {
        repo.accept_run(
            RunId((b % 3) as u32),
            ProductBatch::Trajectories(make_batch(b)),
        );
    }
    repo.seal_now();
    repo.seal_now();
}

fn spilled() -> SegmentedRepository {
    let repo = SegmentedRepository::with_spill(
        SegmentConfig {
            seal_rows: SEAL_ROWS,
            ..SegmentConfig::default()
        },
        SpillConfig {
            dir: std::env::temp_dir().join(format!("vita-e17-bench-{}", std::process::id())),
            memory_budget_rows: SEAL_ROWS * 2,
            cache_segments: 2,
        },
    );
    fill(&repo);
    assert!(repo.stats().spilled_rows > 0);
    repo
}

fn resident() -> SegmentedRepository {
    let repo = SegmentedRepository::with_spill(
        SegmentConfig {
            seal_rows: SEAL_ROWS,
            ..SegmentConfig::default()
        },
        SpillConfig {
            dir: std::env::temp_dir().join(format!("vita-e17-bench-{}", std::process::id())),
            memory_budget_rows: usize::MAX,
            cache_segments: 2,
        },
    );
    fill(&repo);
    assert_eq!(repo.stats().spilled_rows, 0);
    repo
}

fn bench_page_in(c: &mut Criterion) {
    let cold = spilled();
    let warm = resident();
    // Rotating cold windows so successive iterations touch different
    // segments and the two-slot cache keeps missing.
    let windows: Vec<(Timestamp, Timestamp)> = (0..8)
        .map(|i| {
            let from = (i * TOTAL_ROWS / 8) as u64;
            (Timestamp(from), Timestamp(from + SEAL_ROWS as u64))
        })
        .collect();

    let mut g = c.benchmark_group("e17/time_window_cold");
    g.sample_size(20);
    for (name, repo) in [("spilled", &cold), ("resident", &warm)] {
        let mut i = 0usize;
        g.bench_function(name, |b| {
            b.iter(|| {
                let (from, to) = windows[i % windows.len()];
                i += 1;
                repo.trajectories_time_window(RunScope::All, from, to).len()
            });
        });
    }
    g.finish();

    let mut g = c.benchmark_group("e17/counts_metadata_only");
    g.sample_size(20);
    for (name, repo) in [("spilled", &cold), ("resident", &warm)] {
        g.bench_function(name, |b| {
            b.iter(|| repo.counts(RunScope::All).trajectories);
        });
    }
    g.finish();
}

fn bench_export(c: &mut Criterion) {
    let cold = spilled();
    let mut g = c.benchmark_group("e17/export");
    g.sample_size(10);
    g.bench_function("raw_splice", |b| {
        b.iter(|| cold.export().trajectories.len());
    });
    g.bench_function("typed_reencode", |b| {
        b.iter(|| cold.export_reencode().trajectories.len());
    });
    g.finish();
}

criterion_group!(benches, bench_page_in, bench_export);
criterion_main!(benches);
