//! E7 — Routing: graph construction and query cost for min-distance vs
//! min-time schemas, single- and multi-floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vita_bench::office_env;
use vita_geometry::Point;
use vita_indoor::{FloorId, RoutePlanner, RoutingSchema};

fn bench_graph_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7/graph_build");
    g.sample_size(10);
    for &floors in &[1usize, 4, 10] {
        let env = office_env(floors);
        g.bench_with_input(BenchmarkId::from_parameter(floors), &floors, |b, _| {
            b.iter(|| RoutePlanner::new(&env));
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let env = office_env(4);
    let planner = RoutePlanner::new(&env);
    let from = (FloorId(0), Point::new(2.0, 2.0));
    let to_same = (FloorId(0), Point::new(38.0, 14.0));
    let to_multi = (FloorId(3), Point::new(38.0, 14.0));
    let mut g = c.benchmark_group("e7/query");
    g.sample_size(20);
    g.bench_function("min_distance_same_floor", |b| {
        b.iter(|| {
            planner
                .route(from, to_same, RoutingSchema::MinDistance)
                .unwrap()
        });
    });
    g.bench_function("min_time_same_floor", |b| {
        b.iter(|| {
            planner
                .route(from, to_same, RoutingSchema::min_time_default())
                .unwrap()
        });
    });
    g.bench_function("min_distance_cross_floor", |b| {
        b.iter(|| {
            planner
                .route(from, to_multi, RoutingSchema::MinDistance)
                .unwrap()
        });
    });
    g.bench_function("min_time_cross_floor", |b| {
        b.iter(|| {
            planner
                .route(from, to_multi, RoutingSchema::min_time_default())
                .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_graph_build, bench_queries);
criterion_main!(benches);
