//! E5 — RSSI generation and positioning cost under different noise models
//! (the error-vs-σ curve is produced by the experiments binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vita_bench::{deploy_floor0, gen_rssi, gen_trajectories, office_env};
use vita_devices::{DeploymentModel, DeviceType};

fn bench_noise(c: &mut Criterion) {
    let env = office_env(1);
    let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, 12, None);
    let generation = gen_trajectories(&env, 50, 60, 2.0, 0xE5);
    let mut g = c.benchmark_group("e5/noise_sigma");
    g.sample_size(10);
    for &sigma in &[0.0f64, 2.0, 8.0] {
        g.bench_with_input(BenchmarkId::from_parameter(sigma), &sigma, |b, &sigma| {
            b.iter(|| gen_rssi(&env, &reg, &generation, 60, sigma));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_noise);
criterion_main!(benches);
