//! E3 — Positioning method runtime on the shared workload (the accuracy
//! table itself is produced by `cargo run --release -p vita-bench --bin
//! experiments`, which regenerates the EXPERIMENTS.md numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use vita_bench::standard_workload;
use vita_indoor::FloorId;
use vita_positioning::{
    build_radio_map, default_conversion, knn_fingerprint, naive_bayes_fingerprint,
    proximity_records, trilaterate, FingerprintConfig, ProximityConfig, SurveyConfig,
    TrilaterationConfig,
};
use vita_rssi::PathLossModel;

fn bench_methods(c: &mut Criterion) {
    let w = standard_workload(30, 12, 60, 2.0);
    let mut g = c.benchmark_group("e3/method_runtime");
    g.sample_size(10);

    let conv = default_conversion(PathLossModel::default());
    g.bench_function("trilateration", |b| {
        b.iter(|| trilaterate(&w.devices, &w.rssi, &TrilaterationConfig::default(), &conv));
    });

    let map = build_radio_map(&w.env, &w.devices, FloorId(0), &SurveyConfig::default());
    g.bench_function("fingerprint_knn_online", |b| {
        b.iter(|| knn_fingerprint(&map, &w.rssi, &FingerprintConfig::default()));
    });
    g.bench_function("fingerprint_bayes_online", |b| {
        b.iter(|| naive_bayes_fingerprint(&map, &w.rssi, &FingerprintConfig::default()));
    });
    g.bench_function("fingerprint_offline_survey", |b| {
        b.iter(|| build_radio_map(&w.env, &w.devices, FloorId(0), &SurveyConfig::default()));
    });
    g.bench_function("proximity", |b| {
        b.iter(|| proximity_records(&w.devices, &w.rssi, &ProximityConfig::default()));
    });
    g.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
