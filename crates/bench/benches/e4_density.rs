//! E4 — End-to-end positioning cost vs device density (the accuracy curve
//! lives in the experiments binary; here we measure the cost of scaling the
//! deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vita_bench::{deploy_floor0, gen_rssi, gen_trajectories, office_env};
use vita_devices::{DeploymentModel, DeviceType};
use vita_positioning::{default_conversion, trilaterate, TrilaterationConfig};
use vita_rssi::PathLossModel;

fn bench_density(c: &mut Criterion) {
    let env = office_env(1);
    let generation = gen_trajectories(&env, 30, 60, 2.0, 0xE4);
    let conv = default_conversion(PathLossModel::default());
    let mut g = c.benchmark_group("e4/device_density");
    g.sample_size(10);
    for &n in &[4usize, 8, 16, 32] {
        let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, n, None);
        let rssi = gen_rssi(&env, &reg, &generation, 60, 2.0);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| trilaterate(&reg, &rssi, &TrilaterationConfig::default(), &conv));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_density);
criterion_main!(benches);
