//! E10 — Storage: insert throughput and query latency (time window, object
//! trace, spatial kNN) vs table size, plus codec throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_storage::{decode_trajectories, encode_trajectories, RunScope, TrajectoryTable};

fn make_samples(n: usize) -> Vec<TrajectorySample> {
    (0..n)
        .map(|i| {
            TrajectorySample::new(
                ObjectId((i % 100) as u32),
                BuildingId(0),
                FloorId(0),
                Point::new((i % 420) as f64 / 10.0, (i % 160) as f64 / 10.0),
                Timestamp(i as u64 * 7),
            )
        })
        .collect()
}

fn bench_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10/insert");
    g.sample_size(10);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let samples = make_samples(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut t = TrajectoryTable::new();
                t.insert_bulk(samples.iter().copied());
                t
            });
        });
    }
    g.finish();
}

fn bench_queries(c: &mut Criterion) {
    let samples = make_samples(200_000);
    let mut table = TrajectoryTable::new();
    table.insert_bulk(samples);
    // Warm the spatial index once so kNN measures query cost, not build.
    let _ = table.knn(RunScope::All, FloorId(0), Point::new(20.0, 8.0), 1);

    let mut g = c.benchmark_group("e10/query");
    g.sample_size(20);
    g.bench_function("time_window_1pct", |b| {
        b.iter(|| table.time_window(RunScope::All, Timestamp(100_000), Timestamp(114_000)));
    });
    g.bench_function("object_trace", |b| {
        b.iter(|| table.object_trace(RunScope::All, ObjectId(42)));
    });
    g.bench_function("snapshot", |b| {
        b.iter(|| table.snapshot_at(RunScope::All, Timestamp(700_000)));
    });
    g.finish();

    // kNN needs &mut self; bench separately.
    let mut g = c.benchmark_group("e10/knn");
    g.sample_size(20);
    g.bench_function("knn10", |b| {
        b.iter(|| {
            table
                .knn(RunScope::All, FloorId(0), Point::new(20.0, 8.0), 10)
                .len()
        });
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let samples = make_samples(100_000);
    let encoded = encode_trajectories(&samples);
    let mut g = c.benchmark_group("e10/codec");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("encode_100k", |b| {
        b.iter(|| encode_trajectories(&samples));
    });
    g.bench_function("decode_100k", |b| {
        b.iter(|| decode_trajectories(encoded.clone()).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_insert, bench_queries, bench_codec);
criterion_main!(benches);
