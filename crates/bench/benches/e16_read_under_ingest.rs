//! E16 — read latency under live ingestion, micro-bench form: one
//! `QueryService::execute` over a pre-populated multi-run repository
//! while a writer thread keeps appending batches, per backend. The locked
//! backends make readers wait out the writer's lock; the segmented
//! backend answers from an epoch-pinned snapshot and never blocks. The
//! macro companion (offered-rate step with `run_many` ingesting through
//! the whole pipeline) is experiment E16 in
//! `cargo run --release -p vita-bench --bin experiments`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_serve::{QueryRequest, QueryService, WorkloadSpec};
use vita_storage::{AnyRepository, ProductBatch, ProductSink, RunId, RunScope, StorageBackend};

const OBJECTS: u32 = 48;
const PRELOAD_PER_OBJECT: u64 = 256;
const T_MAX: u64 = PRELOAD_PER_OBJECT * 10;
const INGEST_BATCH: u64 = 64;

fn rows(o: u32, t0: u64, n: u64) -> Vec<TrajectorySample> {
    (0..n)
        .map(|i| {
            TrajectorySample::new(
                ObjectId(o),
                BuildingId(0),
                FloorId(o % 2),
                Point::new(((t0 + i * 10) % 400) as f64 / 10.0, (o % 160) as f64 / 10.0),
                Timestamp(t0 + i * 10),
            )
        })
        .collect()
}

fn populated(backend: StorageBackend) -> Arc<AnyRepository> {
    let repo = AnyRepository::new(backend);
    for o in 0..OBJECTS {
        repo.accept_run(
            RunId(0),
            ProductBatch::Trajectories(rows(o, 0, PRELOAD_PER_OBJECT)),
        );
    }
    Arc::new(repo)
}

fn bench_read_under_ingest(c: &mut Criterion) {
    let backends = [
        ("single", StorageBackend::Single),
        ("sharded_8", StorageBackend::Sharded { shards: 8 }),
        ("segmented", StorageBackend::segmented()),
    ];
    let mut g = c.benchmark_group("e16/read_under_ingest");
    g.sample_size(20);
    for (name, backend) in backends {
        let repo = populated(backend);
        let service = QueryService::new(Arc::clone(&repo));
        let spec = WorkloadSpec {
            scopes: vec![RunScope::All, RunId(0).into(), RunId(1).into()],
            objects: OBJECTS,
            floors: 2,
            t_max: T_MAX,
            window: T_MAX / 8,
            ..Default::default()
        };

        // A writer hammering appends for the whole measurement: paced just
        // enough that the repository grows steadily instead of exploding.
        let done = Arc::new(AtomicBool::new(false));
        let writer = {
            let repo = Arc::clone(&repo);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut t0 = T_MAX;
                let mut o = 0u32;
                while !done.load(Ordering::Relaxed) {
                    repo.accept_run(
                        RunId(1),
                        ProductBatch::Trajectories(rows(o, t0, INGEST_BATCH)),
                    );
                    o = (o + 1) % OBJECTS;
                    if o == 0 {
                        t0 += INGEST_BATCH * 10;
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            })
        };

        g.bench_function(format!("mixed_workload/{name}"), |b| {
            let mut rng = spec.rng();
            b.iter(|| service.execute(&spec.sample(&mut rng)).len());
        });
        g.bench_function(format!("time_window_all/{name}"), |b| {
            let req = QueryRequest::TimeWindow {
                scope: RunScope::All,
                from: Timestamp(T_MAX / 4),
                to: Timestamp(T_MAX / 2),
            };
            b.iter(|| service.execute(&req).len());
        });

        done.store(true, Ordering::Relaxed);
        writer.join().expect("ingest thread");
    }
    g.finish();
}

criterion_group!(benches, bench_read_under_ingest);
criterion_main!(benches);
