//! E11 — end-to-end pipeline: the streaming batched dataflow
//! (`Vita::run_streaming`) vs the materialize-and-copy step path
//! (steps 4 → 5 → 6), on the shared [`vita_bench::e11`] workload.

use criterion::{criterion_group, criterion_main, Criterion};
use vita_bench::e11;
use vita_storage::RunScope;

const OBJECTS: usize = 20;
const SECS: u64 = 60;

fn bench_paths(c: &mut Criterion) {
    let text = e11::office_text();
    let mut g = c.benchmark_group("e11/end_to_end");
    g.sample_size(10);
    g.bench_function("step_path", |b| {
        b.iter(|| {
            let mut vita = e11::toolkit(&text);
            vita.generate_objects(&e11::mobility(OBJECTS, SECS))
                .unwrap();
            vita.generate_rssi(&e11::rssi(SECS)).unwrap();
            let data = vita.run_positioning(&e11::method()).unwrap();
            (vita.repository().counts(RunScope::All), data.len())
        });
    });
    g.bench_function("streaming", |b| {
        b.iter(|| {
            let mut vita = e11::toolkit(&text);
            let report = vita.run_streaming(&e11::scenario(OBJECTS, SECS)).unwrap();
            (
                vita.repository().counts(RunScope::All),
                report.positioning_rows,
            )
        });
    });
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
