//! E6 — Cost of the ground-truth sampling frequency vs the positioning
//! sampling frequency (the two independent knobs of paper §2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vita_bench::{deploy_floor0, gen_rssi, gen_trajectories, office_env};
use vita_devices::{DeploymentModel, DeviceType};
use vita_indoor::Hz;
use vita_positioning::{default_conversion, trilaterate, TrilaterationConfig};
use vita_rssi::PathLossModel;

fn bench_trajectory_hz(c: &mut Criterion) {
    let env = office_env(1);
    let mut g = c.benchmark_group("e6/trajectory_hz");
    g.sample_size(10);
    for &hz in &[0.2f64, 1.0, 5.0] {
        g.bench_with_input(BenchmarkId::from_parameter(hz), &hz, |b, &hz| {
            b.iter(|| gen_trajectories(&env, 50, 60, hz, 0xE6));
        });
    }
    g.finish();
}

fn bench_positioning_hz(c: &mut Criterion) {
    let env = office_env(1);
    let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, 12, None);
    let generation = gen_trajectories(&env, 50, 60, 2.0, 0xE6);
    let rssi = gen_rssi(&env, &reg, &generation, 60, 2.0);
    let conv = default_conversion(PathLossModel::default());
    let mut g = c.benchmark_group("e6/positioning_hz");
    g.sample_size(10);
    for &hz in &[0.2f64, 0.5, 2.0] {
        let cfg = TrilaterationConfig {
            sampling_hz: Hz(hz),
            ..Default::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(hz), &hz, |b, _| {
            b.iter(|| trilaterate(&reg, &rssi, &cfg, &conv));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trajectory_hz, bench_positioning_hz);
criterion_main!(benches);
