//! E2 — RSSI generation throughput vs device count × object count
//! (Positioning Layer, RSSI Measurement Controller scalability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vita_bench::{deploy_floor0, gen_rssi, gen_trajectories, office_env};
use vita_devices::{DeploymentModel, DeviceType};

fn bench_devices(c: &mut Criterion) {
    let env = office_env(1);
    let generation = gen_trajectories(&env, 100, 60, 2.0, 0xE2);
    let mut g = c.benchmark_group("e2/devices");
    g.sample_size(10);
    for &n in &[4usize, 16, 48] {
        let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, n, None);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| gen_rssi(&env, &reg, &generation, 60, 2.0));
        });
    }
    g.finish();
}

fn bench_objects(c: &mut Criterion) {
    let env = office_env(1);
    let reg = deploy_floor0(&env, DeviceType::WiFi, DeploymentModel::Coverage, 12, None);
    let mut g = c.benchmark_group("e2/objects");
    g.sample_size(10);
    for &n in &[25usize, 100, 400] {
        let generation = gen_trajectories(&env, n, 60, 2.0, 0xE2);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| gen_rssi(&env, &reg, &generation, 60, 2.0));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_devices, bench_objects);
criterion_main!(benches);
