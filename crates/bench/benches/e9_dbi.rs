//! E9 — DBI processing cost vs building size: STEP parse, decode+repair,
//! environment construction (decompose + door/staircase resolution + index).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vita_dbi::{load_dbi, office, write_step, SynthParams};
use vita_indoor::{build_environment, BuildParams};

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/parse_and_decode");
    g.sample_size(20);
    for &floors in &[1usize, 5, 20] {
        let text = write_step(&office(&SynthParams::with_floors(floors)));
        g.throughput(criterion::Throughput::Bytes(text.len() as u64));
        g.bench_with_input(BenchmarkId::from_parameter(floors), &floors, |b, _| {
            b.iter(|| load_dbi(&text).unwrap());
        });
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/environment_build");
    g.sample_size(20);
    for &floors in &[1usize, 5, 20] {
        let model = office(&SynthParams::with_floors(floors));
        g.bench_with_input(BenchmarkId::from_parameter(floors), &floors, |b, _| {
            b.iter(|| build_environment(&model, &BuildParams::default()).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parse, bench_build);
criterion_main!(benches);
