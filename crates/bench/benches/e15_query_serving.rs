//! E15 — query serving micro-bench: one `QueryService::execute` over a
//! pre-populated multi-run repository, per backend, for the default query
//! mix and for the two extreme requests (cheap `Counts` vs scan-heavy
//! `TimeWindow`). Pure read path: ingestion happens once at setup, so the
//! measurement isolates dispatch + repository query cost. The ramped-load
//! companion (offered-rate steps under live ingestion) is experiment E15
//! in `cargo run --release -p vita-bench --bin experiments`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use vita_geometry::Point;
use vita_indoor::{BuildingId, FloorId, ObjectId, Timestamp};
use vita_mobility::TrajectorySample;
use vita_serve::{QueryRequest, QueryService, WorkloadSpec};
use vita_storage::{AnyRepository, ProductBatch, ProductSink, RunId, RunScope, StorageBackend};

const RUNS: u32 = 3;
const OBJECTS: u32 = 64;
const SAMPLES_PER_OBJECT: u64 = 512;
const T_MAX: u64 = SAMPLES_PER_OBJECT * 10;

/// A multi-run repository with `RUNS × OBJECTS × SAMPLES_PER_OBJECT`
/// trajectory rows, time-ordered per object.
fn populated(backend: StorageBackend) -> Arc<AnyRepository> {
    let repo = AnyRepository::new(backend);
    for run in 0..RUNS {
        for o in 0..OBJECTS {
            let rows = (0..SAMPLES_PER_OBJECT)
                .map(|i| {
                    TrajectorySample::new(
                        ObjectId(o),
                        BuildingId(0),
                        FloorId(o % 2),
                        Point::new((i % 400) as f64 / 10.0, (o % 160) as f64 / 10.0),
                        Timestamp(i * 10),
                    )
                })
                .collect();
            repo.accept_run(RunId(run), ProductBatch::Trajectories(rows));
        }
    }
    // Measure the segmented backend's steady state: everything sealed and
    // indexed, nothing left in the unsealed tail.
    if let Some(s) = repo.as_segmented() {
        s.seal_now();
        s.seal_now();
    }
    Arc::new(repo)
}

fn bench_serving(c: &mut Criterion) {
    let backends = [
        ("single", StorageBackend::Single),
        ("sharded_8", StorageBackend::Sharded { shards: 8 }),
        ("segmented", StorageBackend::segmented()),
    ];
    let mut g = c.benchmark_group("e15/query_serving");
    g.sample_size(20);
    for (name, backend) in backends {
        let service = QueryService::new(populated(backend));
        let spec = WorkloadSpec {
            scopes: vec![RunScope::All, RunId(0).into(), RunId(1).into()],
            objects: OBJECTS,
            floors: 2,
            t_max: T_MAX,
            window: T_MAX / 8,
            ..Default::default()
        };

        g.bench_function(format!("mixed_workload/{name}"), |b| {
            let mut rng = spec.rng();
            b.iter(|| service.execute(&spec.sample(&mut rng)).len());
        });
        g.bench_function(format!("counts_all/{name}"), |b| {
            let req = QueryRequest::Counts {
                scope: RunScope::All,
            };
            b.iter(|| service.execute(&req).len());
        });
        g.bench_function(format!("time_window_all/{name}"), |b| {
            let req = QueryRequest::TimeWindow {
                scope: RunScope::All,
                from: Timestamp(T_MAX / 4),
                to: Timestamp(T_MAX / 2),
            };
            b.iter(|| service.execute(&req).len());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
