//! E1 — Trajectory generation throughput vs object count and trajectory
//! sampling frequency (Moving Object Layer scalability).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vita_bench::{gen_trajectories, office_env};

fn bench_objects(c: &mut Criterion) {
    let env = office_env(2);
    let mut g = c.benchmark_group("e1/objects");
    g.sample_size(10);
    for &n in &[50usize, 200, 800] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| gen_trajectories(&env, n, 60, 1.0, 0xE1));
        });
    }
    g.finish();
}

fn bench_frequency(c: &mut Criterion) {
    let env = office_env(1);
    let mut g = c.benchmark_group("e1/frequency");
    g.sample_size(10);
    for &hz in &[0.5f64, 2.0, 8.0] {
        g.bench_with_input(BenchmarkId::from_parameter(hz), &hz, |b, &hz| {
            b.iter(|| gen_trajectories(&env, 100, 60, hz, 0xE1));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_objects, bench_frequency);
criterion_main!(benches);
