//! Property-based tests for DBI processing: the STEP writer/parser pair
//! must round-trip arbitrary well-formed models, and the repair stage must
//! be idempotent.

use proptest::prelude::*;

use vita_dbi::{
    decode, parse_step, validate_and_repair, write_step, DbiModel, DoorDirectionality, DoorRec,
    SpaceRec, StairRec, StoreyRec,
};
use vita_geometry::{Point, Point3};

fn name_strategy() -> impl Strategy<Value = String> {
    // Includes quotes to exercise escaping.
    prop::sample::select(vec![
        "Room".to_string(),
        "O'Brien Hall".to_string(),
        "Café 1".to_string(),
        "Ward A".to_string(),
        "X".to_string(),
    ])
}

fn model_strategy() -> impl Strategy<Value = DbiModel> {
    (
        name_strategy(),
        1usize..4,                                                 // storeys
        1usize..6,                                                 // spaces per storey
        prop::collection::vec((0.0f64..40.0, 0.0f64..40.0), 0..4), // door offsets
    )
        .prop_map(|(bname, n_storeys, spaces_per, door_offsets)| {
            let mut model = DbiModel {
                building_name: bname,
                ..Default::default()
            };
            for s in 0..n_storeys {
                let sid = (s + 1) as u64 * 100;
                model.storeys.push(StoreyRec {
                    id: sid,
                    name: format!("S{s}"),
                    elevation: s as f64 * 3.0,
                });
                for k in 0..spaces_per {
                    let x0 = k as f64 * 10.0;
                    model.spaces.push(SpaceRec {
                        id: sid + 1 + k as u64,
                        name: format!("R{s}.{k}"),
                        usage: "office".into(),
                        storey: sid,
                        footprint: vec![
                            Point::new(x0, 0.0),
                            Point::new(x0 + 8.0, 0.0),
                            Point::new(x0 + 8.0, 6.0),
                            Point::new(x0, 6.0),
                        ],
                    });
                }
                for (j, (dx, _)) in door_offsets.iter().enumerate() {
                    model.doors.push(DoorRec {
                        id: sid + 50 + j as u64,
                        name: format!("D{s}.{j}"),
                        storey: sid,
                        position: Point::new(dx % (spaces_per as f64 * 10.0 - 2.0), 0.0),
                        width: 0.9,
                        directionality: DoorDirectionality::Both,
                    });
                }
            }
            if n_storeys >= 2 {
                model.stairs.push(StairRec {
                    id: 9000,
                    name: "Stair".into(),
                    vertices: vec![
                        Point3::new(1.0, 1.0, 0.0),
                        Point3::new(2.0, 1.0, 0.0),
                        Point3::new(1.0, 5.0, 3.0),
                        Point3::new(2.0, 5.0, 3.0),
                    ],
                });
            }
            model
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// write → parse → decode recovers the model's content (ids are
    /// reassigned, everything else preserved).
    #[test]
    fn step_round_trip(model in model_strategy()) {
        let text = write_step(&model);
        let parsed = parse_step(&text).expect("parse");
        let decoded = decode(&parsed).expect("decode");
        prop_assert!(decoded.issues.is_empty(), "{:?}", decoded.issues);
        let got = decoded.model;
        prop_assert_eq!(&got.building_name, &model.building_name);
        prop_assert_eq!(got.storeys.len(), model.storeys.len());
        prop_assert_eq!(got.spaces.len(), model.spaces.len());
        prop_assert_eq!(got.doors.len(), model.doors.len());
        prop_assert_eq!(got.stairs.len(), model.stairs.len());
        // Storey elevations preserved in order.
        for (a, b) in got.storeys.iter().zip(&model.storeys) {
            prop_assert!((a.elevation - b.elevation).abs() < 1e-9);
        }
        // Footprints preserved exactly.
        for (a, b) in got.spaces.iter().zip(&model.spaces) {
            prop_assert_eq!(&a.footprint, &b.footprint);
            prop_assert_eq!(&a.name, &b.name);
        }
        // Double round-trip is stable.
        let text2 = write_step(&got);
        let got2 = decode(&parse_step(&text2).unwrap()).unwrap().model;
        prop_assert_eq!(got2.spaces.len(), got.spaces.len());
    }

    /// Repair is idempotent: a second pass finds nothing new.
    #[test]
    fn repair_is_idempotent(model in model_strategy()) {
        let mut m = model;
        let _first = validate_and_repair(&mut m);
        let second = validate_and_repair(&mut m);
        // Everything that remains after the first pass is either clean or an
        // unrepairable (advisory) finding; no *repairs* happen twice.
        prop_assert_eq!(second.repaired_count(), 0, "{:?}", second.findings);
    }
}
