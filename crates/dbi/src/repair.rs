//! Validation and repair of decoded DBI models (paper §4.1).
//!
//! "The data errors in describing the indoor topology can be identified
//! through geometry calculations or GUI-based manual checks." This module is
//! the geometry-calculation half: it scans a [`DbiModel`] for the defects
//! real IFC exports exhibit, fixes what can be fixed mechanically, and
//! reports everything it saw so a caller (or a GUI) can review.

use std::fmt;

use vita_geometry::{Point, Polygon, Segment, EPS};

use crate::schema::{DbiModel, EntityId};

/// How far a mispositioned door may be from a space boundary and still be
/// snapped onto it (metres).
pub const DOOR_SNAP_TOLERANCE: f64 = 0.75;

/// One finding from validation. `repaired` tells whether the model was
/// changed to fix it.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    pub entity: EntityId,
    pub kind: FindingKind,
    pub repaired: bool,
}

/// The classes of defects the checker knows about.
#[derive(Debug, Clone, PartialEq)]
pub enum FindingKind {
    /// Footprint has consecutive duplicate vertices (removed).
    DuplicateVertices,
    /// Footprint is degenerate (dropped from the model).
    DegenerateFootprint(String),
    /// Footprint ring self-intersects (dropped).
    SelfIntersectingFootprint,
    /// Door farther than [`DOOR_SNAP_TOLERANCE`] from every space boundary on
    /// its storey (left in place, flagged).
    DoorOffBoundary { dist: f64 },
    /// Door within tolerance but not exactly on a boundary (snapped).
    DoorSnapped { moved_by: f64 },
    /// Two spaces on one storey overlap by more than sliver area.
    OverlappingSpaces { other: EntityId, area: f64 },
    /// Two storeys share (nearly) one elevation.
    DuplicateElevation { other: EntityId },
    /// Staircase vertices span < 0.5 m vertically: cannot connect two floors.
    FlatStaircase { span: f64 },
    /// Wall centerline had zero-length segments (deduplicated).
    WallZeroSegments,
}

impl fmt::Display for FindingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FindingKind::DuplicateVertices => write!(f, "duplicate footprint vertices"),
            FindingKind::DegenerateFootprint(r) => write!(f, "degenerate footprint: {r}"),
            FindingKind::SelfIntersectingFootprint => write!(f, "self-intersecting footprint"),
            FindingKind::DoorOffBoundary { dist } => {
                write!(f, "door {dist:.2} m from nearest space boundary")
            }
            FindingKind::DoorSnapped { moved_by } => {
                write!(f, "door snapped {moved_by:.3} m onto boundary")
            }
            FindingKind::OverlappingSpaces { other, area } => {
                write!(f, "overlaps space #{other} by {area:.2} m²")
            }
            FindingKind::DuplicateElevation { other } => {
                write!(f, "same elevation as storey #{other}")
            }
            FindingKind::FlatStaircase { span } => {
                write!(f, "staircase vertical span only {span:.2} m")
            }
            FindingKind::WallZeroSegments => write!(f, "wall had zero-length segments"),
        }
    }
}

/// Report from a validation/repair pass.
#[derive(Debug, Clone, Default)]
pub struct RepairReport {
    pub findings: Vec<Finding>,
}

impl RepairReport {
    pub fn repaired_count(&self) -> usize {
        self.findings.iter().filter(|f| f.repaired).count()
    }

    pub fn unrepaired_count(&self) -> usize {
        self.findings.iter().filter(|f| !f.repaired).count()
    }

    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Validate `model` in place, repairing what is mechanically fixable.
pub fn validate_and_repair(model: &mut DbiModel) -> RepairReport {
    let mut report = RepairReport::default();

    repair_footprints(model, &mut report);
    repair_walls(model, &mut report);
    snap_doors(model, &mut report);
    check_overlaps(model, &mut report);
    check_elevations(model, &mut report);
    check_staircases(model, &mut report);

    report
}

fn repair_footprints(model: &mut DbiModel, report: &mut RepairReport) {
    let mut kept = Vec::with_capacity(model.spaces.len());
    for mut sp in model.spaces.drain(..) {
        // Remove consecutive duplicates (and a closing vertex repeat).
        let before = sp.footprint.len();
        if sp.footprint.len() >= 2
            && sp
                .footprint
                .first()
                .unwrap()
                .approx_eq(*sp.footprint.last().unwrap())
        {
            sp.footprint.pop();
        }
        sp.footprint.dedup_by(|a, b| a.approx_eq(*b));
        if sp.footprint.len() != before {
            report.findings.push(Finding {
                entity: sp.id,
                kind: FindingKind::DuplicateVertices,
                repaired: true,
            });
        }
        // Self-intersection is checked on the raw ring first: a bow-tie has
        // zero signed area and would otherwise masquerade as "degenerate".
        if raw_ring_self_intersects(&sp.footprint) {
            report.findings.push(Finding {
                entity: sp.id,
                kind: FindingKind::SelfIntersectingFootprint,
                repaired: true, // repaired by removal
            });
            continue;
        }
        match Polygon::new(sp.footprint.clone()) {
            Ok(_) => kept.push(sp),
            Err(e) => {
                report.findings.push(Finding {
                    entity: sp.id,
                    kind: FindingKind::DegenerateFootprint(e.to_string()),
                    repaired: true, // repaired by removal
                });
            }
        }
    }
    model.spaces = kept;
}

fn raw_ring_self_intersects(ring: &[Point]) -> bool {
    let n = ring.len();
    if n < 4 {
        return false;
    }
    let edges: Vec<Segment> = (0..n)
        .map(|i| Segment::new(ring[i], ring[(i + 1) % n]))
        .collect();
    for i in 0..n {
        for j in i + 1..n {
            // Adjacent edges share an endpoint; only proper crossings count.
            if edges[i].crosses(&edges[j]) {
                return true;
            }
        }
    }
    false
}

fn repair_walls(model: &mut DbiModel, report: &mut RepairReport) {
    for wall in &mut model.walls {
        let before = wall.path.len();
        wall.path.dedup_by(|a, b| a.approx_eq(*b));
        if wall.path.len() != before {
            report.findings.push(Finding {
                entity: wall.id,
                kind: FindingKind::WallZeroSegments,
                repaired: true,
            });
        }
    }
    model.walls.retain(|w| w.path.len() >= 2);
}

fn snap_doors(model: &mut DbiModel, report: &mut RepairReport) {
    // For each door, find the closest boundary point among spaces on its
    // storey; snap within tolerance, flag beyond it.
    let spaces = model.spaces.clone();
    for door in &mut model.doors {
        let mut best: Option<(Point, f64)> = None;
        for sp in spaces.iter().filter(|s| s.storey == door.storey) {
            let Ok(poly) = Polygon::new(sp.footprint.clone()) else {
                continue;
            };
            for edge in poly.edges() {
                let cp = edge.closest_point(door.position);
                let d = cp.dist(door.position);
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((cp, d));
                }
            }
        }
        match best {
            Some((cp, d)) if d > EPS.sqrt() && d <= DOOR_SNAP_TOLERANCE => {
                door.position = cp;
                report.findings.push(Finding {
                    entity: door.id,
                    kind: FindingKind::DoorSnapped { moved_by: d },
                    repaired: true,
                });
            }
            Some((_, d)) if d > DOOR_SNAP_TOLERANCE => {
                report.findings.push(Finding {
                    entity: door.id,
                    kind: FindingKind::DoorOffBoundary { dist: d },
                    repaired: false,
                });
            }
            _ => {}
        }
    }
}

fn check_overlaps(model: &DbiModel, report: &mut RepairReport) {
    // Pairwise overlap test per storey; sliver overlaps under 1 % of the
    // smaller footprint are tolerated (shared-wall modelling noise).
    for (i, a) in model.spaces.iter().enumerate() {
        let Ok(pa) = Polygon::new(a.footprint.clone()) else {
            continue;
        };
        for b in model.spaces.iter().skip(i + 1) {
            if a.storey != b.storey {
                continue;
            }
            let Ok(pb) = Polygon::new(b.footprint.clone()) else {
                continue;
            };
            if !pa.bbox().intersects(&pb.bbox()) {
                continue;
            }
            let overlap = overlap_area(&pa, &pb);
            let tolerance = 0.01 * pa.area().min(pb.area());
            if overlap > tolerance.max(1e-6) {
                report.findings.push(Finding {
                    entity: a.id,
                    kind: FindingKind::OverlappingSpaces {
                        other: b.id,
                        area: overlap,
                    },
                    repaired: false,
                });
            }
        }
    }
}

/// Approximate intersection area of two convex-ish footprints by clipping `a`
/// with each edge half-plane of `b` (exact for convex `b`).
fn overlap_area(a: &Polygon, b: &Polygon) -> f64 {
    let mut clipped = a.clone();
    for edge in b.edges() {
        match clipped.clip_half_plane(edge.a, edge.b) {
            Some(next) => clipped = next,
            None => return 0.0,
        }
    }
    clipped.area()
}

fn check_elevations(model: &DbiModel, report: &mut RepairReport) {
    for (i, a) in model.storeys.iter().enumerate() {
        for b in model.storeys.iter().skip(i + 1) {
            if (a.elevation - b.elevation).abs() < 0.1 {
                report.findings.push(Finding {
                    entity: a.id,
                    kind: FindingKind::DuplicateElevation { other: b.id },
                    repaired: false,
                });
            }
        }
    }
}

fn check_staircases(model: &DbiModel, report: &mut RepairReport) {
    for st in &model.stairs {
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in &st.vertices {
            lo = lo.min(v.z);
            hi = hi.max(v.z);
        }
        let span = if st.vertices.is_empty() { 0.0 } else { hi - lo };
        if span < 0.5 {
            report.findings.push(Finding {
                entity: st.id,
                kind: FindingKind::FlatStaircase { span },
                repaired: false,
            });
        }
    }
}

/// Deliberate corruption utilities for testing the repair path.
pub mod corrupt {
    use super::*;

    /// Move the first door `offset` metres away from where it is.
    pub fn displace_first_door(model: &mut DbiModel, offset: f64) {
        if let Some(d) = model.doors.first_mut() {
            d.position = Point::new(d.position.x + offset, d.position.y + offset);
        }
    }

    /// Duplicate every vertex of the first space footprint.
    pub fn duplicate_first_space_vertices(model: &mut DbiModel) {
        if let Some(sp) = model.spaces.first_mut() {
            let doubled: Vec<Point> = sp.footprint.iter().flat_map(|&p| [p, p]).collect();
            sp.footprint = doubled;
        }
    }

    /// Replace the first space footprint with a self-intersecting bow-tie.
    pub fn bowtie_first_space(model: &mut DbiModel) {
        if let Some(sp) = model.spaces.first_mut() {
            sp.footprint = vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 2.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 2.0),
            ];
        }
    }

    /// Flatten the first staircase to a single elevation.
    pub fn flatten_first_stair(model: &mut DbiModel) {
        if let Some(st) = model.stairs.first_mut() {
            for v in &mut st.vertices {
                v.z = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DoorDirectionality, DoorRec, SpaceRec, StairRec, StoreyRec};
    use vita_geometry::Point3;

    fn base_model() -> DbiModel {
        DbiModel {
            building_name: "T".into(),
            storeys: vec![
                StoreyRec {
                    id: 1,
                    name: "G".into(),
                    elevation: 0.0,
                },
                StoreyRec {
                    id: 2,
                    name: "F1".into(),
                    elevation: 3.0,
                },
            ],
            spaces: vec![
                SpaceRec {
                    id: 10,
                    name: "A".into(),
                    usage: String::new(),
                    storey: 1,
                    footprint: Polygon::rect(0.0, 0.0, 5.0, 4.0).vertices().to_vec(),
                },
                SpaceRec {
                    id: 11,
                    name: "B".into(),
                    usage: String::new(),
                    storey: 1,
                    footprint: Polygon::rect(5.0, 0.0, 10.0, 4.0).vertices().to_vec(),
                },
            ],
            doors: vec![DoorRec {
                id: 20,
                name: "D".into(),
                storey: 1,
                position: Point::new(5.0, 2.0),
                width: 0.9,
                directionality: DoorDirectionality::Both,
            }],
            stairs: vec![StairRec {
                id: 30,
                name: "S".into(),
                vertices: vec![Point3::new(1.0, 1.0, 0.0), Point3::new(2.0, 1.0, 3.0)],
            }],
            walls: vec![],
        }
    }

    #[test]
    fn clean_model_reports_nothing() {
        let mut m = base_model();
        let rep = validate_and_repair(&mut m);
        assert!(rep.is_clean(), "{:?}", rep.findings);
        assert_eq!(m.spaces.len(), 2);
    }

    #[test]
    fn door_within_tolerance_is_snapped() {
        let mut m = base_model();
        m.doors[0].position = Point::new(5.3, 2.0); // 0.3 m off the shared wall
        let rep = validate_and_repair(&mut m);
        let f = rep
            .findings
            .iter()
            .find(|f| f.entity == 20)
            .expect("door finding");
        assert!(matches!(f.kind, FindingKind::DoorSnapped { .. }));
        assert!(f.repaired);
        assert!(m.doors[0].position.approx_eq(Point::new(5.0, 2.0)));
    }

    #[test]
    fn door_far_away_is_flagged_not_moved() {
        let mut m = base_model();
        corrupt::displace_first_door(&mut m, 10.0);
        let before = m.doors[0].position;
        let rep = validate_and_repair(&mut m);
        let f = rep
            .findings
            .iter()
            .find(|f| f.entity == 20)
            .expect("door finding");
        assert!(matches!(f.kind, FindingKind::DoorOffBoundary { .. }));
        assert!(!f.repaired);
        assert!(m.doors[0].position.approx_eq(before));
    }

    #[test]
    fn duplicate_vertices_removed() {
        let mut m = base_model();
        corrupt::duplicate_first_space_vertices(&mut m);
        let rep = validate_and_repair(&mut m);
        assert!(rep
            .findings
            .iter()
            .any(|f| f.entity == 10 && f.kind == FindingKind::DuplicateVertices));
        assert_eq!(m.spaces[0].footprint.len(), 4);
    }

    #[test]
    fn bowtie_footprint_dropped() {
        let mut m = base_model();
        corrupt::bowtie_first_space(&mut m);
        let rep = validate_and_repair(&mut m);
        assert!(rep
            .findings
            .iter()
            .any(|f| f.entity == 10 && f.kind == FindingKind::SelfIntersectingFootprint));
        assert_eq!(m.spaces.len(), 1);
        assert_eq!(m.spaces[0].id, 11);
    }

    #[test]
    fn overlapping_spaces_flagged() {
        let mut m = base_model();
        m.spaces[1].footprint = Polygon::rect(3.0, 0.0, 8.0, 4.0).vertices().to_vec();
        let rep = validate_and_repair(&mut m);
        let f = rep
            .findings
            .iter()
            .find(|f| matches!(f.kind, FindingKind::OverlappingSpaces { .. }))
            .expect("overlap finding");
        match f.kind {
            FindingKind::OverlappingSpaces { area, .. } => {
                assert!((area - 8.0).abs() < 0.1, "overlap area {area}")
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn duplicate_elevations_flagged() {
        let mut m = base_model();
        m.storeys[1].elevation = 0.05;
        let rep = validate_and_repair(&mut m);
        assert!(rep
            .findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::DuplicateElevation { .. })));
    }

    #[test]
    fn flat_staircase_flagged() {
        let mut m = base_model();
        corrupt::flatten_first_stair(&mut m);
        let rep = validate_and_repair(&mut m);
        assert!(rep
            .findings
            .iter()
            .any(|f| f.entity == 30 && matches!(f.kind, FindingKind::FlatStaircase { .. })));
    }

    #[test]
    fn degenerate_footprint_dropped() {
        let mut m = base_model();
        m.spaces[0].footprint = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let rep = validate_and_repair(&mut m);
        assert!(rep
            .findings
            .iter()
            .any(|f| matches!(f.kind, FindingKind::DegenerateFootprint(_))));
        assert_eq!(m.spaces.len(), 1);
    }

    #[test]
    fn wall_zero_segments_deduped() {
        use crate::schema::WallRec;
        let mut m = base_model();
        m.walls.push(WallRec {
            id: 40,
            name: "W".into(),
            storey: 1,
            path: vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
            ],
        });
        let rep = validate_and_repair(&mut m);
        assert!(rep
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::WallZeroSegments));
        assert_eq!(m.walls[0].path.len(), 2);
    }

    #[test]
    fn report_counters() {
        let mut m = base_model();
        corrupt::bowtie_first_space(&mut m);
        corrupt::flatten_first_stair(&mut m);
        let rep = validate_and_repair(&mut m);
        assert!(rep.repaired_count() >= 1);
        assert!(rep.unrepaired_count() >= 1);
        assert!(!rep.is_clean());
    }
}
